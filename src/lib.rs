//! # cogra — Coarse-Grained Event Trend Aggregation
//!
//! A from-scratch Rust implementation of *"Event Trend Aggregation Under
//! Rich Event Matching Semantics"* (Poppe, Lei, Rundensteiner, Maier —
//! SIGMOD 2019): online aggregation of Kleene-pattern matches (*event
//! trends*) under the contiguous, skip-till-next-match and
//! skip-till-any-match semantics, at the coarsest aggregate granularity
//! each semantics permits.
//!
//! ```
//! use cogra::prelude::*;
//!
//! // 1. Declare the event schema.
//! let mut registry = TypeRegistry::new();
//! let stock = registry.register_type(
//!     "Stock",
//!     vec![("company", ValueKind::Int), ("price", ValueKind::Float)],
//! );
//!
//! // 2. Write the query in the paper's language and build the engine.
//! let mut engine = CograEngine::from_text(
//!     "RETURN company, COUNT(*) \
//!      PATTERN Stock S+ \
//!      SEMANTICS skip-till-any-match \
//!      WHERE [company] AND S.price > NEXT(S).price \
//!      GROUP-BY company \
//!      WITHIN 10 SLIDE 10",
//!     &registry,
//! ).unwrap();
//!
//! // 3. Stream events; collect finalized window results.
//! let mut results = Vec::new();
//! for (i, price) in [5.0, 4.0, 3.0, 6.0, 2.0].into_iter().enumerate() {
//!     let e = Event::new(i as u64, i as u64 + 1, stock,
//!                        vec![Value::Int(1), Value::Float(price)]);
//!     engine.process(&e);
//!     results.extend(engine.drain());
//! }
//! results.extend(engine.finish());
//! assert_eq!(results.len(), 1); // one window, one company
//! ```
//!
//! The workspace crates are re-exported:
//! * [`events`] — event model, schemas, sliding windows;
//! * [`query`] — pattern AST, parser, static analyzer (FSA, predicate
//!   classifier, granularity selector);
//! * [`core`] — the COGRA executor (type-/mixed-/pattern-grained
//!   aggregators) and the engine abstraction;
//! * [`baselines`] — SASE, Flink-flat, GRETA, A-Seq and the oracle;
//! * [`workloads`] — the evaluation's data-set generators.

pub use cogra_baselines as baselines;
pub use cogra_core as core;
pub use cogra_events as events;
pub use cogra_query as query;
pub use cogra_workloads as workloads;

/// Everything needed for typical use.
pub mod prelude {
    pub use cogra_core::{
        run_parallel, run_to_completion, AggValue, CograEngine, TrendEngine, WindowResult,
    };
    pub use cogra_events::{
        Event, EventBuilder, Timestamp, TypeRegistry, Value, ValueKind, WindowSpec,
    };
    pub use cogra_query::{compile, parse, Granularity, PatternExpr, Query, Semantics};
}
