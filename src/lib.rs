//! # cogra — Coarse-Grained Event Trend Aggregation
//!
//! A from-scratch Rust implementation of *"Event Trend Aggregation Under
//! Rich Event Matching Semantics"* (Poppe, Lei, Rundensteiner, Maier —
//! SIGMOD 2019): online aggregation of Kleene-pattern matches (*event
//! trends*) under the contiguous, skip-till-next-match and
//! skip-till-any-match semantics, at the coarsest aggregate granularity
//! each semantics permits.
//!
//! Every consumer talks to the engines through the unified
//! [`Session`](prelude::Session) pipeline:
//!
//! ```
//! use cogra::prelude::*;
//!
//! // 1. Declare the event schema.
//! let mut registry = TypeRegistry::new();
//! let stock = registry.register_type(
//!     "Stock",
//!     vec![("company", ValueKind::Int), ("price", ValueKind::Float)],
//! );
//!
//! // 2. Build the stream (any recorded or live source works).
//! let mut builder = EventBuilder::new();
//! let events: Vec<Event> = [5.0, 4.0, 3.0, 6.0, 2.0]
//!     .into_iter()
//!     .enumerate()
//!     .map(|(i, price)| {
//!         builder.event(i as u64 + 1, stock, vec![Value::Int(1), Value::Float(price)])
//!     })
//!     .collect();
//!
//! // 3. Configure a session: query in the paper's language, engine from
//! //    the typed roster, and run it to completion.
//! let run = Session::builder()
//!     .query(
//!         "RETURN company, COUNT(*) \
//!          PATTERN Stock S+ \
//!          SEMANTICS skip-till-any-match \
//!          WHERE [company] AND S.price > NEXT(S).price \
//!          GROUP-BY company \
//!          WITHIN 10 SLIDE 10",
//!     )
//!     .engine(EngineKind::Cogra)
//!     .build(&registry)
//!     .unwrap()
//!     .run(&events);
//! assert_eq!(run.results().len(), 1); // one window, one company
//! ```
//!
//! Streaming consumers call [`Session::process`](prelude::Session::process)
//! per event and receive results through a push-based
//! [`ResultSink`](prelude::ResultSink) — no intermediate vectors on the
//! hot path. `.slack(n)` fuses bounded out-of-order repair into
//! ingestion; `.workers(n)` shards execution per partition (§8);
//! repeating `.query(...)` fans one stream out to a whole query workload.
//!
//! The workspace crates are re-exported:
//! * [`events`] — event model, schemas, sliding windows;
//! * [`query`] — pattern AST, parser, static analyzer (FSA, predicate
//!   classifier, granularity selector);
//! * [`engine`] — the engine substrate: `TrendEngine`, aggregate cells,
//!   the partition/window router;
//! * [`core`] — the COGRA executor (type-/mixed-/pattern-grained
//!   aggregators) and the `Session` facade;
//! * [`baselines`] — SASE, Flink-flat, GRETA, A-Seq and the oracle;
//! * [`server`] — the TCP front-end: socket ingest, subscription sinks;
//! * [`workloads`] — the evaluation's data-set generators.

pub use cogra_baselines as baselines;
pub use cogra_core as core;
pub use cogra_engine as engine;
pub use cogra_events as events;
pub use cogra_query as query;
pub use cogra_server as server;
pub use cogra_workloads as workloads;

/// Everything needed for typical use.
pub mod prelude {
    pub use cogra_core::session::{
        EngineKind, IngestError, ResultSink, Session, SessionBuilder, SessionError, SessionRun,
        SharedPlan, TaggedResult,
    };
    pub use cogra_core::{
        run_parallel, run_to_completion, AggValue, CheckpointError, CograEngine, EngineConfig,
        FailurePolicy, RunStats, TrendEngine, WindowResult, WorkerFailure,
    };
    pub use cogra_events::{
        read_events, write_events, Event, EventBuilder, EventReader, Timestamp, TypeRegistry,
        Value, ValueKind, WindowSpec,
    };
    pub use cogra_query::{compile, parse, Granularity, PatternExpr, Query, Semantics};
    pub use cogra_server::{Client, ServeError, Server, ServerConfig, StatsReport, Subscription};
}
