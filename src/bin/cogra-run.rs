//! `cogra-run` — run event trend aggregation queries against a recorded
//! CSV stream from the command line, through the unified [`Session`] API.
//!
//! ```text
//! cogra-run --schema schema.csv --events stream.csv --query query.cep
//!           [--engine cogra|sase|greta|aseq|flink|oracle] [--workers N]
//!           [--explain] [--dot] [--slack N] [--memory]
//! ```
//!
//! * `--schema` — CSV with rows `type,attr,kind` (kind ∈ int|float|str|bool)
//!   declaring the event types;
//! * `--events` — the stream in the `cogra_events::csv` format
//!   (`type,time,<attribute columns>`);
//! * `--query`  — a file containing one query in the paper's language
//!   (repeat the flag for a multi-query workload over the same stream);
//! * `--engine` — which engine to run (default `cogra`);
//! * `--workers` — parallel per-partition shards (§8, COGRA only);
//!   execution streams through per-worker threads and the summary line
//!   reports the *effective* shard count (1 when a query has no
//!   `GROUP-BY` prefix to shard on);
//! * `--slack`  — repair up to N ticks of disorder before ingestion and
//!   report how many late events had to be dropped;
//! * `--explain` / `--dot` — print the compiled plan / Graphviz automaton;
//! * `--memory` — report peak memory after the run.

use cogra::prelude::*;
use cogra::query::{explain, to_dot};
use std::process::ExitCode;

struct Args {
    schema: String,
    events: String,
    queries: Vec<String>,
    engine: EngineKind,
    workers: usize,
    slack: Option<u64>,
    explain: bool,
    dot: bool,
    memory: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut schema = None;
    let mut events = None;
    let mut queries = Vec::new();
    let mut engine = EngineKind::Cogra;
    let mut workers = 1usize;
    let mut slack = None;
    let mut explain = false;
    let mut dot = false;
    let mut memory = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--schema" => schema = Some(value("--schema")?),
            "--events" => events = Some(value("--events")?),
            "--query" => queries.push(value("--query")?),
            "--engine" => engine = value("--engine")?.parse()?,
            "--workers" => {
                workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_string())?
            }
            "--slack" => {
                slack = Some(
                    value("--slack")?
                        .parse()
                        .map_err(|_| "--slack needs an integer".to_string())?,
                )
            }
            "--explain" => explain = true,
            "--dot" => dot = true,
            "--memory" => memory = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if queries.is_empty() {
        return Err("--query is required".into());
    }
    Ok(Args {
        schema: schema.ok_or("--schema is required")?,
        events: events.ok_or("--events is required")?,
        queries,
        engine,
        workers,
        slack,
        explain,
        dot,
        memory,
    })
}

/// Parse the `type,attr,kind` schema file into a registry.
fn load_registry(text: &str) -> Result<TypeRegistry, String> {
    let mut decls: Vec<(String, Vec<(String, ValueKind)>)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || (i == 0 && line == "type,attr,kind") {
            continue;
        }
        let parts: Vec<&str> = line.split(',').map(str::trim).collect();
        let [ty, attr, kind] = parts[..] else {
            return Err(format!("schema line {}: expected `type,attr,kind`", i + 1));
        };
        let kind = match kind {
            "int" => ValueKind::Int,
            "float" => ValueKind::Float,
            "str" | "string" => ValueKind::Str,
            "bool" => ValueKind::Bool,
            other => return Err(format!("schema line {}: unknown kind `{other}`", i + 1)),
        };
        match decls.iter_mut().find(|(t, _)| t == ty) {
            Some((_, attrs)) => attrs.push((attr.to_string(), kind)),
            None => decls.push((ty.to_string(), vec![(attr.to_string(), kind)])),
        }
    }
    let mut registry = TypeRegistry::new();
    for (ty, attrs) in &decls {
        registry.register_type(ty, attrs.iter().map(|(a, k)| (a.as_str(), *k)).collect());
    }
    if registry.is_empty() {
        return Err("schema declares no event types".into());
    }
    Ok(registry)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    let registry = load_registry(&read(&args.schema)?)?;
    let queries: Vec<Query> = args
        .queries
        .iter()
        .map(|path| parse(&read(path)?).map_err(|e| format!("{path}: {e}")))
        .collect::<Result<_, String>>()?;
    if args.explain || args.dot {
        for query in &queries {
            let compiled = compile(query, &registry).map_err(|e| e.to_string())?;
            if args.explain {
                eprintln!("{}", explain(&compiled, &registry));
            }
            if args.dot {
                println!("{}", to_dot(&compiled));
            }
        }
        if args.dot && !args.explain {
            return Ok(());
        }
    }

    let stream = read(&args.events)?;

    let mut builder = Session::builder().engine(args.engine).workers(args.workers);
    if let Some(slack) = args.slack {
        builder = builder.slack(slack);
    }
    for query in &queries {
        builder = builder.query(query);
    }
    let session = builder.build(&registry).map_err(|e| match e {
        // Attribute per-query failures to their query file.
        SessionError::Query { query, error } => format!("{}: {error}", args.queries[query]),
        other => other.to_string(),
    })?;
    let multi = queries.len() > 1;
    // One pass: CSV rows are decoded and ingested through the Session's
    // shared decode path (`run_csv`), never materializing the event
    // vector. Out-of-order rows fail here unless --slack repairs them.
    let run = session
        .run_csv(&stream, &registry)
        .map_err(|e| format!("{}: {e}", args.events))?;

    for (i, results) in run.per_query.iter().enumerate() {
        for r in results {
            if multi {
                println!("q{i}: {r}");
            } else {
                println!("{r}");
            }
        }
    }
    let total: usize = run.per_query.iter().map(Vec::len).sum();
    // Count what the engines actually ingested: late drops are reported
    // on their own line, not in the headline.
    let ingested = run.events - run.late_events;
    // Report the shard count actually used, not the one requested: a
    // query without a GROUP-BY prefix clamps to one worker.
    let workers = match (args.workers, run.workers) {
        (requested, _) if requested <= 1 => String::new(),
        (requested, effective) if effective == requested => format!(", {effective} workers"),
        (requested, effective) => format!(", {effective} of {requested} workers effective"),
    };
    eprintln!(
        "{ingested} events → {total} results ({}{workers})",
        args.engine
    );
    if args.slack.is_some() {
        eprintln!("reorder: {} late event(s) dropped", run.late_events);
    }
    if args.memory {
        eprintln!("peak memory: {} bytes", run.peak_bytes);
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) if msg.is_empty() => {
            eprintln!(
                "usage: cogra-run --schema schema.csv --events stream.csv --query query.cep \
                 [--engine cogra|sase|greta|aseq|flink|oracle] [--workers N] [--slack N] \
                 [--explain] [--dot] [--memory]"
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
