//! `cogra-run` — run an event trend aggregation query against a recorded
//! CSV stream from the command line.
//!
//! ```text
//! cogra-run --schema schema.csv --events stream.csv --query query.cep
//!           [--engine cogra|sase|greta|aseq|flink|oracle]
//!           [--explain] [--dot] [--slack N] [--memory]
//! ```
//!
//! * `--schema` — CSV with rows `type,attr,kind` (kind ∈ int|float|str|bool)
//!   declaring the event types;
//! * `--events` — the stream in the `cogra_events::csv` format
//!   (`type,time,<attribute columns>`);
//! * `--query`  — a file containing one query in the paper's language;
//! * `--engine` — which engine to run (default `cogra`);
//! * `--slack`  — repair up to N ticks of disorder before ingestion;
//! * `--explain` / `--dot` — print the compiled plan / Graphviz automaton;
//! * `--memory` — report peak memory after the run.

use cogra::baselines::{aseq_engine, flink_engine, greta_engine, oracle_engine, sase_engine};
use cogra::core::runtime::EngineConfig;
use cogra::core::{run_to_completion, TrendEngine};
use cogra::events::{read_events, Reorderer};
use cogra::prelude::*;
use cogra::query::{explain, to_dot};
use std::process::ExitCode;

struct Args {
    schema: String,
    events: String,
    query: String,
    engine: String,
    slack: Option<u64>,
    explain: bool,
    dot: bool,
    memory: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut schema = None;
    let mut events = None;
    let mut query = None;
    let mut engine = "cogra".to_string();
    let mut slack = None;
    let mut explain = false;
    let mut dot = false;
    let mut memory = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--schema" => schema = Some(value("--schema")?),
            "--events" => events = Some(value("--events")?),
            "--query" => query = Some(value("--query")?),
            "--engine" => engine = value("--engine")?,
            "--slack" => {
                slack = Some(
                    value("--slack")?
                        .parse()
                        .map_err(|_| "--slack needs an integer".to_string())?,
                )
            }
            "--explain" => explain = true,
            "--dot" => dot = true,
            "--memory" => memory = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        schema: schema.ok_or("--schema is required")?,
        events: events.ok_or("--events is required")?,
        query: query.ok_or("--query is required")?,
        engine,
        slack,
        explain,
        dot,
        memory,
    })
}

/// Parse the `type,attr,kind` schema file into a registry.
fn load_registry(text: &str) -> Result<TypeRegistry, String> {
    let mut decls: Vec<(String, Vec<(String, ValueKind)>)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || (i == 0 && line == "type,attr,kind") {
            continue;
        }
        let parts: Vec<&str> = line.split(',').map(str::trim).collect();
        let [ty, attr, kind] = parts[..] else {
            return Err(format!("schema line {}: expected `type,attr,kind`", i + 1));
        };
        let kind = match kind {
            "int" => ValueKind::Int,
            "float" => ValueKind::Float,
            "str" | "string" => ValueKind::Str,
            "bool" => ValueKind::Bool,
            other => return Err(format!("schema line {}: unknown kind `{other}`", i + 1)),
        };
        match decls.iter_mut().find(|(t, _)| t == ty) {
            Some((_, attrs)) => attrs.push((attr.to_string(), kind)),
            None => decls.push((ty.to_string(), vec![(attr.to_string(), kind)])),
        }
    }
    let mut registry = TypeRegistry::new();
    for (ty, attrs) in &decls {
        registry.register_type(
            ty,
            attrs.iter().map(|(a, k)| (a.as_str(), *k)).collect(),
        );
    }
    if registry.is_empty() {
        return Err("schema declares no event types".into());
    }
    Ok(registry)
}

fn build_engine(
    name: &str,
    query: &Query,
    registry: &TypeRegistry,
) -> Result<Box<dyn TrendEngine>, String> {
    let cfg = EngineConfig::default();
    let err = |e: cogra::query::QueryError| e.to_string();
    Ok(match name {
        "cogra" => Box::new(CograEngine::build(query, registry).map_err(err)?),
        "sase" => Box::new(sase_engine(query, registry).map_err(err)?),
        "greta" => Box::new(greta_engine(query, registry).map_err(err)?),
        "aseq" => Box::new(aseq_engine(query, registry, cfg).map_err(err)?),
        "flink" => Box::new(flink_engine(query, registry, cfg).map_err(err)?),
        "oracle" => Box::new(oracle_engine(query, registry).map_err(err)?),
        other => return Err(format!("unknown engine `{other}`")),
    })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    let registry = load_registry(&read(&args.schema)?)?;
    let query_text = read(&args.query)?;
    let query = parse(&query_text).map_err(|e| e.to_string())?;
    let compiled = compile(&query, &registry).map_err(|e| e.to_string())?;
    if args.explain {
        eprintln!("{}", explain(&compiled, &registry));
    }
    if args.dot {
        println!("{}", to_dot(&compiled));
        if !args.explain {
            return Ok(());
        }
    }

    let mut events = read_events(&read(&args.events)?, &registry).map_err(|e| e.to_string())?;
    if let Some(slack) = args.slack {
        let mut reorderer = Reorderer::new(slack);
        let mut ordered = Vec::with_capacity(events.len());
        for e in events {
            reorderer.push(e, &mut ordered);
        }
        reorderer.flush(&mut ordered);
        if reorderer.late_events() > 0 {
            eprintln!("warning: dropped {} late event(s)", reorderer.late_events());
        }
        events = ordered;
    } else {
        cogra::events::validate_ordered(&events).map_err(|e| {
            format!("{e}; pass --slack N to repair bounded disorder")
        })?;
    }

    let mut engine = build_engine(&args.engine, &query, &registry)?;
    let (results, peak) = run_to_completion(engine.as_mut(), &events, 256);
    for r in &results {
        println!("{r}");
    }
    eprintln!(
        "{} events → {} results ({})",
        events.len(),
        results.len(),
        args.engine
    );
    if args.memory {
        eprintln!("peak memory: {peak} bytes");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) if msg.is_empty() => {
            eprintln!(
                "usage: cogra-run --schema schema.csv --events stream.csv --query query.cep \
                 [--engine cogra|sase|greta|aseq|flink|oracle] [--slack N] \
                 [--explain] [--dot] [--memory]"
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
