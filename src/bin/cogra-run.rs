//! `cogra-run` — run event trend aggregation queries against a recorded
//! CSV stream from the command line, through the unified [`Session`] API.
//!
//! ```text
//! cogra-run --schema schema.csv --events stream.csv --query query.cep
//!           [--engine cogra|sase|greta|aseq|flink|oracle] [--workers N]
//!           [--explain] [--dot] [--slack N] [--key-limit N] [--memory]
//!           [--checkpoint snap.cogra] [--restore snap.cogra]
//! cogra-run serve   --schema schema.csv --query query.cep
//!           [--engine E] [--workers N] [--slack N] [--key-limit N]
//!           [--listen 127.0.0.1:7878] [--restore snap.cogra]
//!           [--read-timeout SECS] [--snapshot-on-term snap.cogra]
//! cogra-run connect --addr HOST:PORT --events stream.csv
//!           [--chunk N] [--stats] [--snapshot snap.cogra]
//!           [--retry N] [--backoff-ms M]
//! ```
//!
//! * `--schema` — CSV with rows `type,attr,kind` (kind ∈ int|float|str|bool)
//!   declaring the event types;
//! * `--events` — the stream in the `cogra_events::csv` format
//!   (`type,time,<attribute columns>`);
//! * `--query`  — a file containing one query in the paper's language
//!   (repeat the flag for a multi-query workload over the same stream);
//! * `--engine` — which engine to run (default `cogra`);
//! * `--workers` — parallel per-partition shards (§8, COGRA only);
//!   execution streams through per-worker threads and the summary line
//!   reports the *effective* shard count (1 when a query has no
//!   `GROUP-BY` prefix to shard on);
//! * `--slack`  — repair up to N ticks of disorder before ingestion and
//!   report how many late events had to be dropped;
//! * `--key-limit` — admit at most N distinct partition keys; a stream
//!   that materializes more (e.g. unbounded session ids) fails ingestion
//!   with a typed error instead of growing the interner without bound;
//! * `--explain` / `--dot` — print the compiled plan / Graphviz automaton;
//! * `--memory` — report peak memory after the run;
//! * `--checkpoint SNAP` — ingest the stream, print what is final at the
//!   watermark, then write the session's remaining live state to `SNAP`
//!   instead of closing the open windows;
//! * `--restore SNAP` — resume from a snapshot instead of `--query`
//!   (queries, engines and slack come from the snapshot; `--workers N`
//!   rescales elastically). A `--checkpoint` prefix run plus a
//!   `--restore` suffix run print exactly the uninterrupted run's rows.
//!
//! `serve` wraps the same session in the `cogra-server` TCP front-end
//! (loopback-only; `--listen 127.0.0.1:0` picks an ephemeral port,
//! printed as `listening on ADDR`), serves `INGEST`/`SUBSCRIBE`/
//! `DRAIN`/`STATS`/`FINISH`, and exits once a client sends `FINISH`.
//! `--read-timeout SECS` disconnects silent command connections;
//! on Unix, SIGTERM shuts down gracefully — drain, snapshot to the
//! `--snapshot-on-term` path if given (a later `serve --restore` resumes
//! there), exit 0.
//! `connect` is the matching replay client: it subscribes to every
//! query, replays a recorded CSV stream in `--chunk`-row blocks, sends
//! `FINISH`, and prints the pushed results — the same rows the plain
//! run mode would print, modulo the push-order vs sorted-order
//! difference (`tests/cli.rs` pins the sorted outputs equal).
//! `--retry N` retries a refused connection with `--backoff-ms M`
//! exponential backoff, so a client racing its server's startup wins.

use cogra::prelude::*;
use cogra::query::{explain, to_dot};
use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    schema: String,
    events: String,
    queries: Vec<String>,
    engine: Option<EngineKind>,
    workers: Option<usize>,
    slack: Option<u64>,
    key_limit: Option<u32>,
    checkpoint: Option<String>,
    restore: Option<String>,
    explain: bool,
    dot: bool,
    memory: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut schema = None;
    let mut events = None;
    let mut queries = Vec::new();
    let mut engine = None;
    let mut workers = None;
    let mut slack = None;
    let mut key_limit = None;
    let mut checkpoint = None;
    let mut restore = None;
    let mut explain = false;
    let mut dot = false;
    let mut memory = false;
    let mut it = argv.iter().cloned();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--schema" => schema = Some(value("--schema")?),
            "--events" => events = Some(value("--events")?),
            "--query" => queries.push(value("--query")?),
            "--engine" => engine = Some(value("--engine")?.parse::<EngineKind>()?),
            "--workers" => {
                workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|_| "--workers needs an integer".to_string())?,
                )
            }
            "--slack" => {
                slack = Some(
                    value("--slack")?
                        .parse()
                        .map_err(|_| "--slack needs an integer".to_string())?,
                )
            }
            "--key-limit" => {
                key_limit = Some(
                    value("--key-limit")?
                        .parse()
                        .map_err(|_| "--key-limit needs an integer".to_string())?,
                )
            }
            "--checkpoint" => checkpoint = Some(value("--checkpoint")?),
            "--restore" => restore = Some(value("--restore")?),
            "--explain" => explain = true,
            "--dot" => dot = true,
            "--memory" => memory = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if restore.is_some() {
        // The snapshot fixes queries, engines and slack; only the
        // execution-shape knobs may be overridden (Session enforces the
        // same contract — this just gives flag-level messages).
        if !queries.is_empty() {
            return Err("--query cannot be combined with --restore \
                        (the snapshot defines the queries)"
                .into());
        }
        if engine.is_some() {
            return Err("--engine cannot be combined with --restore".into());
        }
        if slack.is_some() {
            return Err("--slack cannot be combined with --restore".into());
        }
        if key_limit.is_some() {
            return Err("--key-limit cannot be combined with --restore".into());
        }
    } else if queries.is_empty() {
        return Err("--query is required".into());
    }
    Ok(Args {
        schema: schema.ok_or("--schema is required")?,
        events: events.ok_or("--events is required")?,
        queries,
        engine,
        workers,
        slack,
        key_limit,
        checkpoint,
        restore,
        explain,
        dot,
        memory,
    })
}

/// Parse the `type,attr,kind` schema file into a registry.
fn load_registry(text: &str) -> Result<TypeRegistry, String> {
    let mut decls: Vec<(String, Vec<(String, ValueKind)>)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || (i == 0 && line == "type,attr,kind") {
            continue;
        }
        let parts: Vec<&str> = line.split(',').map(str::trim).collect();
        let [ty, attr, kind] = parts[..] else {
            return Err(format!("schema line {}: expected `type,attr,kind`", i + 1));
        };
        let kind = match kind {
            "int" => ValueKind::Int,
            "float" => ValueKind::Float,
            "str" | "string" => ValueKind::Str,
            "bool" => ValueKind::Bool,
            other => return Err(format!("schema line {}: unknown kind `{other}`", i + 1)),
        };
        match decls.iter_mut().find(|(t, _)| t == ty) {
            Some((_, attrs)) => attrs.push((attr.to_string(), kind)),
            None => decls.push((ty.to_string(), vec![(attr.to_string(), kind)])),
        }
    }
    let mut registry = TypeRegistry::new();
    for (ty, attrs) in &decls {
        registry.register_type(ty, attrs.iter().map(|(a, k)| (a.as_str(), *k)).collect());
    }
    if registry.is_empty() {
        return Err("schema declares no event types".into());
    }
    Ok(registry)
}

/// Read a file, attributing errors to the path.
fn read(p: &str) -> Result<String, String> {
    std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = parse_args(argv)?;
    let registry = load_registry(&read(&args.schema)?)?;
    let queries: Vec<Query> = args
        .queries
        .iter()
        .map(|path| parse(&read(path)?).map_err(|e| format!("{path}: {e}")))
        .collect::<Result<_, String>>()?;
    if args.explain || args.dot {
        for query in &queries {
            let compiled = compile(query, &registry).map_err(|e| e.to_string())?;
            if args.explain {
                eprintln!("{}", explain(&compiled, &registry));
            }
            if args.dot {
                println!("{}", to_dot(&compiled));
            }
        }
        if args.dot && !args.explain {
            return Ok(());
        }
    }

    let stream = read(&args.events)?;

    let session = if let Some(snap) = &args.restore {
        // The snapshot is authoritative for queries/engines/slack;
        // --workers opts into an elastic rescale.
        let mut builder = Session::builder();
        if let Some(workers) = args.workers {
            builder = builder.workers(workers);
        }
        let file = std::fs::File::open(snap).map_err(|e| format!("{snap}: {e}"))?;
        builder
            .restore(&registry, std::io::BufReader::new(file))
            .map_err(|e| format!("{snap}: {e}"))?
    } else {
        let mut builder = Session::builder()
            .engine(args.engine.unwrap_or(EngineKind::Cogra))
            .workers(args.workers.unwrap_or(1));
        if let Some(slack) = args.slack {
            builder = builder.slack(slack);
        }
        if let Some(limit) = args.key_limit {
            builder = builder.config(EngineConfig {
                key_limit: Some(limit),
                ..EngineConfig::default()
            });
        }
        for query in &queries {
            builder = builder.query(query);
        }
        builder.build(&registry).map_err(|e| match e {
            // Attribute per-query failures to their query file.
            SessionError::Query { query, error } => format!("{}: {error}", args.queries[query]),
            other => other.to_string(),
        })?
    };
    let multi = session.queries() > 1;
    let engine = session.kind();

    if let Some(path) = &args.checkpoint {
        return checkpoint_run(session, &args, engine, multi, &stream, &registry, path);
    }

    // One pass: CSV rows are decoded and ingested through the Session's
    // shared decode path (`run_csv`), never materializing the event
    // vector. Out-of-order rows fail here unless --slack repairs them.
    let run = session
        .run_csv(&stream, &registry)
        .map_err(|e| format!("{}: {e}", args.events))?;

    for (i, results) in run.per_query.iter().enumerate() {
        for r in results {
            if multi {
                println!("q{i}: {r}");
            } else {
                println!("{r}");
            }
        }
    }
    let total: usize = run.per_query.iter().map(Vec::len).sum();
    // Count what the engines actually ingested: late drops are reported
    // on their own line, not in the headline.
    let ingested = run.events - run.late_events;
    // Report the shard count actually used, not the one requested: a
    // query without a GROUP-BY prefix clamps to one worker.
    let workers = format_workers(args.workers, run.workers);
    eprintln!("{ingested} events → {total} results ({engine}{workers})");
    if args.slack.is_some() || run.late_events > 0 {
        eprintln!("reorder: {} late event(s) dropped", run.late_events);
    }
    if args.memory {
        eprintln!("peak memory: {} bytes", run.peak_bytes);
    }
    Ok(())
}

/// Shard-count suffix of the summary line: report the count actually
/// used, not the one requested — a query without a GROUP-BY prefix
/// clamps to one worker.
fn format_workers(requested: Option<usize>, effective: usize) -> String {
    match (requested, effective) {
        (None | Some(0) | Some(1), 0..=1) => String::new(),
        (None, effective) => format!(", {effective} workers"),
        (Some(requested), effective) if effective == requested => {
            format!(", {effective} workers")
        }
        (Some(requested), effective) => format!(", {effective} of {requested} workers effective"),
    }
}

/// `--checkpoint PATH`: ingest the stream, print what is final at the
/// watermark, then snapshot the session's remaining live state to PATH
/// *instead of* finishing it — the open windows live on in the snapshot
/// and a later `--restore PATH` run picks up exactly where this left
/// off (together they print precisely the uninterrupted run's rows).
fn checkpoint_run(
    mut session: Session,
    args: &Args,
    engine: EngineKind,
    multi: bool,
    stream: &str,
    registry: &TypeRegistry,
    path: &str,
) -> Result<(), String> {
    let count = session
        .ingest_csv(stream, registry)
        .map_err(|e| format!("{}: {e}", args.events))?;
    let mut per_query: Vec<Vec<WindowResult>> = vec![Vec::new(); session.queries()];
    session.drain_into(&mut |query: usize, result: WindowResult| per_query[query].push(result));
    for results in &mut per_query {
        WindowResult::sort(results);
    }
    for (i, results) in per_query.iter().enumerate() {
        for r in results {
            if multi {
                println!("q{i}: {r}");
            } else {
                println!("{r}");
            }
        }
    }

    // Atomic write ({path}.tmp + fsync + rename): a crash mid-snapshot
    // leaves any previous snapshot at PATH intact, never a truncated one.
    // Same `{path}: {error}` text the server's SNAPSHOT verb reports.
    cogra_checkpoint::write_atomic(path, |buf| session.checkpoint(buf))
        .map_err(|e| format!("{path}: {e}"))?;

    let total: usize = per_query.iter().map(Vec::len).sum();
    let late = session.late_events();
    let ingested = count - late;
    let workers = format_workers(args.workers, session.workers());
    eprintln!("{ingested} events → {total} results ({engine}{workers}); snapshot → {path}");
    if args.slack.is_some() || late > 0 {
        eprintln!("reorder: {late} late event(s) dropped");
    }
    if args.memory {
        eprintln!("memory: {} bytes", session.memory_bytes());
    }
    Ok(())
}

/// `serve`: wrap the session in the TCP front-end and serve until a
/// client sends `FINISH`.
fn serve(argv: &[String]) -> Result<(), String> {
    let mut schema = None;
    let mut queries: Vec<String> = Vec::new();
    let mut engine: Option<EngineKind> = None;
    let mut workers: Option<usize> = None;
    let mut slack = None;
    let mut key_limit: Option<u32> = None;
    let mut restore: Option<String> = None;
    let mut listen = "127.0.0.1:7878".to_string();
    let mut read_timeout: Option<Duration> = None;
    let mut snapshot_on_term: Option<String> = None;
    let mut it = argv.iter().cloned();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--schema" => schema = Some(value("--schema")?),
            "--query" => queries.push(value("--query")?),
            "--engine" => engine = Some(value("--engine")?.parse::<EngineKind>()?),
            "--workers" => {
                workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|_| "--workers needs an integer".to_string())?,
                )
            }
            "--slack" => {
                slack = Some(
                    value("--slack")?
                        .parse()
                        .map_err(|_| "--slack needs an integer".to_string())?,
                )
            }
            "--key-limit" => {
                key_limit = Some(
                    value("--key-limit")?
                        .parse()
                        .map_err(|_| "--key-limit needs an integer".to_string())?,
                )
            }
            "--restore" => restore = Some(value("--restore")?),
            "--listen" => listen = value("--listen")?,
            "--read-timeout" => {
                let secs = value("--read-timeout")?
                    .parse::<f64>()
                    .map_err(|_| "--read-timeout needs a number of seconds".to_string())?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--read-timeout needs a positive number of seconds".into());
                }
                read_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--snapshot-on-term" => snapshot_on_term = Some(value("--snapshot-on-term")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let config = ServerConfig {
        read_timeout,
        ..ServerConfig::default()
    };
    if let Some(snap) = &restore {
        if !queries.is_empty() {
            return Err("--query cannot be combined with --restore \
                        (the snapshot defines the queries)"
                .into());
        }
        if engine.is_some() {
            return Err("--engine cannot be combined with --restore".into());
        }
        if slack.is_some() {
            return Err("--slack cannot be combined with --restore".into());
        }
        if key_limit.is_some() {
            return Err("--key-limit cannot be combined with --restore".into());
        }
        let registry = load_registry(&read(&schema.ok_or("--schema is required")?)?)?;
        let mut builder = Session::builder();
        if let Some(workers) = workers {
            builder = builder.workers(workers);
        }
        let server = Server::spawn_restored(builder, registry, snap, &*listen, config)
            .map_err(|e| e.to_string())?;
        return serve_loop(server, snapshot_on_term);
    }
    if queries.is_empty() {
        return Err("--query is required".into());
    }
    let registry = load_registry(&read(&schema.ok_or("--schema is required")?)?)?;
    let mut builder = Session::builder()
        .engine(engine.unwrap_or(EngineKind::Cogra))
        .workers(workers.unwrap_or(1));
    if let Some(slack) = slack {
        builder = builder.slack(slack);
    }
    if let Some(limit) = key_limit {
        builder = builder.config(EngineConfig {
            key_limit: Some(limit),
            ..EngineConfig::default()
        });
    }
    for path in &queries {
        builder = builder.query(parse(&read(path)?).map_err(|e| format!("{path}: {e}"))?);
    }
    let server = Server::spawn(builder, registry, &*listen, config).map_err(|e| e.to_string())?;
    serve_loop(server, snapshot_on_term)
}

/// SIGTERM → a process-wide flag, installed via the raw `signal(2)` FFI
/// (no signal-handling crate in the workspace). The handler only stores
/// an atomic — async-signal-safe by construction.
#[cfg(unix)]
mod term_signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);
    const SIGTERM: i32 = 15;

    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
        }
    }

    pub fn fired() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

/// The common serving tail: announce the port, serve until a client's
/// `FINISH` — or, on Unix, until SIGTERM, which shuts down gracefully:
/// drain results to subscribers, snapshot the live session to the
/// `--snapshot-on-term` path (atomic write; a later `serve --restore`
/// resumes exactly there), exit 0.
fn serve_loop(server: Server, snapshot_on_term: Option<String>) -> Result<(), String> {
    // The port line is the handshake scripts parse — flush past the
    // pipe buffering println! would leave it in.
    println!("listening on {}", server.local_addr());
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    #[cfg(unix)]
    term_signal::install();
    #[cfg(not(unix))]
    let _ = &snapshot_on_term;
    loop {
        if server.wait_finished(Duration::from_secs(1)) {
            server.shutdown();
            eprintln!("session finished; server exiting");
            return Ok(());
        }
        #[cfg(unix)]
        if term_signal::fired() {
            // Drain first so subscribers hold every result the snapshot
            // accounts for, then checkpoint what is still live.
            server.drain().map_err(|e| format!("drain: {e}"))?;
            if let Some(path) = &snapshot_on_term {
                server.snapshot(path.clone()).map_err(|e| e.to_string())?;
                eprintln!("SIGTERM: snapshot → {path}");
            }
            server.shutdown();
            eprintln!("terminated; server exiting");
            return Ok(());
        }
    }
}

/// Dial `addr`, retrying a refused/unreachable connection up to `retry`
/// times with exponential backoff (`backoff_ms`, doubling per attempt) —
/// lets a `connect` launched before its `serve` counterpart finishes
/// binding win the race instead of failing.
fn connect_with_retry(addr: &str, retry: u32, backoff_ms: u64) -> std::io::Result<Client> {
    let mut delay = backoff_ms.max(1);
    let mut attempts_left = retry;
    loop {
        match Client::connect(addr) {
            Ok(client) => return Ok(client),
            Err(e) => {
                if attempts_left == 0 {
                    return Err(e);
                }
                attempts_left -= 1;
                std::thread::sleep(Duration::from_millis(delay));
                delay = delay.saturating_mul(2);
            }
        }
    }
}

/// `connect`: replay a recorded CSV stream into a serving session and
/// print the results it pushes back.
fn connect(argv: &[String]) -> Result<(), String> {
    let mut addr = None;
    let mut events = None;
    let mut chunk = 1_000usize;
    let mut stats = false;
    let mut snapshot: Option<String> = None;
    let mut retry = 0u32;
    let mut backoff_ms = 100u64;
    let mut it = argv.iter().cloned();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--events" => events = Some(value("--events")?),
            "--chunk" => {
                chunk = value("--chunk")?
                    .parse::<usize>()
                    .map_err(|_| "--chunk needs an integer".to_string())?
                    .max(1)
            }
            "--stats" => stats = true,
            "--snapshot" => snapshot = Some(value("--snapshot")?),
            "--retry" => {
                retry = value("--retry")?
                    .parse()
                    .map_err(|_| "--retry needs an integer".to_string())?
            }
            "--backoff-ms" => {
                backoff_ms = value("--backoff-ms")?
                    .parse()
                    .map_err(|_| "--backoff-ms needs an integer".to_string())?
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let addr = addr.ok_or("--addr is required")?;
    let events_path = events.ok_or("--events is required")?;
    let csv = read(&events_path)?;

    let io_err = |e: std::io::Error| format!("{addr}: {e}");
    let srv_err = |e: String| format!("{addr}: server: {e}");
    let mut control = connect_with_retry(&addr, retry, backoff_ms).map_err(io_err)?;
    let pre = control.stats().map_err(io_err)?.map_err(srv_err)?;
    let multi = pre.queries > 1;

    // Subscription on its own connection: the server pushes RESULT lines
    // there while this connection drives ingestion. Retry applies here
    // too — the server proved reachable above, but it may still be
    // fd-starved for a moment under load.
    let subscription = connect_with_retry(&addr, retry, backoff_ms)
        .map_err(io_err)?
        .subscribe(None)
        .map_err(io_err)?
        .map_err(srv_err)?;
    let printer = std::thread::spawn(move || -> Result<u64, String> {
        let mut printed = 0u64;
        for item in subscription {
            let (query, row) = item.map_err(|e| format!("subscription: {e}"))?;
            if multi {
                println!("q{query}: {row}");
            } else {
                println!("{row}");
            }
            printed += 1;
        }
        Ok(printed)
    });

    control
        .replay_csv(&csv, chunk)
        .map_err(io_err)?
        .map_err(|e| format!("{events_path}: {e}"))?;
    if let Some(path) = &snapshot {
        // Checkpoint the still-open session (server-side file) before
        // FINISH discards its live state.
        control.snapshot(path).map_err(io_err)?.map_err(srv_err)?;
        eprintln!("snapshot → {path}");
    }
    let report = control.finish().map_err(io_err)?.map_err(srv_err)?;
    let printed = printer
        .join()
        .map_err(|_| "subscription thread panicked")??;

    let workers = if report.workers > 1 {
        format!(", {} workers", report.workers)
    } else {
        String::new()
    };
    eprintln!(
        "{} events → {} results (remote{workers})",
        report.events - report.late,
        printed
    );
    if report.late > 0 {
        eprintln!("reorder: {} late event(s) dropped", report.late);
    }
    if stats {
        eprintln!("stats: {}", report.encode());
    }
    Ok(())
}

const USAGE: &str = "usage: cogra-run --schema schema.csv --events stream.csv --query query.cep \
     [--engine cogra|sase|greta|aseq|flink|oracle] [--workers N] [--slack N] [--key-limit N] \
     [--checkpoint SNAP] [--explain] [--dot] [--memory]\n\
       cogra-run --schema schema.csv --events stream.csv --restore SNAP [--workers N] \
     [--checkpoint SNAP] [--memory]\n\
       cogra-run serve --schema schema.csv --query query.cep [--engine E] \
     [--workers N] [--slack N] [--key-limit N] [--listen ADDR] [--read-timeout SECS] \
     [--snapshot-on-term SNAP]\n\
       cogra-run serve --schema schema.csv --restore SNAP [--workers N] [--listen ADDR] \
     [--read-timeout SECS] [--snapshot-on-term SNAP]\n\
       cogra-run connect --addr HOST:PORT --events stream.csv [--chunk N] [--stats] \
     [--snapshot SNAP] [--retry N] [--backoff-ms M]";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match argv.first().map(String::as_str) {
        Some("serve") => serve(&argv[1..]),
        Some("connect") => connect(&argv[1..]),
        _ => run(&argv),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) if msg.is_empty() => {
            eprintln!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
