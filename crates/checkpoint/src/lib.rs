//! # cogra-checkpoint
//!
//! The versioned binary snapshot format behind `Session::checkpoint` /
//! `SessionBuilder::restore` — the durability subsystem's wire layer.
//!
//! A snapshot is:
//!
//! ```text
//! [magic "COGRASNP": 8 bytes][format version: u32 LE]
//! [section]*
//! [end marker: a section with the empty name and no payload]
//! ```
//!
//! where every section is independently checksummed:
//!
//! ```text
//! [name: u64 length + UTF-8 bytes][payload length: u64][crc32: u32][payload]
//! ```
//!
//! The framing makes every corruption class *typed* ([`CheckpointError`])
//! instead of a panic: a short file is [`CheckpointError::Truncated`]
//! (the end marker is mandatory, so truncation at a section boundary is
//! still detected), a foreign file is [`CheckpointError::BadMagic`], a
//! snapshot from a newer build is [`CheckpointError::FutureVersion`],
//! and a flipped payload bit is [`CheckpointError::Checksum`] naming the
//! section it hit.
//!
//! Section payloads are built with [`Enc`] and parsed with [`Dec`] — a
//! minimal little-endian primitive codec. What goes *into* the payloads
//! (interner tables, window rings, reorder buffers, …) is defined by the
//! state owners themselves (`cogra-events`, `cogra-engine`, `cogra-core`,
//! `cogra-baselines`), keeping private invariants private; this crate
//! only owns bytes, checksums and error taxonomy.

#![warn(missing_docs)]

use std::fmt;
use std::io::{self, Read, Write};
use std::sync::OnceLock;

/// Leading magic bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"COGRASNP";

/// The snapshot format version this build writes and the newest it reads.
pub const FORMAT_VERSION: u32 = 1;

/// Typed failure of writing or reading a snapshot. Every corruption class
/// maps to its own variant — restore never panics on bad bytes.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying reader/writer failed.
    Io(io::Error),
    /// The snapshot ends before its structure does (missing end marker,
    /// short section header or payload).
    Truncated,
    /// The file does not start with the snapshot magic — not a snapshot.
    BadMagic,
    /// The snapshot was written by a newer format than this build reads.
    FutureVersion {
        /// Version found in the snapshot header.
        found: u32,
        /// Newest version this build supports ([`FORMAT_VERSION`]).
        supported: u32,
    },
    /// A section's payload does not match its stored checksum.
    Checksum {
        /// Name of the damaged section.
        section: String,
    },
    /// Structurally invalid content inside an intact section.
    Corrupt(String),
    /// The requested operation cannot be performed on this session state
    /// (e.g. checkpointing a finished session, or combining `restore`
    /// with builder options the snapshot already fixes).
    Unsupported(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "i/o error: {e}"),
            CheckpointError::Truncated => write!(f, "truncated snapshot"),
            CheckpointError::BadMagic => write!(f, "not a cogra snapshot (bad magic)"),
            CheckpointError::FutureVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is newer than supported version {supported}"
            ),
            CheckpointError::Checksum { section } => {
                write!(f, "checksum mismatch in section `{section}`")
            }
            CheckpointError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
            CheckpointError::Unsupported(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3 polynomial), table-driven; the table is built once.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in data {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Little-endian primitive encoder for section payloads.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty payload buffer.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` by bit pattern (NaN-exact).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Append a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append an optional `u64` (presence byte + value).
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.bool(true);
                self.u64(v);
            }
            None => self.bool(false),
        }
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a length-prefixed byte blob.
    pub fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// The accumulated payload.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consume into the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian primitive decoder over a section payload. Every read
/// past the end is [`CheckpointError::Truncated`].
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or(CheckpointError::Truncated)?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `i64`.
    pub fn i64(&mut self) -> Result<i64, CheckpointError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `bool`; anything but 0/1 is corrupt.
    pub fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CheckpointError::Corrupt(format!("bad bool byte {b}"))),
        }
    }

    /// Read a `usize` stored as `u64`, checked against the platform width.
    pub fn usize(&mut self) -> Result<usize, CheckpointError> {
        usize::try_from(self.u64()?)
            .map_err(|_| CheckpointError::Corrupt("length overflows usize".into()))
    }

    /// Read an optional `u64` (presence byte + value).
    pub fn opt_u64(&mut self) -> Result<Option<u64>, CheckpointError> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CheckpointError> {
        let n = self.usize()?;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| CheckpointError::Corrupt("invalid UTF-8 string".into()))
    }

    /// Read a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<&'a [u8], CheckpointError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the payload was consumed exactly — trailing garbage inside
    /// an intact (checksummed) section means a structure bug, surfaced as
    /// [`CheckpointError::Corrupt`].
    pub fn finish(&self, what: &str) -> Result<(), CheckpointError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CheckpointError::Corrupt(format!(
                "{} trailing byte(s) after {what}",
                self.remaining()
            )))
        }
    }
}

/// Crash-safe snapshot write: serialize via `emit` into memory, write to
/// `{path}.tmp`, `sync_all`, then atomically rename over `path`.
///
/// The contract every caller (CLI `--checkpoint`, server `SNAPSHOT`,
/// SIGTERM snapshot) relies on: **the final path either still holds its
/// previous contents or holds a complete, synced snapshot — never a
/// partial one.** An `emit` failure (e.g. [`CheckpointError::Unsupported`])
/// creates no file at all; an IO failure may leave `{path}.tmp` debris but
/// never touches `path`.
///
/// With the `faults` feature on, two failpoints model the crash classes:
/// `checkpoint/write` (process dies mid-write — half the bytes land in the
/// tmp file, which stays behind exactly as a real crash would leave it)
/// and `checkpoint/rename` (dies between sync and rename).
pub fn write_atomic(
    path: &str,
    emit: impl FnOnce(&mut Vec<u8>) -> Result<(), CheckpointError>,
) -> Result<(), CheckpointError> {
    let mut bytes = Vec::new();
    emit(&mut bytes)?;
    let tmp = format!("{path}.tmp");
    let mut file = std::fs::File::create(&tmp)?;
    #[cfg(feature = "faults")]
    if let Some(e) = cogra_faults::io_error("checkpoint/write") {
        // A crash mid-write: a prefix of the bytes lands in the tmp file
        // and nobody cleans up — the final path must survive this.
        let _ = file.write_all(&bytes[..bytes.len() / 2]);
        return Err(CheckpointError::Io(e));
    }
    file.write_all(&bytes)?;
    file.sync_all()?;
    drop(file);
    #[cfg(feature = "faults")]
    if let Some(e) = cogra_faults::io_error("checkpoint/rename") {
        return Err(CheckpointError::Io(e));
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Writes the snapshot header and checksummed sections to any
/// [`Write`] sink.
pub struct SnapshotWriter<W: Write> {
    w: W,
}

impl<W: Write> SnapshotWriter<W> {
    /// Write the magic + format version header.
    pub fn new(mut w: W) -> Result<SnapshotWriter<W>, CheckpointError> {
        w.write_all(&MAGIC)?;
        w.write_all(&FORMAT_VERSION.to_le_bytes())?;
        Ok(SnapshotWriter { w })
    }

    /// Append one named, checksummed section. The empty name is reserved
    /// for the end marker.
    pub fn section(&mut self, name: &str, payload: &[u8]) -> Result<(), CheckpointError> {
        debug_assert!(!name.is_empty(), "the empty name is the end marker");
        self.frame(name, payload)
    }

    fn frame(&mut self, name: &str, payload: &[u8]) -> Result<(), CheckpointError> {
        self.w.write_all(&(name.len() as u64).to_le_bytes())?;
        self.w.write_all(name.as_bytes())?;
        self.w.write_all(&(payload.len() as u64).to_le_bytes())?;
        self.w.write_all(&crc32(payload).to_le_bytes())?;
        self.w.write_all(payload)?;
        Ok(())
    }

    /// Write the end marker and flush. A snapshot without it reads back
    /// as [`CheckpointError::Truncated`].
    pub fn finish(mut self) -> Result<(), CheckpointError> {
        self.frame("", &[])?;
        self.w.flush()?;
        Ok(())
    }
}

/// Reads a snapshot back: verifies magic and version up front, then
/// yields `(name, payload)` sections with per-section checksum checks.
#[derive(Debug)]
pub struct SnapshotReader {
    data: Vec<u8>,
    pos: usize,
    done: bool,
}

impl SnapshotReader {
    /// Slurp and validate the header. Magic and version failures are
    /// detected here; section damage surfaces from
    /// [`SnapshotReader::next_section`].
    pub fn new(mut r: impl Read) -> Result<SnapshotReader, CheckpointError> {
        let mut data = Vec::new();
        r.read_to_end(&mut data)?;
        let head = &data[..data.len().min(MAGIC.len())];
        if head != &MAGIC[..head.len()] {
            return Err(CheckpointError::BadMagic);
        }
        if data.len() < MAGIC.len() + 4 {
            return Err(CheckpointError::Truncated);
        }
        let version = u32::from_le_bytes(data[MAGIC.len()..MAGIC.len() + 4].try_into().unwrap());
        if version > FORMAT_VERSION {
            return Err(CheckpointError::FutureVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        Ok(SnapshotReader {
            data,
            pos: MAGIC.len() + 4,
            done: false,
        })
    }

    fn take(&mut self, n: usize) -> Result<&[u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.data.len())
            .ok_or(CheckpointError::Truncated)?;
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// The next section, or `None` at the end marker. Running out of
    /// bytes before the marker is [`CheckpointError::Truncated`]; a
    /// payload that does not match its checksum is
    /// [`CheckpointError::Checksum`].
    pub fn next_section(&mut self) -> Result<Option<(String, Vec<u8>)>, CheckpointError> {
        if self.done {
            return Ok(None);
        }
        let name_len = u64::from_le_bytes(self.take(8)?.try_into().unwrap());
        let name_len = usize::try_from(name_len)
            .map_err(|_| CheckpointError::Corrupt("section name length overflow".into()))?;
        let name = String::from_utf8(self.take(name_len)?.to_vec())
            .map_err(|_| CheckpointError::Corrupt("section name is not UTF-8".into()))?;
        let payload_len = u64::from_le_bytes(self.take(8)?.try_into().unwrap());
        let payload_len = usize::try_from(payload_len)
            .map_err(|_| CheckpointError::Corrupt("section length overflow".into()))?;
        let stored = u32::from_le_bytes(self.take(4)?.try_into().unwrap());
        let payload = self.take(payload_len)?.to_vec();
        if crc32(&payload) != stored {
            return Err(CheckpointError::Checksum {
                section: if name.is_empty() {
                    "<end>".to_string()
                } else {
                    name
                },
            });
        }
        if name.is_empty() {
            self.done = true;
            return Ok(None);
        }
        Ok(Some((name, payload)))
    }

    /// The next section, required to carry `name`.
    pub fn expect(&mut self, name: &str) -> Result<Vec<u8>, CheckpointError> {
        match self.next_section()? {
            Some((found, payload)) if found == name => Ok(payload),
            Some((found, _)) => Err(CheckpointError::Corrupt(format!(
                "expected section `{name}`, found `{found}`"
            ))),
            None => Err(CheckpointError::Corrupt(format!(
                "expected section `{name}`, found end of snapshot"
            ))),
        }
    }

    /// Assert the end marker comes next — unknown trailing sections in a
    /// version-1 snapshot are structural corruption.
    pub fn finish(&mut self) -> Result<(), CheckpointError> {
        match self.next_section()? {
            None => Ok(()),
            Some((name, _)) => Err(CheckpointError::Corrupt(format!(
                "unexpected trailing section `{name}`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(sections: &[(&str, &[u8])]) -> Vec<u8> {
        let mut out = Vec::new();
        let mut w = SnapshotWriter::new(&mut out).unwrap();
        for (name, payload) in sections {
            w.section(name, payload).unwrap();
        }
        w.finish().unwrap();
        out
    }

    #[test]
    fn round_trips_sections_in_order() {
        let bytes = snapshot(&[("config", b"abc"), ("q0", b""), ("q1", &[0xFF; 100])]);
        let mut r = SnapshotReader::new(&bytes[..]).unwrap();
        assert_eq!(r.expect("config").unwrap(), b"abc");
        assert_eq!(r.expect("q0").unwrap(), b"");
        assert_eq!(r.expect("q1").unwrap(), vec![0xFF; 100]);
        r.finish().unwrap();
        assert!(matches!(r.next_section(), Ok(None)), "stays at end");
    }

    #[test]
    fn enc_dec_primitives_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.i64(-42);
        e.f64(f64::NAN);
        e.bool(true);
        e.usize(12345);
        e.opt_u64(None);
        e.opt_u64(Some(9));
        e.str("héllo");
        e.bytes(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -42);
        assert!(d.f64().unwrap().is_nan());
        assert!(d.bool().unwrap());
        assert_eq!(d.usize().unwrap(), 12345);
        assert_eq!(d.opt_u64().unwrap(), None);
        assert_eq!(d.opt_u64().unwrap(), Some(9));
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.bytes().unwrap(), &[1, 2, 3]);
        d.finish("primitives").unwrap();
        assert!(matches!(
            Dec::new(&bytes).finish("x"),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn dec_overrun_is_truncated() {
        let mut d = Dec::new(&[1, 2]);
        assert!(matches!(d.u64(), Err(CheckpointError::Truncated)));
    }

    #[test]
    fn bad_magic_is_typed() {
        assert!(matches!(
            SnapshotReader::new(&b"NOTASNAP rest"[..]),
            Err(CheckpointError::BadMagic)
        ));
        // A short foreign prefix is bad magic too, not "truncated".
        assert!(matches!(
            SnapshotReader::new(&b"XY"[..]),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn truncation_is_typed_everywhere() {
        let bytes = snapshot(&[("config", b"abcdef")]);
        // A matching-but-short header...
        assert!(matches!(
            SnapshotReader::new(&bytes[..6]),
            Err(CheckpointError::BadMagic | CheckpointError::Truncated)
        ));
        assert!(matches!(
            SnapshotReader::new(&bytes[..10]),
            Err(CheckpointError::Truncated)
        ));
        // ...and every cut inside the section stream (including losing
        // just the end marker) reads as Truncated.
        for cut in 12..bytes.len() {
            let mut r = SnapshotReader::new(&bytes[..cut]).unwrap();
            let outcome = (|| {
                let _ = r.expect("config")?;
                r.finish()
            })();
            assert!(
                matches!(outcome, Err(CheckpointError::Truncated)),
                "cut at {cut}: {outcome:?}"
            );
        }
    }

    #[test]
    fn future_version_is_typed() {
        let mut bytes = snapshot(&[]);
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        match SnapshotReader::new(&bytes[..]) {
            Err(CheckpointError::FutureVersion { found, supported }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected FutureVersion, got {other:?}"),
        }
    }

    #[test]
    fn payload_damage_names_the_section() {
        let bytes = snapshot(&[("config", b"abcdef"), ("q0", b"xyz")]);
        // Flip one byte inside the second section's payload (the last 3
        // bytes before the end marker's frame are q0's payload).
        let mut damaged = bytes.clone();
        let q0_payload = bytes.len() - (8 + 8 + 4) - 3; // end frame + 3 payload bytes
        damaged[q0_payload] ^= 0x01;
        let mut r = SnapshotReader::new(&damaged[..]).unwrap();
        assert_eq!(r.expect("config").unwrap(), b"abcdef");
        match r.next_section() {
            Err(CheckpointError::Checksum { section }) => assert_eq!(section, "q0"),
            other => panic!("expected Checksum, got {other:?}"),
        }
    }

    #[test]
    fn error_display_is_pinned() {
        // The CLI and the server both print these strings; the e2e suite
        // compares them byte-for-byte, so they are pinned here at the
        // source.
        assert_eq!(CheckpointError::Truncated.to_string(), "truncated snapshot");
        assert_eq!(
            CheckpointError::BadMagic.to_string(),
            "not a cogra snapshot (bad magic)"
        );
        assert_eq!(
            CheckpointError::FutureVersion {
                found: 9,
                supported: 1
            }
            .to_string(),
            "snapshot format version 9 is newer than supported version 1"
        );
        assert_eq!(
            CheckpointError::Checksum {
                section: "q0".into()
            }
            .to_string(),
            "checksum mismatch in section `q0`"
        );
        assert_eq!(
            CheckpointError::Corrupt("x".into()).to_string(),
            "corrupt snapshot: x"
        );
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    /// A scratch directory that cleans up after itself.
    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(name: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("cogra-ckpt-{name}-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn path(&self, file: &str) -> String {
            self.0.join(file).to_string_lossy().into_owned()
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn write_atomic_round_trips_and_leaves_no_tmp() {
        let dir = TempDir::new("atomic");
        let path = dir.path("snap.cogra");
        write_atomic(&path, |out| {
            let mut w = SnapshotWriter::new(out)?;
            w.section("config", b"abc")?;
            w.finish()
        })
        .unwrap();
        assert!(!std::path::Path::new(&format!("{path}.tmp")).exists());
        let mut r = SnapshotReader::new(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(r.expect("config").unwrap(), b"abc");
        r.finish().unwrap();
    }

    #[test]
    fn write_atomic_emit_failure_creates_no_file() {
        let dir = TempDir::new("emit-fail");
        let path = dir.path("snap.cogra");
        let err = write_atomic(&path, |_| {
            Err(CheckpointError::Unsupported("cannot snapshot".into()))
        })
        .unwrap_err();
        assert!(matches!(err, CheckpointError::Unsupported(_)));
        assert!(!std::path::Path::new(&path).exists());
        assert!(!std::path::Path::new(&format!("{path}.tmp")).exists());
    }

    #[test]
    fn write_atomic_io_failure_never_touches_final_path() {
        let dir = TempDir::new("io-fail");
        // The tmp file lands in a directory that does not exist, so
        // File::create fails — and the final path must not appear.
        let path = dir.path("missing-dir/snap.cogra");
        let err = write_atomic(&path, |out| {
            let w = SnapshotWriter::new(out)?;
            w.finish()
        })
        .unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
        assert!(!std::path::Path::new(&path).exists());
    }

    #[test]
    fn short_write_surfaces_typed_io_error() {
        // The disk-full stand-in: a writer that dies after 4 bytes makes
        // every snapshot emission a typed CheckpointError::Io, and the
        // bytes that did land can never parse as a complete snapshot.
        let mut sink = Vec::new();
        let result = (|| {
            let w = cogra_faults::FaultyWriter::new(&mut sink, 4);
            let mut w = SnapshotWriter::new(w)?;
            w.section("config", b"abc")?;
            w.finish()
        })();
        match result {
            Err(CheckpointError::Io(e)) => {
                assert_eq!(e.to_string(), "injected write failure")
            }
            other => panic!("expected Io, got {other:?}"),
        }
        assert!(matches!(
            SnapshotReader::new(&sink[..]),
            Err(CheckpointError::BadMagic | CheckpointError::Truncated)
        ));
    }
}
