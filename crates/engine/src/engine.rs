//! The [`TrendEngine`] abstraction every aggregation engine implements —
//! COGRA itself and all four baselines — so that the experiment harness and
//! the correctness tests treat them uniformly.

use crate::intern::RunStats;
use crate::output::WindowResult;
use cogra_checkpoint::CheckpointError;
use cogra_events::{Event, Timestamp};

/// A streaming event trend aggregation engine.
///
/// Contract:
/// * events are fed in non-decreasing time order ([`TrendEngine::process`]);
/// * a window's result is final once the engine has seen an event at or
///   past the window's end; [`TrendEngine::drain_into`] emits (and forgets)
///   all results final at the current watermark;
/// * [`TrendEngine::finish_into`] closes every remaining window.
///
/// The push-based `*_into` methods are the primitives — implementations
/// hand each result to the sink as it is finalized, without building an
/// intermediate `Vec` on the per-event hot path. The collecting
/// [`TrendEngine::drain`] / [`TrendEngine::finish`] are thin compatibility
/// wrappers for callers that want owned results.
pub trait TrendEngine {
    /// Ingest one event.
    fn process(&mut self, event: &Event);

    /// Emit results for all windows closed at the current watermark,
    /// pushing each into `out`.
    fn drain_into(&mut self, out: &mut dyn FnMut(WindowResult));

    /// End of stream: emit results for every window still open, pushing
    /// each into `out`.
    fn finish_into(&mut self, out: &mut dyn FnMut(WindowResult));

    /// Collecting wrapper over [`TrendEngine::drain_into`].
    fn drain(&mut self) -> Vec<WindowResult> {
        let mut results = Vec::new();
        self.drain_into(&mut |r| results.push(r));
        results
    }

    /// Collecting wrapper over [`TrendEngine::finish_into`].
    fn finish(&mut self) -> Vec<WindowResult> {
        let mut results = Vec::new();
        self.finish_into(&mut |r| results.push(r));
        results
    }

    /// Current logical memory footprint in bytes — aggregates, stored
    /// events, stacks, pointers, graphs, depending on the engine. This is
    /// the "peak memory" metric of §9.1, measured exactly instead of via
    /// process RSS.
    fn memory_bytes(&self) -> usize;

    /// Additional internal memory peak not visible to periodic sampling
    /// (e.g. trends materialized while a window is being finalized).
    fn peak_hint(&self) -> usize {
        0
    }

    /// Engine name for reports.
    fn name(&self) -> &'static str;

    /// The latest event time seen.
    fn watermark(&self) -> Timestamp;

    /// Advance the watermark without an event, promising that every event
    /// still to come has time `>= to`. Used by sharded execution: a
    /// coordinator broadcasts global stream progress so a shard whose
    /// sub-stream went quiet can still finalize windows that closed
    /// globally. Times already passed are ignored; the default is a no-op
    /// for engines that only ever see the whole stream.
    fn advance_watermark(&mut self, to: Timestamp) {
        let _ = to;
    }

    /// Routing hot-path statistics: interner probes vs. first-seen key
    /// materializations ([`RunStats`]). Engines built on the router
    /// report real counters; the default is all-zero for engines without
    /// an interned routing path.
    fn run_stats(&self) -> RunStats {
        RunStats::default()
    }

    /// Sticky partition-key overflow: `Some(limit)` once any event was
    /// dropped because materializing its first-seen key would exceed the
    /// configured `EngineConfig::key_limit`. Engines built on the router
    /// report the real flag; the default is `None` for engines without an
    /// interned routing path.
    fn key_overflow(&self) -> Option<u32> {
        None
    }

    /// Serialize the engine's full mutable state into a checkpoint
    /// section payload. Engines built on the router override this; the
    /// default refuses, so an engine without a restore path can never
    /// produce a snapshot it cannot honor.
    fn save_state(&self, enc: &mut cogra_checkpoint::Enc) -> Result<(), CheckpointError> {
        let _ = enc;
        Err(CheckpointError::Unsupported(format!(
            "engine `{}` does not support checkpointing",
            self.name()
        )))
    }
}

/// Run an engine over a full stream, tracking the peak of
/// [`TrendEngine::memory_bytes`], and return `(results, peak_bytes)`.
///
/// Memory is sampled after every `sample_every` events (1 = every event;
/// larger values reduce measurement overhead on long streams).
pub fn run_to_completion(
    engine: &mut dyn TrendEngine,
    events: &[Event],
    sample_every: usize,
) -> (Vec<WindowResult>, usize) {
    let stride = sample_every.max(1);
    let mut peak = engine.memory_bytes();
    let mut results = Vec::new();
    let mut push = |r| results.push(r);
    for (i, e) in events.iter().enumerate() {
        engine.process(e);
        engine.drain_into(&mut push);
        if i % stride == 0 {
            peak = peak.max(engine.memory_bytes());
        }
    }
    peak = peak.max(engine.memory_bytes());
    engine.finish_into(&mut push);
    peak = peak.max(engine.peak_hint());
    WindowResult::sort(&mut results);
    (results, peak)
}
