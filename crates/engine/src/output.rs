//! Window results emitted by the engines.

use crate::agg::AggValue;
use cogra_events::{Value, WindowId};

/// Grouping key of a result: the values of the `GROUP-BY` attributes.
pub type GroupKey = Vec<Value>;

/// One aggregation result: window × group × `RETURN` aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowResult {
    /// The window instance this result finalizes.
    pub window: WindowId,
    /// Values of the grouping attributes.
    pub group: GroupKey,
    /// One value per aggregate in the `RETURN` clause.
    pub values: Vec<AggValue>,
}

impl WindowResult {
    /// Sort results deterministically by (window, group) — used by every
    /// engine so that outputs are directly comparable in tests.
    pub fn sort(results: &mut [WindowResult]) {
        results.sort_by(|a, b| a.window.cmp(&b.window).then_with(|| a.group.cmp(&b.group)));
    }
}

impl std::fmt::Display for WindowResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [", self.window)?;
        for (i, g) in self.group.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{g}")?;
        }
        write!(f, "] →")?;
        for v in &self.values {
            write!(f, " {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_orders_by_window_then_group() {
        let mut rs = vec![
            WindowResult {
                window: WindowId(2),
                group: vec![Value::Int(1)],
                values: vec![],
            },
            WindowResult {
                window: WindowId(1),
                group: vec![Value::Int(9)],
                values: vec![],
            },
            WindowResult {
                window: WindowId(1),
                group: vec![Value::Int(3)],
                values: vec![],
            },
        ];
        WindowResult::sort(&mut rs);
        assert_eq!(rs[0].window, WindowId(1));
        assert_eq!(rs[0].group, vec![Value::Int(3)]);
        assert_eq!(rs[1].group, vec![Value::Int(9)]);
        assert_eq!(rs[2].window, WindowId(2));
    }

    #[test]
    fn display_is_compact() {
        let r = WindowResult {
            window: WindowId(0),
            group: vec![Value::str("x")],
            values: vec![AggValue::Count(3)],
        };
        assert_eq!(r.to_string(), "w0 [x] → 3");
    }
}
