//! # cogra-engine
//!
//! The engine substrate shared by the COGRA executor (`cogra-core`) and
//! the baseline engines (`cogra-baselines`):
//!
//! * [`agg`] — incremental aggregate cells implementing the Table 8
//!   recurrences for COUNT(*)/COUNT(E)/MIN/MAX/SUM/AVG;
//! * [`engine`] — the [`TrendEngine`] trait every aggregation engine
//!   implements, with push-based ([`TrendEngine::drain_into`]) and
//!   collecting ([`TrendEngine::drain`]) result emission;
//! * [`intern`] — the [`KeyInterner`] mapping partition keys to dense
//!   [`PartitionId`]s with an allocation-free hash-once probe, and the
//!   [`RunStats`] hot-path counters;
//! * [`output`] — [`WindowResult`], the unit of engine output;
//! * [`router`] — the generic partition/window [`Router`] turning any
//!   per-window algorithm into a full engine (§7 of the paper), with
//!   interned keys, dense partition storage and ring-buffer window
//!   stores on the per-event path;
//! * [`runtime`] — precomputed per-disjunct routing tables and the
//!   [`runtime::EngineConfig`] knobs.
//!
//! Splitting this substrate out of `cogra-core` lets `cogra-core` host
//! the [`Session`]/`EngineKind` roster over *all* engines (it depends on
//! `cogra-baselines`, which depends only on this crate) without a
//! dependency cycle.
//!
//! [`Session`]: https://docs.rs/cogra-core

#![warn(missing_docs)]

pub mod agg;
pub mod engine;
pub mod intern;
pub mod output;
pub mod router;
pub mod runtime;

pub use agg::{AggLayout, AggValue, Cell, Feed, Output, SlotFunc, Val};
pub use engine::{run_to_completion, TrendEngine};
pub use intern::{KeyInterner, KeyOverflow, PartitionId, RunStats};
pub use output::{GroupKey, WindowResult};
pub use router::{entry_group_hash, EventBinds, Router, RouterState, WindowAlgo};
pub use runtime::{DisjunctRuntime, EngineConfig, QueryRuntime};
