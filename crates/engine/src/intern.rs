//! Partition-key interning: the zero-allocation half of the routing hot
//! path.
//!
//! The paper's constant-time-per-event claim (§3, §7) only holds if the
//! per-event bookkeeping is constant too. The seed router paid for a
//! fresh `Vec<Value>` *per event* just to probe `HashMap<GroupKey, _>`,
//! plus a SipHash over that vector. [`KeyInterner`] removes both costs:
//!
//! * the event's partition attributes are hashed **in place** (the caller
//!   folds each [`Value`] into an [`fxhash::FxHasher`] straight off the
//!   event, no scratch vector);
//! * the hash probes a bucket of candidate [`PartitionId`]s; candidates
//!   are confirmed by comparing the event's attributes against the
//!   interned key **element-wise**, again without materializing;
//! * only a **first-seen** key allocates: the caller's `materialize`
//!   closure builds the one `Vec<Value>` that lives for the interner's
//!   lifetime, and the key gets the next dense id.
//!
//! Dense ids are the second half of the bargain: `PartitionId(u32)`
//! indexes a plain `Vec` of partition states, so the router's per-event
//! map lookup becomes an array index. Ids are stable for the interner's
//! lifetime — a partition that goes quiet and returns maps back to the
//! same id, which also keeps results reproducible across drain cadences.
//!
//! [`RunStats`] counts probes and first-seen materializations; the
//! difference is the number of events routed with **zero** heap
//! allocations, surfaced all the way up through `SessionRun` so tests
//! (and users) can assert the hot path stays allocation-free.

use crate::output::GroupKey;
use cogra_events::Value;
use fxhash::{FxHashMap, FxHasher};
use std::hash::{Hash, Hasher};

/// Dense identifier of an interned partition key. Ids are handed out in
/// first-seen order, so they index contiguous `Vec` storage directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionId(pub u32);

impl PartitionId {
    /// The id as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Routing hot-path statistics, aggregated across engines and shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Interner probes — one per event that reached partition routing.
    pub key_probes: u64,
    /// First-seen partition keys materialized. The *only* probes that
    /// heap-allocate; `key_probes - key_allocs` events were routed with
    /// zero allocations.
    pub key_allocs: u64,
}

impl RunStats {
    /// Fold another engine's/shard's counters into this one.
    pub fn merge(&mut self, other: RunStats) {
        self.key_probes += other.key_probes;
        self.key_allocs += other.key_allocs;
    }

    /// Serialize both counters.
    pub fn save(&self, enc: &mut cogra_checkpoint::Enc) {
        enc.u64(self.key_probes);
        enc.u64(self.key_allocs);
    }

    /// Inverse of [`RunStats::save`].
    pub fn load(
        dec: &mut cogra_checkpoint::Dec,
    ) -> Result<RunStats, cogra_checkpoint::CheckpointError> {
        Ok(RunStats {
            key_probes: dec.u64()?,
            key_allocs: dec.u64()?,
        })
    }
}

/// The interner refused to materialize another key: the number of
/// distinct partition keys reached the configured ceiling (by default
/// `u32::MAX`, the dense-id address space itself). Surfaced as a typed
/// ingest error instead of a worker-thread panic — unbounded key churn is
/// a data problem, not a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyOverflow {
    /// The limit that was hit.
    pub limit: u32,
}

/// Interner from partition keys to dense [`PartitionId`]s.
///
/// Generic over nothing but driven by closures, so the caller decides how
/// to compare a candidate against the (never materialized) probe key and
/// how to build the key on first sight — see [`KeyInterner::intern_with`].
#[derive(Debug)]
pub struct KeyInterner {
    /// `keys[id]` — the interned key. Never shrinks: id stability is part
    /// of the contract.
    keys: Vec<GroupKey>,
    /// hash → ids of the keys with that hash (almost always exactly one;
    /// collisions are resolved by the caller's equality check).
    buckets: FxHashMap<u64, Vec<u32>>,
    stats: RunStats,
    /// Maximum number of distinct keys this interner will hold. The
    /// default is the full `u32` id space; sessions lower it via
    /// `EngineConfig::key_limit` to turn unbounded key churn into a typed
    /// error instead of unbounded memory growth.
    limit: u32,
}

impl Default for KeyInterner {
    fn default() -> KeyInterner {
        KeyInterner {
            keys: Vec::new(),
            buckets: FxHashMap::default(),
            stats: RunStats::default(),
            limit: u32::MAX,
        }
    }
}

/// Fold a sequence of values into an [`FxHasher`], exactly as
/// [`KeyInterner`] expects probe hashes to be computed. Hashing the
/// values of a materialized `GroupKey` and hashing the same values
/// straight off an event produce the same hash — that equivalence is what
/// makes the in-place probe sound.
#[inline]
pub fn hash_values<'a>(values: impl Iterator<Item = &'a Value>) -> u64 {
    let mut h = FxHasher::default();
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}

impl KeyInterner {
    /// An empty interner.
    pub fn new() -> KeyInterner {
        KeyInterner::default()
    }

    /// Cap the number of distinct keys at `limit`. Existing keys are
    /// unaffected (ids are stable); once `len()` reaches the limit, every
    /// first-seen probe returns [`KeyOverflow`].
    pub fn set_limit(&mut self, limit: u32) {
        self.limit = limit;
    }

    /// The configured distinct-key ceiling.
    #[inline]
    pub fn limit(&self) -> u32 {
        self.limit
    }

    /// Intern the key with the given `hash`. `matches` decides whether a
    /// stored candidate equals the probe key (called for each candidate in
    /// the hash's bucket — usually at most one); `materialize` builds the
    /// owned key if, and only if, it was never seen before.
    ///
    /// `hash` must be [`hash_values`] over the same value sequence that
    /// `matches` compares and `materialize` produces.
    ///
    /// A first-seen key past the configured limit is refused with
    /// [`KeyOverflow`]; re-probes of already-interned keys always succeed.
    pub fn intern_with(
        &mut self,
        hash: u64,
        mut matches: impl FnMut(&[Value]) -> bool,
        materialize: impl FnOnce() -> GroupKey,
    ) -> Result<PartitionId, KeyOverflow> {
        self.stats.key_probes += 1;
        let bucket = self.buckets.entry(hash).or_default();
        for &id in bucket.iter() {
            if matches(&self.keys[id as usize]) {
                return Ok(PartitionId(id));
            }
        }
        // First sight: materialize and assign the next dense id — unless
        // the key population hit the ceiling. (`len() < limit <= u32::MAX`
        // also guarantees the id fits in a `u32` without a checked cast.)
        if self.keys.len() >= self.limit as usize {
            return Err(KeyOverflow { limit: self.limit });
        }
        self.stats.key_allocs += 1;
        let id = self.keys.len() as u32;
        let key = materialize();
        debug_assert!(matches(&key), "materialized key must match its own probe");
        self.keys.push(key);
        bucket.push(id);
        Ok(PartitionId(id))
    }

    /// The interned key of `id`.
    #[inline]
    pub fn resolve(&self, id: PartitionId) -> &[Value] {
        &self.keys[id.index()]
    }

    /// Number of distinct keys interned so far (also the next id).
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no key has been interned yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Probe/allocation counters since construction.
    #[inline]
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// All interned keys in dense-id order.
    #[inline]
    pub fn keys(&self) -> &[GroupKey] {
        &self.keys
    }

    /// Rebuild an interner from saved keys (dense-id order) and counters.
    /// Buckets are recomputed with [`hash_values`], so ids and probe
    /// behavior match an interner that saw the same keys first-hand —
    /// this is how a restored router re-interns a (possibly compacted)
    /// key set. A key set too large for the dense `u32` id space is
    /// refused instead of panicking (it cannot come from a well-formed
    /// snapshot, so it is corruption, not load).
    pub fn from_parts(keys: Vec<GroupKey>, stats: RunStats) -> Result<KeyInterner, KeyOverflow> {
        if u32::try_from(keys.len()).is_err() {
            return Err(KeyOverflow { limit: u32::MAX });
        }
        let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for (id, key) in keys.iter().enumerate() {
            buckets
                .entry(hash_values(key.iter()))
                .or_default()
                .push(id as u32);
        }
        Ok(KeyInterner {
            keys,
            buckets,
            stats,
            limit: u32::MAX,
        })
    }

    /// Logical memory footprint: interned key values plus table overhead.
    /// Keys are retained for the interner's lifetime (id stability), so
    /// this grows with the number of *distinct* keys, not with the stream.
    pub fn memory_bytes(&self) -> usize {
        let keys: usize = self
            .keys
            .iter()
            .map(|k| {
                std::mem::size_of::<GroupKey>() + k.iter().map(Value::memory_bytes).sum::<usize>()
            })
            .sum();
        let table: usize = self
            .buckets
            .values()
            .map(|ids| std::mem::size_of::<(u64, Vec<u32>)>() + std::mem::size_of_val(&ids[..]))
            .sum();
        keys + table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vals: &[i64]) -> GroupKey {
        vals.iter().copied().map(Value::Int).collect()
    }

    fn intern(interner: &mut KeyInterner, vals: &[i64]) -> PartitionId {
        let k = key(vals);
        let hash = hash_values(k.iter());
        interner
            .intern_with(hash, |cand| cand == &k[..], || k.clone())
            .expect("under the key limit")
    }

    #[test]
    fn dense_ids_in_first_seen_order() {
        let mut i = KeyInterner::new();
        assert_eq!(intern(&mut i, &[7]), PartitionId(0));
        assert_eq!(intern(&mut i, &[9]), PartitionId(1));
        assert_eq!(intern(&mut i, &[7]), PartitionId(0), "id is stable");
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(PartitionId(1)), &key(&[9])[..]);
    }

    #[test]
    fn collision_probe_separates_distinct_keys() {
        // Force both keys into one bucket with an identical (fake) hash:
        // the element-wise equality check must keep them apart.
        let mut i = KeyInterner::new();
        let a = key(&[1, 2]);
        let b = key(&[2, 1]);
        let ia = i.intern_with(42, |c| c == &a[..], || a.clone());
        let ib = i.intern_with(42, |c| c == &b[..], || b.clone());
        assert_ne!(ia, ib);
        assert_eq!(i.intern_with(42, |c| c == &a[..], || a.clone()), ia);
        assert_eq!(i.intern_with(42, |c| c == &b[..], || b.clone()), ib);
        assert_eq!(i.len(), 2);
        let s = i.stats();
        assert_eq!(s.key_probes, 4);
        assert_eq!(s.key_allocs, 2, "re-probes allocate nothing");
    }

    #[test]
    fn stats_count_probes_and_allocs() {
        let mut i = KeyInterner::new();
        for _ in 0..5 {
            intern(&mut i, &[3]);
        }
        intern(&mut i, &[4]);
        let s = i.stats();
        assert_eq!(s.key_probes, 6);
        assert_eq!(s.key_allocs, 2);
        let mut total = RunStats::default();
        total.merge(s);
        total.merge(s);
        assert_eq!(total.key_probes, 12);
    }

    #[test]
    fn memory_accounting_grows_with_distinct_keys_only() {
        let mut i = KeyInterner::new();
        intern(&mut i, &[1]);
        let one = i.memory_bytes();
        for _ in 0..100 {
            intern(&mut i, &[1]);
        }
        assert_eq!(i.memory_bytes(), one, "re-probes allocate nothing");
        intern(&mut i, &[2]);
        assert!(i.memory_bytes() > one);
    }

    #[test]
    fn key_limit_refuses_fresh_keys_but_keeps_serving_old_ones() {
        // Regression for the former `expect("more than u32::MAX
        // partitions")` panic: past the ceiling the interner returns a
        // typed error instead, and everything already interned still
        // routes.
        let mut i = KeyInterner::new();
        i.set_limit(2);
        assert_eq!(intern(&mut i, &[1]), PartitionId(0));
        assert_eq!(intern(&mut i, &[2]), PartitionId(1));
        let k = key(&[3]);
        let overflow = i
            .intern_with(hash_values(k.iter()), |c| c == &k[..], || k.clone())
            .expect_err("third distinct key is over the limit");
        assert_eq!(overflow, KeyOverflow { limit: 2 });
        // Old keys keep resolving to their stable ids…
        assert_eq!(intern(&mut i, &[1]), PartitionId(0));
        assert_eq!(intern(&mut i, &[2]), PartitionId(1));
        assert_eq!(i.len(), 2);
        // …and the refused probe counted as a probe, not an allocation.
        let s = i.stats();
        assert_eq!(s.key_probes, 5);
        assert_eq!(s.key_allocs, 2);
    }

    #[test]
    fn in_place_hash_equals_materialized_hash() {
        let k = key(&[1, -9, 42]);
        let h1 = hash_values(k.iter());
        // "In place": hash the same logical values from another container.
        let vals = [Value::Int(1), Value::Int(-9), Value::Int(42)];
        let h2 = hash_values(vals.iter());
        assert_eq!(h1, h2);
    }
}
