//! Incremental aggregate cells (Table 8).
//!
//! Every aggregator — type-, mixed- and pattern-grained, and the baseline
//! engines — maintains the same propagated state per "slot of aggregation"
//! (an event type, a stored event, or the last matched event): the trend
//! count plus one [`Val`] per aggregation slot. Table 8's recurrences all
//! decompose into two primitives:
//!
//! * [`Cell::merge`] — fold a predecessor's cell into a new event's cell
//!   (the `Σ E'.count`-style terms);
//! * [`Cell::contribute`] — add the new event's own contribution
//!   (`+1` for a start event, `e.attr · e.count` for SUM, `e.attr` for
//!   MIN/MAX, `e.count` for COUNT(E)).
//!
//! `AVG(E.attr)` is algebraic: the [`AggLayout`] expands it into a SUM slot
//! and a COUNT slot and divides at output time (§2.3).
//!
//! Trend counts use wrapping `u64` arithmetic: under skip-till-any-match
//! the count is exponential in the number of events, so any fixed-width
//! representation overflows on large windows; all engines in this workspace
//! wrap identically, keeping them mutually comparable (and exact whenever
//! the true count fits in 64 bits).

use cogra_events::{AttrId, Event};
use cogra_query::{AggFunc, CompiledDisjunct, StateId};

/// Internal aggregation slot function (AVG is expanded before this level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotFunc {
    /// COUNT(E): number of occurrences of a variable across trends.
    CountVar,
    /// SUM(E.attr).
    Sum,
    /// MIN(E.attr).
    Min,
    /// MAX(E.attr).
    Max,
}

/// A slot value in a [`Cell`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Val {
    /// Occurrence count (wrapping, see module docs).
    Cnt(u64),
    /// Running sum (counts-weighted).
    Sum(f64),
    /// Running minimum; `None` until a target event contributes.
    Min(Option<f64>),
    /// Running maximum.
    Max(Option<f64>),
}

impl Val {
    /// The aggregation identity for a slot function.
    pub fn zero(func: SlotFunc) -> Val {
        match func {
            SlotFunc::CountVar => Val::Cnt(0),
            SlotFunc::Sum => Val::Sum(0.0),
            SlotFunc::Min => Val::Min(None),
            SlotFunc::Max => Val::Max(None),
        }
    }

    /// Fold another value of the same slot into this one.
    #[inline]
    pub fn merge(&mut self, other: &Val) {
        match (self, other) {
            (Val::Cnt(a), Val::Cnt(b)) => *a = a.wrapping_add(*b),
            (Val::Sum(a), Val::Sum(b)) => *a += *b,
            (Val::Min(a), Val::Min(b)) => *a = opt_min(*a, *b),
            (Val::Max(a), Val::Max(b)) => *a = opt_max(*a, *b),
            _ => unreachable!("mismatched slot kinds"),
        }
    }
}

#[inline]
fn opt_min(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

#[inline]
fn opt_max(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// How one automaton state feeds one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feed {
    /// The state does not feed this slot.
    No,
    /// The state feeds an occurrence count (COUNT(E)).
    Unit,
    /// The state feeds an attribute value (SUM/MIN/MAX).
    Attr(AttrId),
}

/// How one `RETURN` aggregate is produced from slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Output {
    /// `COUNT(*)` — the cell's trend count.
    CountStar,
    /// Value of one slot.
    Slot(usize),
    /// `AVG` — `slots[sum] / slots[cnt]`.
    Ratio {
        /// SUM slot index.
        sum: usize,
        /// COUNT slot index.
        cnt: usize,
    },
}

/// The slot/output layout shared by every disjunct of a query.
#[derive(Debug, Clone)]
pub struct AggLayout {
    /// Slot functions, in slot order.
    pub slots: Vec<SlotFunc>,
    /// One output per `RETURN` aggregate.
    pub outputs: Vec<Output>,
}

/// Per-disjunct feed table: `feeds[state][slot]`.
#[derive(Debug, Clone)]
pub struct DisjunctFeeds {
    feeds: Vec<Vec<Feed>>,
}

impl DisjunctFeeds {
    /// Feeds of one state, indexed by slot.
    #[inline]
    pub fn of(&self, state: StateId) -> &[Feed] {
        &self.feeds[state.index()]
    }
}

impl AggLayout {
    /// Build the layout from a compiled disjunct's aggregate list. All
    /// disjuncts of a query share the same `RETURN` clause, hence the same
    /// layout; only the feed table differs.
    pub fn build(disjunct: &CompiledDisjunct) -> (AggLayout, DisjunctFeeds) {
        let mut slots = Vec::new();
        let mut outputs = Vec::new();
        let n_states = disjunct.automaton.num_states();
        let mut feeds: Vec<Vec<Feed>> = vec![Vec::new(); n_states];

        let add_slot = |func: SlotFunc,
                        targets: &[(StateId, Option<AttrId>)],
                        slots: &mut Vec<SlotFunc>,
                        feeds: &mut Vec<Vec<Feed>>|
         -> usize {
            let idx = slots.len();
            slots.push(func);
            for row in feeds.iter_mut() {
                row.push(Feed::No);
            }
            for (state, attr) in targets {
                feeds[state.index()][idx] = match (func, attr) {
                    (SlotFunc::CountVar, _) => Feed::Unit,
                    (_, Some(a)) => Feed::Attr(*a),
                    (_, None) => unreachable!("attribute slot without attribute"),
                };
            }
            idx
        };

        for agg in &disjunct.aggs {
            match agg.func {
                AggFunc::CountStar => outputs.push(Output::CountStar),
                AggFunc::CountVar => {
                    let i = add_slot(SlotFunc::CountVar, &agg.targets, &mut slots, &mut feeds);
                    outputs.push(Output::Slot(i));
                }
                AggFunc::Min => {
                    let i = add_slot(SlotFunc::Min, &agg.targets, &mut slots, &mut feeds);
                    outputs.push(Output::Slot(i));
                }
                AggFunc::Max => {
                    let i = add_slot(SlotFunc::Max, &agg.targets, &mut slots, &mut feeds);
                    outputs.push(Output::Slot(i));
                }
                AggFunc::Sum => {
                    let i = add_slot(SlotFunc::Sum, &agg.targets, &mut slots, &mut feeds);
                    outputs.push(Output::Slot(i));
                }
                AggFunc::Avg => {
                    let sum = add_slot(SlotFunc::Sum, &agg.targets, &mut slots, &mut feeds);
                    let unit_targets: Vec<(StateId, Option<AttrId>)> =
                        agg.targets.iter().map(|(s, _)| (*s, None)).collect();
                    let cnt = add_slot(SlotFunc::CountVar, &unit_targets, &mut slots, &mut feeds);
                    outputs.push(Output::Ratio { sum, cnt });
                }
            }
        }

        (AggLayout { slots, outputs }, DisjunctFeeds { feeds })
    }

    /// Feed table for a *different* disjunct sharing this layout.
    pub fn feeds_for(&self, disjunct: &CompiledDisjunct) -> DisjunctFeeds {
        let (layout, feeds) = AggLayout::build(disjunct);
        debug_assert_eq!(layout.slots, self.slots, "disjunct layouts must agree");
        feeds
    }

    /// Number of slots.
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// An all-identity cell for this layout.
    pub fn zero_cell(&self) -> Cell {
        Cell {
            count: 0,
            live: false,
            vals: self.slots.iter().map(|f| Val::zero(*f)).collect(),
        }
    }
}

/// Propagated aggregation state: the trend count plus one value per slot.
///
/// `live` tracks *logical* emptiness separately from the wrapping `count`:
/// under skip-till-any-match the exact count is a power of two per event
/// (each event doubles the trend set), so `count % 2^64` hits zero while
/// trends very much exist. Every "does any partial trend end here?"
/// decision — storing a GRETA node, keeping a pending type-cell update,
/// emitting a window result — must use [`Cell::is_zero`], never
/// `count == 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Number of (partial) trends this cell accounts for (wrapping u64).
    pub count: u64,
    /// Whether any trend at all is accounted for (exact, wrap-proof).
    pub live: bool,
    /// Slot values, aligned with [`AggLayout::slots`].
    pub vals: Vec<Val>,
}

impl Cell {
    /// Whether the cell carries no trends (exact — see the `live` field).
    #[inline]
    pub fn is_zero(&self) -> bool {
        !self.live
    }

    /// Begin one new trend at this cell: the `+1 if E = start(P)` of
    /// Theorems 4.1/5.1/6.2.
    #[inline]
    pub fn start_trend(&mut self) {
        self.count = self.count.wrapping_add(1);
        self.live = true;
    }

    /// Reset to the aggregation identity in place (negation shadow resets,
    /// contiguous-semantics invalidation).
    pub fn reset(&mut self) {
        self.count = 0;
        self.live = false;
        for v in &mut self.vals {
            *v = match v {
                Val::Cnt(_) => Val::Cnt(0),
                Val::Sum(_) => Val::Sum(0.0),
                Val::Min(_) => Val::Min(None),
                Val::Max(_) => Val::Max(None),
            };
        }
    }

    /// Fold `other` into `self` (predecessor propagation / cross-partition
    /// combination — both are the same monoid operation).
    pub fn merge(&mut self, other: &Cell) {
        self.count = self.count.wrapping_add(other.count);
        self.live |= other.live;
        for (a, b) in self.vals.iter_mut().zip(&other.vals) {
            a.merge(b);
        }
    }

    /// Add the event's own contribution, after its predecessors were
    /// merged and the start-of-trend `+1` applied to `count` (Table 8):
    /// COUNT slots gain `e.count`, SUM slots gain `attr · e.count`,
    /// MIN/MAX slots include `attr`.
    pub fn contribute(&mut self, feeds: &[Feed], event: &Event) {
        if !self.live {
            // No partial trend ends at this event, so no finished trend
            // will ever contain it: its attribute values must not leak
            // into MIN/MAX (COUNT/SUM contributions would be zero anyway).
            return;
        }
        for (val, feed) in self.vals.iter_mut().zip(feeds) {
            match (val, feed) {
                (_, Feed::No) => {}
                (Val::Cnt(c), Feed::Unit) => *c = c.wrapping_add(self.count),
                (Val::Sum(s), Feed::Attr(a)) => {
                    let x = event.attr(*a).as_f64().unwrap_or(0.0);
                    *s += x * self.count as f64;
                }
                (Val::Min(m), Feed::Attr(a)) => {
                    *m = opt_min(*m, event.attr(*a).as_f64());
                }
                (Val::Max(m), Feed::Attr(a)) => {
                    *m = opt_max(*m, event.attr(*a).as_f64());
                }
                (v, f) => unreachable!("feed {f:?} incompatible with slot {v:?}"),
            }
        }
    }

    /// Logical size for memory accounting.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Cell>() + self.vals.len() * std::mem::size_of::<Val>()
    }

    /// Render the outputs of this cell.
    pub fn outputs(&self, layout: &AggLayout) -> Vec<AggValue> {
        layout
            .outputs
            .iter()
            .map(|o| match o {
                Output::CountStar => AggValue::Count(self.count),
                Output::Slot(i) => match self.vals[*i] {
                    Val::Cnt(c) => AggValue::Count(c),
                    Val::Sum(s) => AggValue::Float(s),
                    Val::Min(m) | Val::Max(m) => m.map_or(AggValue::Null, AggValue::Float),
                },
                Output::Ratio { sum, cnt } => {
                    let (Val::Sum(s), Val::Cnt(c)) = (self.vals[*sum], self.vals[*cnt]) else {
                        unreachable!("ratio over non sum/cnt slots")
                    };
                    if c == 0 {
                        AggValue::Null
                    } else {
                        AggValue::Float(s / c as f64)
                    }
                }
            })
            .collect()
    }
}

fn save_opt_f64(v: Option<f64>, enc: &mut cogra_checkpoint::Enc) {
    match v {
        Some(x) => {
            enc.u8(1);
            enc.f64(x);
        }
        None => enc.u8(0),
    }
}

fn load_opt_f64(
    dec: &mut cogra_checkpoint::Dec,
) -> Result<Option<f64>, cogra_checkpoint::CheckpointError> {
    match dec.u8()? {
        0 => Ok(None),
        1 => Ok(Some(dec.f64()?)),
        t => Err(cogra_checkpoint::CheckpointError::Corrupt(format!(
            "bad option tag {t}"
        ))),
    }
}

impl Val {
    /// Serialize as a tag byte + payload; floats are stored by bit
    /// pattern, so restored slots are bit-identical.
    pub fn save(&self, enc: &mut cogra_checkpoint::Enc) {
        match self {
            Val::Cnt(c) => {
                enc.u8(0);
                enc.u64(*c);
            }
            Val::Sum(s) => {
                enc.u8(1);
                enc.f64(*s);
            }
            Val::Min(m) => {
                enc.u8(2);
                save_opt_f64(*m, enc);
            }
            Val::Max(m) => {
                enc.u8(3);
                save_opt_f64(*m, enc);
            }
        }
    }

    /// Inverse of [`Val::save`].
    pub fn load(dec: &mut cogra_checkpoint::Dec) -> Result<Val, cogra_checkpoint::CheckpointError> {
        Ok(match dec.u8()? {
            0 => Val::Cnt(dec.u64()?),
            1 => Val::Sum(dec.f64()?),
            2 => Val::Min(load_opt_f64(dec)?),
            3 => Val::Max(load_opt_f64(dec)?),
            t => {
                return Err(cogra_checkpoint::CheckpointError::Corrupt(format!(
                    "bad slot tag {t}"
                )))
            }
        })
    }
}

impl Cell {
    /// Serialize the cell (count, liveness, slot values).
    pub fn save(&self, enc: &mut cogra_checkpoint::Enc) {
        enc.u64(self.count);
        enc.bool(self.live);
        enc.usize(self.vals.len());
        for v in &self.vals {
            v.save(enc);
        }
    }

    /// Inverse of [`Cell::save`].
    pub fn load(
        dec: &mut cogra_checkpoint::Dec,
    ) -> Result<Cell, cogra_checkpoint::CheckpointError> {
        let count = dec.u64()?;
        let live = dec.bool()?;
        let n = dec.usize()?;
        let mut vals = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            vals.push(Val::load(dec)?);
        }
        Ok(Cell { count, live, vals })
    }

    /// Serialize a cell list with a leading count.
    pub fn save_slice(cells: &[Cell], enc: &mut cogra_checkpoint::Enc) {
        enc.usize(cells.len());
        for c in cells {
            c.save(enc);
        }
    }

    /// Inverse of [`Cell::save_slice`].
    pub fn load_vec(
        dec: &mut cogra_checkpoint::Dec,
    ) -> Result<Vec<Cell>, cogra_checkpoint::CheckpointError> {
        let n = dec.usize()?;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            out.push(Cell::load(dec)?);
        }
        Ok(out)
    }
}

/// A rendered aggregate value in a window result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggValue {
    /// COUNT-family result.
    Count(u64),
    /// SUM/MIN/MAX/AVG result.
    Float(f64),
    /// No qualifying trend/event (empty MIN, AVG over zero count).
    Null,
}

impl AggValue {
    /// Approximate float view (counts cast; `Null` = `None`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AggValue::Count(c) => Some(*c as f64),
            AggValue::Float(f) => Some(*f),
            AggValue::Null => None,
        }
    }
}

impl std::fmt::Display for AggValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggValue::Count(c) => write!(f, "{c}"),
            AggValue::Float(x) => write!(f, "{x:.4}"),
            AggValue::Null => write!(f, "null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogra_events::{TypeId, Value};

    fn event(v: i64) -> Event {
        Event::new(0, 1, TypeId(0), vec![Value::Int(v)])
    }

    #[test]
    fn val_merge_semantics() {
        let mut c = Val::Cnt(3);
        c.merge(&Val::Cnt(4));
        assert_eq!(c, Val::Cnt(7));

        let mut m = Val::Min(Some(5.0));
        m.merge(&Val::Min(Some(3.0)));
        assert_eq!(m, Val::Min(Some(3.0)));
        m.merge(&Val::Min(None));
        assert_eq!(m, Val::Min(Some(3.0)));

        let mut x = Val::Max(None);
        x.merge(&Val::Max(Some(9.0)));
        assert_eq!(x, Val::Max(Some(9.0)));

        let mut s = Val::Sum(1.5);
        s.merge(&Val::Sum(2.5));
        assert_eq!(s, Val::Sum(4.0));
    }

    #[test]
    fn count_wraps_instead_of_panicking() {
        let mut c = Val::Cnt(u64::MAX);
        c.merge(&Val::Cnt(2));
        assert_eq!(c, Val::Cnt(1));
    }

    #[test]
    fn cell_contribution_weights_by_count() {
        // An event ending 3 partial trends, feeding a SUM slot with
        // attribute value 10 → slot grows by 30 (Table 8: e.attr * e.count).
        let layout = AggLayout {
            slots: vec![SlotFunc::Sum, SlotFunc::CountVar, SlotFunc::Min],
            outputs: vec![Output::Slot(0), Output::Slot(1), Output::Slot(2)],
        };
        let mut cell = layout.zero_cell();
        cell.count = 3;
        cell.live = true;
        let feeds = vec![Feed::Attr(AttrId(0)), Feed::Unit, Feed::Attr(AttrId(0))];
        cell.contribute(&feeds, &event(10));
        assert_eq!(cell.vals[0], Val::Sum(30.0));
        assert_eq!(cell.vals[1], Val::Cnt(3));
        assert_eq!(cell.vals[2], Val::Min(Some(10.0)));
    }

    #[test]
    fn outputs_render_ratio_and_null() {
        let layout = AggLayout {
            slots: vec![SlotFunc::Sum, SlotFunc::CountVar],
            outputs: vec![Output::CountStar, Output::Ratio { sum: 0, cnt: 1 }],
        };
        let mut cell = layout.zero_cell();
        assert_eq!(
            cell.outputs(&layout),
            vec![AggValue::Count(0), AggValue::Null]
        );
        cell.count = 2;
        cell.vals[0] = Val::Sum(10.0);
        cell.vals[1] = Val::Cnt(4);
        assert_eq!(
            cell.outputs(&layout),
            vec![AggValue::Count(2), AggValue::Float(2.5)]
        );
    }

    #[test]
    fn live_survives_count_wraparound() {
        // Under ANY, counts are powers of two: after 64 doubling steps
        // the wrapping count is exactly 0 while trends still exist. The
        // `live` flag must keep the cell logically non-empty (regression
        // test for the GRETA node-dropping bug).
        let layout = AggLayout {
            slots: vec![],
            outputs: vec![Output::CountStar],
        };
        let mut cell = layout.zero_cell();
        cell.start_trend();
        cell.count = 0; // simulate 2^64 ≡ 0 wraparound
        assert!(!cell.is_zero(), "wrapped count must stay live");
        let mut other = layout.zero_cell();
        other.merge(&cell);
        assert!(!other.is_zero(), "liveness propagates through merge");
        other.reset();
        assert!(other.is_zero());
    }

    #[test]
    fn merge_is_pointwise() {
        let layout = AggLayout {
            slots: vec![SlotFunc::Min, SlotFunc::Sum],
            outputs: vec![],
        };
        let mut a = layout.zero_cell();
        a.count = 1;
        a.live = true;
        a.vals[0] = Val::Min(Some(4.0));
        a.vals[1] = Val::Sum(2.0);
        let mut b = layout.zero_cell();
        b.count = 2;
        b.live = true;
        b.vals[0] = Val::Min(Some(7.0));
        b.vals[1] = Val::Sum(5.0);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.vals[0], Val::Min(Some(4.0)));
        assert_eq!(a.vals[1], Val::Sum(7.0));
    }
}
