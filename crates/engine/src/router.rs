//! Generic partition/window router shared by COGRA and the baseline
//! engines.
//!
//! Every engine in this workspace has the same outer structure (§7):
//! partition the stream by the `GROUP-BY` ∪ equivalence attributes, assign
//! each event to its sliding windows, run a per-window algorithm, and
//! finalize a window once the watermark passes its end. Only the
//! per-window algorithm differs — COGRA's coarse-grained aggregators,
//! SASE's stacks + DFS, GRETA's event graph, A-Seq's prefix counters,
//! Flink's two-step sequence construction, or the brute-force oracle.
//! [`Router`] implements the shared structure over a [`WindowAlgo`].
//!
//! ## The hot path is allocation-free
//!
//! Routing an event whose partition key has been seen before performs no
//! heap allocation and no tree probe:
//!
//! * the partition key is hashed **in place** off the event's attributes
//!   ([`QueryRuntime::route_hashes`]) and resolved to a dense
//!   [`PartitionId`] by the [`KeyInterner`] — only a first-seen key
//!   materializes a `Vec<Value>`;
//! * partitions live in a `Vec` indexed by [`PartitionId`], not a
//!   `HashMap<GroupKey, _>`;
//! * a partition's open windows form a contiguous [`WindowId`] range, so
//!   they live in a ring buffer (a `VecDeque` whose tail is
//!   id-consecutive) and the per-event per-window "probe" is an index
//!   computation off the back entry's id, not a `BTreeMap` walk.
//!
//! Callers that already computed the key hash (the §8 shard router hashes
//! at ingest time to place the event) hand it in via
//! [`Router::process_prehashed`], so the key is extracted exactly once
//! per event end to end. [`Router::run_stats`] counts probes vs.
//! first-seen materializations — the gap is the number of events routed
//! with zero allocations.

use crate::agg::Cell;
use crate::engine::TrendEngine;
use crate::intern::{hash_values, KeyInterner, PartitionId, RunStats};
use crate::output::WindowResult;
use crate::runtime::QueryRuntime;
use cogra_checkpoint::{CheckpointError, Dec, Enc};
use cogra_events::{Event, Timestamp, Value, WindowId};
use cogra_query::{NegId, StateId};
use fxhash::FxHashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// Per-disjunct bindings of the current event: the states it can bind to
/// (type matched, local predicates passed) and the negated variables it
/// matches. Computed once per event by the router.
#[derive(Debug, Default)]
pub struct EventBinds {
    /// `(positive states, matched negations)` per disjunct.
    pub per_disjunct: Vec<(Vec<StateId>, Vec<NegId>)>,
}

impl EventBinds {
    /// Whether the event binds no positive state and no negation in any
    /// disjunct (it is still delivered — contiguous semantics and the
    /// two-step baselines need to see every event of the partition).
    pub fn is_irrelevant(&self) -> bool {
        self.per_disjunct
            .iter()
            .all(|(b, n)| b.is_empty() && n.is_empty())
    }
}

/// A per-window algorithm plugged into the [`Router`].
pub trait WindowAlgo {
    /// Fresh state for one window instance.
    fn new(rt: &QueryRuntime) -> Self;

    /// Process one event of this window's partition. Events arrive in
    /// non-decreasing time order; `binds` was computed by the router.
    fn on_event(&mut self, rt: &QueryRuntime, event: &Event, binds: &EventBinds);

    /// Finalize: the combined aggregate cell of this window (across
    /// disjuncts). Called exactly once, when the window closes.
    fn final_cell(&mut self, rt: &QueryRuntime) -> Cell;

    /// Logical memory footprint in bytes.
    fn memory_bytes(&self) -> usize;

    /// Serialize this window's full mutable state for a checkpoint.
    /// Inverse of [`WindowAlgo::load`].
    fn save(&self, rt: &QueryRuntime, enc: &mut Enc);

    /// Rebuild a window from bytes produced by [`WindowAlgo::save`]
    /// against the same compiled runtime.
    fn load(rt: &QueryRuntime, dec: &mut Dec) -> Result<Self, CheckpointError>
    where
        Self: Sized;
}

/// One partition's open windows: a ring buffer over the contiguous
/// [`WindowId`]s, so opening appends at the back and closing pops from
/// the front, and the per-event probe is pure index arithmetic off the
/// back entry's id.
///
/// The load-bearing invariant: an event instantiates its whole
/// (non-drained) window range in one `process` call, and
/// `windows_of(t)`'s first id is non-decreasing in `t` — so the tail of
/// the ring is always id-consecutive from any id a later event can still
/// probe. A probe id at or below the back id therefore sits exactly
/// `back - id` entries from the back; anything above the back id is a
/// fresh append. Time gaps in a sparse sub-stream cost *nothing*: ids
/// that no event instantiated are never stored (no filler slots), and
/// the gap is jumped by appending at the new id.
#[derive(Debug)]
struct Partition<W> {
    /// Open windows `(id, state)`, id-sorted, tail id-consecutive.
    windows: VecDeque<(u64, W)>,
    /// Whether this partition sits in the router's active list (has, or
    /// recently had, open windows) — keeps drains from scanning every
    /// partition ever interned.
    queued: bool,
}

impl<W> Default for Partition<W> {
    fn default() -> Self {
        Partition {
            windows: VecDeque::new(),
            queued: false,
        }
    }
}

impl<W> Partition<W> {
    /// The state of window `wid`, created via `new` if absent. `wid` must
    /// be at or past the front id — guaranteed because event times are
    /// non-decreasing and closed windows are never re-created (and
    /// enforced: a contract-violating probe panics instead of corrupting
    /// the ring).
    fn window_mut(&mut self, wid: WindowId, new: impl FnOnce() -> W) -> &mut W {
        let w = wid.0;
        match self.windows.back() {
            Some(&(back, _)) if w <= back => {
                let offset = (back - w) as usize;
                assert!(
                    offset < self.windows.len(),
                    "window {wid} precedes the open ring (events out of order?)"
                );
                let idx = self.windows.len() - 1 - offset;
                // One u64 compare guards the tail-consecutive invariant in
                // release too: an out-of-order event whose window falls in
                // an id gap must fail loudly, not merge into a neighbour.
                assert_eq!(
                    self.windows[idx].0, w,
                    "window {wid} falls in a ring gap (events out of order?)"
                );
                &mut self.windows[idx].1
            }
            _ => {
                self.windows.push_back((w, new()));
                &mut self.windows.back_mut().expect("just pushed").1
            }
        }
    }

    /// Pop every window at or before `up_to`, front to back, handing them
    /// to `f` in increasing window order.
    fn close_up_to(&mut self, up_to: u64, mut f: impl FnMut(WindowId, W)) {
        while self.windows.front().is_some_and(|&(id, _)| id <= up_to) {
            let (id, state) = self.windows.pop_front().expect("checked non-empty");
            f(WindowId(id), state);
        }
    }

    fn memory_bytes(&self) -> usize
    where
        W: WindowAlgo,
    {
        self.windows
            .iter()
            .map(|(_, w)| w.memory_bytes())
            .sum::<usize>()
            + self.windows.len() * std::mem::size_of::<(u64, W)>()
    }
}

/// Partition/window router turning any [`WindowAlgo`] into a full
/// [`TrendEngine`].
pub struct Router<W: WindowAlgo> {
    rt: Arc<QueryRuntime>,
    name: &'static str,
    /// Full partition key → dense id. Keys are retained for the router's
    /// lifetime (id stability); memory grows with *distinct* keys only.
    interner: KeyInterner,
    /// Distinct `GROUP-BY` prefixes, interned once per first-seen
    /// partition so emission never re-slices keys per window.
    groups: KeyInterner,
    /// `partition_group[pid]` — the group id of partition `pid`.
    partition_group: Vec<u32>,
    /// Partition states, indexed by [`PartitionId`].
    partitions: Vec<Partition<W>>,
    /// Ids of partitions with open windows (`Partition::queued` set) —
    /// what a closing drain scans, so drain cost follows the *active*
    /// partition count, not the number of keys ever interned.
    active: Vec<u32>,
    watermark: Timestamp,
    drained_to: Option<WindowId>,
    binds: EventBinds,
    /// Largest window footprint observed during finalization — two-step
    /// engines materialize their trends inside `final_cell`, a spike that
    /// periodic sampling would miss.
    finalize_spike: usize,
    /// Sticky record of the first interner overflow: `Some(limit)` once
    /// any event was dropped because its first-seen key would exceed
    /// `EngineConfig::key_limit`. Overflow drops the event, never the
    /// engine — no worker-thread panic.
    key_overflow: Option<u32>,
}

impl<W: WindowAlgo> Router<W> {
    /// Build a router over a compiled query runtime.
    pub fn new(rt: Arc<QueryRuntime>, name: &'static str) -> Router<W> {
        let binds = EventBinds {
            per_disjunct: rt.disjuncts.iter().map(|_| Default::default()).collect(),
        };
        let mut interner = KeyInterner::new();
        if let Some(limit) = rt.config.key_limit {
            interner.set_limit(limit);
        }
        Router {
            rt,
            name,
            interner,
            groups: KeyInterner::new(),
            partition_group: Vec::new(),
            partitions: Vec::new(),
            active: Vec::new(),
            watermark: Timestamp::ZERO,
            drained_to: None,
            binds,
            finalize_spike: 0,
            key_overflow: None,
        }
    }

    /// The query runtime (for introspection).
    pub fn runtime(&self) -> &QueryRuntime {
        &self.rt
    }

    /// Ingest one event whose full-key hash was already computed by the
    /// caller ([`QueryRuntime::key_hash`] / [`QueryRuntime::route_hashes`]
    /// — `None` when the event's type lacks the partition attributes).
    /// This is [`TrendEngine::process`] minus the key extraction, used by
    /// the §8 shard router so the key is hashed exactly once per event.
    pub fn process_prehashed(&mut self, event: &Event, key_hash: Option<u64>) {
        debug_assert!(
            event.time >= self.watermark,
            "events must arrive in time order"
        );
        debug_assert_eq!(
            key_hash,
            self.rt.key_hash(event),
            "caller-provided key hash must match the runtime's"
        );
        self.watermark = self.watermark.max(event.time);
        let Some(hash) = key_hash else {
            return; // type lacks the partition attributes (see DESIGN.md)
        };
        let rt = Arc::clone(&self.rt);
        for ((binds, negs), drt) in self.binds.per_disjunct.iter_mut().zip(&rt.disjuncts) {
            drt.binds(event, binds);
            drt.negation_matches(event, negs);
        }
        // Events that bind nothing and negate nothing are no-ops for every
        // per-window algorithm except under the contiguous semantics,
        // where they invalidate partial trends — skip the window fan-out
        // (and partition/window-state creation) early.
        if self.binds.is_irrelevant() && rt.query.semantics != cogra_query::Semantics::Cont {
            return;
        }
        let pid = match self.interner.intern_with(
            hash,
            |candidate| rt.key_matches(event, candidate),
            || rt.partition_key(event).expect("key hash implies a key"),
        ) {
            Ok(pid) => pid,
            Err(overflow) => {
                // A first-seen key past the configured limit: drop the
                // event and record the overflow stickily; already-interned
                // keys keep flowing.
                self.key_overflow = Some(overflow.limit);
                return;
            }
        };
        if pid.index() == self.partitions.len() {
            // First sight of this key: register its output group and a
            // fresh partition slot (dense ids arrive in order).
            let key = self.interner.resolve(pid);
            let prefix = &key[..rt.query.group_prefix];
            let gid = self
                .groups
                .intern_with(
                    hash_values(prefix.iter()),
                    |candidate| candidate == prefix,
                    || prefix.to_vec(),
                )
                .expect("groups cannot outnumber partitions");
            self.partition_group.push(gid.0);
            self.partitions.push(Partition::default());
        }
        let partition = &mut self.partitions[pid.index()];
        for wid in rt.query.window.windows_of(event.time) {
            if self.drained_to.is_some_and(|d| wid <= d) {
                continue;
            }
            partition
                .window_mut(wid, || W::new(&rt))
                .on_event(&rt, event, &self.binds);
        }
        if !partition.queued && !partition.windows.is_empty() {
            partition.queued = true;
            self.active.push(pid.0);
        }
    }

    /// Finalize every window at or before `up_to` and push the merged
    /// results into `out` in deterministic (window, group) order.
    fn emit_up_to(&mut self, up_to: WindowId, out: &mut dyn FnMut(WindowResult)) {
        if self.drained_to.is_some_and(|d| d >= up_to) {
            return; // nothing new closed — skip the partition scan
        }
        let rt = Arc::clone(&self.rt);
        let drained_to = self.drained_to;
        // Accumulate per (window, group id) — no key clones while merging;
        // the group values are resolved (and cloned exactly once per
        // emitted result) at the end.
        let mut combined: FxHashMap<(WindowId, u32), Cell> = FxHashMap::default();
        let mut spike = self.finalize_spike;
        // Scan only partitions with open windows, in id (= first-seen key)
        // order so same-group cells always merge in a deterministic order;
        // partitions drained empty leave the active list until their key
        // re-appears.
        let mut active = std::mem::take(&mut self.active);
        active.sort_unstable();
        let partitions = &mut self.partitions;
        let partition_group = &self.partition_group;
        active.retain(|&pid| {
            let partition = &mut partitions[pid as usize];
            let gid = partition_group[pid as usize];
            partition.close_up_to(up_to.0, |wid, mut state| {
                if drained_to.is_some_and(|d| wid <= d) {
                    return;
                }
                let cell = state.final_cell(&rt);
                // Measure after finalization: two-step algorithms hold
                // their constructed trends until the window is dropped.
                spike = spike.max(state.memory_bytes());
                if cell.is_zero() {
                    return;
                }
                combined
                    .entry((wid, gid))
                    .and_modify(|acc| acc.merge(&cell))
                    .or_insert(cell);
            });
            partition.queued = !partition.windows.is_empty();
            partition.queued
        });
        self.active = active;
        self.finalize_spike = spike;
        self.drained_to = Some(match self.drained_to {
            Some(d) => WindowId(d.0.max(up_to.0)),
            None => up_to,
        });
        // Group ids are first-seen-ordered, not value-ordered: sort the
        // resolved entries so emission order matches the seed router's
        // deterministic (window, group) order byte for byte.
        let mut entries: Vec<((WindowId, u32), Cell)> = combined.into_iter().collect();
        entries.sort_by(|((wa, ga), _), ((wb, gb), _)| {
            wa.cmp(wb).then_with(|| {
                self.groups
                    .resolve(PartitionId(*ga))
                    .cmp(self.groups.resolve(PartitionId(*gb)))
            })
        });
        for ((window, gid), cell) in entries {
            out(WindowResult {
                window,
                group: self.groups.resolve(PartitionId(gid)).to_vec(),
                values: cell.outputs(&rt.layout),
            });
        }
    }
}

/// A router's serialized mutable state: the piece of a snapshot that one
/// engine section carries. `entries` holds one opaque blob per partition
/// **with open windows** — snapshotting skips drained-empty partitions,
/// so a restore re-interns only the *live* key set (the interner
/// compaction of the durability subsystem). Each blob starts with the
/// partition's full key, so a restore coordinator can re-shard entries by
/// `GROUP-BY` hash without parsing the window payloads behind it.
#[derive(Debug, Clone)]
pub struct RouterState {
    /// The watermark to restore with. Across shards of one query this
    /// merges as the *minimum*: a lagging shard's reorder buffer may hold
    /// events older than a faster shard's watermark, and a restored
    /// engine must never sit ahead of an event it has yet to ingest.
    pub watermark: Timestamp,
    /// Interner probe/alloc counters at snapshot time.
    pub stats: RunStats,
    /// Last drained window (`None` = never drained).
    pub drained_to: Option<WindowId>,
    /// Largest finalization footprint observed so far.
    pub finalize_spike: usize,
    /// One blob per live partition, dense-id order:
    /// `[key][n_windows][(wid, window bytes)...]`.
    pub entries: Vec<Vec<u8>>,
}

impl RouterState {
    /// Serialize into an engine-section payload.
    pub fn save(&self, enc: &mut Enc) {
        enc.u64(self.watermark.ticks());
        self.stats.save(enc);
        enc.opt_u64(self.drained_to.map(|w| w.0));
        enc.usize(self.finalize_spike);
        enc.usize(self.entries.len());
        for e in &self.entries {
            enc.bytes(e);
        }
    }

    /// Inverse of [`RouterState::save`].
    pub fn load(dec: &mut Dec) -> Result<RouterState, CheckpointError> {
        let watermark = Timestamp(dec.u64()?);
        let stats = RunStats::load(dec)?;
        let drained_to = dec.opt_u64()?.map(WindowId);
        let finalize_spike = dec.usize()?;
        let n = dec.usize()?;
        let mut entries = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            entries.push(dec.bytes()?.to_vec());
        }
        Ok(RouterState {
            watermark,
            stats,
            drained_to,
            finalize_spike,
            entries,
        })
    }

    /// Fold another shard's state for the *same* query into this one:
    /// counters sum, spikes max, entries concatenate (callers merge in
    /// shard-index order so entry order is deterministic), the merged
    /// drain floor is the *minimum* (a window is only globally drained if
    /// every contributing shard drained it), and so is the watermark (a
    /// lagging shard's buffered events sit behind a faster shard's clock;
    /// re-advancing a window that stayed open is free, skipping an event
    /// is not).
    pub fn merge(&mut self, other: RouterState) {
        self.stats.merge(other.stats);
        self.drained_to = match (self.drained_to, other.drained_to) {
            (Some(a), Some(b)) => Some(WindowId(a.0.min(b.0))),
            _ => None,
        };
        self.finalize_spike = self.finalize_spike.max(other.finalize_spike);
        self.watermark = self.watermark.min(other.watermark);
        self.entries.extend(other.entries);
    }
}

/// Hash of the `GROUP-BY` prefix of a saved partition entry's key —
/// exactly the hash live routing places shards with — decoded from the
/// blob's leading key without touching the window payloads.
pub fn entry_group_hash(entry: &[u8], group_prefix: usize) -> Result<u64, CheckpointError> {
    let mut dec = Dec::new(entry);
    let key = Value::load_vec(&mut dec)?;
    if key.len() < group_prefix {
        return Err(CheckpointError::Corrupt(format!(
            "partition key with {} values is shorter than the GROUP-BY prefix ({group_prefix})",
            key.len()
        )));
    }
    Ok(hash_values(key[..group_prefix].iter()))
}

impl<W: WindowAlgo> Router<W> {
    /// Snapshot the router's mutable state. Partitions whose window ring
    /// is empty are skipped: their interned key carries no state a future
    /// event could not recreate, so dropping them here is what shrinks a
    /// churn-heavy interner across a checkpoint/restore cycle.
    pub fn snapshot_state(&self) -> RouterState {
        let mut entries = Vec::new();
        for (pid, partition) in self.partitions.iter().enumerate() {
            if partition.windows.is_empty() {
                continue;
            }
            let mut e = Enc::new();
            Value::save_slice(self.interner.resolve(PartitionId(pid as u32)), &mut e);
            e.usize(partition.windows.len());
            for (wid, w) in &partition.windows {
                e.u64(*wid);
                let mut we = Enc::new();
                w.save(&self.rt, &mut we);
                e.bytes(we.as_slice());
            }
            entries.push(e.into_bytes());
        }
        RouterState {
            watermark: self.watermark,
            stats: self.interner.stats(),
            drained_to: self.drained_to,
            finalize_spike: self.finalize_spike,
            entries,
        }
    }

    /// Rebuild a router from a saved state. Keys are re-interned densely
    /// in entry order (compacting ids if the snapshot skipped dead
    /// partitions), groups are re-derived from the key prefixes, and every
    /// restored partition re-enters the active list.
    pub fn from_state(
        rt: Arc<QueryRuntime>,
        name: &'static str,
        state: RouterState,
    ) -> Result<Router<W>, CheckpointError> {
        let mut router = Router::new(Arc::clone(&rt), name);
        router.watermark = state.watermark;
        router.drained_to = state.drained_to;
        router.finalize_spike = state.finalize_spike;
        let mut keys = Vec::with_capacity(state.entries.len());
        for (pid, blob) in state.entries.iter().enumerate() {
            let mut dec = Dec::new(blob);
            let key = Value::load_vec(&mut dec)?;
            if key.len() < rt.query.group_prefix {
                return Err(CheckpointError::Corrupt(format!(
                    "partition key with {} values is shorter than the GROUP-BY prefix ({})",
                    key.len(),
                    rt.query.group_prefix
                )));
            }
            let prefix = &key[..rt.query.group_prefix];
            let gid = router
                .groups
                .intern_with(
                    hash_values(prefix.iter()),
                    |candidate| candidate == prefix,
                    || prefix.to_vec(),
                )
                .map_err(|o| {
                    CheckpointError::Corrupt(format!(
                        "snapshot holds more than {} distinct groups",
                        o.limit
                    ))
                })?;
            router.partition_group.push(gid.0);
            let mut partition = Partition::default();
            let n_windows = dec.usize()?;
            let mut last = None;
            for _ in 0..n_windows {
                let wid = dec.u64()?;
                if last.is_some_and(|l| wid <= l) {
                    return Err(CheckpointError::Corrupt(format!(
                        "window ids out of order in partition {pid}"
                    )));
                }
                last = Some(wid);
                let mut wdec = Dec::new(dec.bytes()?);
                let w = W::load(&rt, &mut wdec)?;
                wdec.finish("window")?;
                partition.windows.push_back((wid, w));
            }
            dec.finish("partition")?;
            partition.queued = true;
            router.active.push(pid as u32);
            keys.push(key);
            router.partitions.push(partition);
        }
        router.interner = KeyInterner::from_parts(keys, state.stats).map_err(|o| {
            CheckpointError::Corrupt(format!(
                "snapshot holds more than {} distinct partition keys",
                o.limit
            ))
        })?;
        // `from_parts` resets the ceiling; re-apply the config's limit so
        // a restored session keeps the same churn guard as a fresh one.
        if let Some(limit) = rt.config.key_limit {
            router.interner.set_limit(limit);
        }
        Ok(router)
    }
}

impl<W: WindowAlgo> TrendEngine for Router<W> {
    fn process(&mut self, event: &Event) {
        let key_hash = self.rt.key_hash(event);
        self.process_prehashed(event, key_hash);
    }

    fn drain_into(&mut self, out: &mut dyn FnMut(WindowResult)) {
        if let Some(wid) = self.rt.query.window.last_closed(self.watermark) {
            self.emit_up_to(wid, out);
        }
    }

    fn finish_into(&mut self, out: &mut dyn FnMut(WindowResult)) {
        self.emit_up_to(WindowId(u64::MAX), out);
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.interner.memory_bytes()
            + self.groups.memory_bytes()
            + self.partition_group.len() * std::mem::size_of::<u32>()
            + self.partitions.len() * std::mem::size_of::<Partition<W>>()
            // Window state lives only in active partitions — summing over
            // the active list keeps sampling cost off the keys-ever count.
            + self
                .active
                .iter()
                .map(|&pid| self.partitions[pid as usize].memory_bytes())
                .sum::<usize>()
    }

    fn peak_hint(&self) -> usize {
        self.finalize_spike
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn watermark(&self) -> Timestamp {
        self.watermark
    }

    fn advance_watermark(&mut self, to: Timestamp) {
        // Safe because callers promise no event with time < `to` follows:
        // windows containing `to` itself stay open (a window is closed
        // only when its *exclusive* end is at or before the watermark), so
        // an in-flight stream transaction at exactly `to` still lands in
        // every window it belongs to.
        self.watermark = self.watermark.max(to);
    }

    fn run_stats(&self) -> RunStats {
        self.interner.stats()
    }

    fn key_overflow(&self) -> Option<u32> {
        self.key_overflow
    }

    fn save_state(&self, enc: &mut Enc) -> Result<(), CheckpointError> {
        self.snapshot_state().save(enc);
        Ok(())
    }
}
