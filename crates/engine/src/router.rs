//! Generic partition/window router shared by COGRA and the baseline
//! engines.
//!
//! Every engine in this workspace has the same outer structure (§7):
//! partition the stream by the `GROUP-BY` ∪ equivalence attributes, assign
//! each event to its sliding windows, run a per-window algorithm, and
//! finalize a window once the watermark passes its end. Only the
//! per-window algorithm differs — COGRA's coarse-grained aggregators,
//! SASE's stacks + DFS, GRETA's event graph, A-Seq's prefix counters,
//! Flink's two-step sequence construction, or the brute-force oracle.
//! [`Router`] implements the shared structure over a [`WindowAlgo`].

use crate::agg::Cell;
use crate::engine::TrendEngine;
use crate::output::{GroupKey, WindowResult};
use crate::runtime::QueryRuntime;
use cogra_events::{Event, Timestamp, WindowId};
use cogra_query::{NegId, StateId};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Per-disjunct bindings of the current event: the states it can bind to
/// (type matched, local predicates passed) and the negated variables it
/// matches. Computed once per event by the router.
#[derive(Debug, Default)]
pub struct EventBinds {
    /// `(positive states, matched negations)` per disjunct.
    pub per_disjunct: Vec<(Vec<StateId>, Vec<NegId>)>,
}

impl EventBinds {
    /// Whether the event binds no positive state and no negation in any
    /// disjunct (it is still delivered — contiguous semantics and the
    /// two-step baselines need to see every event of the partition).
    pub fn is_irrelevant(&self) -> bool {
        self.per_disjunct
            .iter()
            .all(|(b, n)| b.is_empty() && n.is_empty())
    }
}

/// A per-window algorithm plugged into the [`Router`].
pub trait WindowAlgo {
    /// Fresh state for one window instance.
    fn new(rt: &QueryRuntime) -> Self;

    /// Process one event of this window's partition. Events arrive in
    /// non-decreasing time order; `binds` was computed by the router.
    fn on_event(&mut self, rt: &QueryRuntime, event: &Event, binds: &EventBinds);

    /// Finalize: the combined aggregate cell of this window (across
    /// disjuncts). Called exactly once, when the window closes.
    fn final_cell(&mut self, rt: &QueryRuntime) -> Cell;

    /// Logical memory footprint in bytes.
    fn memory_bytes(&self) -> usize;
}

#[derive(Debug)]
struct Partition<W> {
    windows: BTreeMap<WindowId, W>,
}

impl<W> Default for Partition<W> {
    fn default() -> Self {
        Partition {
            windows: BTreeMap::new(),
        }
    }
}

/// Partition/window router turning any [`WindowAlgo`] into a full
/// [`TrendEngine`].
pub struct Router<W: WindowAlgo> {
    rt: Arc<QueryRuntime>,
    name: &'static str,
    partitions: HashMap<GroupKey, Partition<W>>,
    watermark: Timestamp,
    drained_to: Option<WindowId>,
    binds: EventBinds,
    /// Largest window footprint observed during finalization — two-step
    /// engines materialize their trends inside `final_cell`, a spike that
    /// periodic sampling would miss.
    finalize_spike: usize,
}

impl<W: WindowAlgo> Router<W> {
    /// Build a router over a compiled query runtime.
    pub fn new(rt: Arc<QueryRuntime>, name: &'static str) -> Router<W> {
        let binds = EventBinds {
            per_disjunct: rt.disjuncts.iter().map(|_| Default::default()).collect(),
        };
        Router {
            rt,
            name,
            partitions: HashMap::new(),
            watermark: Timestamp::ZERO,
            drained_to: None,
            binds,
            finalize_spike: 0,
        }
    }

    /// The query runtime (for introspection).
    pub fn runtime(&self) -> &QueryRuntime {
        &self.rt
    }

    /// Finalize every window at or before `up_to` and push the merged
    /// results into `out` in deterministic (window, group) order.
    fn emit_up_to(&mut self, up_to: WindowId, out: &mut dyn FnMut(WindowResult)) {
        let rt = Arc::clone(&self.rt);
        let group_prefix = rt.query.group_prefix;
        let mut combined: BTreeMap<(WindowId, GroupKey), Cell> = BTreeMap::new();
        for (key, partition) in &mut self.partitions {
            let closed = match up_to.0.checked_add(1) {
                None => std::mem::take(&mut partition.windows),
                Some(next) => {
                    let mut open = partition.windows.split_off(&WindowId(next));
                    std::mem::swap(&mut open, &mut partition.windows);
                    open
                }
            };
            for (wid, mut state) in closed {
                if self.drained_to.is_some_and(|d| wid <= d) {
                    continue;
                }
                let cell = state.final_cell(&rt);
                // Measure after finalization: two-step algorithms hold
                // their constructed trends until the window is dropped.
                self.finalize_spike = self.finalize_spike.max(state.memory_bytes());
                if cell.is_zero() {
                    continue;
                }
                let group: GroupKey = key[..group_prefix].to_vec();
                combined
                    .entry((wid, group))
                    .and_modify(|acc| acc.merge(&cell))
                    .or_insert(cell);
            }
        }
        self.partitions.retain(|_, p| !p.windows.is_empty());
        self.drained_to = Some(match self.drained_to {
            Some(d) => WindowId(d.0.max(up_to.0)),
            None => up_to,
        });
        for ((window, group), cell) in combined {
            out(WindowResult {
                window,
                group,
                values: cell.outputs(&rt.layout),
            });
        }
    }
}

impl<W: WindowAlgo> TrendEngine for Router<W> {
    fn process(&mut self, event: &Event) {
        debug_assert!(
            event.time >= self.watermark,
            "events must arrive in time order"
        );
        self.watermark = self.watermark.max(event.time);
        let rt = Arc::clone(&self.rt);
        let Some(key) = rt.partition_key(event) else {
            return; // type lacks the partition attributes (see DESIGN.md)
        };
        for ((binds, negs), drt) in self.binds.per_disjunct.iter_mut().zip(&rt.disjuncts) {
            drt.binds(event, binds);
            drt.negation_matches(event, negs);
        }
        // Events that bind nothing and negate nothing are no-ops for every
        // per-window algorithm except under the contiguous semantics,
        // where they invalidate partial trends — skip the window fan-out
        // (and window-state creation) early.
        if self.binds.is_irrelevant() && rt.query.semantics != cogra_query::Semantics::Cont {
            return;
        }
        let partition = self.partitions.entry(key).or_default();
        for wid in rt.query.window.windows_of(event.time) {
            if self.drained_to.is_some_and(|d| wid <= d) {
                continue;
            }
            partition
                .windows
                .entry(wid)
                .or_insert_with(|| W::new(&rt))
                .on_event(&rt, event, &self.binds);
        }
    }

    fn drain_into(&mut self, out: &mut dyn FnMut(WindowResult)) {
        if let Some(wid) = self.rt.query.window.last_closed(self.watermark) {
            self.emit_up_to(wid, out);
        }
    }

    fn finish_into(&mut self, out: &mut dyn FnMut(WindowResult)) {
        self.emit_up_to(WindowId(u64::MAX), out);
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .partitions
                .iter()
                .map(|(key, p)| {
                    key.iter().map(|v| v.memory_bytes()).sum::<usize>()
                        + p.windows.values().map(W::memory_bytes).sum::<usize>()
                })
                .sum::<usize>()
    }

    fn peak_hint(&self) -> usize {
        self.finalize_spike
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn watermark(&self) -> Timestamp {
        self.watermark
    }

    fn advance_watermark(&mut self, to: Timestamp) {
        // Safe because callers promise no event with time < `to` follows:
        // windows containing `to` itself stay open (a window is closed
        // only when its *exclusive* end is at or before the watermark), so
        // an in-flight stream transaction at exactly `to` still lands in
        // every window it belongs to.
        self.watermark = self.watermark.max(to);
    }
}
