//! Shared runtime plumbing for the COGRA aggregators: precomputed
//! per-disjunct routing tables, state binding, and negation clocks.

use crate::agg::{AggLayout, DisjunctFeeds};
use cogra_events::{Event, Timestamp, TypeRegistry};
use cogra_query::{CompiledDisjunct, CompiledQuery, NegId, StateId};

/// One incoming contribution source of a state.
#[derive(Debug, Clone)]
pub struct PredSource {
    /// Predecessor state.
    pub from: StateId,
    /// Index into [`DisjunctRuntime::neg_edges`] when the transition is
    /// negation-tagged (type-grained aggregation then reads the shadow
    /// cell instead of the plain type cell).
    pub neg_edge: Option<usize>,
    /// The negated variables on this transition.
    pub negations: Vec<NegId>,
}

/// A negation-tagged transition (for shadow-cell bookkeeping).
#[derive(Debug, Clone)]
pub struct NegEdge {
    /// Source state whose aggregates flow along this transition.
    pub from: StateId,
    /// The negated variables that reset it.
    pub negations: Vec<NegId>,
}

/// Precomputed routing tables for one compiled disjunct.
#[derive(Debug)]
pub struct DisjunctRuntime {
    /// The compiled disjunct.
    pub disjunct: CompiledDisjunct,
    /// Feed table for the query's aggregation layout.
    pub feeds: DisjunctFeeds,
    /// `pred_sources[s]` — contribution sources of state `s`.
    pub pred_sources: Vec<Vec<PredSource>>,
    /// All negation-tagged transitions, indexed by `PredSource::neg_edge`.
    pub neg_edges: Vec<NegEdge>,
    /// Identity cell template for the query's aggregation layout.
    zero: crate::agg::Cell,
}

impl DisjunctRuntime {
    fn build(
        disjunct: CompiledDisjunct,
        feeds: DisjunctFeeds,
        layout: &AggLayout,
    ) -> DisjunctRuntime {
        let n = disjunct.automaton.num_states();
        let mut pred_sources: Vec<Vec<PredSource>> = Vec::with_capacity(n);
        let mut neg_edges = Vec::new();
        for s in 0..n {
            let sid = StateId(s as u32);
            let mut sources = Vec::new();
            for edge in disjunct.automaton.preds(sid) {
                let neg_edge = if edge.negations.is_empty() {
                    None
                } else {
                    neg_edges.push(NegEdge {
                        from: edge.from,
                        negations: edge.negations.clone(),
                    });
                    Some(neg_edges.len() - 1)
                };
                sources.push(PredSource {
                    from: edge.from,
                    neg_edge,
                    negations: edge.negations.clone(),
                });
            }
            pred_sources.push(sources);
        }
        DisjunctRuntime {
            disjunct,
            feeds,
            pred_sources,
            neg_edges,
            zero: layout.zero_cell(),
        }
    }

    /// A fresh identity cell for the query's aggregation layout.
    #[inline]
    pub fn zero_cell(&self) -> crate::agg::Cell {
        self.zero.clone()
    }

    /// Whether `s` is the pattern's start state.
    #[inline]
    pub fn is_start(&self, s: StateId) -> bool {
        self.disjunct.automaton.start() == s
    }

    /// The pattern's end state.
    #[inline]
    pub fn end(&self) -> StateId {
        self.disjunct.automaton.end()
    }

    /// The states `event` can bind to: its type's states whose local
    /// filters pass (Definition 7 conditions on event types and single-
    /// event predicates).
    pub fn binds(&self, event: &Event, out: &mut Vec<StateId>) {
        out.clear();
        for &s in self.disjunct.automaton.states_of_type(event.type_id) {
            if self.disjunct.locals_pass(s, event) {
                out.push(s);
            }
        }
    }

    /// The negated variables `event` matches.
    pub fn negation_matches(&self, event: &Event, out: &mut Vec<NegId>) {
        out.clear();
        for &n in self.disjunct.automaton.negations_of_type(event.type_id) {
            if self.disjunct.neg_locals_pass(n, event) {
                out.push(n);
            }
        }
    }
}

/// Engine-level configuration knobs read by some [`WindowAlgo`]
/// implementations.
///
/// [`WindowAlgo`]: crate::router::WindowAlgo
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Maximum flattened sequence length for the engines that simulate
    /// Kleene closure with fixed-length sequence queries (Flink, A-Seq;
    /// §9.1: "we first determine the length l of the longest match of P,
    /// then specify a set of fixed-length event sequence queries that
    /// cover all possible lengths up to l"). `None` = unbounded (exact,
    /// but the covered length grows with the window content).
    pub flatten_cap: Option<usize>,
    /// Maximum number of distinct partition keys the router's
    /// [`KeyInterner`] will materialize. `None` = the full dense-id space
    /// (`u32::MAX`). Events whose first-seen key would exceed the limit
    /// are dropped with a sticky, typed overflow instead of panicking —
    /// the guard rail for unbounded key-churn streams. Under
    /// `.workers(n)` each shard owns its own interner, so the limit is
    /// per shard, not global.
    ///
    /// [`KeyInterner`]: crate::intern::KeyInterner
    pub key_limit: Option<u32>,
}

/// Everything an engine needs to execute one compiled query.
#[derive(Debug)]
pub struct QueryRuntime {
    /// The compiled query.
    pub query: CompiledQuery,
    /// Engine-level configuration (see [`EngineConfig`]).
    pub config: EngineConfig,
    /// Aggregation slot/output layout (shared by all disjuncts).
    pub layout: AggLayout,
    /// One runtime per disjunct.
    pub disjuncts: Vec<DisjunctRuntime>,
    /// Per registered type: positional ids of the partition attributes
    /// (`None` = type cannot be partitioned, events dropped).
    pub partition_attr_ids: Vec<Option<Vec<cogra_events::AttrId>>>,
}

impl QueryRuntime {
    /// Build the runtime for a compiled query.
    pub fn new(query: CompiledQuery, registry: &TypeRegistry) -> QueryRuntime {
        assert!(
            !query.disjuncts.is_empty(),
            "compiled query has no disjuncts"
        );
        let partition_attr_ids = query.partition_attr_ids(registry);
        let (layout, first_feeds) = AggLayout::build(&query.disjuncts[0]);
        let mut disjuncts = Vec::with_capacity(query.disjuncts.len());
        for (i, d) in query.disjuncts.iter().enumerate() {
            let feeds = if i == 0 {
                first_feeds.clone()
            } else {
                layout.feeds_for(d)
            };
            disjuncts.push(DisjunctRuntime::build(d.clone(), feeds, &layout));
        }
        QueryRuntime {
            query,
            config: EngineConfig::default(),
            layout,
            disjuncts,
            partition_attr_ids,
        }
    }

    /// Set the engine configuration (builder style).
    pub fn with_config(mut self, config: EngineConfig) -> QueryRuntime {
        self.config = config;
        self
    }

    /// Extract the partition key of an event; `None` drops the event.
    pub fn partition_key(&self, event: &Event) -> Option<Vec<cogra_events::Value>> {
        self.partition_attr_ids[event.type_id.index()]
            .as_ref()
            .map(|ids| ids.iter().map(|a| event.attr(*a).clone()).collect())
    }

    /// The event's partition attribute ids; `None` drops the event.
    #[inline]
    pub fn partition_attrs(&self, event: &Event) -> Option<&[cogra_events::AttrId]> {
        self.partition_attr_ids[event.type_id.index()].as_deref()
    }

    /// Hash the event's full partition key **in place** — no `Vec`
    /// materialized — with the same value-sequence hash the router's
    /// interner probes with ([`crate::intern::hash_values`]). `None` when
    /// the event's type lacks the partition attributes (dropped).
    #[inline]
    pub fn key_hash(&self, event: &Event) -> Option<u64> {
        self.route_hashes(event).map(|(_, key)| key)
    }

    /// The hasher state after folding in the event's `GROUP-BY` prefix
    /// attributes, plus the full partition attribute list.
    #[inline]
    fn prefix_state(&self, event: &Event) -> Option<(fxhash::FxHasher, &[cogra_events::AttrId])> {
        use std::hash::Hash;
        let ids = self.partition_attrs(event)?;
        // compile() guarantees the GROUP-BY attributes form a prefix of
        // every type's partition attributes — the same invariant the
        // router relies on when it slices `key[..group_prefix]`.
        debug_assert!(self.query.group_prefix <= ids.len());
        let mut h = fxhash::FxHasher::default();
        for a in &ids[..self.query.group_prefix] {
            event.attr(*a).hash(&mut h);
        }
        Some((h, ids))
    }

    /// Hash only the event's `GROUP-BY` prefix in place — enough for §8
    /// shard placement when the full-key hash is not wanted (the batch
    /// reference re-processes events through [`TrendEngine::process`],
    /// which computes it itself).
    ///
    /// [`TrendEngine::process`]: crate::engine::TrendEngine::process
    #[inline]
    pub fn group_hash(&self, event: &Event) -> Option<u64> {
        use std::hash::Hasher;
        self.prefix_state(event).map(|(h, _)| h.finish())
    }

    /// `(group hash, full key hash)` of the event, both computed in one
    /// in-place pass: the group hash covers the `GROUP-BY` prefix of the
    /// partition attributes (it decides §8 shard placement), the key hash
    /// covers all of them (it drives the router's interner probe).
    #[inline]
    pub fn route_hashes(&self, event: &Event) -> Option<(u64, u64)> {
        use std::hash::{Hash, Hasher};
        let (mut h, ids) = self.prefix_state(event)?;
        let group = h.finish();
        for a in &ids[self.query.group_prefix..] {
            event.attr(*a).hash(&mut h);
        }
        Some((group, h.finish()))
    }

    /// Whether the event's partition key equals `key`, compared
    /// element-wise against the event's attributes — the allocation-free
    /// candidate check of the interner probe. The event's type must have
    /// partition attributes (the caller checked via
    /// [`QueryRuntime::key_hash`]).
    #[inline]
    pub fn key_matches(&self, event: &Event, key: &[cogra_events::Value]) -> bool {
        let Some(ids) = self.partition_attrs(event) else {
            return false;
        };
        ids.len() == key.len() && ids.iter().zip(key).all(|(a, v)| event.attr(*a) == v)
    }
}

/// Per-negated-variable match clock.
///
/// Tracks the last two distinct match time stamps so "does a match of `g`
/// exist strictly between `ep.time` and `e.time`?" is answerable while the
/// current stream transaction (events sharing `e.time`) is still open: a
/// match at exactly `e.time` is not *between* (Definition 7 uses strict
/// inequalities), so when `last == e.time` the clock falls back to the
/// previous distinct match time.
#[derive(Debug, Clone, Default)]
pub struct NegClock {
    last: Option<Timestamp>,
    prev_distinct: Option<Timestamp>,
}

impl NegClock {
    /// Record a match at `t` (non-decreasing).
    pub fn record(&mut self, t: Timestamp) {
        match self.last {
            Some(l) if l == t => {}
            Some(l) => {
                debug_assert!(t > l, "negation clock must advance");
                self.prev_distinct = Some(l);
                self.last = Some(t);
            }
            None => self.last = Some(t),
        }
    }

    /// Serialize both stored match times.
    pub fn save(&self, enc: &mut cogra_checkpoint::Enc) {
        enc.opt_u64(self.last.map(|t| t.ticks()));
        enc.opt_u64(self.prev_distinct.map(|t| t.ticks()));
    }

    /// Inverse of [`NegClock::save`].
    pub fn load(
        dec: &mut cogra_checkpoint::Dec,
    ) -> Result<NegClock, cogra_checkpoint::CheckpointError> {
        Ok(NegClock {
            last: dec.opt_u64()?.map(Timestamp),
            prev_distinct: dec.opt_u64()?.map(Timestamp),
        })
    }

    /// Whether a match exists strictly inside `(after, before)`.
    pub fn blocked(&self, after: Timestamp, before: Timestamp) -> bool {
        let candidate = match self.last {
            Some(l) if l < before => Some(l),
            _ => self.prev_distinct.filter(|p| *p < before),
        };
        matches!(candidate, Some(m) if m > after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neg_clock_strict_interval() {
        let mut c = NegClock::default();
        assert!(!c.blocked(Timestamp(0), Timestamp(10)));
        c.record(Timestamp(5));
        assert!(c.blocked(Timestamp(0), Timestamp(10)));
        assert!(
            !c.blocked(Timestamp(5), Timestamp(10)),
            "m == after is not between"
        );
        assert!(
            !c.blocked(Timestamp(0), Timestamp(5)),
            "m == before is not between"
        );
    }

    #[test]
    fn neg_clock_same_transaction_fallback() {
        let mut c = NegClock::default();
        c.record(Timestamp(3));
        c.record(Timestamp(7));
        // Current transaction at t=7: the match at 7 is not between, but
        // the earlier one at 3 is.
        assert!(c.blocked(Timestamp(1), Timestamp(7)));
        assert!(!c.blocked(Timestamp(3), Timestamp(7)));
        // Duplicate record at the same time keeps prev_distinct.
        c.record(Timestamp(7));
        assert!(c.blocked(Timestamp(1), Timestamp(7)));
    }
}
