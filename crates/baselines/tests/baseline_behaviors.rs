//! Behavioural characteristics of the baseline engines that the §9
//! figures rely on: what each engine stores, where its cost explodes, and
//! how the flattening cap trades coverage for feasibility.

use cogra_baselines::oracle::{visit_any, visit_chain, Trend};
use cogra_baselines::{aseq_engine, flink_engine, greta_engine, oracle_engine, sase_engine};
use cogra_core::runtime::{EngineConfig, QueryRuntime};
use cogra_core::{run_to_completion, AggValue, TrendEngine};
use cogra_events::{Event, EventBuilder, TypeRegistry, Value, ValueKind};
use cogra_query::{compile, parse, Semantics};

fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    for t in ["A", "B", "C"] {
        r.register_type(t, vec![("v", ValueKind::Int)]);
    }
    r
}

/// The Figure 2 stream: a1 b2 a3 a4 c5 b6 a7 b8.
fn figure2_stream(reg: &TypeRegistry) -> Vec<Event> {
    let a = reg.id_of("A").unwrap();
    let b = reg.id_of("B").unwrap();
    let c = reg.id_of("C").unwrap();
    let mut builder = EventBuilder::new();
    [a, b, a, a, c, b, a, b]
        .into_iter()
        .enumerate()
        .map(|(i, ty)| builder.event((i + 1) as u64, ty, vec![Value::Int(i as i64)]))
        .collect()
}

fn figure2_runtime(semantics: &str, reg: &TypeRegistry) -> QueryRuntime {
    let q = parse(&format!(
        "RETURN COUNT(*) PATTERN (SEQ(A+, B))+ SEMANTICS {semantics} WITHIN 100 SLIDE 100"
    ))
    .unwrap();
    QueryRuntime::new(compile(&q, reg).unwrap(), reg)
}

#[test]
fn oracle_enumerates_figure2_any_trends() {
    let reg = registry();
    let events = figure2_stream(&reg);
    let rt = figure2_runtime("ANY", &reg);
    let mut trends: Vec<Trend> = Vec::new();
    visit_any(&rt.disjuncts[0], &events, |t| trends.push(t.to_vec()));
    assert_eq!(trends.len(), 43, "Figure 2: 43 trends");
    // Every trend starts with an a and ends with a b (start/end types).
    let indices: Vec<Vec<usize>> = trends
        .iter()
        .map(|t| t.iter().map(|&(i, _)| i).collect())
        .collect();
    for t in &indices {
        assert_eq!(events[t[0]].type_id, reg.id_of("A").unwrap());
        assert_eq!(events[*t.last().unwrap()].type_id, reg.id_of("B").unwrap());
        assert!(t.windows(2).all(|w| w[0] < w[1]), "strictly forward");
    }
    // Example 2's trends are among them: (a3, b6, a7, b8) — indices
    // 2, 5, 6, 7 — and the longest (a1, b2, a3, a4, b6, a7, b8).
    assert!(indices.contains(&vec![2, 5, 6, 7]));
    assert!(indices.contains(&vec![0, 1, 2, 3, 5, 6, 7]));
    // c5 (index 4) is irrelevant and appears nowhere.
    assert!(indices.iter().all(|t| !t.contains(&4)));
}

#[test]
fn oracle_enumerates_figure2_next_and_cont_trends() {
    let reg = registry();
    let events = figure2_stream(&reg);
    let rt = figure2_runtime("NEXT", &reg);
    let mut next: Vec<Vec<usize>> = Vec::new();
    visit_chain(&rt.disjuncts[0], &events, Semantics::Next, |t| {
        next.push(t.iter().map(|&(i, _)| i).collect())
    });
    next.sort();
    // The 8 skip-till-next-match trends (Table 7): chains a1→b2→a3→a4→b6→a7→b8
    // ending at each b, starting at each a at or after the previous b.
    assert_eq!(
        next,
        vec![
            vec![0, 1],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 3, 5, 6, 7],
            vec![2, 3, 5],
            vec![2, 3, 5, 6, 7],
            vec![3, 5],
            vec![3, 5, 6, 7],
            vec![6, 7],
        ]
    );

    let rt_cont = figure2_runtime("CONT", &reg);
    let mut cont: Vec<Vec<usize>> = Vec::new();
    visit_chain(&rt_cont.disjuncts[0], &events, Semantics::Cont, |t| {
        cont.push(t.iter().map(|&(i, _)| i).collect())
    });
    cont.sort();
    // Example 4: (a1, b2) and (a7, b8) are the only contiguous trends.
    assert_eq!(cont, vec![vec![0, 1], vec![6, 7]]);
}

#[test]
fn sase_memory_holds_events_and_pointers() {
    // §9.3: with growing predicate selectivity SASE stores more pointers
    // between the same events — memory grows, unlike GRETA's.
    let mut reg = TypeRegistry::new();
    reg.register_type("A", vec![("v", ValueKind::Int)]);
    let mut builder = EventBuilder::new();
    let a = reg.id_of("A").unwrap();
    // Increasing values → every pair satisfies v < NEXT(v): max pointers.
    let inc: Vec<Event> = (0..40)
        .map(|i| builder.event(i + 1, a, vec![Value::Int(i as i64)]))
        .collect();
    // Decreasing values → no pair satisfies it: min pointers.
    let mut builder = EventBuilder::new();
    let dec: Vec<Event> = (0..40)
        .map(|i| builder.event(i + 1, a, vec![Value::Int(-(i as i64))]))
        .collect();
    let q = parse(
        "RETURN COUNT(*) PATTERN A+ SEMANTICS ANY WHERE A.v < NEXT(A).v \
         WITHIN 1000 SLIDE 1000",
    )
    .unwrap();
    let mut mems = Vec::new();
    for events in [&dec, &inc] {
        let mut engine = sase_engine(&q, &reg).unwrap();
        for e in events.iter() {
            engine.process(e);
        }
        mems.push(engine.memory_bytes());
    }
    assert!(
        mems[1] > mems[0] + 40 * 4,
        "selective predicates must add pointer weight: {mems:?}"
    );
}

#[test]
fn flink_materialization_spike_is_measured() {
    // Flink constructs all sequences before aggregating; the router's
    // finalize-spike hook must expose that transient blow-up even though
    // periodic sampling happens between events.
    let reg = registry();
    let events = figure2_stream(&reg);
    let q =
        parse("RETURN COUNT(*) PATTERN (SEQ(A+, B))+ SEMANTICS ANY WITHIN 100 SLIDE 100").unwrap();
    let mut flink = flink_engine(&q, &reg, EngineConfig::default()).unwrap();
    let (results, peak) = run_to_completion(&mut flink, &events, 1);
    assert_eq!(results[0].values[0], AggValue::Count(43));
    let mut greta = greta_engine(&q, &reg).unwrap();
    let (_, greta_peak) = run_to_completion(&mut greta, &events, 1);
    assert!(
        peak > greta_peak,
        "43 materialized sequences must outweigh GRETA's 8-node graph: {peak} vs {greta_peak}"
    );
}

#[test]
fn flatten_cap_trades_coverage_for_feasibility() {
    // With a cap of 2, the flattening engines cover only trends of length
    // <= 2 — an undercount the §9.1 methodology accepts when the longest
    // match exceeds the flattened workload.
    let reg = registry();
    let events = figure2_stream(&reg);
    let q =
        parse("RETURN COUNT(*) PATTERN (SEQ(A+, B))+ SEMANTICS ANY WITHIN 100 SLIDE 100").unwrap();
    let capped = EngineConfig {
        flatten_cap: Some(2),
        ..EngineConfig::default()
    };
    let mut flink = flink_engine(&q, &reg, capped.clone()).unwrap();
    let (results, _) = run_to_completion(&mut flink, &events, 1);
    // Length-2 trends are exactly the adjacent (a, b) pairs: (a1,b2),
    // (a3,b6), (a4,b6), (a1,b6)? — no: (a1,b6) has length 2 as well
    // (skip-till-any-match may skip a3, a4). Pairs: every a before b2
    // (a1) and every a before b6 (a1,a3,a4) and before b8 (a1,a3,a4,a7):
    // 1 + 3 + 4 = 8.
    assert_eq!(results[0].values[0], AggValue::Count(8));

    let mut aseq = aseq_engine(&q, &reg, capped).unwrap();
    let (aseq_results, _) = run_to_completion(&mut aseq, &events, 1);
    assert_eq!(
        aseq_results[0].values[0],
        AggValue::Count(8),
        "A-Seq and Flink cover the same flattened workload"
    );
}

#[test]
fn aseq_memory_grows_with_window_content() {
    // Figure 8(b): A-Seq's aggregate count grows with the number of
    // events per window (one prefix-counter row per possible length).
    let mut reg = TypeRegistry::new();
    reg.register_type("A", vec![("v", ValueKind::Int)]);
    let a = reg.id_of("A").unwrap();
    let q = parse("RETURN COUNT(*) PATTERN A+ SEMANTICS ANY WITHIN 100000 SLIDE 100000").unwrap();
    let mut mems = Vec::new();
    for n in [100u64, 400] {
        let mut builder = EventBuilder::new();
        let mut engine = aseq_engine(&q, &reg, EngineConfig::default()).unwrap();
        for i in 0..n {
            engine.process(&builder.event(i + 1, a, vec![Value::Int(0)]));
        }
        mems.push(engine.memory_bytes());
    }
    assert!(
        mems[1] >= 3 * mems[0],
        "A-Seq memory must grow ~linearly with events: {mems:?}"
    );
}

#[test]
fn oracle_engine_runs_end_to_end() {
    let reg = registry();
    let events = figure2_stream(&reg);
    let q =
        parse("RETURN COUNT(*) PATTERN (SEQ(A+, B))+ SEMANTICS CONT WITHIN 100 SLIDE 100").unwrap();
    let mut oracle = oracle_engine(&q, &reg).unwrap();
    let (results, peak) = run_to_completion(&mut oracle, &events, 1);
    assert_eq!(results[0].values[0], AggValue::Count(2));
    // A two-step engine retains the window's events.
    assert!(peak >= events.iter().map(Event::memory_bytes).sum::<usize>());
}

#[test]
fn engine_names_are_stable() {
    // The experiment harness and EXPERIMENTS.md key on these.
    let reg = registry();
    let q = parse("RETURN COUNT(*) PATTERN A+ SEMANTICS ANY WITHIN 10 SLIDE 10").unwrap();
    assert_eq!(sase_engine(&q, &reg).unwrap().name(), "sase");
    assert_eq!(greta_engine(&q, &reg).unwrap().name(), "greta");
    assert_eq!(
        aseq_engine(&q, &reg, EngineConfig::default())
            .unwrap()
            .name(),
        "aseq"
    );
    assert_eq!(
        flink_engine(&q, &reg, EngineConfig::default())
            .unwrap()
            .name(),
        "flink"
    );
    assert_eq!(oracle_engine(&q, &reg).unwrap().name(), "oracle");
}
