//! Engine agreement: COGRA, SASE, GRETA, A-Seq, Flink and the brute-force
//! oracle must produce identical window results for every query each of
//! them supports (Table 9) — the paper's own correctness criterion is
//! returning "the same aggregates as the two-step approach".

use cogra_baselines::{aseq_engine, flink_engine, greta_engine, oracle_engine, sase_engine};
use cogra_core::runtime::EngineConfig;
use cogra_core::{run_to_completion, AggValue, CograEngine, TrendEngine, WindowResult};
use cogra_events::{Event, EventBuilder, TypeRegistry, Value, ValueKind};
use cogra_query::{parse, Semantics};
use proptest::prelude::*;

fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    for t in ["A", "B", "C", "D", "S"] {
        r.register_type(t, vec![("g", ValueKind::Int), ("v", ValueKind::Int)]);
    }
    r
}

/// A compact random stream description: (type index 0..=4, same-time flag,
/// group 0..2, value 0..5).
type RawEvent = (usize, bool, i64, i64);

fn build_stream(raw: &[RawEvent], reg: &TypeRegistry) -> Vec<Event> {
    let types = ["A", "B", "C", "D", "S"].map(|t| reg.id_of(t).unwrap());
    let mut b = EventBuilder::new();
    let mut t = 0u64;
    raw.iter()
        .map(|&(ty, same_time, g, v)| {
            if !same_time {
                t += 1;
            }
            b.event(t.max(1), types[ty], vec![Value::Int(g), Value::Int(v)])
        })
        .collect()
}

fn values_eq(a: &AggValue, b: &AggValue) -> bool {
    match (a, b) {
        (AggValue::Count(x), AggValue::Count(y)) => x == y,
        (AggValue::Null, AggValue::Null) => true,
        (AggValue::Float(x), AggValue::Float(y)) => {
            (x - y).abs() <= 1e-6 * (1.0 + x.abs().max(y.abs()))
        }
        _ => false,
    }
}

fn results_eq(a: &[WindowResult], b: &[WindowResult]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.window == y.window
                && x.group == y.group
                && x.values.len() == y.values.len()
                && x.values.iter().zip(&y.values).all(|(u, v)| values_eq(u, v))
        })
}

/// Run every engine that supports the query; assert all agree with the
/// oracle.
fn assert_agreement(query_text: &str, raw: &[RawEvent]) {
    let reg = registry();
    let events = build_stream(raw, &reg);
    let query = parse(query_text).unwrap();
    let cfg = EngineConfig::default();

    let mut oracle = oracle_engine(&query, &reg).unwrap();
    let (expected, _) = run_to_completion(&mut oracle, &events, 1);

    let mut engines: Vec<Box<dyn TrendEngine>> = vec![
        Box::new(CograEngine::build(&query, &reg).unwrap()),
        Box::new(sase_engine(&query, &reg).unwrap()),
    ];
    if query.semantics == Semantics::Any {
        engines.push(Box::new(greta_engine(&query, &reg).unwrap()));
        if let Ok(e) = aseq_engine(&query, &reg, cfg.clone()) {
            engines.push(Box::new(e));
        }
    }
    if query.semantics != Semantics::Next {
        engines.push(Box::new(flink_engine(&query, &reg, cfg).unwrap()));
    }

    for engine in &mut engines {
        let name = engine.name();
        let (got, _) = run_to_completion(engine.as_mut(), &events, usize::MAX);
        assert!(
            results_eq(&expected, &got),
            "{name} disagrees with oracle on `{query_text}`\nstream: {raw:?}\noracle: {expected:#?}\n{name}: {got:#?}"
        );
    }
}

const Q_KLEENE_ANY: &str = "RETURN g, COUNT(*) PATTERN (SEQ(A+, B))+ SEMANTICS ANY \
                            GROUP-BY g WITHIN 8 SLIDE 3";
const Q_KLEENE_NEXT: &str = "RETURN g, COUNT(*) PATTERN (SEQ(A+, B))+ SEMANTICS NEXT \
                             GROUP-BY g WITHIN 8 SLIDE 3";
const Q_KLEENE_CONT: &str = "RETURN g, COUNT(*) PATTERN (SEQ(A+, B))+ SEMANTICS CONT \
                             GROUP-BY g WITHIN 8 SLIDE 3";
const Q_UBER: &str = "RETURN g, COUNT(*) PATTERN SEQ(A, (SEQ(B, C))+, D) SEMANTICS NEXT \
                      GROUP-BY g WITHIN 10 SLIDE 5";
const Q_SHARED_TYPE: &str = "RETURN g, COUNT(*), AVG(Y.v) PATTERN SEQ(S X+, S Y+) \
                             SEMANTICS ANY GROUP-BY g WITHIN 8 SLIDE 4";
const Q_ADJ_PRED: &str = "RETURN g, COUNT(*) PATTERN (SEQ(A+, B))+ SEMANTICS ANY \
                          WHERE B.v <= NEXT(A).v GROUP-BY g WITHIN 8 SLIDE 3";
const Q_ADJ_SELF: &str = "RETURN g, COUNT(*), MAX(A.v) PATTERN A+ SEMANTICS ANY \
                          WHERE A.v < NEXT(A).v GROUP-BY g WITHIN 8 SLIDE 3";
const Q_LOCAL_CONT: &str = "RETURN g, COUNT(*) PATTERN A+ SEMANTICS CONT \
                            WHERE A.v > 1 GROUP-BY g WITHIN 8 SLIDE 3";
const Q_AGGS: &str = "RETURN g, COUNT(*), COUNT(A), MIN(A.v), MAX(B.v), SUM(A.v), AVG(A.v) \
                      PATTERN SEQ(A+, B) SEMANTICS ANY GROUP-BY g WITHIN 8 SLIDE 3";
const Q_NEGATION: &str = "RETURN g, COUNT(*) PATTERN SEQ(A+, NOT C, B) SEMANTICS ANY \
                          GROUP-BY g WITHIN 8 SLIDE 3";
const Q_STAR: &str = "RETURN g, COUNT(*) PATTERN SEQ(A*, B) SEMANTICS ANY \
                      GROUP-BY g WITHIN 8 SLIDE 3";
const Q_DISJUNCTION: &str = "RETURN g, COUNT(*) PATTERN OR(SEQ(A+, B), SEQ(C, D)) \
                             SEMANTICS ANY GROUP-BY g WITHIN 8 SLIDE 3";
// Degenerate nesting: `(A+)+` must behave exactly like `A+` (adjacency is
// a relation, not a multiset of derivations — regression test for the
// duplicate-edge bug the automaton property tests caught).
const Q_NESTED_PLUS: &str = "RETURN g, COUNT(*) PATTERN ((A+)+)+ SEMANTICS ANY \
                             GROUP-BY g WITHIN 8 SLIDE 3";

const ALL_QUERIES: &[&str] = &[
    Q_KLEENE_ANY,
    Q_KLEENE_NEXT,
    Q_KLEENE_CONT,
    Q_UBER,
    Q_SHARED_TYPE,
    Q_ADJ_PRED,
    Q_ADJ_SELF,
    Q_LOCAL_CONT,
    Q_AGGS,
    Q_NEGATION,
    Q_STAR,
    Q_DISJUNCTION,
    Q_NESTED_PLUS,
];

#[test]
fn figure2_stream_all_queries() {
    // The running example stream shape: a b a a c b a b, one group.
    let raw: Vec<RawEvent> = [0, 1, 0, 0, 2, 1, 0, 1]
        .iter()
        .enumerate()
        .map(|(i, &ty)| (ty, false, 0, (i as i64 * 3) % 6))
        .collect();
    for q in ALL_QUERIES {
        assert_agreement(q, &raw);
    }
}

#[test]
fn two_groups_interleaved() {
    let raw: Vec<RawEvent> = vec![
        (0, false, 0, 1),
        (0, false, 1, 2),
        (1, false, 0, 3),
        (1, false, 1, 0),
        (0, false, 0, 4),
        (2, false, 1, 1),
        (1, false, 0, 5),
        (3, false, 1, 2),
        (4, false, 0, 3),
        (4, false, 1, 4),
    ];
    for q in ALL_QUERIES {
        assert_agreement(q, &raw);
    }
}

#[test]
fn simultaneous_events_never_chain() {
    // Pairs of same-time events: Definition 7 condition 2 forbids them
    // from being adjacent.
    let raw: Vec<RawEvent> = vec![
        (0, false, 0, 1),
        (0, true, 0, 2),
        (1, false, 0, 3),
        (1, true, 0, 1),
        (0, false, 0, 2),
        (1, false, 0, 5),
    ];
    for q in ALL_QUERIES {
        assert_agreement(q, &raw);
    }
}

#[test]
fn empty_and_irrelevant_streams() {
    assert_agreement(Q_KLEENE_ANY, &[]);
    // Only C/D events: no A/B matches for the Kleene queries.
    let raw: Vec<RawEvent> = vec![(2, false, 0, 1), (3, false, 0, 2), (2, false, 0, 3)];
    assert_agreement(Q_KLEENE_ANY, &raw);
    assert_agreement(Q_KLEENE_CONT, &raw);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_streams_agree_any(raw in proptest::collection::vec(
        (0usize..5, any::<bool>(), 0i64..2, 0i64..5), 0..12)) {
        assert_agreement(Q_KLEENE_ANY, &raw);
        assert_agreement(Q_ADJ_PRED, &raw);
        assert_agreement(Q_SHARED_TYPE, &raw);
        assert_agreement(Q_AGGS, &raw);
    }

    #[test]
    fn random_streams_agree_next_cont(raw in proptest::collection::vec(
        (0usize..5, any::<bool>(), 0i64..2, 0i64..5), 0..14)) {
        assert_agreement(Q_KLEENE_NEXT, &raw);
        assert_agreement(Q_KLEENE_CONT, &raw);
        assert_agreement(Q_UBER, &raw);
        assert_agreement(Q_LOCAL_CONT, &raw);
    }

    #[test]
    fn random_streams_agree_extensions(raw in proptest::collection::vec(
        (0usize..5, any::<bool>(), 0i64..2, 0i64..5), 0..11)) {
        assert_agreement(Q_NEGATION, &raw);
        assert_agreement(Q_STAR, &raw);
        assert_agreement(Q_DISJUNCTION, &raw);
        assert_agreement(Q_ADJ_SELF, &raw);
        assert_agreement(Q_NESTED_PLUS, &raw);
    }
}
