//! Expressive power of the event aggregation approaches (Table 9).
//!
//! | Approach | Kleene | ANY | NEXT | CONT | adjacent θ | online |
//! |----------|--------|-----|------|------|------------|--------|
//! | Flink    | –¹     | +   | –    | +    | +          | –      |
//! | SASE     | +      | +   | +    | +    | +          | –      |
//! | GRETA    | +      | +   | –    | –    | +          | +      |
//! | A-Seq    | –¹     | +   | –    | –    | –          | +      |
//! | COGRA    | +      | +   | +    | +    | +          | +      |
//!
//! ¹ Kleene closure simulated by flattening into fixed-length sequence
//! queries (§9.1).

use cogra_query::{CompiledQuery, Semantics};

/// Capability flags of one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Native Kleene closure (true) or flattening simulation (false).
    pub native_kleene: bool,
    /// Skip-till-any-match.
    pub any: bool,
    /// Skip-till-next-match.
    pub next: bool,
    /// Contiguous.
    pub cont: bool,
    /// Predicates on adjacent events beyond equivalence predicates.
    pub adjacent_predicates: bool,
    /// Online trend aggregation (no trend construction step).
    pub online: bool,
}

impl Capabilities {
    /// Table 9 row for COGRA.
    pub const COGRA: Capabilities = Capabilities {
        native_kleene: true,
        any: true,
        next: true,
        cont: true,
        adjacent_predicates: true,
        online: true,
    };

    /// Table 9 row for SASE.
    pub const SASE: Capabilities = Capabilities {
        native_kleene: true,
        any: true,
        next: true,
        cont: true,
        adjacent_predicates: true,
        online: false,
    };

    /// Table 9 row for GRETA.
    pub const GRETA: Capabilities = Capabilities {
        native_kleene: true,
        any: true,
        next: false,
        cont: false,
        adjacent_predicates: true,
        online: true,
    };

    /// Table 9 row for A-Seq.
    pub const ASEQ: Capabilities = Capabilities {
        native_kleene: false,
        any: true,
        next: false,
        cont: false,
        adjacent_predicates: false,
        online: true,
    };

    /// Table 9 row for Flink.
    pub const FLINK: Capabilities = Capabilities {
        native_kleene: false,
        any: true,
        next: false,
        cont: true,
        adjacent_predicates: true,
        online: false,
    };

    /// The oracle supports every query feature (it enumerates trends by
    /// the definitions, at exponential cost).
    pub const ORACLE: Capabilities = Capabilities {
        native_kleene: true,
        any: true,
        next: true,
        cont: true,
        adjacent_predicates: true,
        online: false,
    };

    /// Whether this engine supports `query`; `Err` names the missing
    /// feature.
    pub fn supports(&self, query: &CompiledQuery) -> Result<(), Unsupported> {
        match query.semantics {
            Semantics::Any if !self.any => return Err(Unsupported("skip-till-any-match")),
            Semantics::Next if !self.next => return Err(Unsupported("skip-till-next-match")),
            Semantics::Cont if !self.cont => return Err(Unsupported("contiguous semantics")),
            _ => {}
        }
        if !self.adjacent_predicates && query.disjuncts.iter().any(|d| !d.adjacents.is_empty()) {
            return Err(Unsupported("predicates on adjacent events"));
        }
        Ok(())
    }
}

/// A query feature an engine lacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unsupported(pub &'static str);

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "engine does not support {}", self.0)
    }
}

impl std::error::Error for Unsupported {}

#[cfg(test)]
mod tests {
    use super::*;
    use cogra_events::{TypeRegistry, ValueKind};

    fn compiled(src: &str) -> CompiledQuery {
        let mut reg = TypeRegistry::new();
        reg.register_type("A", vec![("v", ValueKind::Int)]);
        reg.register_type("B", vec![("v", ValueKind::Int)]);
        let q = cogra_query::parse(src).unwrap();
        cogra_query::compile(&q, &reg).unwrap()
    }

    #[test]
    fn greta_rejects_next_semantics() {
        let q = compiled("RETURN COUNT(*) PATTERN A+ SEMANTICS NEXT WITHIN 10 SLIDE 10");
        assert!(Capabilities::GRETA.supports(&q).is_err());
        assert!(Capabilities::SASE.supports(&q).is_ok());
        assert!(Capabilities::COGRA.supports(&q).is_ok());
        assert!(Capabilities::FLINK.supports(&q).is_err());
    }

    #[test]
    fn aseq_rejects_adjacent_predicates() {
        let q = compiled(
            "RETURN COUNT(*) PATTERN A+ SEMANTICS ANY WHERE A.v < NEXT(A).v WITHIN 10 SLIDE 10",
        );
        let err = Capabilities::ASEQ.supports(&q).unwrap_err();
        assert!(err.to_string().contains("adjacent"));
        assert!(Capabilities::GRETA.supports(&q).is_ok());
    }

    #[test]
    fn flink_supports_cont_but_not_next() {
        let cont = compiled("RETURN COUNT(*) PATTERN A+ SEMANTICS CONT WITHIN 10 SLIDE 10");
        assert!(Capabilities::FLINK.supports(&cont).is_ok());
        let any = compiled("RETURN COUNT(*) PATTERN A+ SEMANTICS ANY WITHIN 10 SLIDE 10");
        assert!(Capabilities::FLINK.supports(&any).is_ok());
    }
}
