//! Brute-force reference engine: materializes every finished trend by the
//! event-matching-semantics definitions (§2.2) and aggregates trend by
//! trend. Exponential in time and memory — its only job is to be obviously
//! correct, as the ground truth for the engine-agreement tests and the
//! Table 3 trend-count experiment.

use cogra_engine::runtime::DisjunctRuntime;
use cogra_engine::{Cell, EventBinds, QueryRuntime, Router, WindowAlgo};
use cogra_events::{Event, Timestamp, TypeRegistry};
use cogra_query::{compile, CompiledQuery, Query, QueryResult, Semantics, StateId};
use std::sync::Arc;

/// A finished trend: `(index into the window's event list, bound state)`
/// per element.
pub type Trend = Vec<(usize, StateId)>;

/// Index of negation matches for interval queries.
struct NegIndex {
    /// Per negated variable: sorted match time stamps.
    times: Vec<Vec<Timestamp>>,
}

impl NegIndex {
    fn build(rt: &DisjunctRuntime, events: &[Event]) -> NegIndex {
        let mut times = vec![Vec::new(); rt.disjunct.automaton.num_negated()];
        let mut scratch = Vec::new();
        for e in events {
            rt.negation_matches(e, &mut scratch);
            for n in &scratch {
                times[n.index()].push(e.time);
            }
        }
        NegIndex { times }
    }

    /// Is there a match of `n` strictly inside `(after, before)`?
    fn blocked(&self, n: cogra_query::NegId, after: Timestamp, before: Timestamp) -> bool {
        self.times[n.index()]
            .iter()
            .any(|&t| t > after && t < before)
    }
}

/// Whether `ep@from` and `e@to` are adjacent (Definition 7): predecessor
/// edge, strictly increasing time, adjacency predicates, no blocking
/// negation match in between.
fn adjacent(
    rt: &DisjunctRuntime,
    negs: &NegIndex,
    from: StateId,
    to: StateId,
    ep: &Event,
    e: &Event,
) -> bool {
    if ep.time >= e.time {
        return false;
    }
    let Some(edge) = rt.disjunct.automaton.edge(from, to) else {
        return false;
    };
    if !rt.disjunct.adjacency_predicates_pass(from, to, ep, e) {
        return false;
    }
    !edge
        .negations
        .iter()
        .any(|&n| negs.blocked(n, ep.time, e.time))
}

/// Visit every finished trend of one disjunct under skip-till-any-match
/// (Definition 2): every strictly-time-increasing path through the FSA
/// from the start state, reported whenever it reaches the end state.
pub fn visit_any<F: FnMut(&[(usize, StateId)])>(rt: &DisjunctRuntime, events: &[Event], f: F) {
    visit_any_capped(rt, events, None, f)
}

/// [`visit_any`] pruned at `cap` trend elements — the trend set a
/// flattening engine (Flink, §9.1) covers with sequence queries up to
/// length `cap`.
pub fn visit_any_capped<F: FnMut(&[(usize, StateId)])>(
    rt: &DisjunctRuntime,
    events: &[Event],
    cap: Option<usize>,
    mut f: F,
) {
    let negs = NegIndex::build(rt, events);
    let binds: Vec<Vec<StateId>> = bind_table(rt, events);
    let mut path: Vec<(usize, StateId)> = Vec::new();
    let cap = cap.unwrap_or(usize::MAX);
    if cap == 0 {
        return;
    }

    fn rec<F: FnMut(&[(usize, StateId)])>(
        rt: &DisjunctRuntime,
        events: &[Event],
        binds: &[Vec<StateId>],
        negs: &NegIndex,
        cap: usize,
        path: &mut Vec<(usize, StateId)>,
        f: &mut F,
    ) {
        let &(i, s) = path.last().expect("path never empty in rec");
        if s == rt.end() {
            f(path);
        }
        if path.len() >= cap {
            return;
        }
        for (j, event) in events.iter().enumerate().skip(i + 1) {
            if event.time <= events[i].time {
                continue;
            }
            for &s2 in &binds[j] {
                if adjacent(rt, negs, s, s2, &events[i], event) {
                    path.push((j, s2));
                    rec(rt, events, binds, negs, cap, path, f);
                    path.pop();
                }
            }
        }
    }

    for i in 0..events.len() {
        for &s in &binds[i] {
            if rt.is_start(s) {
                path.push((i, s));
                rec(rt, events, &binds, &negs, cap, &mut path, &mut f);
                path.pop();
            }
        }
    }
}

/// Visit the contiguous trends (Definition 4) by positional enumeration:
/// from every start position, extend the path only with the immediately
/// following event of the partitioned sub-stream. Used by the Flink
/// baseline; equivalent to the chain-based CONT semantics of
/// [`visit_chain`] (checked by the engine-agreement tests).
pub fn visit_cont_positional<F: FnMut(&[(usize, StateId)])>(
    rt: &DisjunctRuntime,
    events: &[Event],
    cap: Option<usize>,
    mut f: F,
) {
    let negs = NegIndex::build(rt, events);
    let binds = bind_table(rt, events);
    let cap = cap.unwrap_or(usize::MAX);
    if cap == 0 {
        return;
    }
    let mut path: Vec<(usize, StateId)> = Vec::new();

    fn rec<F: FnMut(&[(usize, StateId)])>(
        rt: &DisjunctRuntime,
        events: &[Event],
        binds: &[Vec<StateId>],
        negs: &NegIndex,
        cap: usize,
        path: &mut Vec<(usize, StateId)>,
        f: &mut F,
    ) {
        let &(i, s) = path.last().expect("path never empty in rec");
        if s == rt.end() {
            f(path);
        }
        if path.len() >= cap {
            return;
        }
        let j = i + 1; // contiguous: only the immediately next event
        if j >= events.len() {
            return;
        }
        for &s2 in &binds[j] {
            if adjacent(rt, negs, s, s2, &events[i], &events[j]) {
                path.push((j, s2));
                rec(rt, events, binds, negs, cap, path, f);
                path.pop();
            }
        }
    }

    for i in 0..events.len() {
        for &s in &binds[i] {
            if rt.is_start(s) {
                path.push((i, s));
                rec(rt, events, &binds, &negs, cap, &mut path, &mut f);
                path.pop();
            }
        }
    }
}

/// Visit every finished trend of one disjunct under skip-till-next-match
/// or contiguous semantics, following the operational single-predecessor
/// chain the paper's Algorithm 3 and Theorem 6.1 define (see DESIGN.md,
/// "Semantics notes"): each matched event's predecessor is the previous
/// matched event; under CONT an unmatched event invalidates the open
/// partial trends.
pub fn visit_chain<F: FnMut(&[(usize, StateId)])>(
    rt: &DisjunctRuntime,
    events: &[Event],
    semantics: Semantics,
    mut f: F,
) {
    assert!(matches!(semantics, Semantics::Next | Semantics::Cont));
    let negs = NegIndex::build(rt, events);
    let binds = bind_table(rt, events);
    let n_states = rt.disjunct.automaton.num_states();
    // Last matched event with, per state, the partial trends ending there.
    let mut el: Option<(usize, Vec<Vec<Trend>>)> = None;
    for (i, event) in events.iter().enumerate() {
        let mut new_trends: Vec<Vec<Trend>> = vec![Vec::new(); n_states];
        let mut matched = false;
        for &s in &binds[i] {
            let mut trends: Vec<Trend> = Vec::new();
            if rt.is_start(s) {
                trends.push(vec![(i, s)]);
            }
            if let Some((ei, prev)) = &el {
                for (sp, prev_trends) in prev.iter().enumerate() {
                    if prev_trends.is_empty() {
                        continue;
                    }
                    let sp = StateId(sp as u32);
                    if adjacent(rt, &negs, sp, s, &events[*ei], event) {
                        for tr in prev_trends {
                            let mut ext = tr.clone();
                            ext.push((i, s));
                            trends.push(ext);
                        }
                    }
                }
            }
            if trends.is_empty() {
                continue;
            }
            matched = true;
            if s == rt.end() {
                for tr in &trends {
                    f(tr);
                }
            }
            new_trends[s.index()] = trends;
        }
        if matched {
            el = Some((i, new_trends));
        } else if semantics == Semantics::Cont {
            el = None;
        }
    }
}

fn bind_table(rt: &DisjunctRuntime, events: &[Event]) -> Vec<Vec<StateId>> {
    let mut scratch = Vec::new();
    events
        .iter()
        .map(|e| {
            rt.binds(e, &mut scratch);
            scratch.clone()
        })
        .collect()
}

/// Aggregate one trend into a cell (count 1, per-occurrence slot
/// contributions).
pub fn trend_cell(rt: &DisjunctRuntime, events: &[Event], trend: &[(usize, StateId)]) -> Cell {
    let mut cell = rt.zero_cell();
    cell.start_trend();
    for &(i, s) in trend {
        cell.contribute(rt.feeds.of(s), &events[i]);
    }
    cell
}

/// Count the finished trends of one disjunct without materializing them —
/// used by the Table 3 experiment.
pub fn count_trends(rt: &DisjunctRuntime, events: &[Event], semantics: Semantics) -> u64 {
    let mut n = 0u64;
    match semantics {
        Semantics::Any => visit_any(rt, events, |_| n = n.wrapping_add(1)),
        _ => visit_chain(rt, events, semantics, |_| n = n.wrapping_add(1)),
    }
    n
}

/// The oracle's per-window state: the full event list (a two-step
/// approach must retain every event until the window closes).
#[derive(Debug)]
pub struct OracleWindow {
    events: Vec<Event>,
}

impl WindowAlgo for OracleWindow {
    fn new(_rt: &QueryRuntime) -> OracleWindow {
        OracleWindow { events: Vec::new() }
    }

    fn on_event(&mut self, _rt: &QueryRuntime, event: &Event, _binds: &EventBinds) {
        self.events.push(event.clone());
    }

    fn final_cell(&mut self, rt: &QueryRuntime) -> Cell {
        let mut total: Option<Cell> = None;
        for drt in &rt.disjuncts {
            let mut acc = drt.zero_cell();
            let visit = |tr: &[(usize, StateId)]| {
                acc.merge(&trend_cell(drt, &self.events, tr));
            };
            match rt.query.semantics {
                Semantics::Any => visit_any(drt, &self.events, visit),
                s => visit_chain(drt, &self.events, s, visit),
            }
            match &mut total {
                None => total = Some(acc),
                Some(t) => t.merge(&acc),
            }
        }
        total.expect("at least one disjunct")
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.events.iter().map(Event::memory_bytes).sum::<usize>()
    }

    fn save(&self, _rt: &QueryRuntime, enc: &mut cogra_checkpoint::Enc) {
        Event::save_slice(&self.events, enc);
    }

    fn load(
        _rt: &QueryRuntime,
        dec: &mut cogra_checkpoint::Dec,
    ) -> Result<OracleWindow, cogra_checkpoint::CheckpointError> {
        Ok(OracleWindow {
            events: Event::load_vec(dec)?,
        })
    }
}

/// The oracle engine.
pub type OracleEngine = Router<OracleWindow>;

/// Runtime for an already-compiled plan (the oracle supports everything).
/// Shared by [`oracle_engine_from_plan`] and checkpoint restore.
pub fn oracle_runtime(
    compiled: &CompiledQuery,
    registry: &TypeRegistry,
) -> QueryResult<Arc<QueryRuntime>> {
    Ok(Arc::new(QueryRuntime::new(compiled.clone(), registry)))
}

/// Build an oracle engine from an already-compiled plan.
pub fn oracle_engine_from_plan(
    compiled: &CompiledQuery,
    registry: &TypeRegistry,
) -> QueryResult<OracleEngine> {
    Ok(Router::new(oracle_runtime(compiled, registry)?, "oracle"))
}

/// Build an oracle engine for a parsed query.
pub fn oracle_engine(query: &Query, registry: &TypeRegistry) -> QueryResult<OracleEngine> {
    oracle_engine_from_plan(&compile(query, registry)?, registry)
}
