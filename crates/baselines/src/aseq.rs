//! A-Seq baseline (Qi, Cao, Ray, Rundensteiner, SIGMOD 2014; §9.1).
//!
//! A-Seq aggregates *fixed-length* event sequences online by maintaining a
//! count per pattern prefix — but it has no Kleene closure. Per the
//! paper's methodology, a Kleene query is flattened into the set of
//! fixed-length sequence queries covering every match length; the number
//! of such queries (and hence A-Seq's aggregate count) grows with the
//! longest match, i.e. linearly in the number of events per window, which
//! is exactly the memory gap Figure 8(b) reports.
//!
//! The flattened workload is evaluated jointly: `counts[k][s]` is the
//! prefix aggregate for matches of length `k + 1` ending at state `s` —
//! running one prefix counter per (length, position) is equivalent to
//! running every flattened query's counters and avoids enumerating the
//! (combinatorially many) per-query type sequences. A new event bound to
//! `s` updates `counts[k][s] += Σ_{s' ∈ preds(s)} counts[k-1][s']` for
//! every `k`, so per-event work also grows with the window length.
//!
//! Supported: skip-till-any-match, equivalence predicates, grouping,
//! windows. Not supported (Table 9): other semantics, predicates on
//! adjacent events, negation.

use cogra_engine::runtime::EngineConfig;
use cogra_engine::{Cell, EventBinds, QueryRuntime, Router, WindowAlgo};
use cogra_events::{Event, Timestamp, TypeRegistry};
use cogra_query::{compile, CompiledQuery, Query, QueryError, QueryResult, Semantics, StateId};
use std::sync::Arc;

/// Per-disjunct prefix counters.
#[derive(Debug)]
struct PrefixCounters {
    /// `counts[k][s]`: aggregate over matches of length `k + 1` ending at
    /// state `s`. Grows as longer matches become possible.
    counts: Vec<Vec<Cell>>,
    pending: Vec<(usize, StateId, Cell)>,
    pending_time: Timestamp,
}

/// Per-window A-Seq state.
#[derive(Debug)]
pub struct ASeqWindow {
    disjuncts: Vec<PrefixCounters>,
}

impl WindowAlgo for ASeqWindow {
    fn new(rt: &QueryRuntime) -> ASeqWindow {
        ASeqWindow {
            disjuncts: rt
                .disjuncts
                .iter()
                .map(|_| PrefixCounters {
                    counts: Vec::new(),
                    pending: Vec::new(),
                    pending_time: Timestamp::ZERO,
                })
                .collect(),
        }
    }

    fn on_event(&mut self, rt: &QueryRuntime, event: &Event, binds: &EventBinds) {
        let cap = rt.config.flatten_cap.unwrap_or(usize::MAX);
        for ((pc, drt), (states, _)) in self
            .disjuncts
            .iter_mut()
            .zip(&rt.disjuncts)
            .zip(&binds.per_disjunct)
        {
            if states.is_empty() {
                continue;
            }
            pc.commit_if_past(event.time);
            let n_states = drt.disjunct.automaton.num_states();
            // A longer match than any seen so far may now exist.
            if pc.counts.len() < cap {
                pc.counts.push(vec![drt.zero_cell(); n_states]);
            }
            for &s in states {
                // Length 1: this event alone, if it is the start type.
                if drt.is_start(s) {
                    let mut cell = drt.zero_cell();
                    cell.start_trend();
                    cell.contribute(drt.feeds.of(s), event);
                    pc.pending.push((0, s, cell));
                }
                // Length k+1: extend every (k)-prefix of a predecessor.
                for k in 1..pc.counts.len() {
                    let mut cell = drt.zero_cell();
                    for src in &drt.pred_sources[s.index()] {
                        cell.merge(&pc.counts[k - 1][src.from.index()]);
                    }
                    if cell.is_zero() {
                        continue;
                    }
                    cell.contribute(drt.feeds.of(s), event);
                    pc.pending.push((k, s, cell));
                }
            }
        }
    }

    fn final_cell(&mut self, rt: &QueryRuntime) -> Cell {
        let mut total: Option<Cell> = None;
        for (pc, drt) in self.disjuncts.iter_mut().zip(&rt.disjuncts) {
            pc.commit();
            // The flattened workload's result: Σ over lengths of the
            // end-state aggregate.
            let mut acc = drt.zero_cell();
            for row in &pc.counts {
                acc.merge(&row[drt.end().index()]);
            }
            match &mut total {
                None => total = Some(acc),
                Some(t) => t.merge(&acc),
            }
        }
        total.expect("at least one disjunct")
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .disjuncts
                .iter()
                .map(|pc| {
                    pc.counts
                        .iter()
                        .flat_map(|row| row.iter().map(Cell::memory_bytes))
                        .sum::<usize>()
                        + pc.pending
                            .iter()
                            .map(|(_, _, c)| c.memory_bytes())
                            .sum::<usize>()
                })
                .sum::<usize>()
    }

    fn save(&self, _rt: &QueryRuntime, enc: &mut cogra_checkpoint::Enc) {
        enc.usize(self.disjuncts.len());
        for pc in &self.disjuncts {
            enc.usize(pc.counts.len());
            for row in &pc.counts {
                Cell::save_slice(row, enc);
            }
            enc.usize(pc.pending.len());
            for (k, s, c) in &pc.pending {
                enc.usize(*k);
                enc.u32(s.0);
                c.save(enc);
            }
            enc.u64(pc.pending_time.ticks());
        }
    }

    fn load(
        rt: &QueryRuntime,
        dec: &mut cogra_checkpoint::Dec,
    ) -> Result<ASeqWindow, cogra_checkpoint::CheckpointError> {
        use cogra_checkpoint::CheckpointError;
        let n = dec.usize()?;
        if n != rt.disjuncts.len() {
            return Err(CheckpointError::Corrupt(format!(
                "A-Seq window has {n} disjuncts, query has {}",
                rt.disjuncts.len()
            )));
        }
        let mut disjuncts = Vec::with_capacity(n);
        for drt in &rt.disjuncts {
            let n_states = drt.disjunct.automaton.num_states();
            let n_rows = dec.usize()?;
            let mut counts = Vec::with_capacity(n_rows.min(1024));
            for _ in 0..n_rows {
                let row = Cell::load_vec(dec)?;
                if row.len() != n_states {
                    return Err(CheckpointError::Corrupt(format!(
                        "A-Seq counter row has {} cells for a {n_states}-state automaton",
                        row.len()
                    )));
                }
                counts.push(row);
            }
            let n_pending = dec.usize()?;
            let mut pending = Vec::with_capacity(n_pending.min(1024));
            for _ in 0..n_pending {
                let k = dec.usize()?;
                if k >= counts.len() {
                    return Err(CheckpointError::Corrupt(format!(
                        "A-Seq pending update targets missing counter row {k}"
                    )));
                }
                let s = StateId(dec.u32()?);
                pending.push((k, s, Cell::load(dec)?));
            }
            let pending_time = Timestamp(dec.u64()?);
            disjuncts.push(PrefixCounters {
                counts,
                pending,
                pending_time,
            });
        }
        Ok(ASeqWindow { disjuncts })
    }
}

impl PrefixCounters {
    fn commit(&mut self) {
        for (k, s, cell) in self.pending.drain(..) {
            self.counts[k][s.index()].merge(&cell);
        }
    }

    fn commit_if_past(&mut self, t: Timestamp) {
        if t > self.pending_time {
            self.commit();
            self.pending_time = t;
        }
    }
}

/// The A-Seq engine.
pub type ASeqEngine = Router<ASeqWindow>;

/// Runtime for an already-compiled plan. Fails for query features outside
/// Table 9's A-Seq row (non-ANY semantics, adjacent predicates, negation).
/// Shared by [`aseq_engine_from_plan`] and checkpoint restore.
pub fn aseq_runtime(
    compiled: &CompiledQuery,
    registry: &TypeRegistry,
    config: EngineConfig,
) -> QueryResult<Arc<QueryRuntime>> {
    if compiled.semantics != Semantics::Any {
        return Err(QueryError::compile(
            "A-Seq supports only skip-till-any-match (Table 9)",
        ));
    }
    if compiled.disjuncts.iter().any(|d| !d.adjacents.is_empty()) {
        return Err(QueryError::compile(
            "A-Seq does not support predicates on adjacent events (Table 9)",
        ));
    }
    if compiled
        .disjuncts
        .iter()
        .any(|d| d.automaton.num_negated() > 0)
    {
        return Err(QueryError::compile(
            "A-Seq does not support negated sub-patterns",
        ));
    }
    Ok(Arc::new(
        QueryRuntime::new(compiled.clone(), registry).with_config(config),
    ))
}

/// Build an A-Seq engine from an already-compiled plan.
pub fn aseq_engine_from_plan(
    compiled: &CompiledQuery,
    registry: &TypeRegistry,
    config: EngineConfig,
) -> QueryResult<ASeqEngine> {
    Ok(Router::new(
        aseq_runtime(compiled, registry, config)?,
        "aseq",
    ))
}

/// Build an A-Seq engine. Fails for query features outside Table 9's
/// A-Seq row (non-ANY semantics, adjacent predicates, negation).
pub fn aseq_engine(
    query: &Query,
    registry: &TypeRegistry,
    config: EngineConfig,
) -> QueryResult<ASeqEngine> {
    aseq_engine_from_plan(&compile(query, registry)?, registry, config)
}
