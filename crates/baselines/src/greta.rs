//! GRETA baseline (Poppe et al., VLDB 2017; §9.1 of the COGRA paper).
//!
//! GRETA captures *all* matched events and their trend relationships as a
//! graph and computes trend aggregation online on top of it — no trend
//! construction, but aggregates at the **finest granularity**: one per
//! matched event. It supports only skip-till-any-match.
//!
//! In COGRA's vocabulary, GRETA is the degenerate mixed-grained aggregator
//! with `Te` = *all* states: every matched event is stored with its
//! event-grained cell, and every new event scans all stored predecessor
//! events. Time O(n²) per window, space Θ(n) — the gap to COGRA's
//! O(n·l)/Θ(l) is exactly what Figures 7–10 measure.

use cogra_engine::runtime::DisjunctRuntime;
use cogra_engine::{Cell, EventBinds, QueryRuntime, Router, WindowAlgo};
use cogra_events::{Event, TypeRegistry};
use cogra_query::{compile, CompiledQuery, Query, QueryResult, Semantics, StateId};
use std::sync::Arc;

/// A graph node: a matched event with its per-binding aggregate.
#[derive(Debug)]
struct Node {
    event: Event,
    state: StateId,
    cell: Cell,
}

/// Per-disjunct GRETA graph.
#[derive(Debug)]
struct Graph {
    nodes: Vec<Node>,
    final_acc: Cell,
    neg_clocks: Vec<cogra_engine::runtime::NegClock>,
}

/// Per-window GRETA state.
#[derive(Debug)]
pub struct GretaWindow {
    graphs: Vec<Graph>,
}

impl WindowAlgo for GretaWindow {
    fn new(rt: &QueryRuntime) -> GretaWindow {
        GretaWindow {
            graphs: rt
                .disjuncts
                .iter()
                .map(|d| Graph {
                    nodes: Vec::new(),
                    final_acc: d.zero_cell(),
                    neg_clocks: vec![Default::default(); d.disjunct.automaton.num_negated()],
                })
                .collect(),
        }
    }

    fn on_event(&mut self, rt: &QueryRuntime, event: &Event, binds: &EventBinds) {
        for ((graph, drt), (states, negs)) in self
            .graphs
            .iter_mut()
            .zip(&rt.disjuncts)
            .zip(&binds.per_disjunct)
        {
            for &n in negs {
                graph.neg_clocks[n.index()].record(event.time);
            }
            for &s in states {
                let cell = compute_cell(graph, drt, event, s);
                let Some(cell) = cell else { continue };
                if s == drt.end() {
                    graph.final_acc.merge(&cell);
                }
                graph.nodes.push(Node {
                    event: event.clone(),
                    state: s,
                    cell,
                });
            }
        }
    }

    fn final_cell(&mut self, rt: &QueryRuntime) -> Cell {
        let mut total: Option<Cell> = None;
        for graph in &self.graphs {
            match &mut total {
                None => total = Some(graph.final_acc.clone()),
                Some(t) => t.merge(&graph.final_acc),
            }
        }
        let _ = rt;
        total.expect("at least one disjunct")
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .graphs
                .iter()
                .map(|g| {
                    g.final_acc.memory_bytes()
                        + g.nodes
                            .iter()
                            .map(|n| n.event.memory_bytes() + n.cell.memory_bytes())
                            .sum::<usize>()
                })
                .sum::<usize>()
    }

    fn save(&self, _rt: &QueryRuntime, enc: &mut cogra_checkpoint::Enc) {
        enc.usize(self.graphs.len());
        for g in &self.graphs {
            enc.usize(g.nodes.len());
            for n in &g.nodes {
                n.event.save(enc);
                enc.u32(n.state.0);
                n.cell.save(enc);
            }
            g.final_acc.save(enc);
            enc.usize(g.neg_clocks.len());
            for c in &g.neg_clocks {
                c.save(enc);
            }
        }
    }

    fn load(
        rt: &QueryRuntime,
        dec: &mut cogra_checkpoint::Dec,
    ) -> Result<GretaWindow, cogra_checkpoint::CheckpointError> {
        use cogra_checkpoint::CheckpointError;
        let n = dec.usize()?;
        if n != rt.disjuncts.len() {
            return Err(CheckpointError::Corrupt(format!(
                "GRETA window has {n} disjuncts, query has {}",
                rt.disjuncts.len()
            )));
        }
        let mut graphs = Vec::with_capacity(n);
        for drt in &rt.disjuncts {
            let n_nodes = dec.usize()?;
            let mut nodes = Vec::with_capacity(n_nodes.min(1024));
            for _ in 0..n_nodes {
                let event = Event::load(dec)?;
                let state = StateId(dec.u32()?);
                nodes.push(Node {
                    event,
                    state,
                    cell: Cell::load(dec)?,
                });
            }
            let final_acc = Cell::load(dec)?;
            let n_clocks = dec.usize()?;
            if n_clocks != drt.disjunct.automaton.num_negated() {
                return Err(CheckpointError::Corrupt(format!(
                    "GRETA window has {n_clocks} negation clocks for {} negated variables",
                    drt.disjunct.automaton.num_negated()
                )));
            }
            let mut neg_clocks = Vec::with_capacity(n_clocks);
            for _ in 0..n_clocks {
                neg_clocks.push(cogra_engine::runtime::NegClock::load(dec)?);
            }
            graphs.push(Graph {
                nodes,
                final_acc,
                neg_clocks,
            });
        }
        Ok(GretaWindow { graphs })
    }
}

/// GRETA's per-event aggregate: scan all stored predecessor events
/// (Definition 7 adjacency, evaluated per pair).
fn compute_cell(graph: &Graph, drt: &DisjunctRuntime, event: &Event, s: StateId) -> Option<Cell> {
    let mut cell = drt.zero_cell();
    if drt.is_start(s) {
        cell.start_trend();
    }
    for src in &drt.pred_sources[s.index()] {
        for node in &graph.nodes {
            if node.state != src.from
                || node.event.time >= event.time
                || !drt
                    .disjunct
                    .adjacency_predicates_pass(src.from, s, &node.event, event)
            {
                continue;
            }
            let blocked = src
                .negations
                .iter()
                .any(|n| graph.neg_clocks[n.index()].blocked(node.event.time, event.time));
            if !blocked {
                cell.merge(&node.cell);
            }
        }
    }
    if cell.is_zero() {
        return None;
    }
    cell.contribute(drt.feeds.of(s), event);
    Some(cell)
}

/// The GRETA engine.
pub type GretaEngine = Router<GretaWindow>;

/// Runtime for an already-compiled plan; fails if the query needs more
/// than skip-till-any-match (Table 9). Shared by
/// [`greta_engine_from_plan`] and checkpoint restore.
pub fn greta_runtime(
    compiled: &CompiledQuery,
    registry: &TypeRegistry,
) -> QueryResult<Arc<QueryRuntime>> {
    if compiled.semantics != Semantics::Any {
        return Err(cogra_query::QueryError::compile(
            "GRETA supports only skip-till-any-match (Table 9)",
        ));
    }
    Ok(Arc::new(QueryRuntime::new(compiled.clone(), registry)))
}

/// Build a GRETA engine from an already-compiled plan.
pub fn greta_engine_from_plan(
    compiled: &CompiledQuery,
    registry: &TypeRegistry,
) -> QueryResult<GretaEngine> {
    Ok(Router::new(greta_runtime(compiled, registry)?, "greta"))
}

/// Build a GRETA engine; fails if the query needs more than
/// skip-till-any-match (Table 9).
pub fn greta_engine(query: &Query, registry: &TypeRegistry) -> QueryResult<GretaEngine> {
    greta_engine_from_plan(&compile(query, registry)?, registry)
}
