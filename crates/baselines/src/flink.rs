//! Flink baseline (§9.1): an industrial streaming system without Kleene
//! closure.
//!
//! "For each Kleene pattern P, we first determine the length l of the
//! longest match of P. We then specify a set of fixed-length event
//! sequence queries that cover all possible lengths up to l. Flink
//! implements a two-step approach that constructs all event sequences
//! prior to their aggregation."
//!
//! The per-window algorithm therefore (1) buffers every event of the
//! partition, and at window close (2) **materializes** every sequence
//! match of every flattened query — all trends up to the flattening cap —
//! and only then (3) folds them into the aggregate. The materialized
//! matches are the memory spike that makes Flink's footprint exponential
//! under skip-till-any-match (Figure 7(b)); the [`Router`] measures it via
//! its finalize-spike hook.
//!
//! Supported semantics (Table 9): skip-till-any-match and contiguous.

use crate::oracle::{trend_cell, visit_any_capped, visit_cont_positional};
use cogra_engine::runtime::EngineConfig;
use cogra_engine::{Cell, EventBinds, QueryRuntime, Router, WindowAlgo};
use cogra_events::{Event, TypeRegistry};
use cogra_query::{compile, CompiledQuery, Query, QueryError, QueryResult, Semantics, StateId};
use std::sync::Arc;

/// Per-window Flink state.
#[derive(Debug)]
pub struct FlinkWindow {
    events: Vec<Event>,
    /// Sequences materialized during finalization (kept so the router's
    /// spike measurement sees them).
    constructed: Vec<Vec<(u32, StateId)>>,
}

impl WindowAlgo for FlinkWindow {
    fn new(_rt: &QueryRuntime) -> FlinkWindow {
        FlinkWindow {
            events: Vec::new(),
            constructed: Vec::new(),
        }
    }

    fn on_event(&mut self, _rt: &QueryRuntime, event: &Event, _binds: &EventBinds) {
        self.events.push(event.clone());
    }

    fn final_cell(&mut self, rt: &QueryRuntime) -> Cell {
        let cap = rt.config.flatten_cap;
        let mut total: Option<Cell> = None;
        for drt in &rt.disjuncts {
            // Step 1: construct all sequences of the flattened workload.
            let first = self.constructed.len();
            let constructed = &mut self.constructed;
            let record = |tr: &[(usize, StateId)]| {
                constructed.push(tr.iter().map(|&(i, s)| (i as u32, s)).collect());
            };
            match rt.query.semantics {
                Semantics::Any => visit_any_capped(drt, &self.events, cap, record),
                Semantics::Cont => visit_cont_positional(drt, &self.events, cap, record),
                Semantics::Next => unreachable!("rejected at construction"),
            }
            // Step 2: aggregate the constructed sequences.
            let mut acc = drt.zero_cell();
            for seq in &self.constructed[first..] {
                let trend: Vec<(usize, StateId)> =
                    seq.iter().map(|&(i, s)| (i as usize, s)).collect();
                acc.merge(&trend_cell(drt, &self.events, &trend));
            }
            match &mut total {
                None => total = Some(acc),
                Some(t) => t.merge(&acc),
            }
        }
        total.expect("at least one disjunct")
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.events.iter().map(Event::memory_bytes).sum::<usize>()
            + self
                .constructed
                .iter()
                .map(|t| t.len() * std::mem::size_of::<(u32, StateId)>() + 24)
                .sum::<usize>()
    }

    fn save(&self, _rt: &QueryRuntime, enc: &mut cogra_checkpoint::Enc) {
        // `constructed` only exists transiently inside `final_cell` (it is
        // kept for the spike measurement) — the buffered events are the
        // whole pre-finalization state.
        Event::save_slice(&self.events, enc);
    }

    fn load(
        _rt: &QueryRuntime,
        dec: &mut cogra_checkpoint::Dec,
    ) -> Result<FlinkWindow, cogra_checkpoint::CheckpointError> {
        Ok(FlinkWindow {
            events: Event::load_vec(dec)?,
            constructed: Vec::new(),
        })
    }
}

/// The Flink engine.
pub type FlinkEngine = Router<FlinkWindow>;

/// Runtime for an already-compiled plan. Fails for skip-till-next-match
/// (Table 9). Shared by [`flink_engine_from_plan`] and checkpoint restore.
pub fn flink_runtime(
    compiled: &CompiledQuery,
    registry: &TypeRegistry,
    config: EngineConfig,
) -> QueryResult<Arc<QueryRuntime>> {
    if compiled.semantics == Semantics::Next {
        return Err(QueryError::compile(
            "Flink does not support skip-till-next-match (Table 9)",
        ));
    }
    Ok(Arc::new(
        QueryRuntime::new(compiled.clone(), registry).with_config(config),
    ))
}

/// Build a Flink engine from an already-compiled plan.
pub fn flink_engine_from_plan(
    compiled: &CompiledQuery,
    registry: &TypeRegistry,
    config: EngineConfig,
) -> QueryResult<FlinkEngine> {
    Ok(Router::new(
        flink_runtime(compiled, registry, config)?,
        "flink",
    ))
}

/// Build a Flink engine. Fails for skip-till-next-match (Table 9).
pub fn flink_engine(
    query: &Query,
    registry: &TypeRegistry,
    config: EngineConfig,
) -> QueryResult<FlinkEngine> {
    flink_engine_from_plan(&compile(query, registry)?, registry, config)
}
