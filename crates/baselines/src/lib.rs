//! # cogra-baselines
//!
//! The state-of-the-art comparators of the COGRA evaluation (§9.1,
//! Table 9), re-implemented from their papers' descriptions on top of the
//! shared [`cogra_engine::Router`] substrate, plus a brute-force oracle:
//!
//! * [`sase`] — SASE: two-step, stacks + predecessor pointers + DFS trend
//!   construction; all semantics;
//! * [`flink`] — Flink-style: Kleene flattened into fixed-length sequence
//!   queries, constructed then aggregated; ANY + CONT;
//! * [`greta`] — GRETA: online event-granularity graph; ANY only;
//! * [`aseq`] — A-Seq: online prefix counters over the flattened
//!   workload; ANY only, no adjacent predicates;
//! * [`oracle`] — reference trend enumerator implementing Definitions 2–4
//!   directly; ground truth for the engine-agreement tests;
//! * [`capabilities`] — the Table 9 expressive-power matrix.

#![warn(missing_docs)]

pub mod aseq;
pub mod capabilities;
pub mod flink;
pub mod greta;
pub mod oracle;
pub mod sase;

pub use aseq::{aseq_engine, aseq_engine_from_plan, aseq_runtime, ASeqEngine, ASeqWindow};
pub use capabilities::{Capabilities, Unsupported};
pub use flink::{flink_engine, flink_engine_from_plan, flink_runtime, FlinkEngine, FlinkWindow};
pub use greta::{greta_engine, greta_engine_from_plan, greta_runtime, GretaEngine, GretaWindow};
pub use oracle::{
    oracle_engine, oracle_engine_from_plan, oracle_runtime, OracleEngine, OracleWindow,
};
pub use sase::{sase_engine, sase_engine_from_plan, sase_runtime, SaseEngine, SaseWindow};
