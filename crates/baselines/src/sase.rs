//! SASE baseline (Zhang, Diao, Immerman, SIGMOD 2014; §9.1).
//!
//! SASE is a two-step Kleene engine: "it first stores each event e in a
//! stack and computes the pointers to e's previous events in a trend. For
//! each window, a DFS-based algorithm traverses these pointers to
//! construct all trends. Then, these trends are aggregated."
//!
//! * **Step 1 (online)** — every matched event becomes an *entry* holding
//!   pointers to its compatible predecessor entries. Under
//!   skip-till-any-match, predecessors are all earlier compatible entries
//!   (Definition 7); under NEXT/CONT they come only from the last matched
//!   event's entries (the single-predecessor chain of Theorem 6.1), and
//!   under CONT an unmatched event clears the chain.
//! * **Step 2 (window close)** — a backward DFS from every end-state
//!   entry enumerates all trends, aggregating each as it completes; only
//!   the current path is materialized (§9.3: "SASE constructs all trends
//!   without storing them"), so memory is events + pointers while latency
//!   is exponential.

use cogra_engine::runtime::{DisjunctRuntime, NegClock};
use cogra_engine::{Cell, EventBinds, QueryRuntime, Router, WindowAlgo};
use cogra_events::{Event, TypeRegistry};
use cogra_query::{compile, CompiledQuery, Query, QueryResult, Semantics, StateId};
use std::sync::Arc;

/// One stored matched event with predecessor pointers.
#[derive(Debug)]
struct Entry {
    event: Event,
    state: StateId,
    /// Indices of compatible predecessor entries.
    preds: Vec<u32>,
    /// Whether a trend may begin at this entry (start-state binding).
    starts: bool,
}

/// Per-disjunct stacks + pointers.
#[derive(Debug)]
struct Stacks {
    entries: Vec<Entry>,
    /// Entry indices of the last matched event (NEXT/CONT chain mode).
    el: Vec<u32>,
    neg_clocks: Vec<NegClock>,
}

/// Per-window SASE state.
#[derive(Debug)]
pub struct SaseWindow {
    disjuncts: Vec<Stacks>,
}

impl WindowAlgo for SaseWindow {
    fn new(rt: &QueryRuntime) -> SaseWindow {
        SaseWindow {
            disjuncts: rt
                .disjuncts
                .iter()
                .map(|d| Stacks {
                    entries: Vec::new(),
                    el: Vec::new(),
                    neg_clocks: vec![NegClock::default(); d.disjunct.automaton.num_negated()],
                })
                .collect(),
        }
    }

    fn on_event(&mut self, rt: &QueryRuntime, event: &Event, binds: &EventBinds) {
        let semantics = rt.query.semantics;
        for ((stacks, drt), (states, negs)) in self
            .disjuncts
            .iter_mut()
            .zip(&rt.disjuncts)
            .zip(&binds.per_disjunct)
        {
            for &n in negs {
                stacks.neg_clocks[n.index()].record(event.time);
            }
            match semantics {
                Semantics::Any => stacks.insert_any(drt, event, states),
                Semantics::Next => stacks.insert_chain(drt, event, states, false),
                Semantics::Cont => stacks.insert_chain(drt, event, states, true),
            }
        }
    }

    fn final_cell(&mut self, rt: &QueryRuntime) -> Cell {
        let mut total: Option<Cell> = None;
        for (stacks, drt) in self.disjuncts.iter().zip(&rt.disjuncts) {
            let acc = stacks.aggregate_by_dfs(drt);
            match &mut total {
                None => total = Some(acc),
                Some(t) => t.merge(&acc),
            }
        }
        total.expect("at least one disjunct")
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .disjuncts
                .iter()
                .map(|s| {
                    s.entries
                        .iter()
                        .map(|e| {
                            e.event.memory_bytes()
                                + e.preds.len() * std::mem::size_of::<u32>()
                                + std::mem::size_of::<Entry>()
                        })
                        .sum::<usize>()
                        + s.el.len() * std::mem::size_of::<u32>()
                })
                .sum::<usize>()
    }

    fn save(&self, _rt: &QueryRuntime, enc: &mut cogra_checkpoint::Enc) {
        enc.usize(self.disjuncts.len());
        for stacks in &self.disjuncts {
            enc.usize(stacks.entries.len());
            for e in &stacks.entries {
                e.event.save(enc);
                enc.u32(e.state.0);
                enc.usize(e.preds.len());
                for &p in &e.preds {
                    enc.u32(p);
                }
                enc.bool(e.starts);
            }
            enc.usize(stacks.el.len());
            for &i in &stacks.el {
                enc.u32(i);
            }
            enc.usize(stacks.neg_clocks.len());
            for c in &stacks.neg_clocks {
                c.save(enc);
            }
        }
    }

    fn load(
        rt: &QueryRuntime,
        dec: &mut cogra_checkpoint::Dec,
    ) -> Result<SaseWindow, cogra_checkpoint::CheckpointError> {
        use cogra_checkpoint::CheckpointError;
        let n = dec.usize()?;
        if n != rt.disjuncts.len() {
            return Err(CheckpointError::Corrupt(format!(
                "SASE window has {n} disjuncts, query has {}",
                rt.disjuncts.len()
            )));
        }
        let mut disjuncts = Vec::with_capacity(n);
        for drt in &rt.disjuncts {
            let n_entries = dec.usize()?;
            let mut entries = Vec::with_capacity(n_entries.min(1024));
            for idx in 0..n_entries {
                let event = Event::load(dec)?;
                let state = StateId(dec.u32()?);
                let n_preds = dec.usize()?;
                let mut preds = Vec::with_capacity(n_preds.min(1024));
                for _ in 0..n_preds {
                    let p = dec.u32()?;
                    if p as usize >= idx {
                        return Err(CheckpointError::Corrupt(format!(
                            "SASE entry {idx} points at non-earlier entry {p}"
                        )));
                    }
                    preds.push(p);
                }
                let starts = dec.bool()?;
                entries.push(Entry {
                    event,
                    state,
                    preds,
                    starts,
                });
            }
            let n_el = dec.usize()?;
            let mut el = Vec::with_capacity(n_el.min(1024));
            for _ in 0..n_el {
                let i = dec.u32()?;
                if i as usize >= entries.len() {
                    return Err(CheckpointError::Corrupt(format!(
                        "SASE chain points at missing entry {i}"
                    )));
                }
                el.push(i);
            }
            let n_clocks = dec.usize()?;
            if n_clocks != drt.disjunct.automaton.num_negated() {
                return Err(CheckpointError::Corrupt(format!(
                    "SASE window has {n_clocks} negation clocks for {} negated variables",
                    drt.disjunct.automaton.num_negated()
                )));
            }
            let mut neg_clocks = Vec::with_capacity(n_clocks);
            for _ in 0..n_clocks {
                neg_clocks.push(NegClock::load(dec)?);
            }
            disjuncts.push(Stacks {
                entries,
                el,
                neg_clocks,
            });
        }
        Ok(SaseWindow { disjuncts })
    }
}

impl Stacks {
    /// Can `prev` (an existing entry) precede the new event at `state`?
    fn compatible(
        &self,
        drt: &DisjunctRuntime,
        prev: &Entry,
        event: &Event,
        state: StateId,
    ) -> bool {
        if prev.event.time >= event.time {
            return false;
        }
        let Some(edge) = drt.disjunct.automaton.edge(prev.state, state) else {
            return false;
        };
        if !drt
            .disjunct
            .adjacency_predicates_pass(prev.state, state, &prev.event, event)
        {
            return false;
        }
        !edge
            .negations
            .iter()
            .any(|&n| self.neg_clocks[n.index()].blocked(prev.event.time, event.time))
    }

    /// Skip-till-any-match insertion: pointers to every compatible
    /// predecessor entry.
    fn insert_any(&mut self, drt: &DisjunctRuntime, event: &Event, states: &[StateId]) {
        let existing = self.entries.len();
        for &s in states {
            let mut preds = Vec::new();
            for (i, prev) in self.entries[..existing].iter().enumerate() {
                if self.compatible(drt, prev, event, s) {
                    preds.push(i as u32);
                }
            }
            let starts = drt.is_start(s);
            if starts || !preds.is_empty() {
                self.entries.push(Entry {
                    event: event.clone(),
                    state: s,
                    preds,
                    starts,
                });
            }
        }
    }

    /// NEXT/CONT insertion: pointers only to the last matched event's
    /// entries; CONT clears the chain on unmatched events.
    fn insert_chain(
        &mut self,
        drt: &DisjunctRuntime,
        event: &Event,
        states: &[StateId],
        contiguous: bool,
    ) {
        let mut new_el = Vec::new();
        for &s in states {
            let mut preds = Vec::new();
            for &i in &self.el {
                let prev = &self.entries[i as usize];
                if self.compatible(drt, prev, event, s) {
                    preds.push(i);
                }
            }
            let starts = drt.is_start(s);
            if starts || !preds.is_empty() {
                self.entries.push(Entry {
                    event: event.clone(),
                    state: s,
                    preds,
                    starts,
                });
                new_el.push((self.entries.len() - 1) as u32);
            }
        }
        if !new_el.is_empty() {
            self.el = new_el;
        } else if contiguous {
            self.el.clear();
        }
    }

    /// Step 2: backward DFS from end-state entries, aggregating each
    /// trend when it terminates at a trend-starting entry.
    fn aggregate_by_dfs(&self, drt: &DisjunctRuntime) -> Cell {
        let mut acc = drt.zero_cell();
        let mut seed = drt.zero_cell();
        seed.start_trend();
        for entry in &self.entries {
            if entry.state == drt.end() {
                self.dfs(drt, entry, &seed, &mut acc);
            }
        }
        acc
    }

    fn dfs(&self, drt: &DisjunctRuntime, entry: &Entry, path_cell: &Cell, acc: &mut Cell) {
        let mut cell = path_cell.clone();
        cell.contribute(drt.feeds.of(entry.state), &entry.event);
        if entry.starts {
            acc.merge(&cell); // one finished trend
        }
        for &p in &entry.preds {
            self.dfs(drt, &self.entries[p as usize], &cell, acc);
        }
    }
}

/// The SASE engine.
pub type SaseEngine = Router<SaseWindow>;

/// Runtime for an already-compiled plan (SASE supports every semantics,
/// Table 9 — nothing to reject). Shared by [`sase_engine_from_plan`] and
/// checkpoint restore.
pub fn sase_runtime(
    compiled: &CompiledQuery,
    registry: &TypeRegistry,
) -> QueryResult<Arc<QueryRuntime>> {
    Ok(Arc::new(QueryRuntime::new(compiled.clone(), registry)))
}

/// Build a SASE engine from an already-compiled plan.
pub fn sase_engine_from_plan(
    compiled: &CompiledQuery,
    registry: &TypeRegistry,
) -> QueryResult<SaseEngine> {
    Ok(Router::new(sase_runtime(compiled, registry)?, "sase"))
}

/// Build a SASE engine (supports every semantics, Table 9).
pub fn sase_engine(query: &Query, registry: &TypeRegistry) -> QueryResult<SaseEngine> {
    sase_engine_from_plan(&compile(query, registry)?, registry)
}
