//! The paper's running example, verified digit-for-digit:
//! pattern P = (SEQ(A+, B))+ against the stream
//! `a1, b2, a3, a4, c5, b6, a7, b8` (Figure 2), reproducing
//! Table 5 (type-grained), Table 6 (mixed-grained) and Table 7
//! (pattern-grained, NEXT and CONT).

use cogra_core::{run_to_completion, AggValue, CograEngine, TrendEngine};
use cogra_events::{Event, TypeRegistry, Value, ValueKind};

fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    r.register_type("A", vec![("v", ValueKind::Int)]);
    r.register_type("B", vec![("v", ValueKind::Int)]);
    r.register_type("C", vec![("v", ValueKind::Int)]);
    r
}

/// The Figure 2 stream; `v` values chosen so the Table 6 scenario
/// ("a7 adjacent to b2 but not b6") is expressible with `B.v <= NEXT(A).v`:
fn stream(reg: &TypeRegistry) -> Vec<Event> {
    let a = reg.id_of("A").unwrap();
    let b = reg.id_of("B").unwrap();
    let c = reg.id_of("C").unwrap();
    let mk = |id: u64, t: u64, ty, v: i64| Event::new(id, t, ty, vec![Value::Int(v)]);
    vec![
        mk(0, 1, a, 0),  // a1
        mk(1, 2, b, 5),  // b2  (v=5)
        mk(2, 3, a, 9),  // a3  (>=5: adjacent to b2)
        mk(3, 4, a, 9),  // a4
        mk(4, 5, c, 0),  // c5
        mk(5, 6, b, 50), // b6  (v=50)
        mk(6, 7, a, 7),  // a7  (>=5 but <50: adjacent to b2, NOT b6)
        mk(7, 8, b, 5),  // b8
    ]
}

fn count_of(query: &str) -> u64 {
    let reg = registry();
    let mut engine = CograEngine::from_text(query, &reg).unwrap();
    let (results, _) = run_to_completion(&mut engine, &stream(&reg), 1);
    assert_eq!(results.len(), 1, "single window, single group");
    match results[0].values[0] {
        AggValue::Count(c) => c,
        other => panic!("expected count, got {other:?}"),
    }
}

#[test]
fn table5_type_grained_count_is_43() {
    // ANY semantics, no adjacent predicates → type granularity; Figure 2:
    // "Based on only eight events in the stream, 43 trends are detected."
    let c = count_of(
        "RETURN COUNT(*) PATTERN (SEQ(A+, B))+ SEMANTICS skip-till-any-match \
         WITHIN 100 SLIDE 100",
    );
    assert_eq!(c, 43);
}

#[test]
fn table7_pattern_grained_next_count_is_8() {
    let c = count_of(
        "RETURN COUNT(*) PATTERN (SEQ(A+, B))+ SEMANTICS skip-till-next-match \
         WITHIN 100 SLIDE 100",
    );
    assert_eq!(c, 8);
}

#[test]
fn table7_pattern_grained_cont_count_is_2() {
    // Only (a1, b2) and (a7, b8) are contiguous: c5 invalidates.
    let c = count_of(
        "RETURN COUNT(*) PATTERN (SEQ(A+, B))+ SEMANTICS contiguous \
         WITHIN 100 SLIDE 100",
    );
    assert_eq!(c, 2);
}

#[test]
fn table6_mixed_grained_count_is_33() {
    // Predicate θ restricting B→A adjacency: a7 (v=7) is adjacent to b2
    // (v=5) but not b6 (v=50); a3/a4 (v=9) are adjacent to b2 only;
    // B.v <= NEXT(A).v expresses exactly the Table 6 scenario.
    let reg = registry();
    let mut engine = CograEngine::from_text(
        "RETURN COUNT(*) PATTERN (SEQ(A+, B))+ SEMANTICS skip-till-any-match \
         WHERE B.v <= NEXT(A).v WITHIN 100 SLIDE 100",
        &reg,
    )
    .unwrap();
    // The analyzer must select mixed granularity with B event-grained.
    let rt = engine.runtime();
    assert_eq!(rt.query.granularity(), cogra_query::Granularity::Mixed);
    let d = &rt.disjuncts[0].disjunct;
    let b_state = d.automaton.state_of_var("B").unwrap();
    let a_state = d.automaton.state_of_var("A").unwrap();
    assert!(d.event_grained[b_state.index()]);
    assert!(!d.event_grained[a_state.index()]);

    let (results, _) = run_to_completion(&mut engine, &stream(&reg), 1);
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].values[0], AggValue::Count(33));
}

#[test]
fn min_max_aggregates_over_any() {
    // MIN/MAX of A.v over all trends: every trend starts with an a, and
    // a-values are {0, 9, 9, 7}.
    let reg = registry();
    let mut engine = CograEngine::from_text(
        "RETURN MIN(A.v), MAX(A.v), COUNT(A) PATTERN (SEQ(A+, B))+ \
         SEMANTICS skip-till-any-match WITHIN 100 SLIDE 100",
        &reg,
    )
    .unwrap();
    let (results, _) = run_to_completion(&mut engine, &stream(&reg), 1);
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].values[0], AggValue::Float(0.0));
    assert_eq!(results[0].values[1], AggValue::Float(9.0));
    // COUNT(A) = total number of a-occurrences across all 43 trends.
    match results[0].values[2] {
        AggValue::Count(c) => assert!(c > 43, "each trend has >= 1 a, most have several"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn pattern_grained_memory_is_constant_in_events() {
    // O(1) space: memory after 8 events ~ memory after many more.
    let reg = registry();
    let a = reg.id_of("A").unwrap();
    let b = reg.id_of("B").unwrap();
    let query = "RETURN COUNT(*) PATTERN (SEQ(A+, B))+ SEMANTICS skip-till-next-match \
                 WITHIN 1000000 SLIDE 1000000";
    let mut small = CograEngine::from_text(query, &reg).unwrap();
    let mut big = CograEngine::from_text(query, &reg).unwrap();
    let mut mems = Vec::new();
    for (engine, n) in [(&mut small, 100u64), (&mut big, 10_000u64)] {
        for i in 0..n {
            let ty = if i % 3 == 2 { b } else { a };
            engine.process(&Event::new(i, i + 1, ty, vec![Value::Int(0)]));
        }
        mems.push(engine.memory_bytes());
    }
    assert_eq!(mems[0], mems[1], "pattern-grained state is O(1) per window");
}
