//! Focused unit tests of the three aggregators' internal behaviours that
//! the end-to-end suites exercise only incidentally: stream-transaction
//! snapshotting, negation shadow cells, contiguity resets, Te storage
//! growth, and the pattern-grained chain under shared event types.

use cogra_core::mixed_grained::MixedWindow;
use cogra_core::pattern_grained::PatternWindow;
use cogra_core::runtime::QueryRuntime;
use cogra_core::type_grained::TypeGrainedWindow;
use cogra_events::{Event, EventBuilder, TypeRegistry, Value, ValueKind};
use cogra_query::{compile, parse, Semantics, StateId};

fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    for t in ["A", "B", "C", "S"] {
        r.register_type(t, vec![("v", ValueKind::Int)]);
    }
    r
}

fn runtime(query: &str) -> QueryRuntime {
    let reg = registry();
    QueryRuntime::new(compile(&parse(query).unwrap(), &reg).unwrap(), &reg)
}

fn binds(rt: &QueryRuntime, e: &Event) -> Vec<StateId> {
    let mut out = Vec::new();
    rt.disjuncts[0].binds(e, &mut out);
    out
}

fn ev(b: &mut EventBuilder, reg: &TypeRegistry, t: u64, ty: &str, v: i64) -> Event {
    b.event(t, reg.id_of(ty).unwrap(), vec![Value::Int(v)])
}

#[test]
fn type_grained_simultaneous_events_do_not_chain() {
    // Two a's in the same stream transaction must not count each other as
    // predecessors (Definition 7 condition 2 / §8 transactions).
    let rt = runtime("RETURN COUNT(*) PATTERN A+ SEMANTICS ANY WITHIN 100 SLIDE 100");
    let drt = &rt.disjuncts[0];
    let mut w = TypeGrainedWindow::new(drt);
    let reg = registry();
    let mut b = EventBuilder::new();
    let e1 = ev(&mut b, &reg, 1, "A", 0);
    let e2 = ev(&mut b, &reg, 1, "A", 0); // same time stamp
    w.on_event(drt, &e1, &binds(&rt, &e1));
    w.on_event(drt, &e2, &binds(&rt, &e2));
    // Two singleton trends, no {e1,e2} pair.
    assert_eq!(w.final_cell(drt).count, 2);

    // Control: distinct times chain — {e1}, {e2}, {e1,e2}.
    let mut w = TypeGrainedWindow::new(drt);
    let e3 = ev(&mut b, &reg, 2, "A", 0);
    w.on_event(drt, &e1, &binds(&rt, &e1));
    w.on_event(drt, &e3, &binds(&rt, &e3));
    assert_eq!(w.final_cell(drt).count, 3);
}

#[test]
fn type_grained_negation_shadow_blocks_old_contributions_only() {
    // SEQ(A+, NOT C, B): a C match invalidates a-counts accumulated
    // before it for the A→B edge, but a's arriving after the C count.
    let rt =
        runtime("RETURN COUNT(*) PATTERN SEQ(A+, NOT C, B) SEMANTICS ANY WITHIN 100 SLIDE 100");
    let drt = &rt.disjuncts[0];
    let reg = registry();
    let mut b = EventBuilder::new();
    let mut w = TypeGrainedWindow::new(drt);
    let a1 = ev(&mut b, &reg, 1, "A", 0);
    let c2 = ev(&mut b, &reg, 2, "C", 0);
    let a3 = ev(&mut b, &reg, 3, "A", 0);
    let b4 = ev(&mut b, &reg, 4, "B", 0);
    w.on_event(drt, &a1, &binds(&rt, &a1));
    let mut negs = Vec::new();
    drt.negation_matches(&c2, &mut negs);
    assert_eq!(negs.len(), 1);
    w.on_negation(drt, &c2, &negs);
    w.on_event(drt, &a3, &binds(&rt, &a3));
    w.on_event(drt, &b4, &binds(&rt, &b4));
    // Valid trends ending at b4: {a3, b4} and {a1, a3, b4} (their last A
    // is after the C); {a1, b4} is blocked. Count = 2.
    assert_eq!(w.final_cell(drt).count, 2);
}

#[test]
fn pattern_grained_cont_reset_preserves_final_count() {
    // Algorithm 3 lines 8–9: an unmatched event under CONT nulls the last
    // event but never the final count.
    let rt = runtime("RETURN COUNT(*) PATTERN SEQ(A, B) SEMANTICS CONT WITHIN 100 SLIDE 100");
    let drt = &rt.disjuncts[0];
    let reg = registry();
    let mut b = EventBuilder::new();
    let mut w = PatternWindow::new(drt);
    let stream = [
        ev(&mut b, &reg, 1, "A", 0),
        ev(&mut b, &reg, 2, "B", 0), // finishes (a1, b2): final = 1
        ev(&mut b, &reg, 3, "C", 0), // reset
        ev(&mut b, &reg, 4, "B", 0), // cannot match: no el, not a start
    ];
    for e in &stream {
        w.on_event(drt, e, &binds(&rt, e), Semantics::Cont);
    }
    assert_eq!(w.final_cell(drt).count, 1);
}

#[test]
fn pattern_grained_next_skips_where_cont_resets() {
    let reg = registry();
    let mut b = EventBuilder::new();
    let stream = [
        ev(&mut b, &reg, 1, "A", 0),
        ev(&mut b, &reg, 2, "C", 0), // irrelevant
        ev(&mut b, &reg, 3, "B", 0),
    ];
    for (sem, expected) in [(Semantics::Next, 1), (Semantics::Cont, 0)] {
        let rt = runtime(&format!(
            "RETURN COUNT(*) PATTERN SEQ(A, B) SEMANTICS {} WITHIN 100 SLIDE 100",
            sem.keyword()
        ));
        let drt = &rt.disjuncts[0];
        let mut w = PatternWindow::new(drt);
        for e in &stream {
            w.on_event(drt, e, &binds(&rt, e), sem);
        }
        assert_eq!(w.final_cell(drt).count, expected, "{sem:?}");
    }
}

#[test]
fn pattern_grained_shared_type_tracks_multiple_bindings() {
    // SEQ(S X+, S Y+) under NEXT: one S event may extend as X and as Y;
    // the last-event cell table carries both bindings.
    let rt = runtime("RETURN COUNT(*) PATTERN SEQ(S X+, S Y+) SEMANTICS NEXT WITHIN 100 SLIDE 100");
    let drt = &rt.disjuncts[0];
    let reg = registry();
    let mut b = EventBuilder::new();
    let mut w = PatternWindow::new(drt);
    for t in 1..=3 {
        let e = ev(&mut b, &reg, t, "S", 0);
        w.on_event(drt, &e, &binds(&rt, &e), Semantics::Next);
    }
    // Chains over 3 s-events: trends are the X/Y splits of contiguous
    // chain suffixes. s1s2s3 with every split point, plus shorter chains
    // starting at s2 and s3: (x1|y2), (x1|y2 y3), (x1 x2|y3), (x2|y3) and
    // the start-anchored singletons ending in Y... enumerate via oracle
    // instead of hand-counting: compare against the chain oracle.
    let events: Vec<Event> = {
        let mut b = EventBuilder::new();
        (1..=3).map(|t| ev(&mut b, &reg, t, "S", 0)).collect()
    };
    let expected = cogra_baselines::oracle::count_trends(drt, &events, Semantics::Next);
    assert_eq!(w.final_cell(drt).count, expected);
    assert!(expected > 0);
}

#[test]
fn mixed_grained_stores_only_te_events() {
    // A.v < NEXT(A).v makes A event-grained; B stays type-grained, so
    // stored events = number of a's (Theorem 5.2's nₑ).
    let rt = runtime(
        "RETURN COUNT(*) PATTERN SEQ(A+, B) SEMANTICS ANY WHERE A.v < NEXT(A).v \
         WITHIN 100 SLIDE 100",
    );
    let drt = &rt.disjuncts[0];
    let reg = registry();
    let mut b = EventBuilder::new();
    let mut w = MixedWindow::new(drt);
    for t in 1..=5 {
        let e = ev(&mut b, &reg, t, "A", t as i64);
        w.on_event(drt, &e, &binds(&rt, &e));
    }
    let e = ev(&mut b, &reg, 6, "B", 0);
    w.on_event(drt, &e, &binds(&rt, &e));
    assert_eq!(
        w.stored_events(),
        5,
        "five a's stored, b aggregated per type"
    );
    // Increasing values: every subset of a's in order forms a trend ended
    // by b → 2^5 - 1 = 31.
    assert_eq!(w.final_cell(drt).count, 31);
}

#[test]
fn mixed_grained_adjacency_predicate_prunes_contributions() {
    let rt = runtime(
        "RETURN COUNT(*) PATTERN SEQ(A+, B) SEMANTICS ANY WHERE A.v < NEXT(A).v \
         WITHIN 100 SLIDE 100",
    );
    let drt = &rt.disjuncts[0];
    let reg = registry();
    let mut b = EventBuilder::new();
    let mut w = MixedWindow::new(drt);
    // Decreasing values: no a-to-a adjacency passes; only singleton A
    // prefixes survive → trends {a}·b per a = 3.
    for t in 1..=3 {
        let e = ev(&mut b, &reg, t, "A", -(t as i64));
        w.on_event(drt, &e, &binds(&rt, &e));
    }
    let e = ev(&mut b, &reg, 4, "B", 0);
    w.on_event(drt, &e, &binds(&rt, &e));
    assert_eq!(w.final_cell(drt).count, 3);
}

#[test]
fn type_grained_window_memory_is_constant() {
    let rt = runtime("RETURN COUNT(*), SUM(A.v) PATTERN A+ SEMANTICS ANY WITHIN 1000 SLIDE 1000");
    let drt = &rt.disjuncts[0];
    let reg = registry();
    let mut b = EventBuilder::new();
    let mut w = TypeGrainedWindow::new(drt);
    let mut sizes = Vec::new();
    for t in 1..=200 {
        let e = ev(&mut b, &reg, t, "A", 1);
        w.on_event(drt, &e, &binds(&rt, &e));
        if t % 100 == 0 {
            sizes.push(w.memory_bytes());
        }
    }
    assert_eq!(sizes[0], sizes[1], "Θ(l) space regardless of events");
}
