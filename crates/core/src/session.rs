//! The unified `Session` pipeline: one ingestion API for every consumer.
//!
//! Historically each consumer wired the engines differently — a
//! string-keyed factory in the bench crate, free `run_to_completion` /
//! `run_parallel` calls, a separate `MultiEngine` fan-out, and hand-rolled
//! `Reorderer` plumbing in the CLI. [`Session`] replaces all of that with
//! one builder-style facade:
//!
//! ```
//! use cogra_core::session::{EngineKind, Session};
//! use cogra_events::{EventBuilder, TypeRegistry, Value, ValueKind};
//!
//! let mut registry = TypeRegistry::new();
//! let a = registry.register_type("A", vec![("v", ValueKind::Int)]);
//! let mut builder = EventBuilder::new();
//! let events: Vec<_> = (1..=6)
//!     .map(|t| builder.event(t, a, vec![Value::Int(t as i64)]))
//!     .collect();
//!
//! let run = Session::builder()
//!     .query("RETURN COUNT(*) PATTERN A+ SEMANTICS ANY WITHIN 4 SLIDE 2")
//!     .engine(EngineKind::Cogra)
//!     .build(&registry)
//!     .unwrap()
//!     .run(&events);
//! assert!(!run.results().is_empty());
//! ```
//!
//! * [`EngineKind`] is the typed roster of Table 1 / Table 9: building an
//!   engine that does not support the query's features fails with the
//!   constructor's `QueryError`, exactly as §9.2 charts omit unsupported
//!   approaches. Multi-query sessions may mix kinds per query via
//!   [`SessionBuilder::query_with_engine`].
//! * `.slack(n)` fuses disorder repair into ingestion: bounded disorder is
//!   repaired before the engines see the events, and late drops are
//!   surfaced via [`Session::late_events`]. Under `.workers(n)` the
//!   repair itself runs per shard (each worker reorders its own
//!   sub-stream) while a coordinator-side gate keeps the drop decisions
//!   identical to a single front [`Reorderer`].
//! * `.workers(n)` shards execution across a live [`StreamingPool`] (§8)
//!   — COGRA only. One pool serves every query of the session (each
//!   worker hosts one engine per query/shard), events are hashed to
//!   per-worker threads at ingest time and shipped in batches
//!   ([`SessionBuilder::batch_size`]), and [`Session::drain_into`] emits
//!   results for closed windows while the stream is still running,
//!   exactly as in sequential mode.
//! * Every query's compiled plan stays inspectable through
//!   [`Session::plan`] / [`SessionRun::plans`] — consumers print
//!   granularity or automata without re-compiling.
//! * Output is push-based: engines hand each [`WindowResult`] to a
//!   [`ResultSink`] without materializing intermediate vectors.

use crate::cogra::CograEngine;
use crate::parallel::{FailurePolicy, PoolConfig, StreamingPool, WorkerFailure};
use cogra_baselines::{
    aseq_engine_from_plan, aseq_runtime, flink_engine_from_plan, flink_runtime,
    greta_engine_from_plan, greta_runtime, oracle_engine_from_plan, oracle_runtime,
    sase_engine_from_plan, sase_runtime, ASeqWindow, FlinkWindow, GretaWindow, OracleWindow,
    SaseWindow,
};
use cogra_checkpoint::{CheckpointError, Dec, Enc, SnapshotReader, SnapshotWriter};
use cogra_engine::runtime::{EngineConfig, QueryRuntime};
use cogra_engine::{Router, RouterState, RunStats, TrendEngine, WindowResult};
use cogra_events::csv::{CsvError, EventReader};
use cogra_events::{Event, LateGate, Reorderer, Timestamp, TypeRegistry};
use cogra_query::{canonical_signature, compile, parse, CompiledQuery, Query, QueryError};
use std::fmt;
use std::io;
use std::str::FromStr;
use std::sync::Arc;

/// The engines of Table 1 / Table 9, as a typed roster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// COGRA — this paper's coarse-grained online aggregator.
    Cogra,
    /// SASE — two-step: stacks, predecessor pointers, DFS construction.
    Sase,
    /// GRETA — online event-granularity graph (ANY only).
    Greta,
    /// A-Seq — online prefix counters (ANY, no adjacent predicates).
    Aseq,
    /// Flink-style — Kleene flattened into fixed-length sequence queries.
    Flink,
    /// Brute-force oracle enumerating Definitions 2–4 directly.
    Oracle,
}

impl EngineKind {
    /// Every kind, COGRA first.
    pub const ALL: [EngineKind; 6] = [
        EngineKind::Cogra,
        EngineKind::Sase,
        EngineKind::Greta,
        EngineKind::Aseq,
        EngineKind::Flink,
        EngineKind::Oracle,
    ];

    /// The five compared approaches in the paper's presentation order
    /// (Table 1); the oracle is a test fixture, not a contender.
    pub const PAPER_ROSTER: [EngineKind; 5] = [
        EngineKind::Flink,
        EngineKind::Sase,
        EngineKind::Greta,
        EngineKind::Aseq,
        EngineKind::Cogra,
    ];

    /// Lower-case engine name, as reported by [`TrendEngine::name`].
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Cogra => "cogra",
            EngineKind::Sase => "sase",
            EngineKind::Greta => "greta",
            EngineKind::Aseq => "aseq",
            EngineKind::Flink => "flink",
            EngineKind::Oracle => "oracle",
        }
    }

    /// Build this engine for `query`. Fails with the constructor's
    /// [`QueryError`] when the engine does not support the query's
    /// features (Table 9) or the query does not compile.
    pub fn build(
        self,
        query: &Query,
        registry: &TypeRegistry,
        config: &EngineConfig,
    ) -> Result<Box<dyn TrendEngine>, QueryError> {
        self.build_plan(&compile(query, registry)?, registry, config)
    }

    /// Build this engine from an already-compiled plan — THE construction
    /// path every kind shares (the builder compiles each query exactly
    /// once and all six constructors reuse that plan). Fails with the
    /// constructor's [`QueryError`] when the engine does not support the
    /// plan's features (Table 9).
    pub fn build_plan(
        self,
        compiled: &CompiledQuery,
        registry: &TypeRegistry,
        config: &EngineConfig,
    ) -> Result<Box<dyn TrendEngine>, QueryError> {
        Ok(match self {
            EngineKind::Cogra => Box::new(CograEngine::from_runtime(cogra_runtime(
                compiled, registry, config,
            ))),
            EngineKind::Sase => Box::new(sase_engine_from_plan(compiled, registry)?),
            EngineKind::Greta => Box::new(greta_engine_from_plan(compiled, registry)?),
            EngineKind::Aseq => {
                Box::new(aseq_engine_from_plan(compiled, registry, config.clone())?)
            }
            EngineKind::Flink => {
                Box::new(flink_engine_from_plan(compiled, registry, config.clone())?)
            }
            EngineKind::Oracle => Box::new(oracle_engine_from_plan(compiled, registry)?),
        })
    }

    /// Rebuild this engine from a checkpointed [`RouterState`] against a
    /// compiled plan — the streaming restore path of the durability
    /// subsystem. A Table 9 rejection here means the snapshot pairs a
    /// query with an engine that cannot run it, which is corruption.
    fn restore_plan(
        self,
        compiled: &CompiledQuery,
        registry: &TypeRegistry,
        config: &EngineConfig,
        state: RouterState,
    ) -> Result<Box<dyn TrendEngine>, CheckpointError> {
        let reject = |e: QueryError| {
            CheckpointError::Corrupt(format!(
                "snapshot pairs a query with engine `{}`, which rejects it: {e}",
                self.name()
            ))
        };
        Ok(match self {
            EngineKind::Cogra => Box::new(CograEngine::from_state(
                cogra_runtime(compiled, registry, config),
                state,
            )?),
            EngineKind::Sase => Box::new(Router::<SaseWindow>::from_state(
                sase_runtime(compiled, registry).map_err(reject)?,
                "sase",
                state,
            )?),
            EngineKind::Greta => Box::new(Router::<GretaWindow>::from_state(
                greta_runtime(compiled, registry).map_err(reject)?,
                "greta",
                state,
            )?),
            EngineKind::Aseq => Box::new(Router::<ASeqWindow>::from_state(
                aseq_runtime(compiled, registry, config.clone()).map_err(reject)?,
                "aseq",
                state,
            )?),
            EngineKind::Flink => Box::new(Router::<FlinkWindow>::from_state(
                flink_runtime(compiled, registry, config.clone()).map_err(reject)?,
                "flink",
                state,
            )?),
            EngineKind::Oracle => Box::new(Router::<OracleWindow>::from_state(
                oracle_runtime(compiled, registry).map_err(reject)?,
                "oracle",
                state,
            )?),
        })
    }

    /// Whether this engine supports `query` (Table 9), without keeping the
    /// built engine.
    pub fn supports(self, query: &Query, registry: &TypeRegistry, config: &EngineConfig) -> bool {
        self.build(query, registry, config).is_ok()
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<EngineKind, String> {
        EngineKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| {
                format!("unknown engine `{s}` (expected cogra|sase|greta|aseq|flink|oracle)")
            })
    }
}

/// Errors building or running a [`Session`].
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// A query failed to parse or compile, or the chosen engine does not
    /// support its features (Table 9). `query` is the index of the
    /// offending `.query(...)` call, in registration order, so callers
    /// can attribute the failure (e.g. to a query file).
    Query {
        /// Index of the failing query.
        query: usize,
        /// What went wrong.
        error: QueryError,
    },
    /// The builder was given no `.query(...)`.
    NoQueries,
    /// `.workers(n > 1)` with an engine other than COGRA — per-partition
    /// sharding (§8) is COGRA's execution strategy.
    ParallelUnsupported(EngineKind),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Query { query, error } => write!(f, "query {query}: {error}"),
            SessionError::NoQueries => write!(f, "session has no queries"),
            SessionError::ParallelUnsupported(kind) => {
                write!(f, "workers > 1 requires the cogra engine, not `{kind}`")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Errors ingesting a CSV stream ([`Session::ingest_csv`] /
/// [`Session::run_csv`]).
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// A row failed to decode.
    Csv(CsvError),
    /// An event went back in time and no `.slack(n)` reorderer is fused
    /// into the session to repair it.
    OutOfOrder {
        /// Sequential id of the offending event (row order for CSV
        /// ingestion) — enough to locate the bad row in a large stream.
        event: cogra_events::EventId,
        /// Time of the offending event.
        time: Timestamp,
        /// The stream's watermark when it arrived.
        watermark: Timestamp,
    },
    /// The stream materialized more distinct partition keys than the
    /// configured [`EngineConfig::key_limit`] admits — the session
    /// dropped an event instead of growing the interner without bound.
    KeyOverflow {
        /// The configured limit that was hit.
        limit: u32,
    },
    /// A shard worker died under [`FailurePolicy::Fail`] (or exhausted
    /// its restart budget). The session is sticky-failed: it accepts no
    /// further events and emits nothing — no partial output.
    WorkerFailed(WorkerFailure),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Csv(e) => e.fmt(f),
            IngestError::OutOfOrder {
                event,
                time,
                watermark,
            } => write!(
                f,
                "event {event} at {time} arrived after watermark {watermark}; \
                 pass --slack N / .slack(n) to repair bounded disorder"
            ),
            IngestError::KeyOverflow { limit } => write!(
                f,
                "stream exceeded the configured limit of {limit} distinct partition keys; \
                 raise --key-limit N / EngineConfig::key_limit to admit more"
            ),
            IngestError::WorkerFailed(failure) => failure.fmt(f),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<CsvError> for IngestError {
    fn from(e: CsvError) -> IngestError {
        IngestError::Csv(e)
    }
}

/// Shared COGRA runtime construction for the streaming and `.workers(n)`
/// paths — one site, so `config` handling cannot silently diverge. The
/// query is compiled exactly once by the builder; runtimes share that
/// plan.
fn cogra_runtime(
    compiled: &CompiledQuery,
    registry: &TypeRegistry,
    config: &EngineConfig,
) -> Arc<QueryRuntime> {
    Arc::new(QueryRuntime::new(compiled.clone(), registry).with_config(config.clone()))
}

/// Snapshot reorder-state style: a front [`Reorderer`] (streaming mode).
const REORDER_FRONT: u8 = 0;
/// Snapshot reorder-state style: the pool's coordinator-side [`LateGate`]
/// plus per-shard buffered `(query, event)` items (`.workers(n)` mode).
const REORDER_GATE: u8 = 1;

/// The reorder state a snapshot carries, decoded — see
/// [`Session::checkpoint`] for what each variant stores.
enum ReorderSnap {
    /// No `.slack(n)`: only the raw stream clock (the largest routed event
    /// time), so a restored pool's admission floor matches the original's.
    Absent {
        /// The raw stream clock at checkpoint time.
        clock: Timestamp,
    },
    /// A streaming-mode front [`Reorderer`].
    Front {
        /// Configured disorder tolerance.
        slack: u64,
        /// Largest event time pushed so far.
        watermark: Timestamp,
        /// Largest event time released to the engines.
        released_to: Timestamp,
        /// Late-drop count.
        late: u64,
        /// In-flight buffered events, in release order.
        buffered: Vec<Event>,
    },
    /// The `.workers(n)` pool's [`LateGate`] + per-shard buffer contents.
    Gate {
        /// Configured disorder tolerance.
        slack: u64,
        /// Largest event time admitted so far.
        watermark: Timestamp,
        /// Stream-wide safe release point.
        released_to: Timestamp,
        /// Late-drop count.
        late: u64,
        /// Admitted-but-unreleased event times (the gate's pending set).
        pending: Vec<Timestamp>,
        /// In-flight `(query, event)` items from the shard reorderers.
        buffered: Vec<(u32, Event)>,
    },
}

impl ReorderSnap {
    /// Decode one snapshot `reorder` section.
    fn load(dec: &mut Dec) -> Result<ReorderSnap, CheckpointError> {
        if !dec.bool()? {
            return Ok(ReorderSnap::Absent {
                clock: Timestamp(dec.u64()?),
            });
        }
        let style = dec.u8()?;
        let slack = dec.u64()?;
        let watermark = Timestamp(dec.u64()?);
        let released_to = Timestamp(dec.u64()?);
        let late = dec.u64()?;
        match style {
            REORDER_FRONT => {
                let n = dec.usize()?;
                let mut buffered = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    buffered.push(Event::load(dec)?);
                }
                Ok(ReorderSnap::Front {
                    slack,
                    watermark,
                    released_to,
                    late,
                    buffered,
                })
            }
            REORDER_GATE => {
                let n = dec.usize()?;
                let mut pending = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    pending.push(Timestamp(dec.u64()?));
                }
                let n = dec.usize()?;
                let mut buffered = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let query = dec.u32()?;
                    buffered.push((query, Event::load(dec)?));
                }
                Ok(ReorderSnap::Gate {
                    slack,
                    watermark,
                    released_to,
                    late,
                    pending,
                    buffered,
                })
            }
            other => Err(CheckpointError::Corrupt(format!(
                "unknown reorder style {other}"
            ))),
        }
    }
}

/// A query handed to the builder: raw text (parsed at
/// [`SessionBuilder::build`]) or an already-parsed [`Query`].
#[derive(Debug, Clone)]
pub enum QuerySpec {
    /// Query text in the paper's language.
    Text(String),
    /// A parsed query.
    Parsed(Query),
}

impl From<&str> for QuerySpec {
    fn from(text: &str) -> QuerySpec {
        QuerySpec::Text(text.to_string())
    }
}

impl From<String> for QuerySpec {
    fn from(text: String) -> QuerySpec {
        QuerySpec::Text(text)
    }
}

impl From<Query> for QuerySpec {
    fn from(query: Query) -> QuerySpec {
        QuerySpec::Parsed(query)
    }
}

impl From<&Query> for QuerySpec {
    fn from(query: &Query) -> QuerySpec {
        QuerySpec::Parsed(query.clone())
    }
}

/// The multi-query sharing factoring (ROADMAP direction 2): how a
/// session's N roster entries map onto M ≤ N physical runtimes. Queries
/// whose [canonical signature] and engine kind coincide execute as ONE
/// physical run — one automaton, one set of partial aggregates — and the
/// session fans every result of physical slot `j` out to all of
/// `members[j]` through the [`TaggedResult`] path, so per-query output is
/// byte-identical to unshared execution (asserted by
/// `tests/sharing_battery.rs`).
///
/// [canonical signature]: cogra_query::canonical_signature
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedPlan {
    /// Physical slot hosting each query (`physical_of[q] = j`); length is
    /// the roster size N.
    pub physical_of: Vec<usize>,
    /// Member queries of each physical slot, in registration order; the
    /// first member is the representative whose compiled plan runs.
    /// Length is the physical count M; slots are numbered in first-
    /// occurrence order, so every slot is non-empty.
    pub members: Vec<Vec<usize>>,
}

impl SharedPlan {
    /// Factor a roster by sharing key: entries with equal keys land in the
    /// same physical slot. Slots appear in first-occurrence order.
    pub fn factor(keys: &[String]) -> SharedPlan {
        let mut physical_of = Vec::with_capacity(keys.len());
        let mut members: Vec<Vec<usize>> = Vec::new();
        let mut seen: Vec<&String> = Vec::new();
        for (q, key) in keys.iter().enumerate() {
            match seen.iter().position(|k| *k == key) {
                Some(j) => {
                    physical_of.push(j);
                    members[j].push(q);
                }
                None => {
                    physical_of.push(seen.len());
                    seen.push(key);
                    members.push(vec![q]);
                }
            }
        }
        SharedPlan {
            physical_of,
            members,
        }
    }

    /// The no-sharing mapping: every query is its own physical run.
    pub fn identity(n: usize) -> SharedPlan {
        SharedPlan {
            physical_of: (0..n).collect(),
            members: (0..n).map(|q| vec![q]).collect(),
        }
    }

    /// Rebuild from a stored `physical_of` vector (checkpoint restore).
    /// Errors if the mapping is malformed: slots must be numbered densely
    /// in first-occurrence order, exactly as [`SharedPlan::factor`] emits.
    fn from_physical_of(physical_of: Vec<usize>) -> Result<SharedPlan, String> {
        let mut members: Vec<Vec<usize>> = Vec::new();
        for (q, &j) in physical_of.iter().enumerate() {
            if j > members.len() {
                return Err(format!(
                    "sharing map names physical slot {j} before slot {}",
                    members.len()
                ));
            }
            if j == members.len() {
                members.push(Vec::new());
            }
            members[j].push(q);
        }
        Ok(SharedPlan {
            physical_of,
            members,
        })
    }

    /// Number of roster queries N.
    pub fn queries(&self) -> usize {
        self.physical_of.len()
    }

    /// Number of physical runs M ≤ N.
    pub fn physical(&self) -> usize {
        self.members.len()
    }

    /// True when nothing factors (M == N).
    pub fn is_identity(&self) -> bool {
        self.physical() == self.queries()
    }

    /// The representative query of physical slot `j` (its plan runs).
    fn representative(&self, j: usize) -> usize {
        self.members[j][0]
    }
}

/// Fluent configuration of a [`Session`].
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder {
    /// Queries with an optional per-query engine override.
    queries: Vec<(QuerySpec, Option<EngineKind>)>,
    engine: Option<EngineKind>,
    config: EngineConfig,
    slack: Option<u64>,
    workers: usize,
    batch_size: Option<usize>,
    policy: FailurePolicy,
    sharing: Option<bool>,
}

impl SessionBuilder {
    /// An empty builder (engine defaults to [`EngineKind::Cogra`]).
    pub fn new() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// Add one query — call repeatedly for a multi-query workload. The
    /// query runs on the session's default engine kind
    /// ([`SessionBuilder::engine`]) over the shared stream.
    pub fn query(mut self, query: impl Into<QuerySpec>) -> SessionBuilder {
        self.queries.push((query.into(), None));
        self
    }

    /// Add one query pinned to its own engine kind — heterogeneous
    /// multi-query sessions run each query on the engine that suits it
    /// (Table 9), over the same stream:
    ///
    /// ```ignore
    /// Session::builder()
    ///     .query(any_query)                                  // default kind
    ///     .query_with_engine(next_query, EngineKind::Sase)   // pinned
    ///     .build(&registry)?
    /// ```
    pub fn query_with_engine(
        mut self,
        query: impl Into<QuerySpec>,
        kind: EngineKind,
    ) -> SessionBuilder {
        self.queries.push((query.into(), Some(kind)));
        self
    }

    /// Select the default engine for queries without a per-query kind
    /// (default: COGRA).
    pub fn engine(mut self, kind: EngineKind) -> SessionBuilder {
        self.engine = Some(kind);
        self
    }

    /// Engine-level configuration knobs (e.g. the Flink/A-Seq flatten cap).
    pub fn config(mut self, config: EngineConfig) -> SessionBuilder {
        self.config = config;
        self
    }

    /// Repair up to `slack` ticks of disorder before the engines see the
    /// events. Dropped late events are counted
    /// ([`Session::late_events`]). In streaming mode this fuses a
    /// [`Reorderer`] into ingestion; under `.workers(n)` each shard
    /// repairs its own sub-stream concurrently while a coordinator-side
    /// gate keeps the late-drop decisions identical to the front
    /// reorderer's.
    pub fn slack(mut self, slack: u64) -> SessionBuilder {
        self.slack = Some(slack);
        self
    }

    /// Execute with `workers` parallel per-partition shards (§8) — COGRA
    /// only. Sharded execution is live and shared: ONE [`StreamingPool`]
    /// of long-lived worker threads serves every query of the session
    /// (each worker hosts one engine per query/shard), events are hashed
    /// to their shard at ingest time and shipped in batches, and
    /// [`Session::drain_into`] emits results for closed windows while the
    /// stream is still flowing. Queries without a `GROUP-BY` prefix are
    /// pinned to a single worker each.
    pub fn workers(mut self, workers: usize) -> SessionBuilder {
        self.workers = workers.max(1);
        self
    }

    /// Shard-transport batch size under `.workers(n)` (default
    /// [`crate::parallel::DEFAULT_BATCH_SIZE`]): events staged per shard
    /// before a batch is shipped to the worker. Staged events flush on
    /// every drain/finish, so this tunes hand-off cost and latency, never
    /// the result set — asserted by the batch-size sweeps in
    /// `tests/streaming_parallel_props.rs`.
    pub fn batch_size(mut self, batch_size: usize) -> SessionBuilder {
        self.batch_size = Some(batch_size.max(1));
        self
    }

    /// What a `.workers(n)` session does when a shard worker panics
    /// (default [`FailurePolicy::Fail`]). [`FailurePolicy::Restart`]
    /// respawns the shard from its last in-memory snapshot and replays
    /// the events staged since, so output stays byte-identical to an
    /// undisturbed run; [`FailurePolicy::Degrade`] quarantines the shard
    /// and keeps serving the remaining keys, counting what the dead
    /// shard had absorbed as [`Session::dropped_events`]. Streaming
    /// (single-worker) sessions ignore the policy — there is no worker
    /// to supervise.
    pub fn on_worker_failure(mut self, policy: FailurePolicy) -> SessionBuilder {
        self.policy = policy;
        self
    }

    /// Multi-query sharing (default on): roster entries whose
    /// [canonical signature] and engine kind coincide execute as one
    /// physical run, with results fanned out per query — N identical
    /// subscriptions cost one query, not N. Per-query output is
    /// byte-identical either way (`tests/sharing_battery.rs`); disable to
    /// benchmark the unshared baseline or to keep per-query engine state
    /// separate for inspection via [`Session::engine`].
    ///
    /// [canonical signature]: cogra_query::canonical_signature
    pub fn sharing(mut self, sharing: bool) -> SessionBuilder {
        self.sharing = Some(sharing);
        self
    }

    /// Resolve queries and construct the engines.
    pub fn build(self, registry: &TypeRegistry) -> Result<Session, SessionError> {
        if self.queries.is_empty() {
            return Err(SessionError::NoQueries);
        }
        let default_kind = self.engine.unwrap_or(EngineKind::Cogra);
        let kinds: Vec<EngineKind> = self
            .queries
            .iter()
            .map(|(_, kind)| kind.unwrap_or(default_kind))
            .collect();
        if self.workers > 1 {
            if let Some(kind) = kinds.iter().find(|k| **k != EngineKind::Cogra) {
                return Err(SessionError::ParallelUnsupported(*kind));
            }
        }
        let attribute =
            |query: usize| move |error: QueryError| SessionError::Query { query, error };
        let queries: Vec<Query> = self
            .queries
            .into_iter()
            .enumerate()
            .map(|(i, (spec, _))| match spec {
                QuerySpec::Text(text) => parse(&text).map_err(attribute(i)),
                QuerySpec::Parsed(q) => Ok(q),
            })
            .collect::<Result<_, _>>()?;
        // Compile every query exactly once: the plans drive the COGRA
        // runtimes below and stay inspectable via `Session::plan`.
        let plans: Vec<Arc<CompiledQuery>> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| compile(q, registry).map(Arc::new).map_err(attribute(i)))
            .collect::<Result<_, _>>()?;
        // Canonical re-parseable text per query — what a checkpoint
        // stores, so a restore can re-compile the identical plans.
        let texts: Vec<String> = queries.iter().map(|q| q.to_string()).collect();
        let batch_size = self
            .batch_size
            .unwrap_or(crate::parallel::DEFAULT_BATCH_SIZE);

        // Multi-query sharing (default on): queries with the same
        // canonical signature AND engine kind are one physical run; the
        // engine kind joins the key because a shared slot hosts exactly
        // one runtime. Results fan out per query at drain/finish.
        let shared = if self.sharing.unwrap_or(true) {
            let keys: Vec<String> = queries
                .iter()
                .zip(&kinds)
                .map(|(q, kind)| format!("{}\u{1f}{}", kind.name(), canonical_signature(q)))
                .collect();
            SharedPlan::factor(&keys)
        } else {
            SharedPlan::identity(queries.len())
        };

        let mode = if self.workers > 1 {
            let runtimes = (0..shared.physical())
                .map(|j| cogra_runtime(&plans[shared.representative(j)], registry, &self.config))
                .collect();
            let pool = StreamingPool::new(
                runtimes,
                self.workers,
                PoolConfig {
                    batch_size,
                    slack: self.slack,
                    policy: self.policy,
                },
            );
            Mode::Parallel {
                pool: Box::new(pool),
            }
        } else {
            // Every kind builds from the plan compiled above — one
            // construction path, no second compile. One engine per
            // physical slot, built from the representative's plan.
            let engines = (0..shared.physical())
                .map(|j| {
                    let i = shared.representative(j);
                    kinds[i]
                        .build_plan(&plans[i], registry, &self.config)
                        .map_err(attribute(i))
                })
                .collect::<Result<Vec<_>, SessionError>>()?;
            Mode::Streaming { engines }
        };

        // The front reorderer only exists in streaming mode — under
        // `.workers(n)` the pool repairs per shard behind its late gate.
        let reorderer = match &mode {
            Mode::Streaming { .. } => self.slack.map(Reorderer::new),
            Mode::Parallel { .. } => None,
        };
        Ok(Session {
            kind: default_kind,
            kinds,
            plans,
            texts,
            config: self.config,
            batch_size,
            shared,
            mode,
            reorderer,
            scratch: Vec::new(),
            ingested: 0,
            finished: false,
        })
    }

    /// Rebuild a live session from a [`Session::checkpoint`] snapshot.
    ///
    /// The snapshot is authoritative for queries, engine kinds, engine
    /// configuration and slack — a builder with `.query(...)`,
    /// `.engine(...)` or `.slack(...)` set is rejected
    /// ([`CheckpointError::Unsupported`]). Three execution knobs may be
    /// overridden, because they do not change what the session computes:
    ///
    /// * `.workers(n)` — **elastic rescale**: the snapshot's merged
    ///   per-query states are re-sharded onto `n` workers by replaying the
    ///   group-prefix hash, so a session checkpointed at one width resumes
    ///   at another, byte-identically (`tests/checkpoint_props.rs`);
    /// * `.batch_size(n)` — shard-transport batching;
    /// * `.on_worker_failure(policy)` — supervision policy (it is not
    ///   serialized: how to react to a crash is an operational choice of
    ///   the process doing the restoring, not stream state).
    ///
    /// Restore re-compiles the snapshot's canonical query texts against
    /// `registry`, so the registry must define the event types the queries
    /// mention (it is intentionally NOT serialized: the registry is schema,
    /// owned by the application, not stream state).
    pub fn restore(
        self,
        registry: &TypeRegistry,
        reader: impl io::Read,
    ) -> Result<Session, CheckpointError> {
        if !self.queries.is_empty()
            || self.engine.is_some()
            || self.slack.is_some()
            || self.sharing.is_some()
        {
            return Err(CheckpointError::Unsupported(
                "restore takes queries, engines, slack and sharing from the snapshot; \
                 only .workers(n), .batch_size(n) and .on_worker_failure(p) may be \
                 overridden"
                    .to_string(),
            ));
        }

        // --- Decode the container -------------------------------------
        let mut r = SnapshotReader::new(reader)?;
        let bytes = r.expect("config")?;
        let mut dec = Dec::new(&bytes);
        let n_queries = dec.usize()?;
        let mut texts = Vec::with_capacity(n_queries.min(1 << 16));
        let mut kinds = Vec::with_capacity(n_queries.min(1 << 16));
        let parse_kind = |name: &str| name.parse::<EngineKind>().map_err(CheckpointError::Corrupt);
        for _ in 0..n_queries {
            texts.push(dec.str()?);
            kinds.push(parse_kind(&dec.str()?)?);
        }
        let default_kind = parse_kind(&dec.str()?)?;
        let flatten_cap = dec.opt_u64()?.map(|c| c as usize);
        let slack = dec.opt_u64()?;
        let snap_workers = dec.u64()? as usize;
        let snap_batch = dec.u64()? as usize;
        // `key_limit` was appended to the config section after the fields
        // above; snapshots written before it exists decode as `None`, so
        // the format version honestly stays at 1.
        let key_limit = if dec.remaining() > 0 {
            dec.opt_u64()?.map(|v| v as u32)
        } else {
            None
        };
        // The multi-query sharing map was appended after `key_limit` (same
        // guarded-tail discipline): physical slot per query. Snapshots
        // written before sharing existed decode as the identity mapping —
        // one physical run per query, exactly what they stored.
        let shared = if dec.remaining() > 0 {
            let n = dec.usize()?;
            if n != n_queries {
                return Err(CheckpointError::Corrupt(format!(
                    "sharing map covers {n} queries, snapshot has {n_queries}"
                )));
            }
            let mut physical_of = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                physical_of.push(dec.usize()?);
            }
            SharedPlan::from_physical_of(physical_of).map_err(CheckpointError::Corrupt)?
        } else {
            SharedPlan::identity(n_queries)
        };
        let config = EngineConfig {
            flatten_cap,
            key_limit,
        };
        dec.finish("config section")?;

        let bytes = r.expect("reorder")?;
        let mut dec = Dec::new(&bytes);
        let reorder = ReorderSnap::load(&mut dec)?;
        dec.finish("reorder section")?;
        match (&reorder, slack) {
            (ReorderSnap::Absent { .. }, Some(_)) => {
                return Err(CheckpointError::Corrupt(
                    "slack configured but no reorder state in snapshot".to_string(),
                ));
            }
            (ReorderSnap::Front { .. } | ReorderSnap::Gate { .. }, None) => {
                return Err(CheckpointError::Corrupt(
                    "reorder state present without slack".to_string(),
                ));
            }
            _ => {}
        }

        // One engine-state section per PHYSICAL run: a shared slot's state
        // is snapshotted once, however many queries it serves.
        let n_physical = shared.physical();
        let mut states = Vec::with_capacity(n_physical);
        for i in 0..n_physical {
            let bytes = r.expect(&format!("q{i}"))?;
            let mut dec = Dec::new(&bytes);
            states.push(RouterState::load(&mut dec)?);
            dec.finish("engine section")?;
        }
        r.finish()?;

        // --- Re-compile the queries ------------------------------------
        let plans: Vec<Arc<CompiledQuery>> = texts
            .iter()
            .enumerate()
            .map(|(i, text)| {
                parse(text)
                    .and_then(|q| compile(&q, registry))
                    .map(Arc::new)
                    .map_err(|e| {
                        CheckpointError::Corrupt(format!("query {i} failed to parse/compile: {e}"))
                    })
            })
            .collect::<Result<_, _>>()?;

        // --- Resolve the execution shape -------------------------------
        let workers = if self.workers > 0 {
            self.workers
        } else {
            snap_workers.max(1)
        };
        let batch_size = self.batch_size.unwrap_or(snap_batch).max(1);
        // Gate-style reorder state always restores into a pool, whatever
        // the worker count: the buffered items already passed per-query
        // admission, which a front reorderer cannot replay.
        let use_pool = workers > 1 || matches!(reorder, ReorderSnap::Gate { .. });
        if use_pool {
            if let Some(kind) = kinds.iter().find(|k| **k != EngineKind::Cogra) {
                return Err(CheckpointError::Unsupported(format!(
                    "workers > 1 requires the cogra engine, not `{kind}`"
                )));
            }
        }

        let (mode, reorderer) = if use_pool {
            let runtimes: Vec<Arc<QueryRuntime>> = (0..shared.physical())
                .map(|j| cogra_runtime(&plans[shared.representative(j)], registry, &config))
                .collect();
            let (gate, clock, front_buffered, gate_buffered) = match reorder {
                ReorderSnap::Absent { clock } => (None, clock, Vec::new(), Vec::new()),
                ReorderSnap::Front {
                    slack,
                    watermark,
                    released_to,
                    late,
                    buffered,
                } => {
                    // A streaming snapshot rescaled onto workers: the
                    // front buffer's event times become the gate's
                    // pending set, and the events re-stage per shard.
                    let pending = buffered.iter().map(|e| e.time).collect();
                    (
                        Some(LateGate::from_parts(
                            slack,
                            watermark,
                            released_to,
                            late,
                            pending,
                        )),
                        watermark,
                        buffered,
                        Vec::new(),
                    )
                }
                ReorderSnap::Gate {
                    slack,
                    watermark,
                    released_to,
                    late,
                    pending,
                    buffered,
                } => (
                    Some(LateGate::from_parts(
                        slack,
                        watermark,
                        released_to,
                        late,
                        pending,
                    )),
                    watermark,
                    Vec::new(),
                    buffered,
                ),
            };
            let mut pool = StreamingPool::restore(
                runtimes,
                workers,
                PoolConfig {
                    batch_size,
                    slack,
                    policy: self.policy,
                },
                states,
                gate,
                clock,
            )?;
            for event in front_buffered {
                pool.restage_all(event);
            }
            for (query, event) in gate_buffered {
                if query as usize >= n_physical {
                    return Err(CheckpointError::Corrupt(format!(
                        "buffered item references physical run {query} of {n_physical}"
                    )));
                }
                pool.restage(query, event);
            }
            (
                Mode::Parallel {
                    pool: Box::new(pool),
                },
                None,
            )
        } else {
            let engines = states
                .into_iter()
                .enumerate()
                .map(|(j, state)| {
                    let i = shared.representative(j);
                    kinds[i].restore_plan(&plans[i], registry, &config, state)
                })
                .collect::<Result<Vec<_>, CheckpointError>>()?;
            let reorderer = match reorder {
                ReorderSnap::Absent { .. } => None,
                ReorderSnap::Front {
                    slack,
                    watermark,
                    released_to,
                    late,
                    buffered,
                } => {
                    let mut r = Reorderer::from_parts(slack, watermark, released_to, late);
                    r.restore_buffered(buffered);
                    Some(r)
                }
                ReorderSnap::Gate { .. } => unreachable!("gate snapshots restore into a pool"),
            };
            (Mode::Streaming { engines }, reorderer)
        };

        Ok(Session {
            kind: default_kind,
            kinds,
            plans,
            texts,
            config,
            batch_size,
            shared,
            mode,
            reorderer,
            scratch: Vec::new(),
            ingested: 0,
            finished: false,
        })
    }

    /// Convenience: [`SessionBuilder::build`] + [`Session::run`].
    pub fn run(
        self,
        registry: &TypeRegistry,
        events: &[Event],
    ) -> Result<SessionRun, SessionError> {
        Ok(self.build(registry)?.run(events))
    }
}

enum Mode {
    /// Push-through: every released event goes straight into the engines.
    Streaming { engines: Vec<Box<dyn TrendEngine>> },
    /// §8 sharded execution, live: every event is hashed to its shard's
    /// worker thread at ingest time and shipped in batches through ONE
    /// session-wide [`StreamingPool`]; drains emit watermark-final
    /// results mid-stream. Boxed: the pool (staging buffers, recovery
    /// journals, per-shard counters) dwarfs the streaming variant.
    Parallel { pool: Box<StreamingPool> },
}

/// Push-based consumer of session results.
///
/// Implemented for closures (`FnMut(usize, WindowResult)`), for
/// `Vec<WindowResult>` (query index discarded) and for
/// `Vec<TaggedResult>`.
pub trait ResultSink {
    /// Receive one finalized result of query `query`.
    fn emit(&mut self, query: usize, result: WindowResult);
}

impl<F: FnMut(usize, WindowResult)> ResultSink for F {
    fn emit(&mut self, query: usize, result: WindowResult) {
        self(query, result)
    }
}

impl ResultSink for Vec<WindowResult> {
    fn emit(&mut self, _query: usize, result: WindowResult) {
        self.push(result);
    }
}

impl ResultSink for Vec<TaggedResult> {
    fn emit(&mut self, query: usize, result: WindowResult) {
        self.push(TaggedResult { query, result });
    }
}

/// Fan one physical run's result out to every member query of its slot,
/// in query-registration order; the last member takes the value by move
/// (the unshared common case never clones).
fn fan_out(members: &[usize], result: WindowResult, sink: &mut dyn ResultSink) {
    let Some((&last, rest)) = members.split_last() else {
        return;
    };
    for &q in rest {
        sink.emit(q, result.clone());
    }
    sink.emit(last, result);
}

/// A window result tagged with the query that produced it (multi-query
/// sessions interleave their queries' outputs).
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedResult {
    /// Index of the query, in `.query(...)` registration order.
    pub query: usize,
    /// The result.
    pub result: WindowResult,
}

/// Outcome of a batch [`Session::run`].
#[derive(Debug)]
pub struct SessionRun {
    /// Per query (in registration order): its results, deterministically
    /// sorted by (window, group) — byte-identical to what
    /// [`run_to_completion`] / [`run_parallel`] produce for the same
    /// query and stream.
    ///
    /// [`run_to_completion`]: cogra_engine::run_to_completion
    /// [`run_parallel`]: crate::parallel::run_parallel
    pub per_query: Vec<Vec<WindowResult>>,
    /// Peak logical memory across the run. Streaming mode sums the
    /// engines (every query is live at once); `.workers(n)` mode sums the
    /// shard workers' own peaks (each worker samples the summed memory of
    /// the engines it hosts; all workers run concurrently).
    pub peak_bytes: usize,
    /// Workers actually used: the widest effective shard count across
    /// queries (1 unless `.workers(n)` applied; also 1 when no query has
    /// a `GROUP-BY` prefix to shard on).
    pub workers: usize,
    /// Events fed into the session (including any the `.slack(n)`
    /// repair later dropped as hopelessly late).
    pub events: u64,
    /// Late events dropped by the `.slack(n)` repair (0 without slack).
    /// Under `.workers(n)` the per-shard reorderers' drops are decided by
    /// one stream-wide gate, so this count is independent of the worker
    /// count — pinned by `tests/streaming_parallel_props.rs`.
    pub late_events: u64,
    /// Routing hot-path counters summed over every engine (and, under
    /// `.workers(n)`, every shard): `key_probes - key_allocs` events were
    /// routed without any heap allocation.
    pub stats: RunStats,
    /// Events ingested per shard worker slot ([`Session::shard_events`]) —
    /// a single entry in streaming mode. Under a skewed key distribution
    /// the spread between entries is the hot-key imbalance.
    pub shard_events: Vec<u64>,
    /// Shards quarantined by [`FailurePolicy::Degrade`], in index order
    /// ([`Session::degraded_shards`]) — empty on a healthy run.
    pub degraded: Vec<usize>,
    /// Events lost to quarantines ([`Session::dropped_events`]) — 0 on a
    /// healthy run.
    pub dropped_events: u64,
    /// Each query's compiled plan (granularity, automaton, window), in
    /// registration order — shared with the session, so consumers report
    /// on the plan without re-compiling.
    pub plans: Vec<Arc<CompiledQuery>>,
    /// Physical runs actually executed (M ≤ N queries): queries with the
    /// same [canonical signature] and engine kind shared one automaton
    /// run; results were fanned out per query. Equals `per_query.len()`
    /// when nothing shared or `.sharing(false)` was set.
    ///
    /// [canonical signature]: cogra_query::canonical_signature
    pub physical: usize,
}

impl SessionRun {
    /// The first (often only) query's results.
    pub fn results(&self) -> &[WindowResult] {
        &self.per_query[0]
    }

    /// Flatten into tagged results, in query order.
    pub fn tagged(self) -> Vec<TaggedResult> {
        self.per_query
            .into_iter()
            .enumerate()
            .flat_map(|(query, results)| {
                results
                    .into_iter()
                    .map(move |result| TaggedResult { query, result })
            })
            .collect()
    }
}

/// A configured pipeline: queries × engines × ingestion options. Built by
/// [`SessionBuilder`]; see the module docs for the full tour.
pub struct Session {
    /// The default engine kind.
    kind: EngineKind,
    /// Resolved engine kind per query.
    kinds: Vec<EngineKind>,
    /// Compiled plan per query.
    plans: Vec<Arc<CompiledQuery>>,
    /// Canonical query text per query (what a checkpoint stores).
    texts: Vec<String>,
    /// Engine configuration, kept for checkpointing.
    config: EngineConfig,
    /// Resolved shard-transport batch size, kept for checkpointing.
    batch_size: usize,
    /// The multi-query sharing factoring: which physical run serves each
    /// query, and which queries each physical run fans out to.
    shared: SharedPlan,
    mode: Mode,
    reorderer: Option<Reorderer>,
    scratch: Vec<Event>,
    /// Events fed into the session so far (before any `.slack(n)`
    /// late-drop) — the streaming-mode source for [`Session::shard_events`].
    ingested: u64,
    /// Whether [`Session::finish_into`] ran — a finished session has
    /// emitted and discarded its state and cannot checkpoint.
    finished: bool,
}

impl Session {
    /// Start configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// The session's default engine kind (queries added via
    /// [`SessionBuilder::query_with_engine`] may deviate — see
    /// [`Session::query_kind`]).
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// The engine kind query `query` runs on.
    pub fn query_kind(&self, query: usize) -> Option<EngineKind> {
        self.kinds.get(query).copied()
    }

    /// The compiled plan of query `query` — granularity, automaton,
    /// window — without re-compiling.
    pub fn plan(&self, query: usize) -> Option<&CompiledQuery> {
        self.plans.get(query).map(|p| p.as_ref())
    }

    /// Every query's compiled plan, in registration order.
    pub fn plans(&self) -> &[Arc<CompiledQuery>] {
        &self.plans
    }

    /// Number of queries.
    pub fn queries(&self) -> usize {
        self.plans.len()
    }

    /// Ingest one event. With `.slack(n)` the event may be buffered (or
    /// dropped as late); in `.workers(n)` mode released events are hashed
    /// to their shard and staged for the next batch send immediately.
    pub fn process(&mut self, event: &Event) {
        self.ingested += 1;
        if self.reorderer.is_some() {
            self.pump(|reorderer, out| reorderer.push(event.clone(), out));
        } else {
            self.mode.route(event);
        }
    }

    /// Like [`Session::process`], consuming the event — spares a clone on
    /// the `.slack(n)` and single-query `.workers(n)` paths.
    pub fn process_owned(&mut self, event: Event) {
        self.ingested += 1;
        if self.reorderer.is_some() {
            self.pump(|reorderer, out| reorderer.push(event, out));
        } else {
            self.mode.route_owned(event);
        }
    }

    /// Ingest events straight off a `cogra_events::csv` stream — one
    /// decode pass, no intermediate `Vec<Event>`; THE decode path shared
    /// by the `cogra-run` CLI and the throughput harness. Returns the
    /// number of events ingested. Without `.slack(n)` a time-regressing
    /// row fails with [`IngestError::OutOfOrder`] instead of corrupting
    /// engine state. Results are *not* collected here: drain via
    /// [`Session::drain_into`] / [`Session::finish_into`] as usual, or
    /// use [`Session::run_csv`] for the collect-everything convenience.
    pub fn ingest_csv(&mut self, text: &str, registry: &TypeRegistry) -> Result<u64, IngestError> {
        let mut count = 0u64;
        for item in self.checked_csv(text, registry)? {
            self.process_owned(item?);
            count += 1;
            if let Some(limit) = self.key_overflow() {
                return Err(IngestError::KeyOverflow { limit });
            }
            if let Some(failure) = self.worker_failure() {
                return Err(IngestError::WorkerFailed(failure.clone()));
            }
        }
        Ok(count)
    }

    /// The decode + order-check adapter shared by [`Session::ingest_csv`]
    /// and [`Session::run_csv`] — one enforcement site for the
    /// no-slack [`IngestError::OutOfOrder`] contract.
    fn checked_csv<'a>(
        &self,
        text: &'a str,
        registry: &'a TypeRegistry,
    ) -> Result<impl Iterator<Item = Result<Event, IngestError>> + 'a, IngestError> {
        let has_slack = self.has_slack();
        let mut watermark = self.watermark();
        let reader = EventReader::new(text, registry)?;
        Ok(reader.map(move |item| {
            let event = item?;
            if !has_slack && event.time < watermark {
                return Err(IngestError::OutOfOrder {
                    event: event.id,
                    time: event.time,
                    watermark,
                });
            }
            watermark = watermark.max(event.time);
            Ok(event)
        }))
    }

    /// Whether slack-based disorder repair is active (front reorderer or
    /// the pool's per-shard reorderers).
    fn has_slack(&self) -> bool {
        self.reorderer.is_some()
            || matches!(&self.mode, Mode::Parallel { pool } if pool.has_slack())
    }

    /// Let `fill` release events out of the reorderer into the scratch
    /// buffer, then route them. No-op without a reorderer.
    fn pump(&mut self, fill: impl FnOnce(&mut Reorderer, &mut Vec<Event>)) {
        let Some(reorderer) = &mut self.reorderer else {
            return;
        };
        self.scratch.clear();
        fill(reorderer, &mut self.scratch);
        let mut scratch = std::mem::take(&mut self.scratch);
        for e in scratch.drain(..) {
            self.mode.route_owned(e);
        }
        self.scratch = scratch;
    }

    /// Emit every result final at the current watermark. In `.workers(n)`
    /// mode this flushes the staged batches and broadcasts the global
    /// watermark to the shards first, so results flow live even when some
    /// shard's sub-stream went quiet.
    pub fn drain_into(&mut self, sink: &mut dyn ResultSink) {
        let shared = &self.shared;
        match &mut self.mode {
            Mode::Streaming { engines } => {
                for (j, engine) in engines.iter_mut().enumerate() {
                    engine.drain_into(&mut |r| fan_out(&shared.members[j], r, sink));
                }
            }
            Mode::Parallel { pool } => {
                pool.drain_into(&mut |j, r| fan_out(&shared.members[j], r, sink))
            }
        }
    }

    /// End of stream: flush the reorder buffers, close every open window,
    /// and — in `.workers(n)` mode — join the shard workers.
    ///
    /// The session is exhausted afterwards: further
    /// [`Session::process`] calls are unsupported (in `.workers(n)` mode
    /// they panic — the shard workers are gone).
    pub fn finish_into(&mut self, sink: &mut dyn ResultSink) {
        self.finished = true;
        self.pump(|reorderer, out| reorderer.flush(out));
        let shared = &self.shared;
        match &mut self.mode {
            Mode::Streaming { engines } => {
                for (j, engine) in engines.iter_mut().enumerate() {
                    engine.finish_into(&mut |r| fan_out(&shared.members[j], r, sink));
                }
            }
            Mode::Parallel { pool } => {
                pool.finish_into(&mut |j, r| fan_out(&shared.members[j], r, sink))
            }
        }
    }

    /// Collecting wrapper over [`Session::drain_into`].
    pub fn drain(&mut self) -> Vec<TaggedResult> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }

    /// Collecting wrapper over [`Session::finish_into`].
    pub fn finish(&mut self) -> Vec<TaggedResult> {
        let mut out = Vec::new();
        self.finish_into(&mut out);
        out
    }

    /// Events dropped as too late by the `.slack(n)` repair (front
    /// reorderer in streaming mode, the pool's gate under `.workers(n)`).
    pub fn late_events(&self) -> u64 {
        match &self.mode {
            Mode::Parallel { pool } => pool.late_events(),
            Mode::Streaming { .. } => self.reorderer.as_ref().map_or(0, Reorderer::late_events),
        }
    }

    /// Logical memory footprint: the engines' exact accounting in
    /// streaming mode; in `.workers(n)` mode the summed shard engines,
    /// as of each worker's last drain (the shards run concurrently, so
    /// there is no synchronous round trip here). The `.slack(n)` reorder
    /// buffers are excluded — they are bounded by slack × rate and not an
    /// engine metric of §9.1.
    pub fn memory_bytes(&self) -> usize {
        match &self.mode {
            Mode::Streaming { engines } => engines.iter().map(|e| e.memory_bytes()).sum(),
            Mode::Parallel { pool } => pool.memory_bytes(),
        }
    }

    /// The minimum engine watermark across queries — results at or before
    /// it are final everywhere. (In `.workers(n)` mode: the pool's
    /// observable watermark — the latest routed event time, or the safe
    /// watermark of the slack gate when disorder repair is active.)
    pub fn watermark(&self) -> Timestamp {
        match &self.mode {
            Mode::Streaming { engines } => engines
                .iter()
                .map(|e| e.watermark())
                .min()
                .unwrap_or(Timestamp::ZERO),
            Mode::Parallel { pool } => pool.watermark(),
        }
    }

    /// Effective shard count: 1 in streaming mode; under `.workers(n)`
    /// the pool's widest effective count across queries (also 1 when no
    /// query has a `GROUP-BY` prefix to shard on) — the live counterpart
    /// of [`SessionRun::workers`].
    pub fn workers(&self) -> usize {
        match &self.mode {
            Mode::Streaming { .. } => 1,
            Mode::Parallel { pool } => pool.workers(),
        }
    }

    /// Access one query's engine (streaming mode only). With sharing
    /// active the returned engine may serve other queries too — it is the
    /// query's physical run.
    pub fn engine(&self, query: usize) -> Option<&dyn TrendEngine> {
        let j = *self.shared.physical_of.get(query)?;
        match &self.mode {
            Mode::Streaming { engines } => engines.get(j).map(|e| e.as_ref()),
            Mode::Parallel { .. } => None,
        }
    }

    /// The multi-query sharing factoring in effect: which physical run
    /// serves each query. Identity when sharing is off or nothing shares.
    pub fn shared_plan(&self) -> &SharedPlan {
        &self.shared
    }

    /// Number of physical runs actually executing (M ≤ N queries).
    pub fn physical_runs(&self) -> usize {
        self.shared.physical()
    }

    /// Summed routing hot-path counters ([`RunStats`]) across the
    /// session's engines — under `.workers(n)`, across every shard, as of
    /// each worker's last drain (final once the session finished).
    pub fn run_stats(&self) -> RunStats {
        let mut total = RunStats::default();
        match &self.mode {
            Mode::Streaming { engines } => {
                for e in engines {
                    total.merge(e.run_stats());
                }
            }
            Mode::Parallel { pool } => total.merge(pool.run_stats()),
        }
        total
    }

    /// Sticky partition-key overflow: `Some(limit)` once any event was
    /// dropped because materializing its first-seen partition key would
    /// exceed the configured [`EngineConfig::key_limit`]. `None` without
    /// a limit. Under `.workers(n)` the flag is refreshed from the shard
    /// workers at drain/finish boundaries (the shards run concurrently).
    pub fn key_overflow(&self) -> Option<u32> {
        match &self.mode {
            Mode::Streaming { engines } => engines.iter().find_map(|e| e.key_overflow()),
            Mode::Parallel { pool } => pool.key_overflow(),
        }
    }

    /// Sticky worker failure: `Some` once a shard worker died under
    /// [`FailurePolicy::Fail`] (or exhausted its restart budget under
    /// [`FailurePolicy::Restart`]). A failed session accepts no further
    /// events and emits nothing. Always `None` in streaming mode and
    /// under successful Degrade/Restart recovery.
    pub fn worker_failure(&self) -> Option<&WorkerFailure> {
        match &self.mode {
            Mode::Streaming { .. } => None,
            Mode::Parallel { pool } => pool.failure(),
        }
    }

    /// Shards quarantined by [`FailurePolicy::Degrade`], in index order —
    /// empty on a healthy session (and always in streaming mode).
    pub fn degraded_shards(&self) -> Vec<usize> {
        match &self.mode {
            Mode::Streaming { .. } => Vec::new(),
            Mode::Parallel { pool } => pool.degraded_shards(),
        }
    }

    /// Events lost to [`FailurePolicy::Degrade`] quarantines: what the
    /// dead shard had absorbed plus later events whose pinned query
    /// had no live fallback. 0 on a healthy session.
    pub fn dropped_events(&self) -> u64 {
        match &self.mode {
            Mode::Streaming { .. } => 0,
            Mode::Parallel { pool } => pool.dropped_events(),
        }
    }

    /// Events ingested per shard worker, as of each worker's last drain
    /// (final once the session finished) — the observable for hot-key
    /// imbalance under skewed streams. Streaming mode reports one entry.
    /// Indexed by worker slot; a session whose queries shard narrower
    /// than `.workers(n)` leaves the unused slots at zero.
    pub fn shard_events(&self) -> Vec<u64> {
        match &self.mode {
            Mode::Streaming { .. } => vec![self.ingested],
            Mode::Parallel { pool } => pool.shard_events(),
        }
    }

    /// The active disorder tolerance, wherever it lives (front reorderer
    /// in streaming mode, the pool's gate under `.workers(n)`).
    fn slack_value(&self) -> Option<u64> {
        match &self.mode {
            Mode::Streaming { .. } => self.reorderer.as_ref().map(Reorderer::slack),
            Mode::Parallel { pool } => pool.slack(),
        }
    }

    /// Serialize the session's complete live state into a versioned
    /// snapshot (see the `cogra-checkpoint` crate for the container
    /// format): queries (canonical text) and engine kinds, engine
    /// configuration, slack/workers/batch-size, every engine's partition
    /// and window state with watermarks and drain floors, and the
    /// `.slack(n)` reorder state — in-flight events, release points and
    /// the late-drop count. Under `.workers(n)` the shards' states are
    /// merged per query, so the snapshot is layout-independent:
    /// [`SessionBuilder::restore`] may re-shard it onto a different
    /// `.workers(n)` (elastic rescale).
    ///
    /// Partitions whose window ring is drained empty are *not* written —
    /// a restored session re-interns only the live key set, which is the
    /// interner compaction that shrinks [`Session::memory_bytes`] across
    /// a checkpoint/restore cycle of a churn-heavy workload.
    ///
    /// Checkpointing is non-destructive: no windows close, nothing is
    /// emitted, and the session continues unchanged. A finished session
    /// cannot checkpoint ([`CheckpointError::Unsupported`]).
    pub fn checkpoint(&mut self, writer: impl io::Write) -> Result<(), CheckpointError> {
        if self.finished {
            return Err(CheckpointError::Unsupported(
                "cannot checkpoint a finished session".to_string(),
            ));
        }

        // Engine states + reorder payload first (the pool does both in
        // one snapshot round trip), then the container is written in one
        // pass: config, reorder, one `q<i>` section per query.
        let (states, reorder) = match &mut self.mode {
            Mode::Streaming { engines } => {
                let mut states = Vec::with_capacity(engines.len());
                for e in engines.iter() {
                    let mut enc = Enc::new();
                    e.save_state(&mut enc)?;
                    states.push(enc.into_bytes());
                }
                // Raw stream clock, for a restore onto `.workers(n)`: in
                // streaming mode every engine saw every event, so the
                // largest engine watermark is the largest routed time.
                let clock = engines
                    .iter()
                    .map(|e| e.watermark())
                    .max()
                    .unwrap_or(Timestamp::ZERO);
                let mut enc = Enc::new();
                match &self.reorderer {
                    None => {
                        enc.bool(false);
                        enc.u64(clock.ticks());
                    }
                    Some(r) => {
                        enc.bool(true);
                        enc.u8(REORDER_FRONT);
                        enc.u64(r.slack());
                        enc.u64(r.watermark().ticks());
                        enc.u64(r.released_to().ticks());
                        enc.u64(r.late_events());
                        let buffered = r.buffered_events();
                        enc.usize(buffered.len());
                        for e in buffered {
                            e.save(&mut enc);
                        }
                    }
                }
                (states, enc.into_bytes())
            }
            Mode::Parallel { pool } => {
                let (router_states, buffered) = pool.snapshot()?;
                let states = router_states
                    .iter()
                    .map(|st| {
                        let mut enc = Enc::new();
                        st.save(&mut enc);
                        enc.into_bytes()
                    })
                    .collect();
                let mut enc = Enc::new();
                match pool.gate() {
                    None => {
                        enc.bool(false);
                        enc.u64(pool.raw_watermark().ticks());
                        debug_assert!(buffered.is_empty(), "no reorder buffers without slack");
                    }
                    Some(gate) => {
                        enc.bool(true);
                        enc.u8(REORDER_GATE);
                        enc.u64(gate.slack());
                        enc.u64(gate.watermark().ticks());
                        enc.u64(gate.safe_watermark().ticks());
                        enc.u64(gate.late_events());
                        let pending = gate.pending_times();
                        enc.usize(pending.len());
                        for t in &pending {
                            enc.u64(t.ticks());
                        }
                        // In-flight items, sorted for a layout-independent
                        // byte stream (shard buffers come back in shard
                        // order, not time order).
                        let mut pairs = buffered;
                        pairs.sort_by_key(|(q, e)| (e.time, e.id, *q));
                        enc.usize(pairs.len());
                        for (q, e) in &pairs {
                            enc.u32(*q);
                            e.save(&mut enc);
                        }
                    }
                }
                (states, enc.into_bytes())
            }
        };

        let mut w = SnapshotWriter::new(writer)?;
        let mut enc = Enc::new();
        enc.usize(self.texts.len());
        for (text, kind) in self.texts.iter().zip(&self.kinds) {
            enc.str(text);
            enc.str(kind.name());
        }
        enc.str(self.kind.name());
        enc.opt_u64(self.config.flatten_cap.map(|c| c as u64));
        enc.opt_u64(self.slack_value());
        enc.u64(self.workers() as u64);
        enc.u64(self.batch_size as u64);
        enc.opt_u64(self.config.key_limit.map(u64::from));
        // Sharing map, appended behind the tail guard (like `key_limit`
        // before it) so pre-sharing snapshots keep decoding: physical slot
        // per query. The `q<i>` sections below are per PHYSICAL run.
        enc.usize(self.shared.queries());
        for &j in &self.shared.physical_of {
            enc.usize(j);
        }
        w.section("config", enc.as_slice())?;
        w.section("reorder", &reorder)?;
        for (i, state) in states.iter().enumerate() {
            w.section(&format!("q{i}"), state)?;
        }
        w.finish()
    }

    /// Run the whole stream through the session and collect everything:
    /// results (sorted per query), peak memory (sampled every 64 events,
    /// like the harness), workers used, routing stats, plans, and
    /// late-event drops.
    /// With `EngineConfig::key_limit` set, events past the limit are
    /// silently dropped here (the overflow stays observable through
    /// [`Session::key_overflow`] — it is [`Session::run_csv`] and
    /// [`Session::ingest_csv`] that fail typed).
    pub fn run(self, events: &[Event]) -> SessionRun {
        self.run_inner(events.iter().map(|e| Ok(Fed::Ref(e))), false)
            .unwrap_or_else(|_| unreachable!("in-memory streams cannot fail ingestion"))
    }

    /// Like [`Session::run`], consuming an event stream — pairs with lazy
    /// sources (generators, decoders) without materializing a `Vec`.
    pub fn run_stream(self, events: impl IntoIterator<Item = Event>) -> SessionRun {
        self.run_inner(events.into_iter().map(|e| Ok(Fed::Owned(e))), false)
            .unwrap_or_else(|_| unreachable!("in-memory streams cannot fail ingestion"))
    }

    /// [`Session::run`] straight off a `cogra_events::csv` stream: rows
    /// are decoded and ingested in one pass (the decode path shared with
    /// [`Session::ingest_csv`] and the CLI), never materializing the
    /// event vector. Without `.slack(n)`, a time-regressing row fails
    /// with [`IngestError::OutOfOrder`].
    pub fn run_csv(self, text: &str, registry: &TypeRegistry) -> Result<SessionRun, IngestError> {
        let events = self.checked_csv(text, registry)?;
        self.run_inner(events.map(|item| item.map(Fed::Owned)), true)
    }

    /// The collect-everything loop shared by [`Session::run`],
    /// [`Session::run_stream`] and [`Session::run_csv`].
    /// `strict` makes a `key_limit` overflow or a sticky worker failure
    /// fail typed (the CSV surfaces); the in-memory surfaces pass
    /// `false` and stay infallible — the overflow remains observable via
    /// [`Session::key_overflow`], while a worker failure panics at the
    /// end of the run (a controlled diagnostic: the alternative is
    /// silently returning empty results for a stream that was never
    /// processed).
    fn run_inner<'a>(
        mut self,
        events: impl Iterator<Item = Result<Fed<'a>, IngestError>>,
        strict: bool,
    ) -> Result<SessionRun, IngestError> {
        let mut per_query: Vec<Vec<WindowResult>> = vec![Vec::new(); self.queries()];
        let sharded = matches!(self.mode, Mode::Parallel { .. });
        let mut peak = self.memory_bytes();
        let mut count = 0u64;
        {
            let mut sink = |query: usize, result: WindowResult| per_query[query].push(result);
            for item in events {
                match item? {
                    Fed::Ref(event) => self.process(event),
                    Fed::Owned(event) => self.process_owned(event),
                }
                if strict {
                    if let Some(limit) = self.key_overflow() {
                        return Err(IngestError::KeyOverflow { limit });
                    }
                    if let Some(failure) = self.worker_failure() {
                        return Err(IngestError::WorkerFailed(failure.clone()));
                    }
                }
                let i = count as usize;
                count += 1;
                if sharded {
                    // A shard drain is a cross-thread round trip that also
                    // flushes partial transport batches; amortize it over
                    // a coarse stride instead of paying it per event.
                    // (Drains also refresh the memory mirrors; the workers
                    // sample their own peaks besides.) Emission timing is
                    // coarser, but the collected result set is identical —
                    // asserted by the drain-cadence invariance battery.
                    if i % 2048 == 2047 {
                        self.drain_into(&mut sink);
                        peak = peak.max(self.memory_bytes());
                    }
                } else {
                    self.drain_into(&mut sink);
                    if i.is_multiple_of(64) {
                        peak = peak.max(self.memory_bytes());
                    }
                }
            }
            peak = peak.max(self.memory_bytes());
            self.finish_into(&mut sink);
        }
        if let Some(failure) = self.worker_failure() {
            if strict {
                return Err(IngestError::WorkerFailed(failure.clone()));
            }
            // The infallible surfaces (`run`/`run_stream`) have no error
            // channel; a controlled panic with the typed message beats
            // silently handing back empty results.
            panic!("{failure}");
        }
        for results in &mut per_query {
            WindowResult::sort(results);
        }
        let (peak, workers) = match &self.mode {
            Mode::Streaming { engines } => (
                peak.max(engines.iter().map(|e| e.peak_hint()).sum::<usize>()),
                1,
            ),
            // The workers' own peak accounting (sampled inside the shard
            // threads over each worker's hosted engines) — the
            // coordinator-side samples above only mirror it with a lag.
            Mode::Parallel { pool } => (pool.peak_bytes(), pool.workers()),
        };
        Ok(SessionRun {
            per_query,
            peak_bytes: peak,
            workers,
            events: count,
            late_events: self.late_events(),
            stats: self.run_stats(),
            shard_events: self.shard_events(),
            degraded: self.degraded_shards(),
            dropped_events: self.dropped_events(),
            plans: self.plans.clone(),
            physical: self.shared.physical(),
        })
    }
}

/// One ingested event: borrowed from a slice ([`Session::run`]) or owned
/// by a streaming source ([`Session::run_stream`] / [`Session::run_csv`]).
enum Fed<'a> {
    Ref(&'a Event),
    Owned(Event),
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("kind", &self.kind)
            .field("queries", &self.queries())
            .field("slack", &self.has_slack().then_some(()))
            .finish_non_exhaustive()
    }
}

impl Mode {
    fn route(&mut self, event: &Event) {
        match self {
            Mode::Streaming { engines } => {
                for engine in engines {
                    engine.process(event);
                }
            }
            Mode::Parallel { pool } => pool.route(event),
        }
    }

    /// Like [`Mode::route`], but consumes the event — spares one clone on
    /// the sharded path's last target.
    fn route_owned(&mut self, event: Event) {
        match self {
            Mode::Parallel { pool } => pool.route_owned(event),
            Mode::Streaming { .. } => self.route(&event),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_to_completion;
    use cogra_events::{EventBuilder, Value, ValueKind};
    use cogra_query::Granularity;

    fn registry() -> TypeRegistry {
        let mut r = TypeRegistry::new();
        for t in ["A", "B"] {
            r.register_type(t, vec![("g", ValueKind::Int), ("v", ValueKind::Int)]);
        }
        r
    }

    fn stream(reg: &TypeRegistry, n: usize) -> Vec<Event> {
        let a = reg.id_of("A").unwrap();
        let b = reg.id_of("B").unwrap();
        let mut builder = EventBuilder::new();
        (0..n)
            .map(|i| {
                builder.event(
                    (i + 1) as u64,
                    if i % 3 == 2 { b } else { a },
                    vec![Value::Int((i % 4) as i64), Value::Int(i as i64)],
                )
            })
            .collect()
    }

    const Q_ANY: &str = "RETURN g, COUNT(*) PATTERN SEQ(A+, B) SEMANTICS ANY \
                         GROUP-BY g WITHIN 10 SLIDE 5";
    const Q_NEXT: &str = "RETURN g, COUNT(*) PATTERN SEQ(A+, B) SEMANTICS NEXT \
                          GROUP-BY g WITHIN 10 SLIDE 5";
    const Q_NEXT_NO_GROUP: &str =
        "RETURN COUNT(*) PATTERN SEQ(A+, B) SEMANTICS NEXT WITHIN 10 SLIDE 5";

    #[test]
    fn roster_builds_every_supported_engine() {
        let reg = registry();
        let any = parse(Q_ANY).unwrap();
        let next = parse(Q_NEXT).unwrap();
        let cfg = EngineConfig::default();
        for kind in EngineKind::ALL {
            assert!(kind.build(&any, &reg, &cfg).is_ok(), "{kind} on ANY");
        }
        // Table 9: NEXT is COGRA/SASE/oracle-only.
        for kind in [EngineKind::Cogra, EngineKind::Sase, EngineKind::Oracle] {
            assert!(kind.build(&next, &reg, &cfg).is_ok(), "{kind} on NEXT");
        }
        for kind in [EngineKind::Greta, EngineKind::Aseq, EngineKind::Flink] {
            assert!(kind.build(&next, &reg, &cfg).is_err(), "{kind} on NEXT");
            assert!(!kind.supports(&next, &reg, &cfg));
        }
    }

    #[test]
    fn kind_round_trips_through_names() {
        for kind in EngineKind::ALL {
            assert_eq!(kind.name().parse::<EngineKind>().unwrap(), kind);
        }
        assert!("spark".parse::<EngineKind>().is_err());
    }

    #[test]
    fn single_query_session_matches_run_to_completion() {
        let reg = registry();
        let events = stream(&reg, 40);
        let run = Session::builder()
            .query(Q_ANY)
            .build(&reg)
            .unwrap()
            .run(&events);
        let mut engine = CograEngine::from_text(Q_ANY, &reg).unwrap();
        let (expected, _) = run_to_completion(&mut engine, &events, 64);
        assert_eq!(run.per_query, vec![expected]);
        assert_eq!(run.workers, 1);
        assert_eq!(run.late_events, 0);
        assert!(run.peak_bytes > 0);
    }

    #[test]
    fn multi_query_fan_out_matches_individual_runs() {
        let reg = registry();
        let events = stream(&reg, 30);
        let mut session = Session::builder()
            .query(Q_ANY)
            .query(Q_NEXT)
            .build(&reg)
            .unwrap();
        let mut tagged: Vec<TaggedResult> = Vec::new();
        for e in &events {
            session.process(e);
            session.drain_into(&mut tagged);
        }
        session.finish_into(&mut tagged);

        for (i, q) in [Q_ANY, Q_NEXT].iter().enumerate() {
            let mut single = CograEngine::from_text(q, &reg).unwrap();
            let (expected, _) = run_to_completion(&mut single, &events, 64);
            let mut got: Vec<WindowResult> = tagged
                .iter()
                .filter(|t| t.query == i)
                .map(|t| t.result.clone())
                .collect();
            WindowResult::sort(&mut got);
            assert_eq!(got, expected, "query {i}");
        }
    }

    #[test]
    fn heterogeneous_kinds_run_each_query_on_its_engine() {
        let reg = registry();
        let events = stream(&reg, 30);
        let session = Session::builder()
            .query(Q_ANY) // default kind: COGRA
            .query_with_engine(Q_NEXT, EngineKind::Sase)
            .query_with_engine(Q_ANY, EngineKind::Greta)
            .build(&reg)
            .unwrap();
        assert_eq!(session.query_kind(0), Some(EngineKind::Cogra));
        assert_eq!(session.query_kind(1), Some(EngineKind::Sase));
        assert_eq!(session.query_kind(2), Some(EngineKind::Greta));
        assert_eq!(session.engine(1).unwrap().name(), "sase");
        let run = session.run(&events);
        for (i, q) in [Q_ANY, Q_NEXT, Q_ANY].iter().enumerate() {
            let mut reference = CograEngine::from_text(q, &reg).unwrap();
            let (expected, _) = run_to_completion(&mut reference, &events, 64);
            assert_eq!(run.per_query[i], expected, "query {i}");
        }
    }

    #[test]
    fn per_query_kind_unsupported_by_query_is_attributed() {
        let reg = registry();
        // Table 9: GRETA cannot run NEXT — the error names query 1.
        let err = Session::builder()
            .query(Q_ANY)
            .query_with_engine(Q_NEXT, EngineKind::Greta)
            .build(&reg)
            .unwrap_err();
        assert!(
            matches!(err, SessionError::Query { query: 1, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn plans_expose_compiled_queries_without_recompiling() {
        let reg = registry();
        let session = Session::builder()
            .query(Q_ANY)
            .query(Q_NEXT_NO_GROUP)
            .build(&reg)
            .unwrap();
        assert_eq!(session.plans().len(), 2);
        assert_eq!(session.plan(0).unwrap().group_prefix, 1);
        assert_eq!(session.plan(1).unwrap().group_prefix, 0);
        assert_eq!(session.plan(0).unwrap().granularity(), Granularity::Type);
        assert!(session.plan(2).is_none());
        let run = session.run(&stream(&reg, 20));
        assert_eq!(run.plans.len(), 2);
        assert_eq!(run.plans[1].granularity(), Granularity::Pattern);
    }

    #[test]
    fn slack_fuses_reordering_and_counts_late_drops() {
        let reg = registry();
        let mut ordered = stream(&reg, 20);
        // Disorder the stream by swapping adjacent pairs, then append a
        // hopelessly late straggler.
        for i in (0..ordered.len() - 1).step_by(2) {
            ordered.swap(i, i + 1);
        }
        let straggler = {
            let mut b = EventBuilder::new();
            b.event(
                1,
                reg.id_of("A").unwrap(),
                vec![Value::Int(0), Value::Int(0)],
            )
        };
        let mut disordered = ordered.clone();
        disordered.push(straggler);

        let run = Session::builder()
            .query(Q_ANY)
            .slack(2)
            .build(&reg)
            .unwrap()
            .run(&disordered);
        assert_eq!(run.late_events, 1, "the straggler is dropped and counted");

        let repaired = stream(&reg, 20);
        let mut engine = CograEngine::from_text(Q_ANY, &reg).unwrap();
        let (expected, _) = run_to_completion(&mut engine, &repaired, 64);
        assert_eq!(run.per_query, vec![expected]);
    }

    #[test]
    fn workers_route_through_run_parallel() {
        let reg = registry();
        let events = stream(&reg, 60);
        let sequential = Session::builder()
            .query(Q_ANY)
            .build(&reg)
            .unwrap()
            .run(&events);
        let parallel = Session::builder()
            .query(Q_ANY)
            .workers(4)
            .build(&reg)
            .unwrap()
            .run(&events);
        assert_eq!(parallel.workers, 4);
        assert_eq!(parallel.per_query, sequential.per_query);

        // No GROUP-BY ⇒ the query is pinned to one worker.
        let fallback = Session::builder()
            .query(Q_NEXT_NO_GROUP)
            .workers(4)
            .build(&reg)
            .unwrap()
            .run(&events);
        assert_eq!(fallback.workers, 1);
    }

    #[test]
    fn shared_pool_runs_multiple_queries_in_one_set_of_workers() {
        let reg = registry();
        let events = stream(&reg, 60);
        let run = Session::builder()
            .query(Q_ANY)
            .query(Q_NEXT)
            .query(Q_NEXT_NO_GROUP)
            .workers(4)
            .build(&reg)
            .unwrap()
            .run(&events);
        assert_eq!(run.workers, 4, "widest effective shard count");
        for (i, q) in [Q_ANY, Q_NEXT, Q_NEXT_NO_GROUP].iter().enumerate() {
            let mut reference = CograEngine::from_text(q, &reg).unwrap();
            let (expected, _) = run_to_completion(&mut reference, &events, 64);
            assert_eq!(run.per_query[i], expected, "query {i}");
        }
    }

    #[test]
    fn workers_run_includes_previously_processed_events() {
        let reg = registry();
        let events = stream(&reg, 60);
        let (head, tail) = events.split_at(20);

        // Streaming reference over the whole stream.
        let expected = Session::builder()
            .query(Q_ANY)
            .build(&reg)
            .unwrap()
            .run(&events);

        // Workers session: part pushed via process(), rest via run() —
        // the shards must already hold the head of the stream.
        let mut sharded = Session::builder()
            .query(Q_ANY)
            .workers(4)
            .build(&reg)
            .unwrap();
        for e in head {
            sharded.process(e);
        }
        assert_eq!(sharded.watermark(), Timestamp(20), "head already routed");
        let run = sharded.run(tail);
        assert_eq!(run.per_query, expected.per_query);
    }

    #[test]
    fn workers_drain_is_live_before_finish() {
        let reg = registry();
        let events = stream(&reg, 60);
        let mut session = Session::builder()
            .query(Q_ANY)
            .workers(4)
            .build(&reg)
            .unwrap();
        let mut live: Vec<TaggedResult> = Vec::new();
        for e in &events {
            session.process(e);
        }
        session.drain_into(&mut live);
        assert!(
            !live.is_empty(),
            "closed windows are emitted before finish() under workers"
        );
        session.finish_into(&mut live);

        let mut got: Vec<WindowResult> = live.into_iter().map(|t| t.result).collect();
        WindowResult::sort(&mut got);
        let expected = Session::builder()
            .query(Q_ANY)
            .build(&reg)
            .unwrap()
            .run(&events);
        assert_eq!(vec![got], expected.per_query);
    }

    #[test]
    fn builder_rejects_bad_configurations() {
        let reg = registry();
        assert_eq!(
            Session::builder().build(&reg).unwrap_err(),
            SessionError::NoQueries
        );
        assert!(matches!(
            Session::builder()
                .query(Q_ANY)
                .engine(EngineKind::Greta)
                .workers(2)
                .build(&reg)
                .unwrap_err(),
            SessionError::ParallelUnsupported(EngineKind::Greta)
        ));
        // A per-query kind that is not COGRA also blocks `.workers(n)`.
        assert!(matches!(
            Session::builder()
                .query(Q_ANY)
                .query_with_engine(Q_ANY, EngineKind::Sase)
                .workers(2)
                .build(&reg)
                .unwrap_err(),
            SessionError::ParallelUnsupported(EngineKind::Sase)
        ));
        assert!(matches!(
            Session::builder()
                .query(Q_NEXT)
                .engine(EngineKind::Greta)
                .build(&reg)
                .unwrap_err(),
            SessionError::Query { .. }
        ));
        assert!(matches!(
            Session::builder().query("NOT A QUERY").build(&reg),
            Err(SessionError::Query { .. })
        ));
    }

    #[test]
    fn baseline_engine_sessions_agree_with_cogra() {
        let reg = registry();
        let events = stream(&reg, 24);
        let reference = Session::builder()
            .query(Q_ANY)
            .build(&reg)
            .unwrap()
            .run(&events);
        for kind in [EngineKind::Sase, EngineKind::Greta, EngineKind::Oracle] {
            let run = Session::builder()
                .query(Q_ANY)
                .engine(kind)
                .build(&reg)
                .unwrap()
                .run(&events);
            assert_eq!(run.per_query, reference.per_query, "{kind}");
        }
    }

    /// Feed `head`, checkpoint, restore at `restore_workers`, feed `tail`
    /// — must equal the uninterrupted run (results, late drops).
    fn round_trip(
        builder: SessionBuilder,
        restore_workers: usize,
        events: &[Event],
        split: usize,
        reg: &TypeRegistry,
    ) {
        let expected = builder.clone().build(reg).unwrap().run(events);

        let mut session = builder.build(reg).unwrap();
        let mut collected: Vec<TaggedResult> = Vec::new();
        for e in &events[..split] {
            session.process(e);
            session.drain_into(&mut collected);
        }
        let mut snap = Vec::new();
        session.checkpoint(&mut snap).unwrap();
        drop(session);

        let mut restored = Session::builder()
            .workers(restore_workers)
            .restore(reg, snap.as_slice())
            .unwrap();
        for e in &events[split..] {
            restored.process(e);
            restored.drain_into(&mut collected);
        }
        restored.finish_into(&mut collected);

        let mut per_query: Vec<Vec<WindowResult>> = vec![Vec::new(); expected.per_query.len()];
        for t in collected {
            per_query[t.query].push(t.result);
        }
        for results in &mut per_query {
            WindowResult::sort(results);
        }
        assert_eq!(
            per_query, expected.per_query,
            "restore_workers={restore_workers}"
        );
        assert_eq!(restored.late_events(), expected.late_events);
    }

    #[test]
    fn checkpoint_restore_streaming_round_trip() {
        let reg = registry();
        let events = stream(&reg, 40);
        round_trip(Session::builder().query(Q_ANY), 1, &events, 17, &reg);
    }

    #[test]
    fn checkpoint_restore_multi_query_with_slack() {
        let reg = registry();
        let mut events = stream(&reg, 40);
        for i in (0..events.len() - 1).step_by(2) {
            events.swap(i, i + 1);
        }
        let builder = Session::builder().query(Q_ANY).query(Q_NEXT).slack(2);
        round_trip(builder, 1, &events, 21, &reg);
    }

    #[test]
    fn checkpoint_restore_rescales_workers() {
        let reg = registry();
        let events = stream(&reg, 60);
        for (snap_w, restore_w) in [(1, 4), (4, 1), (2, 8), (4, 4)] {
            let builder = Session::builder().query(Q_ANY).workers(snap_w);
            round_trip(builder, restore_w, &events, 29, &reg);
        }
    }

    #[test]
    fn checkpoint_restore_rescales_with_slack() {
        let reg = registry();
        let mut events = stream(&reg, 60);
        for i in (0..events.len() - 1).step_by(2) {
            events.swap(i, i + 1);
        }
        for (snap_w, restore_w) in [(1, 4), (4, 1), (4, 2)] {
            let builder = Session::builder().query(Q_ANY).slack(4).workers(snap_w);
            round_trip(builder, restore_w, &events, 31, &reg);
        }
    }

    #[test]
    fn checkpoint_restore_every_engine_kind() {
        let reg = registry();
        let events = stream(&reg, 24);
        for kind in EngineKind::ALL {
            let builder = Session::builder().query(Q_ANY).engine(kind);
            round_trip(builder, 1, &events, 11, &reg);
        }
    }

    #[test]
    fn checkpoint_restore_shared_roster_re_derives_fan_out() {
        // A duplicate roster snapshots its shared runtime ONCE; restore
        // re-derives the per-query fan-out from the stored sharing map —
        // across worker rescales, since shared slots live in the pool too.
        let reg = registry();
        let events = stream(&reg, 40);
        for restore_w in [1, 4] {
            let builder = Session::builder().query(Q_ANY).query(Q_ANY).query(Q_NEXT);
            round_trip(builder, restore_w, &events, 17, &reg);
        }

        let mut session = Session::builder()
            .query(Q_ANY)
            .query(Q_ANY)
            .query(Q_NEXT)
            .build(&reg)
            .unwrap();
        for e in &events[..17] {
            session.process(e);
        }
        let mut snap = Vec::new();
        session.checkpoint(&mut snap).unwrap();
        let restored = Session::builder().restore(&reg, snap.as_slice()).unwrap();
        assert_eq!(restored.queries(), 3);
        assert_eq!(restored.physical_runs(), 2);
        assert_eq!(restored.shared_plan().members, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn restore_rejects_sharing_override() {
        let reg = registry();
        let mut session = Session::builder().query(Q_ANY).build(&reg).unwrap();
        let mut snap = Vec::new();
        session.checkpoint(&mut snap).unwrap();
        let err = Session::builder()
            .sharing(false)
            .restore(&reg, snap.as_slice())
            .unwrap_err();
        assert!(matches!(err, CheckpointError::Unsupported(_)), "{err:?}");
    }

    #[test]
    fn checkpoint_after_finish_is_unsupported() {
        let reg = registry();
        let mut session = Session::builder().query(Q_ANY).build(&reg).unwrap();
        session.finish();
        let err = session.checkpoint(Vec::new()).unwrap_err();
        assert!(matches!(err, CheckpointError::Unsupported(_)), "{err}");
    }

    #[test]
    fn restore_rejects_builder_overrides() {
        let reg = registry();
        let mut snap = Vec::new();
        Session::builder()
            .query(Q_ANY)
            .build(&reg)
            .unwrap()
            .checkpoint(&mut snap)
            .unwrap();
        for builder in [
            Session::builder().query(Q_ANY),
            Session::builder().engine(EngineKind::Sase),
            Session::builder().slack(3),
        ] {
            let err = builder.restore(&reg, snap.as_slice()).unwrap_err();
            assert!(matches!(err, CheckpointError::Unsupported(_)), "{err}");
        }
        // .workers / .batch_size ARE legal overrides.
        assert!(Session::builder()
            .workers(2)
            .batch_size(64)
            .restore(&reg, snap.as_slice())
            .is_ok());
    }

    #[test]
    fn restore_rejects_corrupt_snapshots() {
        let reg = registry();
        let mut snap = Vec::new();
        Session::builder()
            .query(Q_ANY)
            .build(&reg)
            .unwrap()
            .checkpoint(&mut snap)
            .unwrap();

        // Truncation mid-stream.
        let err = Session::builder()
            .restore(&reg, &snap[..snap.len() - 3])
            .unwrap_err();
        assert!(
            matches!(err, CheckpointError::Truncated | CheckpointError::Io(_)),
            "{err}"
        );

        // Bad magic.
        let mut bad = snap.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            Session::builder()
                .restore(&reg, bad.as_slice())
                .unwrap_err(),
            CheckpointError::BadMagic
        ));

        // Flipped payload byte → per-section CRC mismatch.
        let mut bad = snap.clone();
        let mid = snap.len() / 2;
        bad[mid] ^= 0xFF;
        let err = Session::builder()
            .restore(&reg, bad.as_slice())
            .unwrap_err();
        assert!(
            matches!(
                err,
                CheckpointError::Checksum { .. } | CheckpointError::Corrupt(_)
            ),
            "{err}"
        );
    }

    #[test]
    fn memory_is_summed_and_watermark_is_min() {
        let reg = registry();
        let events = stream(&reg, 5);
        let mut session = Session::builder()
            .query(Q_ANY)
            .query(Q_ANY)
            .sharing(false)
            .build(&reg)
            .unwrap();
        for e in &events {
            session.process(e);
        }
        let single = {
            let mut engine = CograEngine::from_text(Q_ANY, &reg).unwrap();
            for e in &events {
                engine.process(e);
            }
            engine.memory_bytes()
        };
        assert_eq!(session.memory_bytes(), 2 * single);
        assert_eq!(session.watermark(), Timestamp(5));
        assert_eq!(session.queries(), 2);
        assert_eq!(session.engine(0).unwrap().name(), "cogra");

        // With sharing (the default) the duplicate roster runs ONE
        // physical automaton: memory is the single-query footprint.
        let mut shared = Session::builder()
            .query(Q_ANY)
            .query(Q_ANY)
            .build(&reg)
            .unwrap();
        for e in &events {
            shared.process(e);
        }
        assert_eq!(shared.physical_runs(), 1);
        assert_eq!(shared.memory_bytes(), single);
    }

    #[test]
    fn shared_plan_factors_by_signature_and_kind() {
        // Same query modulo variable renaming → same slot; different
        // predicate constant or engine kind → separate slots.
        let keys = vec![
            "cogra\u{1f}Q1".to_string(),
            "cogra\u{1f}Q2".to_string(),
            "cogra\u{1f}Q1".to_string(),
            "greta\u{1f}Q1".to_string(),
            "cogra\u{1f}Q2".to_string(),
        ];
        let plan = SharedPlan::factor(&keys);
        assert_eq!(plan.physical_of, vec![0, 1, 0, 2, 1]);
        assert_eq!(plan.members, vec![vec![0, 2], vec![1, 4], vec![3]]);
        assert_eq!(plan.queries(), 5);
        assert_eq!(plan.physical(), 3);
        assert!(!plan.is_identity());
        assert!(SharedPlan::identity(4).is_identity());
    }

    #[test]
    fn renamed_duplicate_queries_share_one_run_with_identical_results() {
        let reg = registry();
        let events = stream(&reg, 40);
        let renamed = Q_ANY.replace("SEQ(A+, B)", "SEQ(A P+, B Q)");
        assert_ne!(renamed, Q_ANY, "rename must actually change the text");
        let run = Session::builder()
            .query(Q_ANY)
            .query(renamed.as_str())
            .query(Q_NEXT)
            .build(&reg)
            .unwrap()
            .run(&events);
        assert_eq!(run.physical, 2, "two of three queries share");
        assert_eq!(run.per_query[0], run.per_query[1]);
        let unshared = Session::builder()
            .query(Q_ANY)
            .query(renamed.as_str())
            .query(Q_NEXT)
            .sharing(false)
            .build(&reg)
            .unwrap()
            .run(&events);
        assert_eq!(unshared.physical, 3);
        assert_eq!(run.per_query, unshared.per_query);
    }

    #[test]
    fn sharing_respects_engine_kind_boundaries() {
        let reg = registry();
        let session = Session::builder()
            .query(Q_ANY) // default kind: COGRA
            .query_with_engine(Q_ANY, EngineKind::Greta)
            .build(&reg)
            .unwrap();
        assert_eq!(session.physical_runs(), 2, "kinds differ → no sharing");
        assert_eq!(session.engine(0).unwrap().name(), "cogra");
        assert_eq!(session.engine(1).unwrap().name(), "greta");
    }
}
