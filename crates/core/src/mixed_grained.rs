//! Mixed-Grained Aggregator (§5, Algorithm 2).
//!
//! Under skip-till-any-match *with* predicates on adjacent events θ, the
//! states split into two disjoint sets (Theorem 5.1):
//!
//! * `Te` — states whose events appear as *predecessors* in some θ: these
//!   events must be stored so θ can be evaluated against future events;
//!   an event-grained cell is kept per stored event;
//! * `Tt` — all other states: a single type-grained cell each.
//!
//! A new event `e` bound to state `s` computes
//!
//! ```text
//! e.count = Σ_{E' ∈ Tt ∩ preds(s)} E'.count
//!         + Σ_{ep ∈ Te-events, ep ∈ preds(s), θ(ep,e)} ep.count   (+1 if start)
//! ```
//!
//! Time: O(n·(t + nₑ)) — optimal (Theorems 5.2, 5.3); space: Θ(t + nₑ).
//!
//! Stream transactions: type-grained cells stage updates in `pending` (as
//! in Algorithm 1); event-grained contributions compare time stamps
//! directly (`ep.time < e.time`), so stored events apply immediately.
//! Negations: tagged edges from `Tt` states use shadow cells; tagged edges
//! from `Te` states check the per-negation [`NegClock`] against the stored
//! event's time.

use crate::agg::Cell;
use crate::runtime::{DisjunctRuntime, NegClock};
use cogra_events::{Event, Timestamp};
use cogra_query::{NegId, StateId};

/// A stored event of a `Te` state, with its event-grained cell.
#[derive(Debug)]
struct StoredEvent {
    event: Event,
    state: StateId,
    cell: Cell,
}

/// Per-window mixed-grained aggregation state.
#[derive(Debug)]
pub struct MixedWindow {
    /// Type-grained cells (only `Tt` entries are used).
    cells: Vec<Cell>,
    /// Shadow cells for negation-tagged edges out of `Tt` states.
    shadows: Vec<Cell>,
    /// Stored `Te` events with their event-grained cells.
    stored: Vec<StoredEvent>,
    /// Finished-trend accumulator, used when the end state is in `Te`
    /// (Algorithm 2 line 14).
    final_acc: Cell,
    /// Per-negation match clocks.
    neg_clocks: Vec<NegClock>,
    /// Open-transaction staging for type-grained cells.
    pending: Vec<(StateId, Cell)>,
    pending_negs: Vec<NegId>,
    pending_time: Timestamp,
}

impl MixedWindow {
    /// Fresh window state.
    pub fn new(rt: &DisjunctRuntime) -> MixedWindow {
        let zero = rt.zero_cell();
        MixedWindow {
            cells: vec![zero.clone(); rt.disjunct.automaton.num_states()],
            shadows: vec![zero.clone(); rt.neg_edges.len()],
            stored: Vec::new(),
            final_acc: zero,
            neg_clocks: vec![NegClock::default(); rt.disjunct.automaton.num_negated()],
            pending: Vec::new(),
            pending_negs: Vec::new(),
            pending_time: Timestamp::ZERO,
        }
    }

    fn commit(&mut self, rt: &DisjunctRuntime) {
        if !self.pending_negs.is_empty() {
            for (shadow, edge) in self.shadows.iter_mut().zip(&rt.neg_edges) {
                if edge.negations.iter().any(|n| self.pending_negs.contains(n)) {
                    shadow.reset();
                }
            }
            self.pending_negs.clear();
        }
        for (state, cell) in self.pending.drain(..) {
            self.cells[state.index()].merge(&cell);
            for (shadow, edge) in self.shadows.iter_mut().zip(&rt.neg_edges) {
                if edge.from == state {
                    shadow.merge(&cell);
                }
            }
        }
    }

    fn commit_if_past(&mut self, rt: &DisjunctRuntime, t: Timestamp) {
        if t > self.pending_time {
            self.commit(rt);
            self.pending_time = t;
        }
    }

    /// Process an event bound to `binds`.
    pub fn on_event(&mut self, rt: &DisjunctRuntime, event: &Event, binds: &[StateId]) {
        self.commit_if_past(rt, event.time);
        let d = &rt.disjunct;
        for &s in binds {
            let mut cell = rt.zero_cell();
            if rt.is_start(s) {
                cell.start_trend();
            }
            for src in &rt.pred_sources[s.index()] {
                if d.event_grained[src.from.index()] {
                    // Event-grained source: scan stored events of that
                    // state, checking time, θ, and negation windows.
                    for ep in &self.stored {
                        if ep.state != src.from
                            || ep.event.time >= event.time
                            || !d.adjacency_predicates_pass(src.from, s, &ep.event, event)
                        {
                            continue;
                        }
                        let blocked = src
                            .negations
                            .iter()
                            .any(|n| self.neg_clocks[n.index()].blocked(ep.event.time, event.time));
                        if !blocked {
                            cell.merge(&ep.cell);
                        }
                    }
                } else {
                    let source_cell = match src.neg_edge {
                        Some(i) => &self.shadows[i],
                        None => &self.cells[src.from.index()],
                    };
                    cell.merge(source_cell);
                }
            }
            if cell.is_zero() {
                continue;
            }
            cell.contribute(rt.feeds.of(s), event);
            if d.event_grained[s.index()] {
                if s == rt.end() {
                    self.final_acc.merge(&cell);
                }
                self.stored.push(StoredEvent {
                    event: event.clone(),
                    state: s,
                    cell,
                });
            } else {
                self.pending.push((s, cell));
            }
        }
    }

    /// Record negation matches at the event's time.
    pub fn on_negation(&mut self, rt: &DisjunctRuntime, event: &Event, negs: &[NegId]) {
        self.commit_if_past(rt, event.time);
        for &n in negs {
            self.neg_clocks[n.index()].record(event.time);
        }
        self.pending_negs.extend_from_slice(negs);
    }

    /// Final aggregate: end-state type cell, or the event-grained
    /// accumulator when the end state is in `Te`.
    pub fn final_cell(&mut self, rt: &DisjunctRuntime) -> Cell {
        self.commit(rt);
        if rt.disjunct.event_grained[rt.end().index()] {
            self.final_acc.clone()
        } else {
            self.cells[rt.end().index()].clone()
        }
    }

    /// Serialize the full window state (inverse of [`MixedWindow::load`]).
    pub fn save(&self, enc: &mut cogra_checkpoint::Enc) {
        Cell::save_slice(&self.cells, enc);
        Cell::save_slice(&self.shadows, enc);
        enc.usize(self.stored.len());
        for se in &self.stored {
            se.event.save(enc);
            enc.u32(se.state.0);
            se.cell.save(enc);
        }
        self.final_acc.save(enc);
        enc.usize(self.neg_clocks.len());
        for c in &self.neg_clocks {
            c.save(enc);
        }
        enc.usize(self.pending.len());
        for (s, c) in &self.pending {
            enc.u32(s.0);
            c.save(enc);
        }
        enc.usize(self.pending_negs.len());
        for n in &self.pending_negs {
            enc.u32(n.0);
        }
        enc.u64(self.pending_time.ticks());
    }

    /// Rebuild a window from bytes produced by [`MixedWindow::save`]
    /// against the same disjunct runtime.
    pub fn load(
        rt: &DisjunctRuntime,
        dec: &mut cogra_checkpoint::Dec,
    ) -> Result<MixedWindow, cogra_checkpoint::CheckpointError> {
        let cells = Cell::load_vec(dec)?;
        if cells.len() != rt.disjunct.automaton.num_states() {
            return Err(cogra_checkpoint::CheckpointError::Corrupt(format!(
                "mixed window has {} cells for a {}-state automaton",
                cells.len(),
                rt.disjunct.automaton.num_states()
            )));
        }
        let shadows = Cell::load_vec(dec)?;
        if shadows.len() != rt.neg_edges.len() {
            return Err(cogra_checkpoint::CheckpointError::Corrupt(format!(
                "mixed window has {} shadows for {} negation edges",
                shadows.len(),
                rt.neg_edges.len()
            )));
        }
        let n_stored = dec.usize()?;
        let mut stored = Vec::with_capacity(n_stored.min(1024));
        for _ in 0..n_stored {
            let event = Event::load(dec)?;
            let state = StateId(dec.u32()?);
            stored.push(StoredEvent {
                event,
                state,
                cell: Cell::load(dec)?,
            });
        }
        let final_acc = Cell::load(dec)?;
        let n_clocks = dec.usize()?;
        if n_clocks != rt.disjunct.automaton.num_negated() {
            return Err(cogra_checkpoint::CheckpointError::Corrupt(format!(
                "mixed window has {n_clocks} negation clocks for {} negated variables",
                rt.disjunct.automaton.num_negated()
            )));
        }
        let mut neg_clocks = Vec::with_capacity(n_clocks);
        for _ in 0..n_clocks {
            neg_clocks.push(NegClock::load(dec)?);
        }
        let n_pending = dec.usize()?;
        let mut pending = Vec::with_capacity(n_pending.min(1024));
        for _ in 0..n_pending {
            let s = StateId(dec.u32()?);
            pending.push((s, Cell::load(dec)?));
        }
        let n_negs = dec.usize()?;
        let mut pending_negs = Vec::with_capacity(n_negs.min(1024));
        for _ in 0..n_negs {
            pending_negs.push(NegId(dec.u32()?));
        }
        let pending_time = Timestamp(dec.u64()?);
        Ok(MixedWindow {
            cells,
            shadows,
            stored,
            final_acc,
            neg_clocks,
            pending,
            pending_negs,
            pending_time,
        })
    }

    /// Logical footprint: Θ(t + nₑ) — type cells plus stored events.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.cells.iter().map(Cell::memory_bytes).sum::<usize>()
            + self.shadows.iter().map(Cell::memory_bytes).sum::<usize>()
            + self.final_acc.memory_bytes()
            + self
                .stored
                .iter()
                .map(|se| se.event.memory_bytes() + se.cell.memory_bytes())
                .sum::<usize>()
            + self
                .pending
                .iter()
                .map(|(_, c)| c.memory_bytes())
                .sum::<usize>()
    }

    /// Number of stored events (the `nₑ` of Theorem 5.2) — exposed for
    /// tests and the experiment harness.
    pub fn stored_events(&self) -> usize {
        self.stored.len()
    }
}
