//! Pattern-Grained Aggregator (§6, Algorithm 3).
//!
//! Under the skip-till-next-match and contiguous semantics an event has at
//! most one predecessor *event* (Theorem 6.1), so only the last matched
//! event `el` and the final aggregate are kept:
//!
//! ```text
//! e.count = el.count  (if adjacent)   (+1 if start type)
//! final  += e.count   (if end type)
//! ```
//!
//! Time: O(n); space: O(1) — both optimal (Theorems 6.3, 6.4).
//!
//! Generalisation beyond the paper's pseudo-code: when one event type
//! occurs at several pattern positions (§8, e.g. `SEQ(Stock A+, Stock
//! B+)`), the last matched event may be bound to *several* states, each
//! with its own partial-trend cell. `el` therefore carries a small
//! per-state cell table — still O(l) per window, independent of the
//! number of events, which is what "pattern granularity" promises.
//!
//! Semantics of unmatched events:
//! * NEXT — skipped (only *relevant* events must extend the trend);
//! * CONT — they invalidate the open partial trends: `el ← null`
//!   (Algorithm 3 lines 8–9; the final count survives).
//!
//! Events inside one stream transaction are processed in arrival order;
//! adjacency additionally requires `el.time < e.time`, so simultaneous
//! events never chain (Definition 7 condition 2).

use crate::agg::Cell;
use crate::runtime::{DisjunctRuntime, NegClock};
use cogra_events::Event;
use cogra_query::{NegId, Semantics, StateId};

/// The last matched event with its per-state partial-trend cells.
#[derive(Debug)]
struct LastEvent {
    event: Event,
    /// `cells[s]` — aggregates of the partial trends ending at this event
    /// bound to state `s`; `None` when the event is not bound there.
    cells: Vec<Option<Cell>>,
}

/// Per-window pattern-grained aggregation state.
#[derive(Debug)]
pub struct PatternWindow {
    el: Option<LastEvent>,
    final_acc: Cell,
    neg_clocks: Vec<NegClock>,
    /// Recycled cell table, avoiding a per-event allocation on the hot
    /// path (most events either extend or reset; the table swaps with
    /// `el`'s).
    scratch: Vec<Option<Cell>>,
}

impl PatternWindow {
    /// Fresh window state.
    pub fn new(rt: &DisjunctRuntime) -> PatternWindow {
        PatternWindow {
            el: None,
            final_acc: rt.zero_cell(),
            neg_clocks: vec![NegClock::default(); rt.disjunct.automaton.num_negated()],
            scratch: vec![None; rt.disjunct.automaton.num_states()],
        }
    }

    /// Process an event bound to `binds`; `semantics` is NEXT or CONT.
    pub fn on_event(
        &mut self,
        rt: &DisjunctRuntime,
        event: &Event,
        binds: &[StateId],
        semantics: Semantics,
    ) {
        let d = &rt.disjunct;
        if binds.is_empty() {
            // Fast path: the event is irrelevant to this disjunct. NEXT
            // skips it; CONT invalidates the open partial trends.
            if semantics == Semantics::Cont {
                self.clear_el();
            }
            return;
        }
        let mut new_cells = std::mem::take(&mut self.scratch);
        new_cells.iter_mut().for_each(|c| *c = None);
        let mut matched = false;
        for &s in binds {
            let mut cell = rt.zero_cell();
            if rt.is_start(s) {
                cell.start_trend();
            }
            if let Some(el) = &self.el {
                if el.event.time < event.time {
                    for src in &rt.pred_sources[s.index()] {
                        let Some(el_cell) = &el.cells[src.from.index()] else {
                            continue;
                        };
                        if !d.adjacency_predicates_pass(src.from, s, &el.event, event) {
                            continue;
                        }
                        let blocked = src
                            .negations
                            .iter()
                            .any(|n| self.neg_clocks[n.index()].blocked(el.event.time, event.time));
                        if !blocked {
                            cell.merge(el_cell);
                        }
                    }
                }
            }
            if cell.is_zero() {
                continue; // not matched at this state
            }
            cell.contribute(rt.feeds.of(s), event);
            if s == rt.end() {
                self.final_acc.merge(&cell);
            }
            new_cells[s.index()] = Some(cell);
            matched = true;
        }
        if matched {
            match self.el.replace(LastEvent {
                event: event.clone(),
                cells: new_cells,
            }) {
                // Recycle the previous table; when there was no previous
                // event the scratch slot must be refilled.
                Some(old) => self.scratch = old.cells,
                None => self.scratch = vec![None; d.automaton.num_states()],
            }
        } else {
            self.scratch = new_cells;
            if semantics == Semantics::Cont {
                // An unmatched event invalidates the partial trends that
                // end at the last matched event; the final count is
                // preserved (Algorithm 3 lines 8-9).
                self.clear_el();
            }
        }
    }

    /// Drop the last matched event, recycling its cell table.
    fn clear_el(&mut self) {
        if let Some(old) = self.el.take() {
            self.scratch = old.cells;
        }
    }

    /// Record negation matches. Under CONT the router also routes the
    /// event through [`PatternWindow::on_event`], where it resets `el` if
    /// it binds no positive state.
    pub fn on_negation(&mut self, _rt: &DisjunctRuntime, event: &Event, negs: &[NegId]) {
        for &n in negs {
            self.neg_clocks[n.index()].record(event.time);
        }
    }

    /// Final aggregate of the window.
    pub fn final_cell(&mut self, _rt: &DisjunctRuntime) -> Cell {
        self.final_acc.clone()
    }

    /// Serialize the full window state (inverse of [`PatternWindow::load`]).
    /// The recycled `scratch` table is transient and not serialized.
    pub fn save(&self, enc: &mut cogra_checkpoint::Enc) {
        match &self.el {
            Some(el) => {
                enc.bool(true);
                el.event.save(enc);
                enc.usize(el.cells.len());
                for c in &el.cells {
                    match c {
                        Some(cell) => {
                            enc.bool(true);
                            cell.save(enc);
                        }
                        None => enc.bool(false),
                    }
                }
            }
            None => enc.bool(false),
        }
        self.final_acc.save(enc);
        enc.usize(self.neg_clocks.len());
        for c in &self.neg_clocks {
            c.save(enc);
        }
    }

    /// Rebuild a window from bytes produced by [`PatternWindow::save`]
    /// against the same disjunct runtime.
    pub fn load(
        rt: &DisjunctRuntime,
        dec: &mut cogra_checkpoint::Dec,
    ) -> Result<PatternWindow, cogra_checkpoint::CheckpointError> {
        let el = if dec.bool()? {
            let event = Event::load(dec)?;
            let n = dec.usize()?;
            if n != rt.disjunct.automaton.num_states() {
                return Err(cogra_checkpoint::CheckpointError::Corrupt(format!(
                    "pattern window has {n} last-event cells for a {}-state automaton",
                    rt.disjunct.automaton.num_states()
                )));
            }
            let mut cells = Vec::with_capacity(n);
            for _ in 0..n {
                cells.push(if dec.bool()? {
                    Some(Cell::load(dec)?)
                } else {
                    None
                });
            }
            Some(LastEvent { event, cells })
        } else {
            None
        };
        let final_acc = Cell::load(dec)?;
        let n_clocks = dec.usize()?;
        if n_clocks != rt.disjunct.automaton.num_negated() {
            return Err(cogra_checkpoint::CheckpointError::Corrupt(format!(
                "pattern window has {n_clocks} negation clocks for {} negated variables",
                rt.disjunct.automaton.num_negated()
            )));
        }
        let mut neg_clocks = Vec::with_capacity(n_clocks);
        for _ in 0..n_clocks {
            neg_clocks.push(NegClock::load(dec)?);
        }
        Ok(PatternWindow {
            el,
            final_acc,
            neg_clocks,
            scratch: vec![None; rt.disjunct.automaton.num_states()],
        })
    }

    /// Logical footprint: O(1) in the number of events — the final cell,
    /// the last matched event, and its O(l) cell table.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.final_acc.memory_bytes()
            + self.el.as_ref().map_or(0, |el| {
                el.event.memory_bytes()
                    + el.cells
                        .iter()
                        .map(|c| c.as_ref().map_or(8, Cell::memory_bytes))
                        .sum::<usize>()
            })
    }
}
