//! Parallel per-partition execution (§7/§8).
//!
//! "Equivalence predicates and the GROUP-BY clause partition the stream
//! into sub-streams that are processed in parallel independently from
//! each other. Such stream partitioning enables a highly scalable
//! execution." Events within one sub-stream are processed in time order
//! by a single worker, which is exactly the stream-transaction ordering
//! guarantee §8 requires.
//!
//! Sharding is by the *output group* (the `GROUP-BY` prefix of the
//! partition key), so every partition contributing to one result group
//! lands on the same worker and no cross-worker aggregate merging is
//! needed. A query without `GROUP-BY` cannot shard (there is nothing to
//! partition results by) and is pinned to one worker instead.
//!
//! Two implementations share the same shard hash:
//! * [`run_parallel`] — the batch reference: shard a finite recorded
//!   stream, run every shard to completion under `std::thread::scope`,
//!   merge. Kept as the executable specification the streaming tests
//!   diff against.
//! * [`StreamingPool`] — live execution: ONE pool of long-lived worker
//!   threads per *session* (not per query — each worker hosts one engine
//!   per (query, shard)), fed by bounded channels carrying **batches** of
//!   pre-hashed events, with watermark broadcasts so a drain emits every
//!   result that is globally final — even on shards whose sub-stream went
//!   quiet. Under `.slack(n)` each worker repairs its own sub-stream with
//!   a private [`ReorderBuffer`] while a coordinator-side [`LateGate`]
//!   keeps the drop decisions identical to a single front reorderer.

use crate::cogra::CograEngine;
use crate::engine::{run_to_completion, TrendEngine};
use crate::output::WindowResult;
use crate::runtime::QueryRuntime;
use cogra_checkpoint::CheckpointError;
use cogra_engine::{entry_group_hash, RouterState, RunStats};
use cogra_events::{Event, LateGate, ReorderBuffer, Timestamp};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Shard index of a group-prefix hash — THE placement rule shared by the
/// batch reference ([`run_parallel`]) and the [`StreamingPool`], kept in
/// one place so the two execution modes cannot disagree.
fn shard_index(group_hash: u64, shards: usize) -> usize {
    (group_hash % shards as u64) as usize
}

/// How many shards a query can use: the requested worker count, unless
/// the query has no `GROUP-BY` prefix to shard on.
fn effective_workers(rt: &QueryRuntime, requested: usize) -> usize {
    if rt.query.group_prefix == 0 {
        1
    } else {
        requested.max(1)
    }
}

/// Outcome of a parallel run.
#[derive(Debug)]
pub struct ParallelRun {
    /// All window results, merged and deterministically sorted.
    pub results: Vec<WindowResult>,
    /// Sum of the workers' peak logical memory (they run concurrently).
    pub peak_bytes: usize,
    /// Number of workers actually used.
    pub workers: usize,
}

/// Execute a compiled query over a finite stream with `workers` parallel
/// shards. Returns the same results as a single [`CograEngine`] fed the
/// whole stream (asserted by the `parallel_equals_sequential` tests).
pub fn run_parallel(rt: &Arc<QueryRuntime>, events: &[Event], workers: usize) -> ParallelRun {
    let effective = effective_workers(rt, workers);
    if effective == 1 {
        let mut engine = CograEngine::from_runtime(Arc::clone(rt));
        let (results, peak) = run_to_completion(&mut engine, events, 64);
        return ParallelRun {
            results,
            peak_bytes: peak,
            workers: 1,
        };
    }

    // Shard by the output-group prefix of the partition key — hashed in
    // place, no key materialized. Only the group hash is needed here:
    // the shard engines replay through `process`, which computes the
    // full-key hash itself exactly once.
    let mut shards: Vec<Vec<Event>> = vec![Vec::new(); effective];
    for e in events {
        let Some(group_hash) = rt.group_hash(e) else {
            continue; // dropped consistently with every engine
        };
        shards[shard_index(group_hash, effective)].push(e.clone());
    }

    let mut outputs: Vec<(Vec<WindowResult>, usize)> = Vec::with_capacity(effective);
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                let rt = Arc::clone(rt);
                scope.spawn(move || {
                    let mut engine = CograEngine::from_runtime(rt);
                    run_to_completion(&mut engine, shard, 64)
                })
            })
            .collect();
        for h in handles {
            outputs.push(h.join().expect("worker panicked"));
        }
    });

    let mut results = Vec::new();
    let mut peak = 0;
    for (r, p) in outputs {
        results.extend(r);
        peak += p;
    }
    WindowResult::sort(&mut results);
    ParallelRun {
        results,
        peak_bytes: peak,
        workers: effective,
    }
}

/// What the coordinator does when a shard worker dies (panics or exits
/// without being asked). Set via `SessionBuilder::on_worker_failure`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Surface a sticky, typed [`WorkerFailure`]: the pool stops
    /// accepting events and emits nothing further. The default — a
    /// correctness-first caller wants the loud error, not partial data.
    #[default]
    Fail,
    /// Quarantine the dead shard and keep serving: its accumulated state
    /// and in-flight events are counted as dropped, future events for its
    /// groups reroute to the next live shard (fresh state), and the run
    /// reports which shards degraded. Availability over completeness —
    /// nothing is lost *silently*.
    Degrade,
    /// Respawn the shard from its last per-shard recovery baseline (the
    /// state captured at the previous drain) and replay the journaled
    /// events delivered since, then retry the interrupted command. The
    /// merged output is byte-identical to a run without the failure
    /// (asserted by `tests/chaos_props.rs`). Costs a per-shard state
    /// snapshot on every drain and an event journal between drains.
    Restart,
}

/// A shard worker died. Under [`FailurePolicy::Fail`] this is the sticky
/// terminal error of the pool (surfaced as `IngestError::WorkerFailed`
/// through the session); under the other policies it is recovered
/// internally and only shows up in degraded-status reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFailure {
    /// Which shard died.
    pub shard: usize,
    /// The panic payload (or a generic message when the worker exited
    /// without one).
    pub message: String,
}

impl std::fmt::Display for WorkerFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {} worker failed: {}", self.shard, self.message)
    }
}

/// Transport tuning of a [`StreamingPool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Events staged per shard before a [`Cmd::Batch`] is shipped. Staged
    /// events also flush on every drain/finish (and thus on every
    /// watermark broadcast), so the batch size bounds transport latency,
    /// never result completeness. 1 degenerates to per-event sends.
    pub batch_size: usize,
    /// Repair up to this many ticks of disorder *per shard*: each worker
    /// owns a [`ReorderBuffer`] over its own sub-stream while the
    /// coordinator's [`LateGate`] keeps late-drop decisions identical to
    /// one stream-wide front reorderer.
    pub slack: Option<u64>,
    /// Recovery behavior when a shard worker dies.
    pub policy: FailurePolicy,
}

/// What [`StreamingPool::snapshot`] captures: per-query router states
/// (merged across shards) plus the in-flight reorder-buffer items, each
/// tagged with the query it was routed for.
pub type PoolSnapshot = (Vec<RouterState>, Vec<(u32, Event)>);

/// The default shard-transport batch size: big enough to amortize a
/// bounded-channel hand-off over hundreds of events, small enough that a
/// batch stays well inside a worker's cache while it drains it.
pub const DEFAULT_BATCH_SIZE: usize = 512;

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            batch_size: DEFAULT_BATCH_SIZE,
            slack: None,
            policy: FailurePolicy::Fail,
        }
    }
}

/// One routed event in flight to a shard worker: the event, the index of
/// the query it is for, and its precomputed full partition-key hash
/// (`None`: the event's type has no partition key; the engine drops it
/// itself, exactly like a sequential run). `Clone` so the coordinator can
/// journal delivered items under [`FailurePolicy::Restart`].
#[derive(Clone)]
struct Item {
    event: Event,
    query: u32,
    key_hash: Option<u64>,
}

/// Commands the coordinator sends down a worker's bounded channel.
enum Cmd {
    /// A batch of this shard's sub-stream, in global routing order.
    Batch(Vec<Item>),
    /// Advance to the given safe watermark and emit everything now final.
    Drain(Timestamp),
    /// Serialize every hosted engine and the reorder buffer's in-flight
    /// items, without advancing or emitting anything — the pool stays
    /// live after a snapshot.
    Snapshot,
    /// End of stream: close every open window, report, and exit.
    Finish,
}

/// One shard's contribution to a pool snapshot — also the per-shard
/// recovery baseline under [`FailurePolicy::Restart`].
struct ShardSnapshot {
    /// Per query: the hosted engine's state (`None` where not hosted).
    states: Vec<Option<RouterState>>,
    /// In-flight items still in the shard's reorder buffer, in release
    /// order.
    buffered: Vec<(u32, Event)>,
    /// The shard's ingest counter at snapshot time, so a respawned shard
    /// resumes its accounting instead of restarting from zero.
    events: u64,
}

/// A worker's answer to [`Cmd::Drain`] / [`Cmd::Finish`].
struct Reply {
    /// Results finalized since the previous drain, tagged with their
    /// query index.
    results: Vec<(u32, WindowResult)>,
    /// The worker's engines' current summed logical memory.
    memory: usize,
    /// The worker's peak summed logical memory so far (sampled every 64
    /// events plus at every drain, like the measurement harness).
    peak: usize,
    /// The worker's routing hot-path counters so far, over all engines.
    stats: RunStats,
    /// Sticky key-limit overflow across the worker's engines
    /// ([`TrendEngine::key_overflow`]).
    key_overflow: Option<u32>,
    /// Events this shard has ingested into its engines so far.
    shard_events: u64,
    /// Engine + reorder-buffer state: in reply to [`Cmd::Snapshot`], and
    /// attached to every [`Cmd::Drain`] reply when the pool journals for
    /// [`FailurePolicy::Restart`] (the recovery baseline refresh).
    snapshot: Option<ShardSnapshot>,
    /// Set when the worker body panicked: the supervisor wrapper caught
    /// the unwind and reports the payload in-band instead of re-raising.
    failure: Option<String>,
}

impl Reply {
    /// The supervisor's in-band report of a dead worker body.
    fn failed(message: String) -> Reply {
        Reply {
            results: Vec::new(),
            memory: 0,
            peak: 0,
            stats: RunStats::default(),
            key_overflow: None,
            shard_events: 0,
            snapshot: None,
            failure: Some(message),
        }
    }
}

struct Worker {
    /// `None` once the pool has finished (dropping it closes the channel).
    tx: Option<SyncSender<Cmd>>,
    rx: Receiver<Reply>,
    thread: Option<JoinHandle<()>>,
    /// Quarantined by [`FailurePolicy::Degrade`]: the shard is dead and
    /// stays dead; its groups reroute to the next live shard.
    quarantined: bool,
    /// Mirrors of the worker's last report, so [`StreamingPool::memory_bytes`]
    /// needs no synchronous round trip.
    memory: usize,
    peak: usize,
    stats: RunStats,
    key_overflow: Option<u32>,
    shard_events: u64,
}

/// A respawned shard that dies this many times is escalated to
/// [`FailurePolicy::Fail`] — a deterministic crash would otherwise
/// restart-loop forever.
const MAX_RESTARTS: u32 = 8;

/// One shard's recovery baseline under [`FailurePolicy::Restart`]: the
/// state captured at the last drain/snapshot, plus the journal of every
/// item delivered to the shard since. Rebuilding the baseline engines and
/// replaying the journal reproduces the dead shard exactly — nothing was
/// emitted since the baseline (results only leave a shard at drains), so
/// recovery neither loses nor duplicates output.
struct ShardBaseline {
    states: Vec<Option<RouterState>>,
    buffered: Vec<(u32, Event)>,
    events: u64,
    journal: Vec<Item>,
}

impl ShardBaseline {
    fn empty(queries: usize) -> ShardBaseline {
        ShardBaseline {
            states: (0..queries).map(|_| None).collect(),
            buffered: Vec::new(),
            events: 0,
            journal: Vec::new(),
        }
    }
}

/// Backpressure bound, in batches: a worker that falls this many batches
/// behind blocks ingestion instead of buffering without limit.
const CHANNEL_CAPACITY: usize = 16;

/// Live §8 sharded execution, shared across a whole session's queries:
/// `workers` long-lived threads, each hosting one [`CograEngine`] per
/// (query, shard), fed through bounded channels carrying event batches.
///
/// * **Batched transport** — events are staged per shard and shipped as
///   [`Cmd::Batch`] chunks ([`PoolConfig::batch_size`], default
///   [`DEFAULT_BATCH_SIZE`]); stages flush on every drain/finish, so
///   batching changes hand-off cost, never the result set.
/// * **Shared pool** — one pool serves every query of a session: an
///   event is hashed per query (same group-prefix hash as
///   [`run_parallel`], so the modes are byte-identical) and staged once
///   per target shard. A query without a `GROUP-BY` prefix cannot shard;
///   it is pinned to the worker `query % workers`, so even a session of
///   unshardable queries spreads across the pool instead of spawning
///   `queries × workers` threads.
/// * **Per-shard reorderers** — with [`PoolConfig::slack`], each worker
///   repairs its own sub-stream through a private [`ReorderBuffer`],
///   concurrently with every other shard. A coordinator-side
///   [`LateGate`] makes the admission decision from time stamps alone,
///   so late-drop counts equal a single front [`Reorderer`]'s exactly.
/// * **Watermark broadcasts** — [`StreamingPool::drain_into`] broadcasts
///   the safe watermark before collecting: every window that closed
///   globally is emitted, even on a shard whose sub-stream went quiet.
///
/// The merged output equals the batch reference per query — asserted by
/// `tests/streaming_parallel_props.rs` across workers × chunkings ×
/// batch sizes.
///
/// [`Reorderer`]: cogra_events::Reorderer
pub struct StreamingPool {
    runtimes: Vec<Arc<QueryRuntime>>,
    workers: Vec<Worker>,
    /// Per-shard staging buffers awaiting a batch send.
    stages: Vec<Vec<Item>>,
    batch_size: usize,
    /// The configured per-shard slack, kept for respawning shards.
    slack_cfg: Option<u64>,
    /// Admission gate under slack (None: the stream is trusted ordered).
    gate: Option<LateGate>,
    /// Raw stream progress: the largest event time routed so far.
    raw_watermark: Timestamp,
    /// Reusable `(shard, query, key_hash)` placement scratch.
    targets: Vec<(usize, u32, Option<u64>)>,
    finished: bool,
    /// Recovery behavior when a shard worker dies.
    policy: FailurePolicy,
    /// Per-shard baselines + journals ([`FailurePolicy::Restart`] only).
    recovery: Option<Vec<ShardBaseline>>,
    /// Restarts performed per shard, for the [`MAX_RESTARTS`] escalation.
    restarts: Vec<u32>,
    /// The sticky terminal failure ([`FailurePolicy::Fail`] or escalation).
    failed: Option<WorkerFailure>,
    /// Items staged per shard since pool start (delivered or in flight);
    /// frozen at 0 when a shard is quarantined.
    delivered: Vec<u64>,
    /// Every item staged across the pool, including ones later dropped.
    routed_items: u64,
    /// Items lost to quarantined shards ([`FailurePolicy::Degrade`]).
    dropped: u64,
}

impl StreamingPool {
    /// Spawn a worker pool for a session's compiled queries.
    ///
    /// The pool has `workers` threads when any query can shard; a session
    /// of only unshardable (no `GROUP-BY`) queries clamps to one thread
    /// per query at most, since each such query is pinned anyway.
    pub fn new(runtimes: Vec<Arc<QueryRuntime>>, workers: usize, config: PoolConfig) -> Self {
        assert!(!runtimes.is_empty(), "a pool needs at least one query");
        let threads = Self::threads_for(&runtimes, workers);
        let batch_size = config.batch_size.max(1);
        let seeds = (0..threads).map(|_| None).collect();
        let journal = config.policy == FailurePolicy::Restart;
        let workers = Self::spawn_shards(&runtimes, threads, config.slack, seeds, journal);
        let queries = runtimes.len();
        StreamingPool {
            runtimes,
            workers,
            stages: (0..threads).map(|_| Vec::new()).collect(),
            batch_size,
            slack_cfg: config.slack,
            gate: config.slack.map(LateGate::new),
            raw_watermark: Timestamp::ZERO,
            targets: Vec::new(),
            finished: false,
            policy: config.policy,
            recovery: journal.then(|| {
                (0..threads)
                    .map(|_| ShardBaseline::empty(queries))
                    .collect()
            }),
            restarts: vec![0; threads],
            failed: None,
            delivered: vec![0; threads],
            routed_items: 0,
            dropped: 0,
        }
    }

    /// Rebuild a pool from checkpointed per-query engine states — possibly
    /// with a *different* worker count than the snapshotting pool: each
    /// query's partition entries are re-sharded by replaying the same
    /// `GROUP-BY`-prefix hash live routing uses, so the new layout is
    /// exactly what `workers` fresh shards fed the same stream would hold.
    ///
    /// `gate` and `raw_watermark` restore the admission clock; in-flight
    /// reorder-buffer items are re-staged afterwards via
    /// [`StreamingPool::restage`] / [`StreamingPool::restage_all`].
    pub fn restore(
        runtimes: Vec<Arc<QueryRuntime>>,
        workers: usize,
        config: PoolConfig,
        states: Vec<RouterState>,
        gate: Option<LateGate>,
        raw_watermark: Timestamp,
    ) -> Result<StreamingPool, CheckpointError> {
        assert!(!runtimes.is_empty(), "a pool needs at least one query");
        assert_eq!(states.len(), runtimes.len(), "one engine state per query");
        let threads = Self::threads_for(&runtimes, workers);
        let batch_size = config.batch_size.max(1);
        // Re-shard each query's partition entries into the new layout.
        let mut shard_states: Vec<Vec<Option<RouterState>>> = (0..threads)
            .map(|_| (0..runtimes.len()).map(|_| None).collect())
            .collect();
        for (q, (rt, state)) in runtimes.iter().zip(states).enumerate() {
            let RouterState {
                watermark,
                stats,
                drained_to,
                finalize_spike,
                entries,
            } = state;
            let home = if rt.query.group_prefix > 0 {
                0
            } else {
                q % threads
            };
            let mut split: Vec<Vec<Vec<u8>>> = (0..threads).map(|_| Vec::new()).collect();
            if rt.query.group_prefix == 0 {
                split[home] = entries;
            } else {
                for entry in entries {
                    let h = entry_group_hash(&entry, rt.query.group_prefix)?;
                    split[shard_index(h, threads)].push(entry);
                }
            }
            for (s, entries) in split.into_iter().enumerate() {
                let hosted = rt.query.group_prefix > 0 || s == home;
                if !hosted {
                    debug_assert!(entries.is_empty());
                    continue;
                }
                // Counters and the finalize spike live once, on the
                // query's first hosting shard; the watermark and drain
                // floor are global and go to every hosted shard.
                shard_states[s][q] = Some(RouterState {
                    watermark,
                    stats: if s == home {
                        stats
                    } else {
                        RunStats::default()
                    },
                    drained_to,
                    finalize_spike: if s == home { finalize_spike } else { 0 },
                    entries,
                });
            }
        }
        // Under Restart, the restored layout is also the initial recovery
        // baseline of every shard (cloned before the engines consume it).
        let journal = config.policy == FailurePolicy::Restart;
        let recovery = journal.then(|| {
            shard_states
                .iter()
                .map(|states| ShardBaseline {
                    states: states.clone(),
                    buffered: Vec::new(),
                    events: 0,
                    journal: Vec::new(),
                })
                .collect::<Vec<_>>()
        });
        // Build the engines here, not in the worker threads, so a corrupt
        // entry surfaces as a typed error instead of a worker panic.
        let mut seeds = Vec::with_capacity(threads);
        for (index, sts) in shard_states.into_iter().enumerate() {
            let mut engines = Vec::with_capacity(runtimes.len());
            for (q, (rt, st)) in runtimes.iter().zip(sts).enumerate() {
                let hosted = rt.query.group_prefix > 0 || q % threads == index;
                engines.push(match st {
                    Some(st) => Some(CograEngine::from_state(Arc::clone(rt), st)?),
                    None if hosted => Some(CograEngine::from_runtime(Arc::clone(rt))),
                    None => None,
                });
            }
            seeds.push(Some(engines));
        }
        let workers = Self::spawn_shards(&runtimes, threads, config.slack, seeds, journal);
        Ok(StreamingPool {
            runtimes,
            workers,
            stages: (0..threads).map(|_| Vec::new()).collect(),
            batch_size,
            slack_cfg: config.slack,
            gate,
            raw_watermark,
            targets: Vec::new(),
            finished: false,
            policy: config.policy,
            recovery,
            restarts: vec![0; threads],
            failed: None,
            delivered: vec![0; threads],
            routed_items: 0,
            dropped: 0,
        })
    }

    /// Spawn the shard worker threads, each seeded with pre-built engines
    /// (checkpoint restore) or `None` to build fresh ones.
    fn spawn_shards(
        runtimes: &[Arc<QueryRuntime>],
        threads: usize,
        slack: Option<u64>,
        mut seeds: Vec<Option<Vec<Option<CograEngine>>>>,
        attach_snapshots: bool,
    ) -> Vec<Worker> {
        debug_assert_eq!(seeds.len(), threads);
        (0..threads)
            .map(|index| {
                Self::spawn_one(
                    runtimes,
                    threads,
                    index,
                    slack,
                    seeds[index].take(),
                    0,
                    attach_snapshots,
                )
            })
            .collect()
    }

    /// Spawn a single shard worker — the unit both pool construction and
    /// [`FailurePolicy::Restart`] respawns go through.
    fn spawn_one(
        runtimes: &[Arc<QueryRuntime>],
        threads: usize,
        index: usize,
        slack: Option<u64>,
        seeded: Option<Vec<Option<CograEngine>>>,
        events: u64,
        attach_snapshots: bool,
    ) -> Worker {
        let (cmd_tx, cmd_rx) = std::sync::mpsc::sync_channel(CHANNEL_CAPACITY);
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        // Mirror restored engine memory and counters immediately
        // so a freshly restored pool reports its footprint before
        // any drain.
        let (memory, stats) = seeded.as_ref().map_or_else(
            || (0, RunStats::default()),
            |engines| {
                let mut stats = RunStats::default();
                let mut memory = 0;
                for e in engines.iter().flatten() {
                    memory += e.memory_bytes();
                    stats.merge(e.run_stats());
                }
                (memory, stats)
            },
        );
        let shard = ShardConfig {
            runtimes: runtimes.to_vec(),
            threads,
            index,
            slack,
            seeded,
            events,
            attach_snapshots,
        };
        let thread = std::thread::spawn(move || shard_worker(shard, cmd_rx, reply_tx));
        Worker {
            tx: Some(cmd_tx),
            rx: reply_rx,
            thread: Some(thread),
            quarantined: false,
            memory,
            peak: memory,
            stats,
            key_overflow: None,
            shard_events: events,
        }
    }

    /// Thread count: the requested workers when any query has a `GROUP-BY`
    /// prefix to shard on; otherwise one thread per pinned query suffices.
    fn threads_for(runtimes: &[Arc<QueryRuntime>], requested: usize) -> usize {
        let requested = requested.max(1);
        if runtimes.iter().any(|rt| rt.query.group_prefix > 0) {
            requested
        } else {
            requested.min(runtimes.len())
        }
    }

    /// Number of queries the pool serves.
    pub fn queries(&self) -> usize {
        self.runtimes.len()
    }

    /// Widest effective shard count across the pool's queries (a query
    /// without `GROUP-BY` is pinned to one worker and counts as 1).
    pub fn workers(&self) -> usize {
        let threads = self.workers.len();
        self.runtimes
            .iter()
            .map(|rt| effective_workers(rt, threads))
            .max()
            .unwrap_or(1)
    }

    /// Observable stream progress: results for windows closing at or
    /// before it are final after the next [`StreamingPool::drain_into`].
    /// Without slack this is the largest routed event time; with slack it
    /// is the [`LateGate`]'s safe watermark (the largest time releasable
    /// on every shard), exactly like a front reorderer's released output.
    pub fn watermark(&self) -> Timestamp {
        match &self.gate {
            Some(gate) => gate.safe_watermark(),
            None => self.raw_watermark,
        }
    }

    /// Events refused as hopelessly late by the slack gate (0 without
    /// slack — the stream is trusted ordered then).
    pub fn late_events(&self) -> u64 {
        self.gate.as_ref().map_or(0, LateGate::late_events)
    }

    /// Whether per-shard disorder repair ([`PoolConfig::slack`]) is active.
    pub fn has_slack(&self) -> bool {
        self.gate.is_some()
    }

    /// Summed shard-engine memory, as of each worker's last drain (the
    /// engines run concurrently; there is no synchronous round trip here).
    pub fn memory_bytes(&self) -> usize {
        self.workers.iter().map(|w| w.memory).sum()
    }

    /// Summed shard-engine peaks (the workers run concurrently), as of
    /// each worker's last drain; final once the pool has finished.
    pub fn peak_bytes(&self) -> usize {
        self.workers.iter().map(|w| w.peak).sum()
    }

    /// Summed shard-engine routing counters ([`RunStats`]), as of each
    /// worker's last drain; final once the pool has finished.
    pub fn run_stats(&self) -> RunStats {
        let mut total = RunStats::default();
        for w in &self.workers {
            total.merge(w.stats);
        }
        total
    }

    /// Sticky partition-key overflow across every shard engine, as of
    /// each worker's last drain; final once the pool has finished.
    pub fn key_overflow(&self) -> Option<u32> {
        self.workers.iter().find_map(|w| w.key_overflow)
    }

    /// Events ingested per shard worker, as of each worker's last drain;
    /// final once the pool has finished. The spread between entries is
    /// the hot-key imbalance a skewed group distribution produces.
    pub fn shard_events(&self) -> Vec<u64> {
        self.workers.iter().map(|w| w.shard_events).collect()
    }

    /// The sticky terminal failure, if a shard worker died under
    /// [`FailurePolicy::Fail`] (or a restart loop escalated). Once set,
    /// the pool accepts no more events and emits nothing further.
    pub fn failure(&self) -> Option<&WorkerFailure> {
        self.failed.as_ref()
    }

    /// Shards quarantined by [`FailurePolicy::Degrade`], in index order.
    /// Empty on a healthy pool.
    pub fn degraded_shards(&self) -> Vec<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.quarantined)
            .map(|(s, _)| s)
            .collect()
    }

    /// Items lost to quarantined shards: everything delivered to a shard
    /// before it died plus everything rerouted-to-nowhere after (pinned
    /// queries whose home shard is gone). 0 on a healthy pool. Together
    /// with [`StreamingPool::shard_events`] this conserves the routed
    /// total: `routed_items == sum(shard_events) + dropped_events` once
    /// the pool finishes.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Every `(event, query)` item the coordinator has staged, including
    /// ones later dropped by quarantine — the left-hand side of the
    /// conservation invariant chaos tests assert.
    pub fn routed_items(&self) -> u64 {
        self.routed_items
    }

    /// The configured failure policy.
    pub fn policy(&self) -> FailurePolicy {
        self.policy
    }

    /// Whether the pool has finished (checkpointing a finished pool is
    /// unsupported — its engines have emitted and discarded their state).
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// The coordinator-side admission gate, when slack is active.
    pub fn gate(&self) -> Option<&LateGate> {
        self.gate.as_ref()
    }

    /// The largest event time routed so far (trusted-ordered path only;
    /// with slack the gate tracks the raw clock itself).
    pub fn raw_watermark(&self) -> Timestamp {
        self.raw_watermark
    }

    /// The configured per-shard disorder slack, if any.
    pub fn slack(&self) -> Option<u64> {
        self.gate.as_ref().map(LateGate::slack)
    }

    /// Snapshot the pool's live state without advancing it: flushes staged
    /// batches, then collects every shard's engine states (merged per
    /// query in shard-index order) and in-flight reorder-buffer items.
    /// The pool remains fully usable afterwards.
    ///
    /// A failed pool ([`FailurePolicy::Fail`]) or a degraded one
    /// ([`FailurePolicy::Degrade`] after a quarantine) cannot checkpoint —
    /// part of its state is gone; the error is typed, never a partial
    /// snapshot. A worker dying *during* the snapshot under
    /// [`FailurePolicy::Restart`] is recovered and the shard re-asked.
    pub fn snapshot(&mut self) -> Result<PoolSnapshot, CheckpointError> {
        assert!(!self.finished, "streaming pool already finished");
        self.snapshot_guard()?;
        self.flush_stages();
        self.snapshot_guard()?;
        let cmd = Cmd::Snapshot;
        let n = self.workers.len();
        let mut sent = vec![false; n];
        for (s, flag) in sent.iter_mut().enumerate() {
            *flag = self.send_control(s, &cmd);
        }
        let mut merged: Vec<Option<RouterState>> = (0..self.runtimes.len()).map(|_| None).collect();
        let mut buffered = Vec::new();
        for (s, &ok) in sent.iter().enumerate() {
            if !ok {
                continue;
            }
            let Some(mut reply) = self.recv_reply(s, &cmd) else {
                continue;
            };
            let snap = reply
                .snapshot
                .take()
                .expect("snapshot round trip returns shard state");
            self.absorb_mirrors(s, &reply);
            // This full-state reply doubles as a fresh recovery baseline.
            self.store_baseline(
                s,
                ShardSnapshot {
                    states: snap.states.clone(),
                    buffered: snap.buffered.clone(),
                    events: snap.events,
                },
            );
            for (q, st) in snap.states.into_iter().enumerate() {
                if let Some(st) = st {
                    match &mut merged[q] {
                        None => merged[q] = Some(st),
                        Some(m) => m.merge(st),
                    }
                }
            }
            buffered.extend(snap.buffered);
        }
        self.snapshot_guard()?;
        let states = merged
            .into_iter()
            .map(|m| m.expect("every query is hosted by at least one shard"))
            .collect();
        Ok((states, buffered))
    }

    /// The typed reasons a pool cannot produce a complete snapshot.
    fn snapshot_guard(&self) -> Result<(), CheckpointError> {
        if let Some(f) = &self.failed {
            return Err(CheckpointError::Unsupported(format!(
                "cannot checkpoint a failed session ({f})"
            )));
        }
        if self.workers.iter().any(|w| w.quarantined) {
            return Err(CheckpointError::Unsupported(
                "cannot checkpoint a degraded session (a shard worker was quarantined)".into(),
            ));
        }
        Ok(())
    }

    /// Refresh a shard's recovery baseline from a full-state reply and
    /// forget the journal it supersedes. No-op unless journaling
    /// ([`FailurePolicy::Restart`]).
    fn store_baseline(&mut self, shard: usize, snap: ShardSnapshot) {
        if let Some(recovery) = &mut self.recovery {
            recovery[shard] = ShardBaseline {
                states: snap.states,
                buffered: snap.buffered,
                events: snap.events,
                journal: Vec::new(),
            };
        }
    }

    /// Copy a live reply's counters into the coordinator-side mirrors.
    fn absorb_mirrors(&mut self, shard: usize, reply: &Reply) {
        let w = &mut self.workers[shard];
        w.memory = reply.memory;
        w.peak = w.peak.max(reply.peak);
        w.stats = reply.stats;
        w.key_overflow = reply.key_overflow;
        w.shard_events = reply.shard_events;
    }

    /// Send one control command (`Drain`/`Snapshot`/`Finish`) to a shard,
    /// recovering per policy if its channel is dead. `false`: the shard is
    /// not participating (quarantined, or the pool failed).
    fn send_control(&mut self, shard: usize, cmd: &Cmd) -> bool {
        loop {
            if self.failed.is_some() {
                return false;
            }
            let Some(tx) = self.workers[shard].tx.as_ref() else {
                return false;
            };
            if tx.send(control_clone(cmd)).is_ok() {
                return true;
            }
            self.recover(shard, None);
        }
    }

    /// Receive a shard's reply to `cmd`, recovering per policy when the
    /// worker died instead: under [`FailurePolicy::Restart`] the respawned
    /// shard is re-sent `cmd` and the receive retried. `None`: the shard
    /// dropped out of this round trip (quarantined or pool failed).
    fn recv_reply(&mut self, shard: usize, cmd: &Cmd) -> Option<Reply> {
        loop {
            if self.failed.is_some() || self.workers[shard].tx.is_none() {
                return None;
            }
            match self.workers[shard].rx.recv() {
                Ok(reply) => match reply.failure {
                    None => return Some(reply),
                    Some(message) => self.recover(shard, Some(message)),
                },
                Err(_) => self.recover(shard, None),
            }
            // A restarted shard has replayed its journal but not seen the
            // in-flight command yet — re-issue it and listen again.
            if self.workers[shard].tx.is_some() && !self.send_control(shard, cmd) {
                return None;
            }
        }
    }

    /// The worker on `shard` is dead (send failed, receive disconnected,
    /// or an in-band failure reply arrived — passed as `got`). Extract the
    /// failure and recover per policy: quarantine, respawn-and-replay, or
    /// fail the pool terminally.
    fn recover(&mut self, shard: usize, got: Option<String>) {
        let failure = self.failure_of(shard, got);
        match self.policy {
            FailurePolicy::Fail => self.fail_all(failure),
            FailurePolicy::Degrade => self.quarantine(shard),
            FailurePolicy::Restart => {
                if self.restarts[shard] >= MAX_RESTARTS {
                    let failure = WorkerFailure {
                        shard,
                        message: format!(
                            "giving up after {MAX_RESTARTS} restarts: {}",
                            failure.message
                        ),
                    };
                    self.fail_all(failure);
                } else {
                    self.restart_shard(shard);
                }
            }
        }
    }

    /// Reap a dead worker and name its failure: close our end, skim its
    /// reply channel for the supervisor's in-band panic report (it races
    /// the channel teardown), and join the thread.
    fn failure_of(&mut self, shard: usize, got: Option<String>) -> WorkerFailure {
        let w = &mut self.workers[shard];
        w.tx = None;
        let mut message = got;
        while message.is_none() {
            match w.rx.recv_timeout(std::time::Duration::from_secs(10)) {
                Ok(reply) => message = reply.failure, // skim data replies
                Err(_) => break,
            }
        }
        if let Some(t) = w.thread.take() {
            let _ = t.join();
        }
        WorkerFailure {
            shard,
            message: message.unwrap_or_else(|| "shard worker exited unexpectedly".into()),
        }
    }

    /// Terminal failure: record it, stop every worker, drop staged items.
    fn fail_all(&mut self, failure: WorkerFailure) {
        self.failed = Some(failure);
        for w in &mut self.workers {
            w.tx = None;
            if let Some(t) = w.thread.take() {
                let _ = t.join();
            }
        }
        for stage in &mut self.stages {
            stage.clear();
        }
        if let Some(recovery) = &mut self.recovery {
            for b in recovery.iter_mut() {
                b.journal.clear();
            }
        }
    }

    /// [`FailurePolicy::Degrade`]: the shard stays dead. Everything ever
    /// delivered to it (processed state and in-flight items alike) is
    /// accounted as dropped; its groups reroute to the next live shard
    /// from here on.
    fn quarantine(&mut self, shard: usize) {
        let w = &mut self.workers[shard];
        w.quarantined = true;
        w.memory = 0;
        w.shard_events = 0;
        self.dropped += self.delivered[shard];
        self.delivered[shard] = 0;
        self.stages[shard].clear();
    }

    /// [`FailurePolicy::Restart`]: rebuild the shard's engines from its
    /// recovery baseline, respawn the worker, and redeliver the baseline's
    /// in-flight items plus the journal of everything delivered since.
    /// Emission-safe: nothing has been emitted since the baseline (results
    /// only leave at drains, and every drain refreshes the baseline).
    fn restart_shard(&mut self, shard: usize) {
        self.restarts[shard] += 1;
        let threads = self.workers.len();
        let baseline = &self.recovery.as_ref().expect("Restart keeps baselines")[shard];
        let mut engines = Vec::with_capacity(self.runtimes.len());
        for (q, (rt, st)) in self.runtimes.iter().zip(&baseline.states).enumerate() {
            let hosted = rt.query.group_prefix > 0 || q % threads == shard;
            engines.push(match st {
                Some(st) => match CograEngine::from_state(Arc::clone(rt), st.clone()) {
                    Ok(engine) => Some(engine),
                    Err(e) => {
                        // The baseline itself cannot be revived — escalate.
                        let failure = WorkerFailure {
                            shard,
                            message: format!("recovery baseline is unusable: {e}"),
                        };
                        self.fail_all(failure);
                        return;
                    }
                },
                None if hosted => Some(CograEngine::from_runtime(Arc::clone(rt))),
                None => None,
            });
        }
        self.workers[shard] = Self::spawn_one(
            &self.runtimes,
            threads,
            shard,
            self.slack_cfg,
            Some(engines),
            baseline.events,
            true,
        );
        // Redeliver: first the baseline's reorder-buffered items (their
        // release order is the order the checkpoint restage path uses),
        // then the journal, both through the normal batch transport.
        let mut replay: Vec<Item> = Vec::with_capacity(baseline.journal.len());
        for (query, event) in baseline.buffered.clone() {
            let rt = &self.runtimes[query as usize];
            let key_hash = if rt.query.group_prefix > 0 {
                match rt.route_hashes(&event) {
                    Some((_, key_hash)) => Some(key_hash),
                    None => continue,
                }
            } else {
                rt.key_hash(&event)
            };
            replay.push(Item {
                event,
                query,
                key_hash,
            });
        }
        replay.extend(baseline.journal.iter().cloned());
        for chunk in replay.chunks(self.batch_size.max(1)) {
            let Some(tx) = self.workers[shard].tx.as_ref() else {
                return;
            };
            if tx.send(Cmd::Batch(chunk.to_vec())).is_err() {
                // Died again during replay — recurse; MAX_RESTARTS bounds
                // the depth.
                self.recover(shard, None);
                return;
            }
        }
    }

    /// Where an item bound for `shard` actually goes: the shard itself
    /// while it lives; after a quarantine, the next live shard (shardable
    /// queries — every shard hosts them) or nowhere (pinned queries whose
    /// home worker is gone).
    fn live_target(&self, shard: usize, query: u32) -> Option<usize> {
        if !self.workers[shard].quarantined {
            return Some(shard);
        }
        if self.runtimes[query as usize].query.group_prefix == 0 {
            return None;
        }
        let n = self.workers.len();
        (1..n)
            .map(|k| (shard + k) % n)
            .find(|&s| !self.workers[s].quarantined)
    }

    /// Re-stage one checkpointed in-flight event for one query, bypassing
    /// the admission gate (the gate was restored verbatim; these events
    /// were already admitted before the snapshot). Safe to release early
    /// on the new shard: an admitted buffered event's release threshold
    /// never overtakes the gate's `released_to` floor.
    pub fn restage(&mut self, query: u32, event: Event) {
        let threads = self.workers.len();
        let rt = &self.runtimes[query as usize];
        let (shard, key_hash) = if rt.query.group_prefix > 0 {
            match rt.route_hashes(&event) {
                Some((group_hash, key_hash)) => (shard_index(group_hash, threads), Some(key_hash)),
                None => return, // unroutable events are never staged
            }
        } else {
            (query as usize % threads, rt.key_hash(&event))
        };
        self.stage(
            shard,
            Item {
                event,
                query,
                key_hash,
            },
        );
    }

    /// Re-stage one checkpointed in-flight event for *every* query — the
    /// restore path for snapshots taken behind a single front reorderer,
    /// whose buffered events had not been routed per query yet.
    pub fn restage_all(&mut self, event: Event) {
        self.compute_targets(&event);
        let targets = std::mem::take(&mut self.targets);
        for &(shard, query, key_hash) in &targets {
            self.stage(
                shard,
                Item {
                    event: event.clone(),
                    query,
                    key_hash,
                },
            );
        }
        self.targets = targets;
    }

    /// Route one event to its target shards (one per query, deduplicated
    /// by staging the clone per *shard*, not per query). Blocks when a
    /// shard is [`CHANNEL_CAPACITY`] batches behind (backpressure, not
    /// unbounded buffering). Without slack, events must arrive in
    /// non-decreasing time order; with slack, disorder up to the slack is
    /// repaired on the shards and anything later is dropped and counted.
    pub fn route(&mut self, event: &Event) {
        if self.admit(event) {
            self.compute_targets(event);
            let targets = std::mem::take(&mut self.targets);
            for &(shard, query, key_hash) in &targets {
                self.stage(
                    shard,
                    Item {
                        event: event.clone(),
                        query,
                        key_hash,
                    },
                );
            }
            self.targets = targets;
        }
    }

    /// Like [`StreamingPool::route`], consuming the event — the last
    /// target shard receives it without a clone (the zero-clone path for
    /// single-query sessions fed from owned sources).
    pub fn route_owned(&mut self, event: Event) {
        if self.admit(&event) {
            self.compute_targets(&event);
            let targets = std::mem::take(&mut self.targets);
            if let Some((&(shard, query, key_hash), rest)) = targets.split_last() {
                for &(shard, query, key_hash) in rest {
                    self.stage(
                        shard,
                        Item {
                            event: event.clone(),
                            query,
                            key_hash,
                        },
                    );
                }
                self.stage(
                    shard,
                    Item {
                        event,
                        query,
                        key_hash,
                    },
                );
            }
            self.targets = targets;
        }
    }

    /// Watermark bookkeeping + the late-drop decision. `true` admits.
    /// With a gate, the gate tracks the raw watermark itself and the
    /// observable watermark is its safe one — `raw_watermark` is only
    /// maintained on the trusted-ordered path.
    fn admit(&mut self, event: &Event) -> bool {
        assert!(!self.finished, "streaming pool already finished");
        if self.failed.is_some() {
            // Terminally failed: ignore further input; the caller sees the
            // sticky `failure()` instead of a panic.
            return false;
        }
        match &mut self.gate {
            Some(gate) => gate.admit(event.time),
            None => {
                self.raw_watermark = self.raw_watermark.max(event.time);
                true
            }
        }
    }

    /// Resolve the event's `(shard, query, key_hash)` placements into the
    /// reusable `targets` scratch — one entry per query that keeps the
    /// event.
    fn compute_targets(&mut self, event: &Event) {
        let threads = self.workers.len();
        self.targets.clear();
        for (q, rt) in self.runtimes.iter().enumerate() {
            if rt.query.group_prefix > 0 {
                // Shardable: the group hash places the event, the full-key
                // hash rides along so the worker's router probes without
                // re-extracting the key. `None` drops the event for this
                // query (no partition key), consistently with every engine.
                if let Some((group_hash, key_hash)) = rt.route_hashes(event) {
                    self.targets
                        .push((shard_index(group_hash, threads), q as u32, Some(key_hash)));
                }
            } else {
                // Unshardable: pinned to one worker, which sees the whole
                // stream — including events without a partition key (the
                // engine drops them itself, exactly like a sequential run).
                self.targets
                    .push((q % threads, q as u32, rt.key_hash(event)));
            }
        }
    }

    /// Append one item to a shard's staging buffer (rerouted past
    /// quarantined shards, journaled under [`FailurePolicy::Restart`]),
    /// shipping the buffer as a batch once it reaches the configured size.
    fn stage(&mut self, shard: usize, item: Item) {
        self.routed_items += 1;
        let Some(shard) = self.live_target(shard, item.query) else {
            // A pinned query's home worker is quarantined — the item has
            // nowhere correct to go; count it instead of losing it silently.
            self.dropped += 1;
            return;
        };
        self.delivered[shard] += 1;
        if let Some(recovery) = &mut self.recovery {
            recovery[shard].journal.push(item.clone());
        }
        let stage = &mut self.stages[shard];
        stage.push(item);
        if stage.len() >= self.batch_size {
            self.ship(shard);
        }
    }

    /// Send a shard's staged events as one [`Cmd::Batch`]. A dead channel
    /// triggers policy recovery; the batch itself is never re-sent here —
    /// under Restart the journal replay already covers it, under Degrade
    /// it is part of the quarantined shard's counted losses.
    fn ship(&mut self, shard: usize) {
        if self.stages[shard].is_empty() {
            return;
        }
        let cap = self.batch_size.min(4096);
        let batch = std::mem::replace(&mut self.stages[shard], Vec::with_capacity(cap));
        #[cfg(feature = "faults")]
        if cogra_faults::fired(&format!("pool/ship/{shard}")) {
            // Simulated transport failure: drop our end of the channel (the
            // worker exits cleanly when it drains) and run recovery.
            self.workers[shard].tx = None;
            self.recover(shard, Some(format!("injected fault at pool/ship/{shard}")));
            return;
        }
        let Some(tx) = self.workers[shard].tx.as_ref() else {
            return; // quarantined or failed since staging
        };
        if tx.send(Cmd::Batch(batch)).is_err() {
            self.recover(shard, None);
        }
    }

    /// Flush every shard's staging buffer — always precedes a broadcast,
    /// so a drain or finish never outruns staged events.
    fn flush_stages(&mut self) {
        for shard in 0..self.stages.len() {
            self.ship(shard);
        }
    }

    /// Emit every result final at the safe watermark, merged per query in
    /// deterministic (window, group) order. Flushes staged batches and
    /// broadcasts the watermark first, so shards whose sub-stream went
    /// quiet still close the windows that closed globally.
    pub fn drain_into(&mut self, out: &mut dyn FnMut(usize, WindowResult)) {
        if self.finished || self.failed.is_some() {
            return;
        }
        self.flush_stages();
        self.round_trip(Cmd::Drain(self.watermark()), out);
    }

    /// End of stream: flush staged batches and shard reorder buffers,
    /// close every open window on every shard, emit the merged remainder,
    /// and join the worker threads. Further drains are no-ops; further
    /// routing is a bug (and panics). On a terminally failed pool this
    /// emits nothing — the caller sees [`StreamingPool::failure`].
    pub fn finish_into(&mut self, out: &mut dyn FnMut(usize, WindowResult)) {
        if self.finished {
            return;
        }
        if self.failed.is_none() {
            self.flush_stages();
            self.round_trip(Cmd::Finish, out);
        }
        self.finished = true;
        for w in &mut self.workers {
            w.tx = None; // close the channel …
            if let Some(t) = w.thread.take() {
                let _ = t.join(); // … and reap (panics arrived in-band)
            }
        }
    }

    /// Broadcast one command to every live shard, then merge the replies
    /// per query. Command fan-out happens before any reply collection so
    /// the shards drain concurrently. Worker deaths along the way are
    /// recovered per policy; a pool that fails terminally mid-trip emits
    /// nothing (no partial result set masquerading as a complete one).
    fn round_trip(&mut self, cmd: Cmd, out: &mut dyn FnMut(usize, WindowResult)) {
        let n = self.workers.len();
        let mut sent = vec![false; n];
        for (s, flag) in sent.iter_mut().enumerate() {
            *flag = self.send_control(s, &cmd);
        }
        let mut merged: Vec<Vec<WindowResult>> = vec![Vec::new(); self.runtimes.len()];
        for (s, &ok) in sent.iter().enumerate() {
            if !ok {
                continue;
            }
            let Some(mut reply) = self.recv_reply(s, &cmd) else {
                continue;
            };
            self.absorb_mirrors(s, &reply);
            if let Some(snap) = reply.snapshot.take() {
                // Journaling drain: the attached state is the shard's new
                // recovery baseline and retires its journal.
                self.store_baseline(s, snap);
            }
            for (q, r) in reply.results {
                merged[q as usize].push(r);
            }
        }
        if self.failed.is_some() {
            return;
        }
        for (q, results) in merged.iter_mut().enumerate() {
            // Shards own disjoint (window, group) result spaces per query,
            // so this sort is a deterministic merge — independent of the
            // shard count.
            WindowResult::sort(results);
            for r in results.drain(..) {
                out(q, r);
            }
        }
    }
}

/// Clone a broadcastable control command ([`Cmd::Batch`] is routed, not
/// broadcast, and never comes through here).
fn control_clone(cmd: &Cmd) -> Cmd {
    match cmd {
        Cmd::Drain(wm) => Cmd::Drain(*wm),
        Cmd::Snapshot => Cmd::Snapshot,
        Cmd::Finish => Cmd::Finish,
        Cmd::Batch(..) => unreachable!("batches are routed, not broadcast"),
    }
}

impl Drop for StreamingPool {
    fn drop(&mut self) {
        for w in &mut self.workers {
            w.tx = None; // close the channel so the worker loop exits
            if let Some(t) = w.thread.take() {
                let _ = t.join();
            }
        }
    }
}

/// Everything a shard worker needs to build its engine slice.
struct ShardConfig {
    runtimes: Vec<Arc<QueryRuntime>>,
    threads: usize,
    index: usize,
    slack: Option<u64>,
    /// Engines restored from a checkpoint or a recovery baseline
    /// (`None`: build fresh ones).
    seeded: Option<Vec<Option<CograEngine>>>,
    /// Ingest-counter seed, so a respawned shard resumes its accounting.
    events: u64,
    /// Attach a [`ShardSnapshot`] to every drain reply — the coordinator
    /// journals for [`FailurePolicy::Restart`] and refreshes its recovery
    /// baseline from them.
    attach_snapshots: bool,
}

/// One worker's engines: a [`CograEngine`] per query this shard hosts
/// (every query with a `GROUP-BY` prefix; pinned queries only on their
/// home worker), plus the shard's private reorder buffer under slack.
struct Shard {
    engines: Vec<Option<CograEngine>>,
    /// Per-shard disorder repair ([`PoolConfig::slack`]); the admission
    /// decision already happened at the coordinator's [`LateGate`].
    reorder: Option<ReorderBuffer<Item>>,
    slack: u64,
    /// The largest raw event time this shard has seen in its sub-stream.
    local_watermark: Timestamp,
    /// Scratch for released items (reused across batches).
    released: Vec<Item>,
    peak: usize,
    since_sample: usize,
    /// Events ingested into this shard's engines (the per-shard counter
    /// behind [`StreamingPool::shard_events`]).
    events: u64,
}

impl Shard {
    fn new(mut cfg: ShardConfig) -> Shard {
        let engines = match cfg.seeded.take() {
            Some(engines) => engines,
            None => cfg
                .runtimes
                .iter()
                .enumerate()
                .map(|(q, rt)| {
                    let hosted = rt.query.group_prefix > 0 || q % cfg.threads == cfg.index;
                    hosted.then(|| CograEngine::from_runtime(Arc::clone(rt)))
                })
                .collect(),
        };
        let mut shard = Shard {
            engines,
            reorder: cfg.slack.map(|_| ReorderBuffer::new()),
            slack: cfg.slack.unwrap_or(0),
            local_watermark: Timestamp::ZERO,
            released: Vec::new(),
            peak: 0,
            since_sample: 0,
            events: cfg.events,
        };
        shard.peak = shard.memory();
        shard
    }

    /// Serialize the shard for a pool snapshot or recovery baseline:
    /// every hosted engine's state, the reorder buffer's in-flight items
    /// in release order, and the ingest counter.
    fn snapshot(&self) -> ShardSnapshot {
        let states = self
            .engines
            .iter()
            .map(|e| e.as_ref().map(CograEngine::snapshot_state))
            .collect();
        let buffered = match &self.reorder {
            Some(buffer) => buffer
                .ordered()
                .into_iter()
                .map(|(_, item)| (item.query, item.event.clone()))
                .collect(),
            None => Vec::new(),
        };
        ShardSnapshot {
            states,
            buffered,
            events: self.events,
        }
    }

    fn memory(&self) -> usize {
        self.engines
            .iter()
            .flatten()
            .map(|e| e.memory_bytes())
            .sum()
    }

    fn stats(&self) -> RunStats {
        let mut total = RunStats::default();
        for e in self.engines.iter().flatten() {
            total.merge(e.run_stats());
        }
        total
    }

    fn key_overflow(&self) -> Option<u32> {
        self.engines.iter().flatten().find_map(|e| e.key_overflow())
    }

    fn sample_peak(&mut self) {
        self.peak = self.peak.max(self.memory());
        self.since_sample = 0;
    }

    /// Feed one released item to its query's engine. The coordinator
    /// hashed the key at ingest to place the event; reuse it so the key
    /// is extracted once per event.
    fn ingest(&mut self, item: Item) {
        let engine = self.engines[item.query as usize]
            .as_mut()
            .expect("coordinator only targets hosted queries");
        engine.process_prehashed(&item.event, item.key_hash);
        self.events += 1;
        self.since_sample += 1;
        if self.since_sample >= 64 {
            self.sample_peak();
        }
    }

    /// Ingest one transported batch: straight into the engines when the
    /// stream is trusted ordered, through the shard's reorder buffer
    /// (releasing everything slack ticks behind this shard's own
    /// watermark) otherwise.
    fn on_batch(&mut self, items: Vec<Item>) {
        match &mut self.reorder {
            None => {
                for item in items {
                    self.ingest(item);
                }
            }
            Some(buffer) => {
                let mut wm = self.local_watermark;
                for item in items {
                    wm = wm.max(item.event.time);
                    buffer.push(item.event.time, item);
                }
                self.local_watermark = wm;
                let mut released = std::mem::take(&mut self.released);
                buffer.release_up_to(wm.saturating_sub(self.slack), &mut released);
                for item in released.drain(..) {
                    self.ingest(item);
                }
                self.released = released;
            }
        }
        // Sample at the batch-flush boundary besides the every-64-events
        // stride: a burst shorter than the stride would otherwise leave
        // its peak invisible until the next drain.
        if self.since_sample > 0 {
            self.sample_peak();
        }
    }

    /// Catch the shard up to the broadcast safe watermark: release every
    /// buffered item at or before it (the gate guarantees anything still
    /// buffered beyond it is not yet globally final), then advance every
    /// hosted engine so globally-closed windows finalize even if this
    /// shard's own sub-stream went quiet.
    fn advance_to(&mut self, safe: Timestamp) {
        if let Some(buffer) = &mut self.reorder {
            let mut released = std::mem::take(&mut self.released);
            buffer.release_up_to(safe, &mut released);
            for item in released.drain(..) {
                self.ingest(item);
            }
            self.released = released;
        }
        for e in self.engines.iter_mut().flatten() {
            e.advance_watermark(safe);
        }
    }

    /// End of stream: flush the reorder buffer into the engines.
    fn flush(&mut self) {
        if let Some(buffer) = &mut self.reorder {
            let mut released = std::mem::take(&mut self.released);
            buffer.flush(&mut released);
            for item in released.drain(..) {
                self.ingest(item);
            }
            self.released = released;
        }
    }
}

/// The supervisor wrapper around a shard's worker loop: a panic anywhere
/// in the body is caught and reported in-band as a [`Reply::failed`]
/// instead of being re-raised into the coordinator — the coordinator
/// recovers per its [`FailurePolicy`]. The shard's state is discarded on
/// unwind (a replacement is rebuilt from the recovery baseline), so
/// `AssertUnwindSafe` is sound here.
fn shard_worker(cfg: ShardConfig, rx: Receiver<Cmd>, tx: Sender<Reply>) {
    let failure_tx = tx.clone();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        shard_loop(cfg, rx, tx)
    }));
    if let Err(payload) = result {
        let _ = failure_tx.send(Reply::failed(panic_message(payload.as_ref())));
    }
}

/// Render a caught panic payload — the `panic!` message when there is
/// one, a generic marker otherwise.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "shard worker panicked".to_string()
    }
}

/// One shard's worker loop: private per-query [`CograEngine`]s over the
/// shard's sub-stream, replying to drain/finish round trips. With the
/// `faults` feature, per-shard failpoints (`worker/batch/{i}`,
/// `worker/drain/{i}`, `worker/snapshot/{i}`, `worker/finish/{i}`) panic
/// the loop on schedule — each shard's command stream is deterministic
/// given the routing, so the hit counters are too.
fn shard_loop(cfg: ShardConfig, rx: Receiver<Cmd>, tx: Sender<Reply>) {
    #[cfg(feature = "faults")]
    let index = cfg.index;
    let attach_snapshots = cfg.attach_snapshots;
    let mut shard = Shard::new(cfg);
    for cmd in rx {
        match cmd {
            Cmd::Batch(items) => {
                shard.on_batch(items);
                // Fire *after* the batch mutated the engines: recovery
                // must discard the partial work, not resume over it.
                #[cfg(feature = "faults")]
                cogra_faults::maybe_panic(&format!("worker/batch/{index}"));
            }
            Cmd::Drain(wm) => {
                #[cfg(feature = "faults")]
                cogra_faults::maybe_panic(&format!("worker/drain/{index}"));
                shard.advance_to(wm);
                shard.sample_peak();
                let mut results = Vec::new();
                for (q, e) in shard.engines.iter_mut().enumerate() {
                    if let Some(e) = e {
                        e.drain_into(&mut |r| results.push((q as u32, r)));
                    }
                }
                if tx
                    .send(Reply {
                        results,
                        memory: shard.memory(),
                        peak: shard.peak,
                        stats: shard.stats(),
                        key_overflow: shard.key_overflow(),
                        shard_events: shard.events,
                        snapshot: attach_snapshots.then(|| shard.snapshot()),
                        failure: None,
                    })
                    .is_err()
                {
                    return; // coordinator dropped mid-drain
                }
            }
            Cmd::Snapshot => {
                #[cfg(feature = "faults")]
                cogra_faults::maybe_panic(&format!("worker/snapshot/{index}"));
                shard.sample_peak();
                if tx
                    .send(Reply {
                        results: Vec::new(),
                        memory: shard.memory(),
                        peak: shard.peak,
                        stats: shard.stats(),
                        key_overflow: shard.key_overflow(),
                        shard_events: shard.events,
                        snapshot: Some(shard.snapshot()),
                        failure: None,
                    })
                    .is_err()
                {
                    return; // coordinator dropped mid-snapshot
                }
            }
            Cmd::Finish => {
                #[cfg(feature = "faults")]
                cogra_faults::maybe_panic(&format!("worker/finish/{index}"));
                shard.flush();
                shard.sample_peak();
                let mut results = Vec::new();
                let mut hint = 0usize;
                for (q, e) in shard.engines.iter_mut().enumerate() {
                    if let Some(e) = e {
                        e.finish_into(&mut |r| results.push((q as u32, r)));
                        hint += e.peak_hint();
                    }
                }
                shard.peak = shard.peak.max(hint);
                let _ = tx.send(Reply {
                    results,
                    memory: shard.memory(),
                    peak: shard.peak,
                    stats: shard.stats(),
                    key_overflow: shard.key_overflow(),
                    shard_events: shard.events,
                    snapshot: None,
                    failure: None,
                });
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogra_events::{EventBuilder, TypeRegistry, Value, ValueKind};

    fn setup(n: usize) -> (Arc<QueryRuntime>, Vec<Event>) {
        let mut reg = TypeRegistry::new();
        let a = reg.register_type("A", vec![("g", ValueKind::Int), ("v", ValueKind::Int)]);
        let b = reg.register_type("B", vec![("g", ValueKind::Int), ("v", ValueKind::Int)]);
        let q = cogra_query::parse(
            "RETURN g, COUNT(*), SUM(A.v) PATTERN SEQ(A+, B) SEMANTICS ANY \
             GROUP-BY g WITHIN 16 SLIDE 8",
        )
        .unwrap();
        let rt = Arc::new(QueryRuntime::new(
            cogra_query::compile(&q, &reg).unwrap(),
            &reg,
        ));
        let mut builder = EventBuilder::new();
        let events: Vec<Event> = (0..n)
            .map(|i| {
                let ty = if i % 3 == 2 { b } else { a };
                builder.event(
                    (i + 1) as u64,
                    ty,
                    vec![Value::Int((i % 7) as i64), Value::Int((i % 5) as i64)],
                )
            })
            .collect();
        (rt, events)
    }

    fn pool(rt: &Arc<QueryRuntime>, workers: usize, batch: usize) -> StreamingPool {
        StreamingPool::new(
            vec![Arc::clone(rt)],
            workers,
            PoolConfig {
                batch_size: batch,
                slack: None,
                policy: FailurePolicy::Fail,
            },
        )
    }

    #[test]
    fn parallel_equals_sequential() {
        let (rt, events) = setup(300);
        let sequential = run_parallel(&rt, &events, 1);
        for workers in [2, 4, 8] {
            let parallel = run_parallel(&rt, &events, workers);
            assert_eq!(parallel.results, sequential.results, "workers={workers}");
        }
    }

    #[test]
    fn more_workers_than_groups_is_fine() {
        let (rt, events) = setup(50);
        let run = run_parallel(&rt, &events, 64);
        assert!(!run.results.is_empty());
        assert_eq!(run.workers, 64);
    }

    #[test]
    fn no_group_by_falls_back_to_single_worker() {
        let mut reg = TypeRegistry::new();
        let a = reg.register_type("A", vec![("v", ValueKind::Int)]);
        let q = cogra_query::parse("RETURN COUNT(*) PATTERN A+ WITHIN 8 SLIDE 4").unwrap();
        let rt = Arc::new(QueryRuntime::new(
            cogra_query::compile(&q, &reg).unwrap(),
            &reg,
        ));
        let mut b = EventBuilder::new();
        let events: Vec<Event> = (0..20)
            .map(|i| b.event(i + 1, a, vec![Value::Int(i as i64)]))
            .collect();
        let run = run_parallel(&rt, &events, 8);
        assert_eq!(run.workers, 1);
        assert!(!run.results.is_empty());
    }

    #[test]
    fn streaming_pool_matches_batch_reference() {
        let (rt, events) = setup(300);
        let batch = run_parallel(&rt, &events, 1);
        for workers in [1, 2, 4, 8] {
            for batch_size in [1, 7, DEFAULT_BATCH_SIZE, 10_000] {
                let mut pool = pool(&rt, workers, batch_size);
                let mut results = Vec::new();
                let mut push = |_q: usize, r: WindowResult| results.push(r);
                for (i, e) in events.iter().enumerate() {
                    pool.route(e);
                    if i % 50 == 49 {
                        pool.drain_into(&mut push);
                    }
                }
                pool.finish_into(&mut push);
                WindowResult::sort(&mut results);
                assert_eq!(
                    results, batch.results,
                    "workers={workers} batch={batch_size}"
                );
                assert_eq!(pool.workers(), workers);
                assert!(pool.peak_bytes() > 0, "workers={workers}");
            }
        }
    }

    #[test]
    fn streaming_pool_drains_live_before_finish() {
        let (rt, events) = setup(300);
        let mut pool = pool(&rt, 4, DEFAULT_BATCH_SIZE);
        let mut live = Vec::new();
        for e in &events {
            pool.route(e);
        }
        pool.drain_into(&mut |_q, r| live.push(r));
        assert!(
            !live.is_empty(),
            "closed windows are emitted before finish()"
        );
        // The window containing the watermark is still open.
        let spec = rt.query.window;
        let last_closed = spec.last_closed(pool.watermark()).unwrap();
        assert!(live.iter().all(|r| r.window <= last_closed));
        let mut rest = Vec::new();
        pool.finish_into(&mut |_q, r| rest.push(r));
        live.extend(rest);
        WindowResult::sort(&mut live);
        assert_eq!(live, run_parallel(&rt, &events, 4).results);
    }

    #[test]
    fn quiet_shard_still_closes_global_windows() {
        // Every event goes to one group, so with many shards all but one
        // worker see an empty sub-stream — the watermark broadcast alone
        // must close their (empty) windows and the drain must still emit
        // the busy shard's finalized results.
        let mut reg = TypeRegistry::new();
        let a = reg.register_type("A", vec![("g", ValueKind::Int), ("v", ValueKind::Int)]);
        let b = reg.register_type("B", vec![("g", ValueKind::Int), ("v", ValueKind::Int)]);
        let q = cogra_query::parse(
            "RETURN g, COUNT(*) PATTERN SEQ(A+, B) SEMANTICS ANY \
             GROUP-BY g WITHIN 8 SLIDE 4",
        )
        .unwrap();
        let rt = Arc::new(QueryRuntime::new(
            cogra_query::compile(&q, &reg).unwrap(),
            &reg,
        ));
        let mut builder = EventBuilder::new();
        let events: Vec<Event> = (0..40)
            .map(|i| {
                let ty = if i % 3 == 2 { b } else { a };
                builder.event((i + 1) as u64, ty, vec![Value::Int(1), Value::Int(i)])
            })
            .collect();
        let mut pool = pool(&rt, 8, DEFAULT_BATCH_SIZE);
        let mut live = Vec::new();
        for e in &events {
            pool.route(e);
        }
        pool.drain_into(&mut |_q, r| live.push(r));
        assert!(!live.is_empty());
        pool.finish_into(&mut |_q, r| live.push(r));
        WindowResult::sort(&mut live);
        assert_eq!(live, run_parallel(&rt, &events, 8).results);
    }

    #[test]
    fn pool_finish_is_idempotent_and_no_group_clamps_to_one() {
        let mut reg = TypeRegistry::new();
        let a = reg.register_type("A", vec![("v", ValueKind::Int)]);
        let q = cogra_query::parse("RETURN COUNT(*) PATTERN A+ WITHIN 8 SLIDE 4").unwrap();
        let rt = Arc::new(QueryRuntime::new(
            cogra_query::compile(&q, &reg).unwrap(),
            &reg,
        ));
        let mut pool = pool(&rt, 8, DEFAULT_BATCH_SIZE);
        assert_eq!(pool.workers(), 1, "no GROUP-BY ⇒ one shard");
        let mut b = EventBuilder::new();
        for i in 0..20u64 {
            pool.route_owned(b.event(i + 1, a, vec![Value::Int(i as i64)]));
        }
        let mut out = Vec::new();
        pool.finish_into(&mut |_q, r| out.push(r));
        assert!(!out.is_empty());
        let n = out.len();
        let mut extra = 0usize;
        pool.finish_into(&mut |_q, _r| extra += 1);
        pool.drain_into(&mut |_q, _r| extra += 1);
        assert_eq!(extra, 0, "post-finish drains emit nothing");
        assert_eq!(out.len(), n);
    }

    #[test]
    fn shared_pool_serves_multiple_queries_with_tagged_results() {
        let (rt, events) = setup(200);
        let q2 = cogra_query::parse(
            "RETURN g, COUNT(*) PATTERN SEQ(A+, B) SEMANTICS NEXT \
             GROUP-BY g WITHIN 16 SLIDE 8",
        )
        .unwrap();
        let mut reg = TypeRegistry::new();
        reg.register_type("A", vec![("g", ValueKind::Int), ("v", ValueKind::Int)]);
        reg.register_type("B", vec![("g", ValueKind::Int), ("v", ValueKind::Int)]);
        let rt2 = Arc::new(QueryRuntime::new(
            cogra_query::compile(&q2, &reg).unwrap(),
            &reg,
        ));
        let mut pool = StreamingPool::new(
            vec![Arc::clone(&rt), Arc::clone(&rt2)],
            4,
            PoolConfig::default(),
        );
        assert_eq!(pool.queries(), 2);
        let mut per_query: Vec<Vec<WindowResult>> = vec![Vec::new(), Vec::new()];
        for e in &events {
            pool.route(e);
        }
        pool.finish_into(&mut |q, r| per_query[q].push(r));
        for (q, rt) in [(0usize, &rt), (1usize, &rt2)] {
            let mut got = per_query[q].clone();
            WindowResult::sort(&mut got);
            assert_eq!(got, run_parallel(rt, &events, 4).results, "query {q}");
        }
    }

    #[test]
    fn batch_flush_samples_peak_below_the_64_event_stride() {
        // A burst shorter than the 64-event sampling stride must still
        // register its peak at the batch-flush boundary — sampling only
        // every 64 events under-reported sub-interval bursts.
        let (rt, events) = setup(10);
        let mut shard = Shard::new(ShardConfig {
            runtimes: vec![Arc::clone(&rt)],
            threads: 1,
            index: 0,
            slack: None,
            seeded: None,
            events: 0,
            attach_snapshots: false,
        });
        let items: Vec<Item> = events
            .iter()
            .map(|e| Item {
                event: e.clone(),
                query: 0,
                key_hash: rt.key_hash(e),
            })
            .collect();
        shard.on_batch(items);
        assert!(shard.memory() > 0);
        assert_eq!(
            shard.peak,
            shard.memory(),
            "a 10-event batch samples peak at its flush boundary"
        );
        assert_eq!(shard.events, 10, "per-shard ingest counter");
    }

    #[test]
    fn pool_surfaces_per_shard_event_counts() {
        let (rt, events) = setup(300);
        let mut pool = pool(&rt, 4, DEFAULT_BATCH_SIZE);
        for e in &events {
            pool.route(e);
        }
        let mut out = Vec::new();
        pool.finish_into(&mut |_q, r| out.push(r));
        let per_shard = pool.shard_events();
        assert_eq!(per_shard.len(), 4);
        let total: u64 = per_shard.iter().sum();
        assert_eq!(total, events.len() as u64, "every routed event counted");
        assert!(
            per_shard.iter().filter(|&&n| n > 0).count() > 1,
            "the 7-group stream spreads across shards: {per_shard:?}"
        );
        assert!(pool.key_overflow().is_none(), "no limit configured");
    }

    #[test]
    fn per_shard_reorderers_repair_bounded_disorder() {
        let (rt, ordered) = setup(120);
        // Reverse blocks of 5: disorder bounded by 5 ticks.
        let mut disordered = Vec::with_capacity(ordered.len());
        for chunk in ordered.chunks(5) {
            disordered.extend(chunk.iter().rev().cloned());
        }
        let expected = run_parallel(&rt, &ordered, 4).results;
        for batch_size in [1, 7, DEFAULT_BATCH_SIZE] {
            let mut pool = StreamingPool::new(
                vec![Arc::clone(&rt)],
                4,
                PoolConfig {
                    batch_size,
                    slack: Some(5),
                    policy: FailurePolicy::Fail,
                },
            );
            let mut out = Vec::new();
            for (i, e) in disordered.iter().enumerate() {
                pool.route(e);
                if i % 30 == 29 {
                    pool.drain_into(&mut |_q, r| out.push(r));
                }
            }
            pool.finish_into(&mut |_q, r| out.push(r));
            WindowResult::sort(&mut out);
            assert_eq!(out, expected, "batch={batch_size}");
            assert_eq!(pool.late_events(), 0, "batch={batch_size}");
        }
    }
}
