//! Parallel per-partition execution (§7/§8).
//!
//! "Equivalence predicates and the GROUP-BY clause partition the stream
//! into sub-streams that are processed in parallel independently from
//! each other. Such stream partitioning enables a highly scalable
//! execution." Events within one sub-stream are processed in time order
//! by a single worker, which is exactly the stream-transaction ordering
//! guarantee §8 requires.
//!
//! Sharding is by the *output group* (the `GROUP-BY` prefix of the
//! partition key), so every partition contributing to one result group
//! lands on the same worker and no cross-worker aggregate merging is
//! needed. A query without `GROUP-BY` falls back to a single worker
//! (there is nothing to partition results by).
//!
//! Two implementations share the same shard hash:
//! * [`run_parallel`] — the batch reference: shard a finite recorded
//!   stream, run every shard to completion under `std::thread::scope`,
//!   merge. Kept as the executable specification the streaming tests
//!   diff against.
//! * [`StreamingPool`] — live execution: long-lived worker threads fed
//!   by bounded channels, events hashed to their shard *at ingest time*,
//!   and watermark broadcasts so a drain emits every result that is
//!   globally final — even on shards whose sub-stream went quiet.

use crate::cogra::CograEngine;
use crate::engine::{run_to_completion, TrendEngine};
use crate::output::WindowResult;
use crate::runtime::QueryRuntime;
use cogra_engine::RunStats;
use cogra_events::{Event, Timestamp};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Shard index of a group-prefix hash — THE placement rule shared by the
/// batch reference ([`run_parallel`]) and the [`StreamingPool`], kept in
/// one place so the two execution modes cannot disagree.
fn shard_index(group_hash: u64, shards: usize) -> usize {
    (group_hash % shards as u64) as usize
}

/// Shard placement and the worker-side interner probe share one in-place
/// hashing pass ([`QueryRuntime::route_hashes`]): the group-prefix hash
/// decides the shard, the full-key hash rides along to the worker so
/// [`CograEngine::process_prehashed`] never re-extracts the key. `None`
/// drops the event (no partition key), consistently with every engine.
fn route_of(rt: &QueryRuntime, event: &Event, shards: usize) -> Option<(usize, u64)> {
    let (group_hash, key_hash) = rt.route_hashes(event)?;
    Some((shard_index(group_hash, shards), key_hash))
}

/// How many shards a query can use: the requested worker count, unless
/// the query has no `GROUP-BY` prefix to shard on.
fn effective_workers(rt: &QueryRuntime, requested: usize) -> usize {
    if rt.query.group_prefix == 0 {
        1
    } else {
        requested.max(1)
    }
}

/// Outcome of a parallel run.
#[derive(Debug)]
pub struct ParallelRun {
    /// All window results, merged and deterministically sorted.
    pub results: Vec<WindowResult>,
    /// Sum of the workers' peak logical memory (they run concurrently).
    pub peak_bytes: usize,
    /// Number of workers actually used.
    pub workers: usize,
}

/// Execute a compiled query over a finite stream with `workers` parallel
/// shards. Returns the same results as a single [`CograEngine`] fed the
/// whole stream (asserted by the `parallel_equals_sequential` tests).
pub fn run_parallel(rt: &Arc<QueryRuntime>, events: &[Event], workers: usize) -> ParallelRun {
    let effective = effective_workers(rt, workers);
    if effective == 1 {
        let mut engine = CograEngine::from_runtime(Arc::clone(rt));
        let (results, peak) = run_to_completion(&mut engine, events, 64);
        return ParallelRun {
            results,
            peak_bytes: peak,
            workers: 1,
        };
    }

    // Shard by the output-group prefix of the partition key — hashed in
    // place, no key materialized. Only the group hash is needed here:
    // the shard engines replay through `process`, which computes the
    // full-key hash itself exactly once.
    let mut shards: Vec<Vec<Event>> = vec![Vec::new(); effective];
    for e in events {
        let Some(group_hash) = rt.group_hash(e) else {
            continue; // dropped consistently with every engine
        };
        shards[shard_index(group_hash, effective)].push(e.clone());
    }

    let mut outputs: Vec<(Vec<WindowResult>, usize)> = Vec::with_capacity(effective);
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                let rt = Arc::clone(rt);
                scope.spawn(move || {
                    let mut engine = CograEngine::from_runtime(rt);
                    run_to_completion(&mut engine, shard, 64)
                })
            })
            .collect();
        for h in handles {
            outputs.push(h.join().expect("worker panicked"));
        }
    });

    let mut results = Vec::new();
    let mut peak = 0;
    for (r, p) in outputs {
        results.extend(r);
        peak += p;
    }
    WindowResult::sort(&mut results);
    ParallelRun {
        results,
        peak_bytes: peak,
        workers: effective,
    }
}

/// Commands the coordinator sends down a worker's bounded channel.
enum Cmd {
    /// One event of this shard's sub-stream, in global time order, with
    /// its full partition-key hash precomputed at ingest (`None`: the
    /// event's type has no partition key; the engine drops it itself).
    Event(Event, Option<u64>),
    /// Advance to the global watermark and emit everything now final.
    Drain(Timestamp),
    /// End of stream: close every open window, report, and exit.
    Finish,
}

/// A worker's answer to [`Cmd::Drain`] / [`Cmd::Finish`].
struct Reply {
    /// Results finalized since the previous drain, in deterministic
    /// (window, group) order.
    results: Vec<WindowResult>,
    /// The shard engine's current logical memory.
    memory: usize,
    /// The shard engine's peak logical memory so far (sampled every 64
    /// events plus at every drain, like the measurement harness).
    peak: usize,
    /// The shard engine's routing hot-path counters so far.
    stats: RunStats,
}

struct Worker {
    /// `None` once the pool has finished (dropping it closes the channel).
    tx: Option<SyncSender<Cmd>>,
    rx: Receiver<Reply>,
    thread: Option<JoinHandle<()>>,
    /// Mirrors of the worker's last report, so [`StreamingPool::memory_bytes`]
    /// needs no synchronous round trip.
    memory: usize,
    peak: usize,
    stats: RunStats,
}

/// A worker's channel closed before the pool finished: the worker exited
/// early, almost certainly by panicking. Join it and re-raise the original
/// payload so the root cause is not masked by a generic channel error.
fn reap(w: &mut Worker) -> ! {
    w.tx = None;
    match w.thread.take().map(JoinHandle::join) {
        Some(Err(payload)) => std::panic::resume_unwind(payload),
        _ => panic!("shard worker exited unexpectedly"),
    }
}

/// Per-event backpressure bound: a worker that falls this many events
/// behind blocks ingestion instead of buffering without limit.
const CHANNEL_CAPACITY: usize = 1024;

/// Live §8 sharded execution: one long-lived [`CograEngine`] worker
/// thread per shard, fed through bounded channels, with watermark-driven
/// result emission.
///
/// Events are hashed to their shard *at ingest time* (same group-prefix
/// hash as [`run_parallel`], so the two modes are byte-identical), each
/// worker aggregates its sub-stream independently, and
/// [`StreamingPool::drain_into`] broadcasts the global watermark before
/// collecting: every window that closed globally is emitted, even on a
/// shard whose own sub-stream went quiet. The final merged output equals
/// the batch reference — asserted by `tests/streaming_parallel_props.rs`.
pub struct StreamingPool {
    rt: Arc<QueryRuntime>,
    workers: Vec<Worker>,
    /// Global stream progress: the largest event time routed so far.
    watermark: Timestamp,
    finished: bool,
}

impl StreamingPool {
    /// Spawn `workers` shard threads for a compiled query (clamped to 1
    /// when the query has no `GROUP-BY` prefix to shard on).
    pub fn new(rt: Arc<QueryRuntime>, workers: usize) -> StreamingPool {
        let effective = effective_workers(&rt, workers);
        let workers = (0..effective)
            .map(|_| {
                let (cmd_tx, cmd_rx) = std::sync::mpsc::sync_channel(CHANNEL_CAPACITY);
                let (reply_tx, reply_rx) = std::sync::mpsc::channel();
                let rt = Arc::clone(&rt);
                let thread = std::thread::spawn(move || shard_worker(rt, cmd_rx, reply_tx));
                Worker {
                    tx: Some(cmd_tx),
                    rx: reply_rx,
                    thread: Some(thread),
                    memory: 0,
                    peak: 0,
                    stats: RunStats::default(),
                }
            })
            .collect();
        StreamingPool {
            rt,
            workers,
            watermark: Timestamp::ZERO,
            finished: false,
        }
    }

    /// Number of shards actually in use (1 for queries without `GROUP-BY`).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Global stream progress: the largest event time routed so far.
    /// Results for windows closing at or before it are final after the
    /// next [`StreamingPool::drain_into`].
    pub fn watermark(&self) -> Timestamp {
        self.watermark
    }

    /// Summed shard-engine memory, as of each worker's last drain (the
    /// engines run concurrently; there is no synchronous round trip here).
    pub fn memory_bytes(&self) -> usize {
        self.workers.iter().map(|w| w.memory).sum()
    }

    /// Summed shard-engine peaks (the workers run concurrently), as of
    /// each worker's last drain; final once the pool has finished.
    pub fn peak_bytes(&self) -> usize {
        self.workers.iter().map(|w| w.peak).sum()
    }

    /// Summed shard-engine routing counters ([`RunStats`]), as of each
    /// worker's last drain; final once the pool has finished.
    pub fn run_stats(&self) -> RunStats {
        let mut total = RunStats::default();
        for w in &self.workers {
            total.merge(w.stats);
        }
        total
    }

    /// Route one event to its shard. Blocks when the shard is
    /// [`CHANNEL_CAPACITY`] events behind (backpressure, not unbounded
    /// buffering). Events must arrive in non-decreasing time order.
    pub fn route(&mut self, event: &Event) {
        assert!(!self.finished, "streaming pool already finished");
        self.watermark = self.watermark.max(event.time);
        if let Some((shard, key_hash)) = self.shard_for(event) {
            self.send_event(shard, event.clone(), key_hash);
        }
    }

    /// Like [`StreamingPool::route`], consuming the event.
    pub fn route_owned(&mut self, event: Event) {
        assert!(!self.finished, "streaming pool already finished");
        self.watermark = self.watermark.max(event.time);
        if let Some((shard, key_hash)) = self.shard_for(&event) {
            self.send_event(shard, event, key_hash);
        }
    }

    /// The shard `event` belongs to, with its precomputed full-key hash;
    /// `None` drops it (no partition key), consistently with every engine
    /// — decided *before* any clone. The key is hashed in place, once,
    /// right here: the worker's router probes with the shipped hash.
    fn shard_for(&self, event: &Event) -> Option<(usize, Option<u64>)> {
        if self.workers.len() == 1 {
            // Single shard: the engine sees the whole stream, including
            // events without a partition key (it drops them itself,
            // exactly like a sequential run).
            return Some((0, self.rt.key_hash(event)));
        }
        let (shard, key_hash) = route_of(&self.rt, event, self.workers.len())?;
        Some((shard, Some(key_hash)))
    }

    fn send_event(&mut self, shard: usize, event: Event, key_hash: Option<u64>) {
        let w = &mut self.workers[shard];
        let tx = w.tx.as_ref().expect("pool not finished");
        if tx.send(Cmd::Event(event, key_hash)).is_err() {
            reap(w);
        }
    }

    /// Emit every result final at the global watermark, merged across
    /// shards in deterministic (window, group) order. Broadcasts the
    /// watermark first, so shards whose sub-stream went quiet still close
    /// the windows that closed globally.
    pub fn drain_into(&mut self, out: &mut dyn FnMut(WindowResult)) {
        if self.finished {
            return;
        }
        self.round_trip(Cmd::Drain(self.watermark), out);
    }

    /// End of stream: close every open window on every shard, emit the
    /// merged remainder, and join the worker threads. Further drains are
    /// no-ops; further routing is a bug (and panics).
    pub fn finish_into(&mut self, out: &mut dyn FnMut(WindowResult)) {
        if self.finished {
            return;
        }
        self.round_trip(Cmd::Finish, out);
        self.finished = true;
        for w in &mut self.workers {
            w.tx = None; // close the channel …
            if let Some(t) = w.thread.take() {
                t.join().expect("shard worker panicked"); // … and reap
            }
        }
    }

    /// Broadcast one command to every shard, then merge the replies.
    /// Command fan-out happens before any reply collection so the shards
    /// drain concurrently.
    fn round_trip(&mut self, cmd: Cmd, out: &mut dyn FnMut(WindowResult)) {
        for w in &mut self.workers {
            let c = match &cmd {
                Cmd::Drain(wm) => Cmd::Drain(*wm),
                Cmd::Finish => Cmd::Finish,
                Cmd::Event(..) => unreachable!("events are routed, not broadcast"),
            };
            let tx = w.tx.as_ref().expect("pool not finished");
            if tx.send(c).is_err() {
                reap(w);
            }
        }
        let mut merged = Vec::new();
        for w in &mut self.workers {
            let Ok(reply) = w.rx.recv() else { reap(w) };
            w.memory = reply.memory;
            w.peak = reply.peak;
            w.stats = reply.stats;
            merged.extend(reply.results);
        }
        // Shards own disjoint (window, group) result spaces, so this sort
        // is a deterministic merge — independent of the shard count.
        WindowResult::sort(&mut merged);
        for r in merged {
            out(r);
        }
    }
}

impl Drop for StreamingPool {
    fn drop(&mut self) {
        for w in &mut self.workers {
            w.tx = None; // close the channel so the worker loop exits
            if let Some(t) = w.thread.take() {
                let _ = t.join();
            }
        }
    }
}

/// One shard's worker loop: a private [`CograEngine`] over the shard's
/// sub-stream, replying to drain/finish round trips.
fn shard_worker(rt: Arc<QueryRuntime>, rx: Receiver<Cmd>, tx: Sender<Reply>) {
    let mut engine = CograEngine::from_runtime(rt);
    let mut peak = engine.memory_bytes();
    let mut since_sample = 0usize;
    for cmd in rx {
        match cmd {
            Cmd::Event(e, key_hash) => {
                // The coordinator hashed the key at ingest to place the
                // event; reuse it so the key is extracted once per event.
                engine.process_prehashed(&e, key_hash);
                since_sample += 1;
                if since_sample >= 64 {
                    peak = peak.max(engine.memory_bytes());
                    since_sample = 0;
                }
            }
            Cmd::Drain(wm) => {
                peak = peak.max(engine.memory_bytes());
                engine.advance_watermark(wm);
                let mut results = Vec::new();
                engine.drain_into(&mut |r| results.push(r));
                if tx
                    .send(Reply {
                        results,
                        memory: engine.memory_bytes(),
                        peak,
                        stats: engine.run_stats(),
                    })
                    .is_err()
                {
                    return; // coordinator dropped mid-drain
                }
            }
            Cmd::Finish => {
                peak = peak.max(engine.memory_bytes());
                let mut results = Vec::new();
                engine.finish_into(&mut |r| results.push(r));
                peak = peak.max(engine.peak_hint());
                let _ = tx.send(Reply {
                    results,
                    memory: engine.memory_bytes(),
                    peak,
                    stats: engine.run_stats(),
                });
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogra_events::{EventBuilder, TypeRegistry, Value, ValueKind};

    fn setup(n: usize) -> (Arc<QueryRuntime>, Vec<Event>) {
        let mut reg = TypeRegistry::new();
        let a = reg.register_type("A", vec![("g", ValueKind::Int), ("v", ValueKind::Int)]);
        let b = reg.register_type("B", vec![("g", ValueKind::Int), ("v", ValueKind::Int)]);
        let q = cogra_query::parse(
            "RETURN g, COUNT(*), SUM(A.v) PATTERN SEQ(A+, B) SEMANTICS ANY \
             GROUP-BY g WITHIN 16 SLIDE 8",
        )
        .unwrap();
        let rt = Arc::new(QueryRuntime::new(
            cogra_query::compile(&q, &reg).unwrap(),
            &reg,
        ));
        let mut builder = EventBuilder::new();
        let events: Vec<Event> = (0..n)
            .map(|i| {
                let ty = if i % 3 == 2 { b } else { a };
                builder.event(
                    (i + 1) as u64,
                    ty,
                    vec![Value::Int((i % 7) as i64), Value::Int((i % 5) as i64)],
                )
            })
            .collect();
        (rt, events)
    }

    #[test]
    fn parallel_equals_sequential() {
        let (rt, events) = setup(300);
        let sequential = run_parallel(&rt, &events, 1);
        for workers in [2, 4, 8] {
            let parallel = run_parallel(&rt, &events, workers);
            assert_eq!(parallel.results, sequential.results, "workers={workers}");
        }
    }

    #[test]
    fn more_workers_than_groups_is_fine() {
        let (rt, events) = setup(50);
        let run = run_parallel(&rt, &events, 64);
        assert!(!run.results.is_empty());
        assert_eq!(run.workers, 64);
    }

    #[test]
    fn no_group_by_falls_back_to_single_worker() {
        let mut reg = TypeRegistry::new();
        let a = reg.register_type("A", vec![("v", ValueKind::Int)]);
        let q = cogra_query::parse("RETURN COUNT(*) PATTERN A+ WITHIN 8 SLIDE 4").unwrap();
        let rt = Arc::new(QueryRuntime::new(
            cogra_query::compile(&q, &reg).unwrap(),
            &reg,
        ));
        let mut b = EventBuilder::new();
        let events: Vec<Event> = (0..20)
            .map(|i| b.event(i + 1, a, vec![Value::Int(i as i64)]))
            .collect();
        let run = run_parallel(&rt, &events, 8);
        assert_eq!(run.workers, 1);
        assert!(!run.results.is_empty());
    }

    #[test]
    fn streaming_pool_matches_batch_reference() {
        let (rt, events) = setup(300);
        let batch = run_parallel(&rt, &events, 1);
        for workers in [1, 2, 4, 8] {
            let mut pool = StreamingPool::new(Arc::clone(&rt), workers);
            let mut results = Vec::new();
            let mut push = |r: WindowResult| results.push(r);
            for (i, e) in events.iter().enumerate() {
                pool.route(e);
                if i % 50 == 49 {
                    pool.drain_into(&mut push);
                }
            }
            pool.finish_into(&mut push);
            WindowResult::sort(&mut results);
            assert_eq!(results, batch.results, "workers={workers}");
            assert_eq!(pool.workers(), workers);
            assert!(pool.peak_bytes() > 0, "workers={workers}");
        }
    }

    #[test]
    fn streaming_pool_drains_live_before_finish() {
        let (rt, events) = setup(300);
        let mut pool = StreamingPool::new(Arc::clone(&rt), 4);
        let mut live = Vec::new();
        for e in &events {
            pool.route(e);
        }
        pool.drain_into(&mut |r| live.push(r));
        assert!(
            !live.is_empty(),
            "closed windows are emitted before finish()"
        );
        // The window containing the watermark is still open.
        let spec = rt.query.window;
        let last_closed = spec.last_closed(pool.watermark()).unwrap();
        assert!(live.iter().all(|r| r.window <= last_closed));
        let mut rest = Vec::new();
        pool.finish_into(&mut |r| rest.push(r));
        live.extend(rest);
        WindowResult::sort(&mut live);
        assert_eq!(live, run_parallel(&rt, &events, 4).results);
    }

    #[test]
    fn quiet_shard_still_closes_global_windows() {
        // Every event goes to one group, so with many shards all but one
        // worker see an empty sub-stream — the watermark broadcast alone
        // must close their (empty) windows and the drain must still emit
        // the busy shard's finalized results.
        let mut reg = TypeRegistry::new();
        let a = reg.register_type("A", vec![("g", ValueKind::Int), ("v", ValueKind::Int)]);
        let b = reg.register_type("B", vec![("g", ValueKind::Int), ("v", ValueKind::Int)]);
        let q = cogra_query::parse(
            "RETURN g, COUNT(*) PATTERN SEQ(A+, B) SEMANTICS ANY \
             GROUP-BY g WITHIN 8 SLIDE 4",
        )
        .unwrap();
        let rt = Arc::new(QueryRuntime::new(
            cogra_query::compile(&q, &reg).unwrap(),
            &reg,
        ));
        let mut builder = EventBuilder::new();
        let events: Vec<Event> = (0..40)
            .map(|i| {
                let ty = if i % 3 == 2 { b } else { a };
                builder.event((i + 1) as u64, ty, vec![Value::Int(1), Value::Int(i)])
            })
            .collect();
        let mut pool = StreamingPool::new(Arc::clone(&rt), 8);
        let mut live = Vec::new();
        for e in &events {
            pool.route(e);
        }
        pool.drain_into(&mut |r| live.push(r));
        assert!(!live.is_empty());
        pool.finish_into(&mut |r| live.push(r));
        WindowResult::sort(&mut live);
        assert_eq!(live, run_parallel(&rt, &events, 8).results);
    }

    #[test]
    fn pool_finish_is_idempotent_and_no_group_clamps_to_one() {
        let mut reg = TypeRegistry::new();
        let a = reg.register_type("A", vec![("v", ValueKind::Int)]);
        let q = cogra_query::parse("RETURN COUNT(*) PATTERN A+ WITHIN 8 SLIDE 4").unwrap();
        let rt = Arc::new(QueryRuntime::new(
            cogra_query::compile(&q, &reg).unwrap(),
            &reg,
        ));
        let mut pool = StreamingPool::new(Arc::clone(&rt), 8);
        assert_eq!(pool.workers(), 1, "no GROUP-BY ⇒ one shard");
        let mut b = EventBuilder::new();
        for i in 0..20u64 {
            pool.route_owned(b.event(i + 1, a, vec![Value::Int(i as i64)]));
        }
        let mut out = Vec::new();
        pool.finish_into(&mut |r| out.push(r));
        assert!(!out.is_empty());
        let n = out.len();
        let mut extra = 0usize;
        pool.finish_into(&mut |_| extra += 1);
        pool.drain_into(&mut |_| extra += 1);
        assert_eq!(extra, 0, "post-finish drains emit nothing");
        assert_eq!(out.len(), n);
    }
}
