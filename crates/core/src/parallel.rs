//! Parallel per-partition execution (§7/§8).
//!
//! "Equivalence predicates and the GROUP-BY clause partition the stream
//! into sub-streams that are processed in parallel independently from
//! each other. Such stream partitioning enables a highly scalable
//! execution." Events within one sub-stream are processed in time order
//! by a single worker, which is exactly the stream-transaction ordering
//! guarantee §8 requires.
//!
//! Sharding is by the *output group* (the `GROUP-BY` prefix of the
//! partition key), so every partition contributing to one result group
//! lands on the same worker and no cross-worker aggregate merging is
//! needed. A query without `GROUP-BY` falls back to a single worker
//! (there is nothing to partition results by).

use crate::cogra::CograEngine;
use crate::engine::run_to_completion;
use crate::output::WindowResult;
use crate::runtime::QueryRuntime;
use cogra_events::Event;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Outcome of a parallel run.
#[derive(Debug)]
pub struct ParallelRun {
    /// All window results, merged and deterministically sorted.
    pub results: Vec<WindowResult>,
    /// Sum of the workers' peak logical memory (they run concurrently).
    pub peak_bytes: usize,
    /// Number of workers actually used.
    pub workers: usize,
}

/// Execute a compiled query over a finite stream with `workers` parallel
/// shards. Returns the same results as a single [`CograEngine`] fed the
/// whole stream (asserted by the `parallel_equals_sequential` tests).
pub fn run_parallel(rt: &Arc<QueryRuntime>, events: &[Event], workers: usize) -> ParallelRun {
    let workers = workers.max(1);
    let group_prefix = rt.query.group_prefix;
    let effective = if group_prefix == 0 { 1 } else { workers };
    if effective == 1 {
        let mut engine = CograEngine::from_runtime(Arc::clone(rt));
        let (results, peak) = run_to_completion(&mut engine, events, 64);
        return ParallelRun {
            results,
            peak_bytes: peak,
            workers: 1,
        };
    }

    // Shard by the output-group prefix of the partition key.
    let mut shards: Vec<Vec<Event>> = vec![Vec::new(); effective];
    for e in events {
        let Some(key) = rt.partition_key(e) else {
            continue; // dropped consistently with every engine
        };
        let mut h = DefaultHasher::new();
        key[..group_prefix].hash(&mut h);
        let shard = (h.finish() % effective as u64) as usize;
        shards[shard].push(e.clone());
    }

    let mut outputs: Vec<(Vec<WindowResult>, usize)> = Vec::with_capacity(effective);
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                let rt = Arc::clone(rt);
                scope.spawn(move || {
                    let mut engine = CograEngine::from_runtime(rt);
                    run_to_completion(&mut engine, shard, 64)
                })
            })
            .collect();
        for h in handles {
            outputs.push(h.join().expect("worker panicked"));
        }
    });

    let mut results = Vec::new();
    let mut peak = 0;
    for (r, p) in outputs {
        results.extend(r);
        peak += p;
    }
    WindowResult::sort(&mut results);
    ParallelRun {
        results,
        peak_bytes: peak,
        workers: effective,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogra_events::{EventBuilder, TypeRegistry, Value, ValueKind};

    fn setup(n: usize) -> (Arc<QueryRuntime>, Vec<Event>) {
        let mut reg = TypeRegistry::new();
        let a = reg.register_type("A", vec![("g", ValueKind::Int), ("v", ValueKind::Int)]);
        let b = reg.register_type("B", vec![("g", ValueKind::Int), ("v", ValueKind::Int)]);
        let q = cogra_query::parse(
            "RETURN g, COUNT(*), SUM(A.v) PATTERN SEQ(A+, B) SEMANTICS ANY \
             GROUP-BY g WITHIN 16 SLIDE 8",
        )
        .unwrap();
        let rt = Arc::new(QueryRuntime::new(
            cogra_query::compile(&q, &reg).unwrap(),
            &reg,
        ));
        let mut builder = EventBuilder::new();
        let events: Vec<Event> = (0..n)
            .map(|i| {
                let ty = if i % 3 == 2 { b } else { a };
                builder.event(
                    (i + 1) as u64,
                    ty,
                    vec![Value::Int((i % 7) as i64), Value::Int((i % 5) as i64)],
                )
            })
            .collect();
        (rt, events)
    }

    #[test]
    fn parallel_equals_sequential() {
        let (rt, events) = setup(300);
        let sequential = run_parallel(&rt, &events, 1);
        for workers in [2, 4, 8] {
            let parallel = run_parallel(&rt, &events, workers);
            assert_eq!(parallel.results, sequential.results, "workers={workers}");
        }
    }

    #[test]
    fn more_workers_than_groups_is_fine() {
        let (rt, events) = setup(50);
        let run = run_parallel(&rt, &events, 64);
        assert!(!run.results.is_empty());
        assert_eq!(run.workers, 64);
    }

    #[test]
    fn no_group_by_falls_back_to_single_worker() {
        let mut reg = TypeRegistry::new();
        let a = reg.register_type("A", vec![("v", ValueKind::Int)]);
        let q = cogra_query::parse("RETURN COUNT(*) PATTERN A+ WITHIN 8 SLIDE 4").unwrap();
        let rt = Arc::new(QueryRuntime::new(
            cogra_query::compile(&q, &reg).unwrap(),
            &reg,
        ));
        let mut b = EventBuilder::new();
        let events: Vec<Event> = (0..20)
            .map(|i| b.event(i + 1, a, vec![Value::Int(i as i64)]))
            .collect();
        let run = run_parallel(&rt, &events, 8);
        assert_eq!(run.workers, 1);
        assert!(!run.results.is_empty());
    }
}
