//! The COGRA runtime executor (§3, Figure 3): the [`Router`] combined with
//! the per-window aggregator each disjunct's granularity selector chose —
//! type-grained (Algorithm 1), mixed-grained (Algorithm 2) or
//! pattern-grained (Algorithm 3).

use crate::agg::Cell;
use crate::engine::TrendEngine;
use crate::mixed_grained::MixedWindow;
use crate::output::WindowResult;
use crate::pattern_grained::PatternWindow;
use crate::router::{EventBinds, Router, WindowAlgo};
use crate::runtime::QueryRuntime;
use crate::type_grained::TypeGrainedWindow;
use cogra_events::{Event, Timestamp, TypeRegistry};
use cogra_query::{compile, Granularity, Query, QueryResult};
use std::sync::Arc;

/// Per-window aggregation state of one disjunct, at its selected
/// granularity.
#[derive(Debug)]
enum GranWindow {
    Type(TypeGrainedWindow),
    Mixed(MixedWindow),
    Pattern(PatternWindow),
}

/// COGRA's per-window state: one granularity-specific aggregator per
/// disjunct.
#[derive(Debug)]
pub struct CograWindow {
    disjuncts: Vec<GranWindow>,
}

impl WindowAlgo for CograWindow {
    fn new(rt: &QueryRuntime) -> CograWindow {
        CograWindow {
            disjuncts: rt
                .disjuncts
                .iter()
                .map(|d| match d.disjunct.granularity {
                    Granularity::Type => GranWindow::Type(TypeGrainedWindow::new(d)),
                    Granularity::Mixed => GranWindow::Mixed(MixedWindow::new(d)),
                    Granularity::Pattern => GranWindow::Pattern(PatternWindow::new(d)),
                })
                .collect(),
        }
    }

    fn on_event(&mut self, rt: &QueryRuntime, event: &Event, binds: &EventBinds) {
        let semantics = rt.query.semantics;
        for ((gran, drt), (states, negs)) in self
            .disjuncts
            .iter_mut()
            .zip(&rt.disjuncts)
            .zip(&binds.per_disjunct)
        {
            match gran {
                GranWindow::Type(w) => {
                    if !negs.is_empty() {
                        w.on_negation(drt, event, negs);
                    }
                    w.on_event(drt, event, states);
                }
                GranWindow::Mixed(w) => {
                    if !negs.is_empty() {
                        w.on_negation(drt, event, negs);
                    }
                    w.on_event(drt, event, states);
                }
                GranWindow::Pattern(w) => {
                    if !negs.is_empty() {
                        w.on_negation(drt, event, negs);
                    }
                    w.on_event(drt, event, states, semantics);
                }
            }
        }
    }

    fn final_cell(&mut self, rt: &QueryRuntime) -> Cell {
        let mut cell: Option<Cell> = None;
        for (gran, drt) in self.disjuncts.iter_mut().zip(&rt.disjuncts) {
            let c = match gran {
                GranWindow::Type(w) => w.final_cell(drt),
                GranWindow::Mixed(w) => w.final_cell(drt),
                GranWindow::Pattern(w) => w.final_cell(drt),
            };
            match &mut cell {
                None => cell = Some(c),
                Some(acc) => acc.merge(&c),
            }
        }
        cell.expect("a compiled query has at least one disjunct")
    }

    fn memory_bytes(&self) -> usize {
        self.disjuncts
            .iter()
            .map(|g| match g {
                GranWindow::Type(w) => w.memory_bytes(),
                GranWindow::Mixed(w) => w.memory_bytes(),
                GranWindow::Pattern(w) => w.memory_bytes(),
            })
            .sum()
    }

    fn save(&self, _rt: &QueryRuntime, enc: &mut cogra_checkpoint::Enc) {
        enc.usize(self.disjuncts.len());
        for gran in &self.disjuncts {
            // Tag each disjunct with its granularity: the restored runtime
            // re-selects the same one, but a mismatched snapshot must fail
            // typed instead of misparsing.
            match gran {
                GranWindow::Type(w) => {
                    enc.u8(0);
                    w.save(enc);
                }
                GranWindow::Mixed(w) => {
                    enc.u8(1);
                    w.save(enc);
                }
                GranWindow::Pattern(w) => {
                    enc.u8(2);
                    w.save(enc);
                }
            }
        }
    }

    fn load(
        rt: &QueryRuntime,
        dec: &mut cogra_checkpoint::Dec,
    ) -> Result<CograWindow, cogra_checkpoint::CheckpointError> {
        let n = dec.usize()?;
        if n != rt.disjuncts.len() {
            return Err(cogra_checkpoint::CheckpointError::Corrupt(format!(
                "window has {n} disjuncts, query has {}",
                rt.disjuncts.len()
            )));
        }
        let mut disjuncts = Vec::with_capacity(n);
        for d in &rt.disjuncts {
            let tag = dec.u8()?;
            let expected = match d.disjunct.granularity {
                Granularity::Type => 0,
                Granularity::Mixed => 1,
                Granularity::Pattern => 2,
            };
            if tag != expected {
                return Err(cogra_checkpoint::CheckpointError::Corrupt(format!(
                    "disjunct granularity tag {tag} does not match the compiled plan ({expected})"
                )));
            }
            disjuncts.push(match d.disjunct.granularity {
                Granularity::Type => GranWindow::Type(TypeGrainedWindow::load(d, dec)?),
                Granularity::Mixed => GranWindow::Mixed(MixedWindow::load(d, dec)?),
                Granularity::Pattern => GranWindow::Pattern(PatternWindow::load(d, dec)?),
            });
        }
        Ok(CograWindow { disjuncts })
    }
}

/// The COGRA engine: coarse-grained online event trend aggregation — the
/// generic [`Router`] instantiated with [`CograWindow`].
pub struct CograEngine(Router<CograWindow>);

impl CograEngine {
    /// Build an engine from an already-compiled query runtime.
    pub fn from_runtime(rt: Arc<QueryRuntime>) -> CograEngine {
        CograEngine(Router::new(rt, "cogra"))
    }

    /// Compile `query` against `registry` and build an engine.
    pub fn build(query: &Query, registry: &TypeRegistry) -> QueryResult<CograEngine> {
        let compiled = compile(query, registry)?;
        let rt = QueryRuntime::new(compiled, registry);
        Ok(CograEngine::from_runtime(Arc::new(rt)))
    }

    /// Parse, compile and build in one step.
    pub fn from_text(query: &str, registry: &TypeRegistry) -> QueryResult<CograEngine> {
        let q = cogra_query::parse(query)?;
        CograEngine::build(&q, registry)
    }

    /// The query runtime (for introspection).
    pub fn runtime(&self) -> &QueryRuntime {
        self.0.runtime()
    }

    /// Ingest one event whose full-key hash the caller already computed
    /// ([`QueryRuntime::key_hash`]) — the §8 shard workers hash at ingest
    /// time for placement and hand the hash down, so the key is extracted
    /// exactly once per event. See [`Router::process_prehashed`].
    ///
    /// [`Router::process_prehashed`]: crate::router::Router::process_prehashed
    pub fn process_prehashed(&mut self, event: &Event, key_hash: Option<u64>) {
        self.0.process_prehashed(event, key_hash)
    }

    /// Snapshot the engine's mutable state (see
    /// [`Router::snapshot_state`]).
    ///
    /// [`Router::snapshot_state`]: crate::router::Router::snapshot_state
    pub fn snapshot_state(&self) -> cogra_engine::RouterState {
        self.0.snapshot_state()
    }

    /// Rebuild an engine from a saved state against the same compiled
    /// runtime (see [`Router::from_state`]).
    ///
    /// [`Router::from_state`]: crate::router::Router::from_state
    pub fn from_state(
        rt: Arc<QueryRuntime>,
        state: cogra_engine::RouterState,
    ) -> Result<CograEngine, cogra_checkpoint::CheckpointError> {
        Ok(CograEngine(Router::from_state(rt, "cogra", state)?))
    }
}

impl TrendEngine for CograEngine {
    fn process(&mut self, event: &Event) {
        self.0.process(event)
    }

    fn drain_into(&mut self, out: &mut dyn FnMut(WindowResult)) {
        self.0.drain_into(out)
    }

    fn finish_into(&mut self, out: &mut dyn FnMut(WindowResult)) {
        self.0.finish_into(out)
    }

    fn memory_bytes(&self) -> usize {
        self.0.memory_bytes()
    }

    fn peak_hint(&self) -> usize {
        self.0.peak_hint()
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn watermark(&self) -> Timestamp {
        self.0.watermark()
    }

    fn advance_watermark(&mut self, to: Timestamp) {
        self.0.advance_watermark(to)
    }

    fn run_stats(&self) -> cogra_engine::RunStats {
        self.0.run_stats()
    }

    fn key_overflow(&self) -> Option<u32> {
        self.0.key_overflow()
    }

    fn save_state(
        &self,
        enc: &mut cogra_checkpoint::Enc,
    ) -> Result<(), cogra_checkpoint::CheckpointError> {
        self.0.save_state(enc)
    }
}
