//! # cogra-core
//!
//! The COGRA runtime executor (§3–§8 of the paper): coarse-grained online
//! event trend aggregation, plus the unified [`Session`] facade over every
//! engine in the workspace.
//!
//! * [`type_grained`] — Algorithm 1 (ANY, no adjacent predicates): one
//!   aggregate per event type, O(n·l) time, Θ(l) space;
//! * [`mixed_grained`] — Algorithm 2 (ANY with adjacent predicates):
//!   aggregates per type for `Tt`, per stored event for `Te`;
//! * [`pattern_grained`] — Algorithm 3 (NEXT/CONT): only the last matched
//!   event and the final aggregate, O(n) time, O(1) space;
//! * [`cogra`] — the [`CograEngine`] router: partitioning (§7), sliding
//!   windows, per-disjunct dispatch, result finalization;
//! * [`parallel`] — per-partition parallel execution (§8): the batch
//!   reference [`run_parallel`] and the live [`StreamingPool`] shard
//!   router (worker threads + bounded channels + watermark broadcasts);
//! * [`session`] — the [`Session`] pipeline: typed [`EngineKind`] roster
//!   over COGRA and all baselines, builder-style configuration (slack,
//!   workers, multi-query), push-based [`ResultSink`] emission.
//!
//! The engine substrate ([`agg`], [`engine`], [`output`], [`router`],
//! [`runtime`]) lives in the `cogra-engine` crate and is re-exported here
//! under its historical paths.

#![warn(missing_docs)]

pub mod cogra;
pub mod mixed_grained;
pub mod parallel;
pub mod pattern_grained;
pub mod session;
pub mod type_grained;

// Substrate re-exports: `cogra_core::agg`, `cogra_core::runtime`, ... keep
// working even though the modules moved to `cogra-engine`.
pub use cogra_engine::{agg, engine, output, router, runtime};

pub use cogra::{CograEngine, CograWindow};
pub use cogra_checkpoint::CheckpointError;
pub use cogra_engine::{
    run_to_completion, AggLayout, AggValue, Cell, DisjunctRuntime, EngineConfig, EventBinds, Feed,
    GroupKey, KeyInterner, Output, PartitionId, QueryRuntime, Router, RunStats, SlotFunc,
    TrendEngine, Val, WindowAlgo, WindowResult,
};
pub use parallel::{
    run_parallel, FailurePolicy, ParallelRun, PoolConfig, StreamingPool, WorkerFailure,
    DEFAULT_BATCH_SIZE,
};
pub use session::{
    EngineKind, IngestError, ResultSink, Session, SessionBuilder, SessionError, SessionRun,
    SharedPlan, TaggedResult,
};
