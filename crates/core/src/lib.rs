//! # cogra-core
//!
//! The COGRA runtime executor (§3–§8 of the paper): coarse-grained online
//! event trend aggregation.
//!
//! * [`agg`] — incremental aggregate cells implementing the Table 8
//!   recurrences for COUNT(*)/COUNT(E)/MIN/MAX/SUM/AVG;
//! * [`type_grained`] — Algorithm 1 (ANY, no adjacent predicates): one
//!   aggregate per event type, O(n·l) time, Θ(l) space;
//! * [`mixed_grained`] — Algorithm 2 (ANY with adjacent predicates):
//!   aggregates per type for `Tt`, per stored event for `Te`;
//! * [`pattern_grained`] — Algorithm 3 (NEXT/CONT): only the last matched
//!   event and the final aggregate, O(n) time, O(1) space;
//! * [`cogra`] — the [`CograEngine`] router: partitioning (§7), sliding
//!   windows, per-disjunct dispatch, result finalization;
//! * [`engine`] — the [`TrendEngine`] trait shared with the baselines;
//! * [`parallel`] — per-partition parallel execution (§8).

#![warn(missing_docs)]

pub mod agg;
pub mod cogra;
pub mod engine;
pub mod mixed_grained;
pub mod multi;
pub mod output;
pub mod parallel;
pub mod pattern_grained;
pub mod router;
pub mod runtime;
pub mod type_grained;

pub use agg::{AggLayout, AggValue, Cell, Feed, Output, SlotFunc, Val};
pub use cogra::{CograEngine, CograWindow};
pub use router::{EventBinds, Router, WindowAlgo};
pub use engine::{run_to_completion, TrendEngine};
pub use multi::{MultiEngine, TaggedResult};
pub use output::{GroupKey, WindowResult};
pub use parallel::{run_parallel, ParallelRun};
pub use runtime::{DisjunctRuntime, QueryRuntime};
