//! Type-Grained Aggregator (§4, Algorithm 1).
//!
//! Under skip-till-any-match without predicates on adjacent events, every
//! previously matched event of a predecessor type of `E` is adjacent to a
//! new event `e` of type `E`. One aggregate [`Cell`] per state therefore
//! suffices (Theorem 4.1):
//!
//! ```text
//! e.count = Σ_{E' ∈ P.predTypes(E)} E'.count   (+1 if E = start(P))
//! E.count += e.count
//! final count = end(P).count
//! ```
//!
//! Time: O(n·l); space: Θ(l) — both optimal (Theorems 4.2, 4.3).
//!
//! Two refinements beyond the paper's pseudo-code:
//!
//! * **Stream transactions** (§8): events sharing a time stamp are
//!   temporally incomparable, so one must not count another as
//!   predecessor. Updates are staged in `pending` and committed when the
//!   window sees a later time stamp.
//! * **Negated sub-patterns** (§8): each negation-tagged transition keeps
//!   a *shadow cell* mirroring its source state's cell but reset whenever
//!   the negated type matches — "aggregates of predecessor types are
//!   marked invalid to contribute to the following types". Contributions
//!   along a tagged edge read the shadow instead of the type cell.

use crate::agg::Cell;
use crate::runtime::DisjunctRuntime;
use cogra_events::{Event, Timestamp};
use cogra_query::{NegId, StateId};

/// Per-window type-grained aggregation state.
#[derive(Debug)]
pub struct TypeGrainedWindow {
    /// Committed per-state cells (`E.count` etc. of Theorem 4.1).
    cells: Vec<Cell>,
    /// Shadow cells, one per negation-tagged transition
    /// (`DisjunctRuntime::neg_edges` order).
    shadows: Vec<Cell>,
    /// Updates of the open stream transaction.
    pending: Vec<(StateId, Cell)>,
    /// Negations matched in the open transaction.
    pending_negs: Vec<NegId>,
    /// Time stamp of the open transaction.
    pending_time: Timestamp,
}

impl TypeGrainedWindow {
    /// Fresh window state.
    pub fn new(rt: &DisjunctRuntime) -> TypeGrainedWindow {
        let zero = rt.zero_cell();
        TypeGrainedWindow {
            cells: vec![zero.clone(); rt.disjunct.automaton.num_states()],
            shadows: vec![zero; rt.neg_edges.len()],
            pending: Vec::new(),
            pending_negs: Vec::new(),
            pending_time: Timestamp::ZERO,
        }
    }

    fn commit(&mut self, rt: &DisjunctRuntime) {
        // 1. Shadow resets first: a negation match at time t invalidates
        // contributions committed strictly before t; the transaction's own
        // events (same t) are merged afterwards and stay valid.
        if !self.pending_negs.is_empty() {
            for (shadow, edge) in self.shadows.iter_mut().zip(&rt.neg_edges) {
                if edge.negations.iter().any(|n| self.pending_negs.contains(n)) {
                    shadow.reset();
                }
            }
            self.pending_negs.clear();
        }
        // 2. Merge the transaction's event cells.
        for (state, cell) in self.pending.drain(..) {
            self.cells[state.index()].merge(&cell);
            for (shadow, edge) in self.shadows.iter_mut().zip(&rt.neg_edges) {
                if edge.from == state {
                    shadow.merge(&cell);
                }
            }
        }
    }

    fn commit_if_past(&mut self, rt: &DisjunctRuntime, t: Timestamp) {
        if t > self.pending_time {
            self.commit(rt);
            self.pending_time = t;
        }
    }

    /// Process an event bound to `binds` (type matched, locals passed).
    pub fn on_event(&mut self, rt: &DisjunctRuntime, event: &Event, binds: &[StateId]) {
        self.commit_if_past(rt, event.time);
        for &s in binds {
            let mut cell = rt.zero_cell();
            if rt.is_start(s) {
                cell.start_trend();
            }
            for src in &rt.pred_sources[s.index()] {
                let source_cell = match src.neg_edge {
                    Some(i) => &self.shadows[i],
                    None => &self.cells[src.from.index()],
                };
                cell.merge(source_cell);
            }
            if cell.is_zero() {
                continue; // no trend ends at this event (see agg.rs docs)
            }
            cell.contribute(rt.feeds.of(s), event);
            self.pending.push((s, cell));
        }
    }

    /// Record negation matches at the event's time.
    pub fn on_negation(&mut self, rt: &DisjunctRuntime, event: &Event, negs: &[NegId]) {
        self.commit_if_past(rt, event.time);
        self.pending_negs.extend_from_slice(negs);
    }

    /// Final aggregate of the window: the end state's cell (Theorem 4.1).
    pub fn final_cell(&mut self, rt: &DisjunctRuntime) -> Cell {
        self.commit(rt);
        self.cells[rt.end().index()].clone()
    }

    /// Serialize the full window state (inverse of
    /// [`TypeGrainedWindow::load`]).
    pub fn save(&self, enc: &mut cogra_checkpoint::Enc) {
        Cell::save_slice(&self.cells, enc);
        Cell::save_slice(&self.shadows, enc);
        enc.usize(self.pending.len());
        for (s, c) in &self.pending {
            enc.u32(s.0);
            c.save(enc);
        }
        enc.usize(self.pending_negs.len());
        for n in &self.pending_negs {
            enc.u32(n.0);
        }
        enc.u64(self.pending_time.ticks());
    }

    /// Rebuild a window from bytes produced by [`TypeGrainedWindow::save`]
    /// against the same disjunct runtime.
    pub fn load(
        rt: &DisjunctRuntime,
        dec: &mut cogra_checkpoint::Dec,
    ) -> Result<TypeGrainedWindow, cogra_checkpoint::CheckpointError> {
        let cells = Cell::load_vec(dec)?;
        if cells.len() != rt.disjunct.automaton.num_states() {
            return Err(cogra_checkpoint::CheckpointError::Corrupt(format!(
                "type-grained window has {} cells for a {}-state automaton",
                cells.len(),
                rt.disjunct.automaton.num_states()
            )));
        }
        let shadows = Cell::load_vec(dec)?;
        if shadows.len() != rt.neg_edges.len() {
            return Err(cogra_checkpoint::CheckpointError::Corrupt(format!(
                "type-grained window has {} shadows for {} negation edges",
                shadows.len(),
                rt.neg_edges.len()
            )));
        }
        let n_pending = dec.usize()?;
        let mut pending = Vec::with_capacity(n_pending.min(1024));
        for _ in 0..n_pending {
            let s = StateId(dec.u32()?);
            pending.push((s, Cell::load(dec)?));
        }
        let n_negs = dec.usize()?;
        let mut pending_negs = Vec::with_capacity(n_negs.min(1024));
        for _ in 0..n_negs {
            pending_negs.push(NegId(dec.u32()?));
        }
        let pending_time = Timestamp(dec.u64()?);
        Ok(TypeGrainedWindow {
            cells,
            shadows,
            pending,
            pending_negs,
            pending_time,
        })
    }

    /// Logical footprint: Θ(l) cells plus shadows and open transaction.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.cells.iter().map(Cell::memory_bytes).sum::<usize>()
            + self.shadows.iter().map(Cell::memory_bytes).sum::<usize>()
            + self
                .pending
                .iter()
                .map(|(_, c)| c.memory_bytes() + std::mem::size_of::<StateId>())
                .sum::<usize>()
    }
}
