//! Multi-query execution.
//!
//! §9.1 measures throughput as "the average number of events processed by
//! all queries per second" — a workload of queries over one stream.
//! [`MultiEngine`] fans each event out to any number of engines and tags
//! their results with the originating query, giving applications (and the
//! harness) a single ingestion point for a query workload.

use crate::engine::TrendEngine;
use crate::output::WindowResult;
use cogra_events::{Event, Timestamp};

/// A window result tagged with the query that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedResult {
    /// Index of the query in the [`MultiEngine`].
    pub query: usize,
    /// The result.
    pub result: WindowResult,
}

/// Several engines fed from one stream.
pub struct MultiEngine {
    engines: Vec<Box<dyn TrendEngine>>,
}

impl MultiEngine {
    /// Build from a set of engines (one per query; they may be different
    /// engine kinds).
    pub fn new(engines: Vec<Box<dyn TrendEngine>>) -> MultiEngine {
        MultiEngine { engines }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// Ingest one event into every query.
    pub fn process(&mut self, event: &Event) {
        for e in &mut self.engines {
            e.process(event);
        }
    }

    /// Collect finalized results from every query.
    pub fn drain(&mut self) -> Vec<TaggedResult> {
        self.collect(|e| e.drain())
    }

    /// End of stream: finalize every open window of every query.
    pub fn finish(&mut self) -> Vec<TaggedResult> {
        self.collect(|e| e.finish())
    }

    fn collect(
        &mut self,
        mut f: impl FnMut(&mut dyn TrendEngine) -> Vec<WindowResult>,
    ) -> Vec<TaggedResult> {
        let mut out = Vec::new();
        for (i, e) in self.engines.iter_mut().enumerate() {
            out.extend(f(e.as_mut()).into_iter().map(|result| TaggedResult {
                query: i,
                result,
            }));
        }
        out
    }

    /// Sum of the engines' logical footprints.
    pub fn memory_bytes(&self) -> usize {
        self.engines.iter().map(|e| e.memory_bytes()).sum()
    }

    /// The minimum watermark across queries (results before it are final
    /// everywhere).
    pub fn watermark(&self) -> Timestamp {
        self.engines
            .iter()
            .map(|e| e.watermark())
            .min()
            .unwrap_or(Timestamp::ZERO)
    }

    /// Access one engine (e.g. for its name).
    pub fn engine(&self, i: usize) -> &dyn TrendEngine {
        self.engines[i].as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cogra::CograEngine;
    use cogra_events::{EventBuilder, TypeRegistry, Value, ValueKind};

    fn setup() -> (TypeRegistry, Vec<Event>) {
        let mut reg = TypeRegistry::new();
        let a = reg.register_type("A", vec![("v", ValueKind::Int)]);
        let b = reg.register_type("B", vec![("v", ValueKind::Int)]);
        let mut builder = EventBuilder::new();
        let events = (0..30)
            .map(|i| {
                builder.event(
                    i + 1,
                    if i % 3 == 2 { b } else { a },
                    vec![Value::Int(i as i64)],
                )
            })
            .collect();
        (reg, events)
    }

    #[test]
    fn fan_out_matches_individual_runs() {
        let (reg, events) = setup();
        let q1 = "RETURN COUNT(*) PATTERN A+ SEMANTICS ANY WITHIN 10 SLIDE 5";
        let q2 = "RETURN COUNT(*) PATTERN SEQ(A+, B) SEMANTICS NEXT WITHIN 10 SLIDE 5";
        let mut multi = MultiEngine::new(vec![
            Box::new(CograEngine::from_text(q1, &reg).unwrap()),
            Box::new(CograEngine::from_text(q2, &reg).unwrap()),
        ]);
        let mut tagged = Vec::new();
        for e in &events {
            multi.process(e);
            tagged.extend(multi.drain());
        }
        tagged.extend(multi.finish());

        for (i, q) in [q1, q2].iter().enumerate() {
            let mut single = CograEngine::from_text(q, &reg).unwrap();
            let (expected, _) = crate::engine::run_to_completion(&mut single, &events, 64);
            let mut got: Vec<WindowResult> = tagged
                .iter()
                .filter(|t| t.query == i)
                .map(|t| t.result.clone())
                .collect();
            WindowResult::sort(&mut got);
            assert_eq!(got, expected, "query {i}");
        }
    }

    #[test]
    fn memory_is_sum_and_watermark_is_min() {
        let (reg, events) = setup();
        let q = "RETURN COUNT(*) PATTERN A+ SEMANTICS ANY WITHIN 10 SLIDE 5";
        let mut multi = MultiEngine::new(vec![
            Box::new(CograEngine::from_text(q, &reg).unwrap()),
            Box::new(CograEngine::from_text(q, &reg).unwrap()),
        ]);
        for e in &events[..5] {
            multi.process(e);
        }
        let single_mem = {
            let mut s = CograEngine::from_text(q, &reg).unwrap();
            for e in &events[..5] {
                s.process(e);
            }
            s.memory_bytes()
        };
        assert_eq!(multi.memory_bytes(), 2 * single_mem);
        assert_eq!(multi.watermark(), Timestamp(5));
        assert_eq!(multi.len(), 2);
        assert!(!multi.is_empty());
        assert_eq!(multi.engine(0).name(), "cogra");
    }

    #[test]
    fn empty_workload_is_inert() {
        let (_, events) = setup();
        let mut multi = MultiEngine::new(vec![]);
        multi.process(&events[0]);
        assert!(multi.drain().is_empty());
        assert!(multi.finish().is_empty());
        assert_eq!(multi.watermark(), Timestamp::ZERO);
    }
}
