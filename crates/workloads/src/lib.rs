//! # cogra-workloads
//!
//! Synthetic workload generators reproducing the data sets of the COGRA
//! evaluation (§9.1), deterministic under a seed:
//!
//! * [`stock`] — 19 companies / 10 sectors stock ticks (stand-in for the
//!   EODData feed), with exact selectivity control for Figure 9;
//! * [`activity`] — 14-person physical-activity heart-rate reports
//!   (stand-in for PAMAP2), driving the contiguous-semantics experiments;
//! * [`transport`] — 30 passengers / 100 stations public-transportation
//!   trips, exactly as the paper describes its synthetic generator;
//! * [`rideshare`] — Uber-style Accept/(Call Cancel)+/Finish sessions for
//!   query q2 and the skip-till-next-match experiments.
//!
//! See DESIGN.md ("Substitutions") for the real-data-to-synthetic mapping.
//!
//! On top of the paper's (friendly) workloads, an **adversarial** layer
//! stresses what production would (ROADMAP direction 5):
//!
//! * [`skew`] — power-law key skew: a few hot users absorb most traffic,
//!   exposing shard imbalance in the group-prefix hash;
//! * [`churn`] — unbounded session-id-like keys growing the interner
//!   linearly with stream length;
//! * [`burst`] — flash-crowd arrival with deep time-stamp disorder,
//!   stressing reorder-buffer sizing and the late-drop policy;
//! * [`fraud`] — rare long pattern matches over a mostly-noise stream.

#![warn(missing_docs)]

pub mod activity;
pub mod burst;
pub mod churn;
pub mod fraud;
pub mod rideshare;
pub mod skew;
pub mod stock;
pub mod transport;

pub use activity::ActivityConfig;
pub use burst::BurstConfig;
pub use churn::ChurnConfig;
pub use fraud::FraudConfig;
pub use rideshare::RideshareConfig;
pub use skew::SkewConfig;
pub use stock::StockConfig;
pub use transport::TransportConfig;
