//! # cogra-workloads
//!
//! Synthetic workload generators reproducing the data sets of the COGRA
//! evaluation (§9.1), deterministic under a seed:
//!
//! * [`stock`] — 19 companies / 10 sectors stock ticks (stand-in for the
//!   EODData feed), with exact selectivity control for Figure 9;
//! * [`activity`] — 14-person physical-activity heart-rate reports
//!   (stand-in for PAMAP2), driving the contiguous-semantics experiments;
//! * [`transport`] — 30 passengers / 100 stations public-transportation
//!   trips, exactly as the paper describes its synthetic generator;
//! * [`rideshare`] — Uber-style Accept/(Call Cancel)+/Finish sessions for
//!   query q2 and the skip-till-next-match experiments.
//!
//! See DESIGN.md ("Substitutions") for the real-data-to-synthetic mapping.

#![warn(missing_docs)]

pub mod activity;
pub mod rideshare;
pub mod stock;
pub mod transport;

pub use activity::ActivityConfig;
pub use rideshare::RideshareConfig;
pub use stock::StockConfig;
pub use transport::TransportConfig;
