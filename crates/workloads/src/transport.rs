//! Public-transportation workload (§9.1: "our stream generator creates
//! trips for 30 passengers using public transportation services in a city
//! with 100 stations. Each event carries a time stamp in seconds,
//! passenger identifier, station identifier, and waiting time in seconds.
//! Waiting durations are generated uniformly at random").

use cogra_events::{Event, EventBuilder, TypeRegistry, Value, ValueKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the transportation stream.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Number of passengers — this is the number of trend groups the
    /// Figure 10 experiment sweeps (30 by default, as in the paper).
    pub passengers: usize,
    /// Number of stations (100 in the paper).
    pub stations: usize,
    /// Number of events to generate.
    pub events: usize,
    /// Upper bound of the uniformly random waiting time in seconds.
    pub max_wait: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            passengers: 30,
            stations: 100,
            events: 10_000,
            max_wait: 600,
            seed: 23,
        }
    }
}

/// Register the `Trip` event type.
pub fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    r.register_type(
        "Trip",
        vec![
            ("passenger", ValueKind::Int),
            ("station", ValueKind::Int),
            ("wait", ValueKind::Int),
        ],
    );
    r
}

/// Generate the stream: passengers drawn uniformly per tick, stations and
/// waiting times uniformly at random.
pub fn generate(cfg: &TransportConfig) -> Vec<Event> {
    assert!(cfg.passengers > 0 && cfg.stations > 0 && cfg.max_wait > 0);
    let reg = registry();
    let ty = reg.id_of("Trip").expect("registered above");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = EventBuilder::new();
    (0..cfg.events)
        .map(|i| {
            b.event(
                (i + 1) as u64,
                ty,
                vec![
                    Value::Int(rng.random_range(0..cfg.passengers) as i64),
                    Value::Int(rng.random_range(0..cfg.stations) as i64),
                    Value::Int(rng.random_range(1..=cfg.max_wait)),
                ],
            )
        })
        .collect()
}

/// Figure 6 query: per passenger, count trips whose waiting times keep
/// growing, skipping irrelevant events (skip-till-next-match).
pub fn next_query(within: u64, slide: u64) -> String {
    format!(
        "RETURN passenger, COUNT(*) \
         PATTERN Trip T+ \
         SEMANTICS skip-till-next-match \
         WHERE [passenger] AND T.wait < NEXT(T).wait \
         GROUP-BY passenger \
         WITHIN {within} SLIDE {slide}"
    )
}

/// Figure 10 query: trend count per passenger under skip-till-any-match;
/// the number of groups is swept via [`TransportConfig::passengers`].
pub fn grouping_query(within: u64, slide: u64) -> String {
    format!(
        "RETURN passenger, COUNT(*) \
         PATTERN Trip T+ \
         SEMANTICS skip-till-any-match \
         WHERE [passenger] \
         GROUP-BY passenger \
         WITHIN {within} SLIDE {slide}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogra_events::validate_ordered;

    #[test]
    fn deterministic_and_ordered() {
        let cfg = TransportConfig {
            events: 400,
            ..Default::default()
        };
        assert_eq!(generate(&cfg), generate(&cfg));
        assert!(validate_ordered(&generate(&cfg)).is_ok());
    }

    #[test]
    fn all_passengers_appear() {
        let cfg = TransportConfig {
            passengers: 10,
            events: 2_000,
            ..Default::default()
        };
        let reg = registry();
        let passenger = reg
            .schema(reg.id_of("Trip").unwrap())
            .attr("passenger")
            .unwrap();
        let distinct: std::collections::HashSet<i64> = generate(&cfg)
            .iter()
            .map(|e| e.attr(passenger).as_i64().unwrap())
            .collect();
        assert_eq!(distinct.len(), 10);
    }

    #[test]
    fn waits_are_bounded() {
        let cfg = TransportConfig {
            events: 1_000,
            max_wait: 60,
            ..Default::default()
        };
        let reg = registry();
        let wait = reg.schema(reg.id_of("Trip").unwrap()).attr("wait").unwrap();
        for e in generate(&cfg) {
            let w = e.attr(wait).as_i64().unwrap();
            assert!((1..=60).contains(&w));
        }
    }

    #[test]
    fn queries_parse_and_compile() {
        let reg = registry();
        for (q, want) in [
            (next_query(600, 30), cogra_query::Granularity::Pattern),
            (grouping_query(600, 30), cogra_query::Granularity::Type),
        ] {
            let parsed = cogra_query::parse(&q).unwrap();
            let compiled = cogra_query::compile(&parsed, &reg).unwrap();
            assert_eq!(compiled.granularity(), want);
        }
    }
}
