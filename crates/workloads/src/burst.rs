//! Adversarial workload: flash-crowd bursts with deep disorder (ROADMAP
//! direction 5).
//!
//! A quiet baseline click stream punctuated by flash crowds: during a
//! burst, many events land on the same few ticks *and* arrive with their
//! time stamps scattered backwards by up to `disorder` ticks — far deeper
//! than the shallow jitter the friendly workloads apply. The stream is
//! returned in **arrival order**, not time order: it is input for
//! `.slack(n)` sessions and stresses `ReorderBuffer` depth and the
//! `LateGate` drop rule (events displaced beyond the configured slack are
//! *supposed* to be dropped, identically on every worker count).

use cogra_events::{Event, EventBuilder, TypeRegistry, Value, ValueKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the bursty click stream.
#[derive(Debug, Clone)]
pub struct BurstConfig {
    /// Number of distinct pages (the group key).
    pub pages: usize,
    /// Events per burst; between bursts the stream idles at one event
    /// per tick.
    pub burst_len: usize,
    /// Baseline events between two bursts.
    pub quiet_len: usize,
    /// Maximum backwards time-stamp displacement during a burst, in
    /// ticks. Baseline events are displaced by at most 1.
    pub disorder: u64,
    /// Number of events to generate.
    pub events: usize,
    /// RNG seed — streams are fully deterministic.
    pub seed: u64,
}

impl Default for BurstConfig {
    fn default() -> Self {
        BurstConfig {
            pages: 12,
            burst_len: 64,
            quiet_len: 48,
            disorder: 24,
            events: 10_000,
            seed: 7,
        }
    }
}

/// Register the `Click` event type.
pub fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    r.register_type(
        "Click",
        vec![("page", ValueKind::Int), ("user", ValueKind::Int)],
    );
    r
}

/// Generate the stream in arrival order. The underlying timeline always
/// advances; arrival time stamps are the timeline minus a random
/// displacement (≤ 1 in quiet stretches, ≤ `disorder` inside a burst),
/// clamped to stay positive.
pub fn generate(cfg: &BurstConfig) -> Vec<Event> {
    assert!(cfg.pages > 0 && cfg.burst_len > 0 && cfg.quiet_len > 0);
    let reg = registry();
    let click = reg.id_of("Click").expect("registered above");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = EventBuilder::new();
    let mut out = Vec::with_capacity(cfg.events);
    let period = cfg.burst_len + cfg.quiet_len;
    let mut timeline = cfg.disorder + 1;
    let mut emitted = 0usize;
    while emitted < cfg.events {
        let in_burst = emitted % period < cfg.burst_len;
        if in_burst {
            // Flash crowd: ~4 events per tick, hammering one hot page,
            // time stamps scattered deep into the past.
            timeline += u64::from(emitted.is_multiple_of(4));
            let hot = (emitted / period) % cfg.pages;
            let page = if rng.random::<f64>() < 0.7 {
                hot
            } else {
                rng.random_range(0..cfg.pages)
            };
            let shift = rng.random_range(0..=cfg.disorder);
            out.push(b.event(
                timeline.saturating_sub(shift).max(1),
                click,
                vec![
                    Value::Int(page as i64),
                    Value::Int(rng.random_range(0..10_000)),
                ],
            ));
        } else {
            // Quiet baseline: one event per tick, near-ordered.
            timeline += 1;
            let shift = rng.random_range(0..=1u64);
            out.push(b.event(
                timeline.saturating_sub(shift).max(1),
                click,
                vec![
                    Value::Int(rng.random_range(0..cfg.pages) as i64),
                    Value::Int(rng.random_range(0..10_000)),
                ],
            ));
        }
        emitted += 1;
    }
    out
}

/// Per-page click-run count over sliding windows.
pub fn count_query(within: u64, slide: u64) -> String {
    format!(
        "RETURN page, COUNT(*) \
         PATTERN Click C+ \
         SEMANTICS skip-till-any-match \
         GROUP-BY page \
         WITHIN {within} SLIDE {slide}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let cfg = BurstConfig {
            events: 500,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn disorder_is_deep_but_bounded() {
        let cfg = BurstConfig {
            events: 4_000,
            disorder: 24,
            ..Default::default()
        };
        let events = generate(&cfg);
        // Displacement of each event vs. the running watermark.
        let mut watermark = 0u64;
        let mut deepest = 0u64;
        for e in &events {
            let t = e.time.ticks();
            deepest = deepest.max(watermark.saturating_sub(t));
            watermark = watermark.max(t);
        }
        assert!(
            deepest > cfg.disorder / 2,
            "deepest displacement {deepest} — bursts are not deep"
        );
        assert!(
            deepest <= cfg.disorder,
            "displacement {deepest} exceeds the configured bound {}",
            cfg.disorder
        );
    }

    #[test]
    fn bursts_concentrate_arrivals() {
        let cfg = BurstConfig {
            events: 4_000,
            ..Default::default()
        };
        let events = generate(&cfg);
        // Events per distinct tick: a burst packs ~4 events per tick, the
        // baseline exactly 1 — so the mean must sit clearly above 1.
        let distinct: std::collections::HashSet<u64> =
            events.iter().map(|e| e.time.ticks()).collect();
        let per_tick = events.len() as f64 / distinct.len() as f64;
        assert!(per_tick > 1.5, "mean {per_tick} events/tick — no crowding");
    }

    #[test]
    fn queries_parse_and_compile() {
        let reg = registry();
        let q = count_query(100, 50);
        let parsed = cogra_query::parse(&q).unwrap();
        cogra_query::compile(&parsed, &reg).unwrap();
    }
}
