//! Adversarial workload: power-law key skew (ROADMAP direction 5).
//!
//! Models a social-graph feed after the LDBC SIGMOD 2014 contest analysis
//! (PAPERS.md): post activity per user follows a Zipf distribution, so a
//! handful of hot users absorb most of the traffic. Under the group-prefix
//! shard hash every event of one user lands on one shard — a hot key is a
//! hot *shard*, and the per-shard ingest counters this PR surfaces make
//! the imbalance observable instead of silent.
//!
//! Sampling is exact inverse-CDF Zipf: the cumulative weights
//! `1/rank^alpha` are tabulated once over the key universe and each draw
//! binary-searches them, so the empirical frequency of rank `r` converges
//! to `r^-alpha / H` with no approximation error beyond sampling noise.

use cogra_events::{Event, EventBuilder, TypeRegistry, Value, ValueKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the skewed social stream.
#[derive(Debug, Clone)]
pub struct SkewConfig {
    /// Size of the key universe (distinct users).
    pub universe: usize,
    /// Zipf exponent: 0 = uniform, 1 ≈ classic web skew, larger = hotter.
    pub alpha: f64,
    /// Number of events to generate.
    pub events: usize,
    /// RNG seed — streams are fully deterministic.
    pub seed: u64,
}

impl Default for SkewConfig {
    fn default() -> Self {
        SkewConfig {
            universe: 1_000,
            alpha: 1.1,
            events: 10_000,
            seed: 7,
        }
    }
}

/// Register the `Post` event type.
pub fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    r.register_type(
        "Post",
        vec![
            ("user", ValueKind::Int),
            ("topic", ValueKind::Int),
            ("len", ValueKind::Int),
        ],
    );
    r
}

/// The tabulated inverse CDF of `P(rank = r) ∝ r^-alpha` over
/// `1..=universe`, as cumulative probabilities in `[0, 1]`.
fn zipf_cdf(universe: usize, alpha: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(universe);
    let mut acc = 0.0;
    for rank in 1..=universe {
        acc += (rank as f64).powf(-alpha);
        cdf.push(acc);
    }
    let total = acc;
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

/// Generate the stream: one event per tick, users drawn Zipf(alpha) so
/// user 0 is the hottest key, user 1 the next, and so on.
pub fn generate(cfg: &SkewConfig) -> Vec<Event> {
    assert!(cfg.universe > 0);
    assert!(cfg.alpha >= 0.0);
    let reg = registry();
    let post = reg.id_of("Post").expect("registered above");
    let cdf = zipf_cdf(cfg.universe, cfg.alpha);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = EventBuilder::new();
    let mut out = Vec::with_capacity(cfg.events);
    for i in 0..cfg.events {
        let u: f64 = rng.random::<f64>();
        let user = cdf.partition_point(|&c| c < u).min(cfg.universe - 1);
        out.push(b.event(
            (i + 1) as u64,
            post,
            vec![
                Value::Int(user as i64),
                Value::Int(rng.random_range(0..50)),
                Value::Int(rng.random_range(1..280)),
            ],
        ));
    }
    out
}

/// Per-user post-run count — the hot keys dominate every window.
pub fn count_query(within: u64, slide: u64) -> String {
    format!(
        "RETURN user, COUNT(*) \
         PATTERN Post P+ \
         SEMANTICS skip-till-any-match \
         GROUP-BY user \
         WITHIN {within} SLIDE {slide}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogra_events::validate_ordered;

    fn user_counts(events: &[Event]) -> Vec<usize> {
        let reg = registry();
        let user = reg.schema(reg.id_of("Post").unwrap()).attr("user").unwrap();
        let mut counts = vec![0usize; 1_000];
        for e in events {
            counts[e.attr(user).as_i64().unwrap() as usize] += 1;
        }
        counts
    }

    #[test]
    fn stream_is_deterministic_and_ordered() {
        let cfg = SkewConfig {
            events: 500,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        assert!(validate_ordered(&a).is_ok());
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn key_frequency_follows_the_power_law() {
        let cfg = SkewConfig {
            events: 40_000,
            universe: 1_000,
            alpha: 1.1,
            seed: 42,
        };
        let counts = user_counts(&generate(&cfg));
        // The hottest key takes far more than its uniform share…
        let uniform = cfg.events / cfg.universe;
        assert!(
            counts[0] > 50 * uniform,
            "rank-1 key got {} of {} events — not skewed",
            counts[0],
            cfg.events
        );
        // …and ranks decay: the top key beats rank 10 beats rank 100.
        assert!(counts[0] > 2 * counts[9], "{} vs {}", counts[0], counts[9]);
        assert!(
            counts[9] > 2 * counts[99],
            "{} vs {}",
            counts[9],
            counts[99]
        );
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let cfg = SkewConfig {
            events: 40_000,
            universe: 100,
            alpha: 0.0,
            seed: 11,
        };
        let counts = user_counts(&generate(&cfg));
        let uniform = cfg.events as f64 / cfg.universe as f64;
        for (user, &c) in counts.iter().take(cfg.universe).enumerate() {
            assert!(
                (c as f64) > 0.5 * uniform && (c as f64) < 1.5 * uniform,
                "user {user}: {c} events vs uniform {uniform}"
            );
        }
    }

    #[test]
    fn queries_parse_and_compile() {
        let reg = registry();
        let q = count_query(100, 50);
        let parsed = cogra_query::parse(&q).unwrap();
        cogra_query::compile(&parsed, &reg).unwrap();
    }
}
