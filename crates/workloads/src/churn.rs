//! Adversarial workload: unbounded key churn (ROADMAP direction 5).
//!
//! Session-id-like group keys: a bounded set of sessions is live at any
//! moment, but each session dies after a fixed lifetime and is replaced by
//! a *fresh* id that has never been seen before. The distinct-key count
//! grows linearly with stream length, so the [`KeyInterner`] grows without
//! bound unless something sheds dead keys — exactly the stress the
//! snapshot-time compaction (PR 6) and the interner key-limit guard
//! (this PR) exist for.
//!
//! [`KeyInterner`]: cogra_engine::intern::KeyInterner

use cogra_events::{Event, EventBuilder, TypeRegistry, Value, ValueKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the churning request stream.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Number of sessions live at any instant.
    pub concurrent: usize,
    /// Events a session receives before it is retired and replaced by a
    /// fresh id.
    pub lifetime: usize,
    /// Number of events to generate.
    pub events: usize,
    /// RNG seed — streams are fully deterministic.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            concurrent: 16,
            lifetime: 8,
            events: 10_000,
            seed: 7,
        }
    }
}

/// Register the `Request` event type.
pub fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    r.register_type(
        "Request",
        vec![("session", ValueKind::Int), ("status", ValueKind::Int)],
    );
    r
}

/// Generate the stream: each event goes to a random live session; a
/// session that has received `lifetime` events retires and its slot is
/// taken by the next fresh id — ids are never reused.
pub fn generate(cfg: &ChurnConfig) -> Vec<Event> {
    assert!(cfg.concurrent > 0 && cfg.lifetime > 0);
    let reg = registry();
    let request = reg.id_of("Request").expect("registered above");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut next_id = cfg.concurrent as i64;
    // (session id, events remaining before retirement) per live slot.
    let mut live: Vec<(i64, usize)> = (0..cfg.concurrent as i64)
        .map(|id| (id, cfg.lifetime))
        .collect();
    let mut b = EventBuilder::new();
    let mut out = Vec::with_capacity(cfg.events);
    for i in 0..cfg.events {
        let slot = rng.random_range(0..live.len());
        let (session, remaining) = &mut live[slot];
        let id = *session;
        *remaining -= 1;
        if *remaining == 0 {
            *session = next_id;
            *remaining = cfg.lifetime;
            next_id += 1;
        }
        out.push(b.event(
            (i + 1) as u64,
            request,
            vec![Value::Int(id), Value::Int(rng.random_range(0..3))],
        ));
    }
    out
}

/// Per-session request-run count — every fresh session id is a fresh
/// partition key.
pub fn count_query(within: u64, slide: u64) -> String {
    format!(
        "RETURN session, COUNT(*) \
         PATTERN Request R+ \
         SEMANTICS skip-till-any-match \
         GROUP-BY session \
         WITHIN {within} SLIDE {slide}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogra_events::validate_ordered;
    use std::collections::HashSet;

    #[test]
    fn stream_is_deterministic_and_ordered() {
        let cfg = ChurnConfig {
            events: 500,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        assert!(validate_ordered(&a).is_ok());
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn distinct_keys_grow_linearly_with_stream_length() {
        let reg = registry();
        let session = reg
            .schema(reg.id_of("Request").unwrap())
            .attr("session")
            .unwrap();
        let distinct = |events: usize| -> usize {
            let cfg = ChurnConfig {
                events,
                seed: 3,
                ..Default::default()
            };
            generate(&cfg)
                .iter()
                .map(|e| e.attr(session).as_i64().unwrap())
                .collect::<HashSet<i64>>()
                .len()
        };
        let short = distinct(2_000);
        let long = distinct(20_000);
        // lifetime 8 ⇒ roughly one fresh key per 8 events, forever.
        assert!(short > 2_000 / 10, "only {short} keys in 2k events");
        assert!(
            long > 8 * short,
            "churn flattened out: {long} keys at 20k vs {short} at 2k"
        );
    }

    #[test]
    fn session_ids_are_fresh_and_contiguous() {
        let cfg = ChurnConfig {
            events: 5_000,
            ..Default::default()
        };
        let reg = registry();
        let session = reg
            .schema(reg.id_of("Request").unwrap())
            .attr("session")
            .unwrap();
        // Ids are handed out sequentially and never reused, so the seen
        // id space is dense up to the live tail.
        let mut seen = HashSet::new();
        for e in generate(&cfg) {
            seen.insert(e.attr(session).as_i64().unwrap());
        }
        // An allocated-but-unseen id is still occupying its live slot, so
        // at most `concurrent` ids can be missing from the seen set.
        let max = *seen.iter().max().unwrap();
        assert!(
            seen.len() as i64 >= max + 1 - cfg.concurrent as i64,
            "id space has holes beyond the live tail — an id was reused"
        );
    }

    #[test]
    fn queries_parse_and_compile() {
        let reg = registry();
        let q = count_query(100, 50);
        let parsed = cogra_query::parse(&q).unwrap();
        cogra_query::compile(&parsed, &reg).unwrap();
    }
}
