//! Stock-market workload (§9.1: "stock real data set \[3\] contains 225k
//! transaction records of 19 companies in 10 sectors").
//!
//! This synthetic generator stands in for the EODData historical feed the
//! paper replays (see DESIGN.md, substitutions). It reproduces the
//! characteristics the evaluation depends on: 19 companies spread over 10
//! sectors, per-company price random walks with a configurable down-tick
//! probability (query q3 detects down-trends), and a pair of auxiliary
//! attributes (`sel`, `gate`) that give the Figure 9 experiment *exact*
//! control over the selectivity of a predicate on adjacent events:
//! `sel ~ U[0,100]` on the predecessor and `gate` distributed such that
//! `P(sel <= gate) = selectivity` for independent pairs.

use cogra_events::{Event, EventBuilder, TypeRegistry, Value, ValueKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the stock stream.
#[derive(Debug, Clone)]
pub struct StockConfig {
    /// Number of companies (the paper's data set has 19).
    pub companies: usize,
    /// Number of sectors (the paper's data set has 10).
    pub sectors: usize,
    /// Number of events to generate.
    pub events: usize,
    /// Probability that a price tick moves down (q3 matches down-trends).
    pub down_prob: f64,
    /// Target selectivity of the `A.sel <= NEXT(A).gate` predicate on
    /// adjacent events, in `[0, 1]` (Figure 9 sweeps 10%–90%).
    pub selectivity: f64,
    /// RNG seed — streams are fully deterministic.
    pub seed: u64,
}

impl Default for StockConfig {
    fn default() -> Self {
        StockConfig {
            companies: 19,
            sectors: 10,
            events: 10_000,
            down_prob: 0.5,
            selectivity: 0.5,
            seed: 7,
        }
    }
}

/// Register the `Stock` event type.
pub fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    r.register_type(
        "Stock",
        vec![
            ("company", ValueKind::Int),
            ("sector", ValueKind::Int),
            ("price", ValueKind::Float),
            ("volume", ValueKind::Int),
            ("sel", ValueKind::Float),
            ("gate", ValueKind::Float),
        ],
    );
    r
}

/// Generate the stream: one event per tick, companies drawn uniformly,
/// sector = company % sectors (fixed mapping, as in the real feed where a
/// company's sector never changes).
pub fn generate(cfg: &StockConfig) -> Vec<Event> {
    assert!(cfg.companies > 0 && cfg.sectors > 0);
    assert!((0.0..=1.0).contains(&cfg.selectivity));
    let reg = registry();
    let stock = reg.id_of("Stock").expect("registered above");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut prices: Vec<f64> = (0..cfg.companies)
        .map(|_| rng.random_range(50.0..150.0))
        .collect();
    let mut b = EventBuilder::new();
    let mut out = Vec::with_capacity(cfg.events);
    for i in 0..cfg.events {
        let company = rng.random_range(0..cfg.companies);
        let sector = company % cfg.sectors;
        let step: f64 = rng.random_range(0.01..1.0);
        if rng.random::<f64>() < cfg.down_prob {
            prices[company] = (prices[company] - step).max(1.0);
        } else {
            prices[company] += step;
        }
        let sel: f64 = rng.random_range(0.0..100.0);
        let gate = gate_sample(&mut rng, cfg.selectivity);
        out.push(b.event(
            (i + 1) as u64,
            stock,
            vec![
                Value::Int(company as i64),
                Value::Int(sector as i64),
                Value::Float(prices[company]),
                Value::Int(rng.random_range(1..1_000)),
                Value::Float(sel),
                Value::Float(gate),
            ],
        ));
    }
    out
}

/// Draw `gate` such that `P(U[0,100] <= gate) = selectivity` exactly:
/// for σ ≤ 0.5, `gate ~ U[0, 200σ]`; for σ > 0.5, `gate ~ U[200σ−100, 100]`.
fn gate_sample(rng: &mut StdRng, selectivity: f64) -> f64 {
    if selectivity <= 0.5 {
        rng.random_range(0.0..=(200.0 * selectivity).max(f64::MIN_POSITIVE))
    } else {
        rng.random_range((200.0 * selectivity - 100.0)..=100.0)
    }
}

/// Query q3 (§1), adapted to the partitioning note in DESIGN.md: trends
/// are grouped per company (19 groups, as §9.1 reports), sector is echoed
/// through the company key.
pub fn q3_query(within: u64, slide: u64) -> String {
    format!(
        "RETURN company, COUNT(*), AVG(B.price) \
         PATTERN SEQ(Stock A+, Stock B+) \
         SEMANTICS skip-till-any-match \
         WHERE [company] AND A.price > NEXT(A).price \
         GROUP-BY company \
         WITHIN {within} SLIDE {slide}"
    )
}

/// q3 without the predicate on adjacent events — the default Figure 7/8
/// configuration (§9.1: "since A-Seq does not support arbitrary
/// predicates on adjacent events, we evaluate our queries without such
/// predicates by default").
pub fn q3_query_no_adjacent(within: u64, slide: u64) -> String {
    format!(
        "RETURN company, COUNT(*) \
         PATTERN SEQ(Stock A+, Stock B+) \
         SEMANTICS skip-till-any-match \
         WHERE [company] \
         GROUP-BY company \
         WITHIN {within} SLIDE {slide}"
    )
}

/// The Figure 9 query: selectivity-calibrated predicate on adjacent
/// events (`A.sel <= NEXT(A).gate` holds with exactly the configured
/// probability for independent event pairs).
pub fn selectivity_query(within: u64, slide: u64) -> String {
    format!(
        "RETURN company, COUNT(*) \
         PATTERN SEQ(Stock A+, Stock B+) \
         SEMANTICS skip-till-any-match \
         WHERE [company] AND A.sel <= NEXT(A).gate \
         GROUP-BY company \
         WITHIN {within} SLIDE {slide}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogra_events::validate_ordered;

    #[test]
    fn stream_is_deterministic_and_ordered() {
        let cfg = StockConfig {
            events: 500,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        assert!(validate_ordered(&a).is_ok());
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn sectors_are_stable_per_company() {
        let cfg = StockConfig {
            events: 1_000,
            ..Default::default()
        };
        let reg = registry();
        let schema = reg.schema(reg.id_of("Stock").unwrap());
        let company = schema.attr("company").unwrap();
        let sector = schema.attr("sector").unwrap();
        let mut seen = std::collections::HashMap::new();
        for e in generate(&cfg) {
            let c = e.attr(company).as_i64().unwrap();
            let s = e.attr(sector).as_i64().unwrap();
            let prev = seen.insert(c, s);
            assert!(prev.is_none_or(|p| p == s), "company changed sector");
        }
    }

    #[test]
    fn selectivity_is_calibrated() {
        for target in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let cfg = StockConfig {
                events: 20_000,
                selectivity: target,
                seed: 42,
                ..Default::default()
            };
            let reg = registry();
            let schema = reg.schema(reg.id_of("Stock").unwrap());
            let sel = schema.attr("sel").unwrap();
            let gate = schema.attr("gate").unwrap();
            let events = generate(&cfg);
            // Empirical selectivity over independent (shifted) pairs.
            let mut hits = 0usize;
            let mut total = 0usize;
            for pair in events.windows(2) {
                let s = pair[0].attr(sel).as_f64().unwrap();
                let g = pair[1].attr(gate).as_f64().unwrap();
                total += 1;
                if s <= g {
                    hits += 1;
                }
            }
            let measured = hits as f64 / total as f64;
            assert!(
                (measured - target).abs() < 0.02,
                "target {target}, measured {measured}"
            );
        }
    }

    #[test]
    fn prices_stay_positive() {
        let cfg = StockConfig {
            events: 5_000,
            down_prob: 0.95,
            ..Default::default()
        };
        let reg = registry();
        let price = reg
            .schema(reg.id_of("Stock").unwrap())
            .attr("price")
            .unwrap();
        for e in generate(&cfg) {
            assert!(e.attr(price).as_f64().unwrap() >= 1.0);
        }
    }

    #[test]
    fn queries_parse_and_compile() {
        let reg = registry();
        for q in [
            q3_query(600, 10),
            q3_query_no_adjacent(600, 10),
            selectivity_query(600, 10),
        ] {
            let parsed = cogra_query::parse(&q).unwrap();
            cogra_query::compile(&parsed, &reg).unwrap();
        }
    }
}
