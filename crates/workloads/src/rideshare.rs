//! Ridesharing workload (§1, query q2): Uber-style trip sessions.
//!
//! "Each trip starts with a single Accept event, any number of Call and
//! Cancel events, followed by a single Finish event. ... The
//! skip-till-next-match semantics allows query q2 to skip irrelevant
//! events such as in-transit, drop-off, etc."
//!
//! The generator interleaves per-driver sessions: Accept, a random number
//! of (Call, Cancel) pairs, irrelevant InTransit/DropOff noise (exercising
//! the NEXT skip behaviour), and Finish.

use cogra_events::{Event, EventBuilder, TypeRegistry, Value, ValueKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the ridesharing stream.
#[derive(Debug, Clone)]
pub struct RideshareConfig {
    /// Number of drivers (trend groups).
    pub drivers: usize,
    /// Number of events to generate (approximate; sessions complete).
    pub events: usize,
    /// Maximum number of (Call, Cancel) rounds per trip.
    pub max_rounds: usize,
    /// Probability of an irrelevant noise event between session steps.
    pub noise_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RideshareConfig {
    fn default() -> Self {
        RideshareConfig {
            drivers: 20,
            events: 10_000,
            max_rounds: 4,
            noise_prob: 0.3,
            seed: 31,
        }
    }
}

/// Event type names, in registration order.
pub const TYPES: [&str; 6] = ["Accept", "Call", "Cancel", "Finish", "InTransit", "DropOff"];

/// Register the six ridesharing event types (all carry the driver id, so
/// the `[driver]` equivalence predicate partitions every event — noise
/// included, which matters under contiguous semantics).
pub fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    for t in TYPES {
        r.register_type(
            t,
            vec![("driver", ValueKind::Int), ("rider", ValueKind::Int)],
        );
    }
    r
}

/// Per-driver session progress.
enum Step {
    Accept,
    Round { remaining: usize, call_next: bool },
    Finish,
}

/// Generate the stream: at each tick a random driver advances its
/// session, possibly emitting noise instead.
pub fn generate(cfg: &RideshareConfig) -> Vec<Event> {
    assert!(cfg.drivers > 0);
    let reg = registry();
    let ids: Vec<_> = TYPES.iter().map(|t| reg.id_of(t).unwrap()).collect();
    let (accept, call, cancel, finish, in_transit, drop_off) =
        (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut steps: Vec<Step> = (0..cfg.drivers).map(|_| Step::Accept).collect();
    let mut b = EventBuilder::new();
    let mut out = Vec::with_capacity(cfg.events);
    for i in 0..cfg.events {
        let d = rng.random_range(0..cfg.drivers);
        let t = (i + 1) as u64;
        let rider = rng.random_range(0..1_000);
        let attrs = vec![Value::Int(d as i64), Value::Int(rider)];
        if rng.random::<f64>() < cfg.noise_prob {
            let noise = if rng.random::<bool>() {
                in_transit
            } else {
                drop_off
            };
            out.push(b.event(t, noise, attrs));
            continue;
        }
        let (ty, next) = match steps[d] {
            Step::Accept => (
                accept,
                Step::Round {
                    remaining: rng.random_range(0..=cfg.max_rounds),
                    call_next: true,
                },
            ),
            Step::Round { remaining: 0, .. } => (finish, Step::Finish),
            Step::Round {
                remaining,
                call_next: true,
            } => (
                call,
                Step::Round {
                    remaining,
                    call_next: false,
                },
            ),
            Step::Round {
                remaining,
                call_next: false,
            } => (
                cancel,
                Step::Round {
                    remaining: remaining - 1,
                    call_next: true,
                },
            ),
            Step::Finish => (
                accept,
                Step::Round {
                    remaining: rng.random_range(0..=cfg.max_rounds),
                    call_next: true,
                },
            ),
        };
        steps[d] = next;
        out.push(b.event(t, ty, attrs));
    }
    out
}

/// Query q2 (§1): count completed pool trips with cancellations per
/// driver under skip-till-next-match.
pub fn q2_query(within: u64, slide: u64) -> String {
    format!(
        "RETURN driver, COUNT(*) \
         PATTERN SEQ(Accept, (SEQ(Call, Cancel))+, Finish) \
         SEMANTICS skip-till-next-match \
         WHERE [driver] \
         GROUP-BY driver \
         WITHIN {within} SLIDE {slide}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogra_core::{run_to_completion, AggValue, CograEngine};
    use cogra_events::validate_ordered;

    #[test]
    fn deterministic_and_ordered() {
        let cfg = RideshareConfig {
            events: 500,
            ..Default::default()
        };
        assert_eq!(generate(&cfg), generate(&cfg));
        assert!(validate_ordered(&generate(&cfg)).is_ok());
    }

    #[test]
    fn sessions_follow_protocol_per_driver() {
        // Filtering one driver's non-noise events must yield the regular
        // language (Accept (Call Cancel)* Finish)*.
        let cfg = RideshareConfig {
            drivers: 3,
            events: 2_000,
            ..Default::default()
        };
        let reg = registry();
        let driver_attr = reg
            .schema(reg.id_of("Accept").unwrap())
            .attr("driver")
            .unwrap();
        let accept = reg.id_of("Accept").unwrap();
        let call = reg.id_of("Call").unwrap();
        let cancel = reg.id_of("Cancel").unwrap();
        let finish = reg.id_of("Finish").unwrap();
        for d in 0..3i64 {
            let mut expect_call = false;
            let mut in_session = false;
            for e in generate(&cfg) {
                if e.attr(driver_attr).as_i64() != Some(d) {
                    continue;
                }
                if e.type_id == accept {
                    assert!(!in_session, "Accept inside a session");
                    in_session = true;
                    expect_call = true;
                } else if e.type_id == call {
                    assert!(in_session && expect_call);
                    expect_call = false;
                } else if e.type_id == cancel {
                    assert!(in_session && !expect_call);
                    expect_call = true;
                } else if e.type_id == finish {
                    assert!(in_session && expect_call, "Finish mid-round");
                    in_session = false;
                }
            }
        }
    }

    #[test]
    fn q2_counts_trips() {
        let cfg = RideshareConfig {
            drivers: 5,
            events: 3_000,
            ..Default::default()
        };
        let reg = registry();
        let mut engine = CograEngine::from_text(&q2_query(600, 600), &reg).unwrap();
        let (results, _) = run_to_completion(&mut engine, &generate(&cfg), usize::MAX);
        assert!(!results.is_empty());
        let total: u64 = results
            .iter()
            .map(|r| match r.values[0] {
                AggValue::Count(c) => c,
                _ => 0,
            })
            .sum();
        assert!(total > 0, "expected completed trips with cancellations");
    }

    #[test]
    fn query_is_pattern_grained() {
        let reg = registry();
        let parsed = cogra_query::parse(&q2_query(600, 30)).unwrap();
        let compiled = cogra_query::compile(&parsed, &reg).unwrap();
        assert_eq!(compiled.granularity(), cogra_query::Granularity::Pattern);
    }
}
