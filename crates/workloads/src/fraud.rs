//! Adversarial workload: rare long pattern matches over noise (ROADMAP
//! direction 5).
//!
//! A fraud-detection stream: almost every event is an innocent `Probe`
//! transaction on a random account that never completes the pattern. A
//! rare fraud episode picks one account, runs a *long* chain of probes on
//! it and ends in a `Cashout` — only then does `SEQ(Probe A+, Cashout B)`
//! close a match, and the Kleene prefix it closes over is long. This is
//! the inverse of the friendly workloads: selectivity near zero, match
//! size large, so per-window state is dominated by trends that mostly
//! never pay off.

use cogra_events::{Event, EventBuilder, TypeRegistry, Value, ValueKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the fraud stream.
#[derive(Debug, Clone)]
pub struct FraudConfig {
    /// Number of distinct accounts (the group key).
    pub accounts: usize,
    /// Probability per event slot that a fraud episode starts.
    pub fraud_rate: f64,
    /// Probes in one fraud chain before its cashout.
    pub chain_len: usize,
    /// Number of events to generate.
    pub events: usize,
    /// RNG seed — streams are fully deterministic.
    pub seed: u64,
}

impl Default for FraudConfig {
    fn default() -> Self {
        FraudConfig {
            accounts: 50,
            fraud_rate: 0.002,
            chain_len: 24,
            events: 10_000,
            seed: 7,
        }
    }
}

/// Register the `Probe` and `Cashout` event types.
pub fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    for t in ["Probe", "Cashout"] {
        r.register_type(
            t,
            vec![("account", ValueKind::Int), ("amount", ValueKind::Int)],
        );
    }
    r
}

/// Generate the stream: one event per tick. Noise probes go to random
/// accounts; when a fraud episode fires, the next `chain_len` slots are
/// probes on one account followed by its `Cashout`.
pub fn generate(cfg: &FraudConfig) -> Vec<Event> {
    assert!(cfg.accounts > 0 && cfg.chain_len > 0);
    assert!((0.0..=1.0).contains(&cfg.fraud_rate));
    let reg = registry();
    let probe = reg.id_of("Probe").expect("registered above");
    let cashout = reg.id_of("Cashout").expect("registered above");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = EventBuilder::new();
    let mut out = Vec::with_capacity(cfg.events);
    // (account, probes still to emit) of the active episode, if any.
    let mut episode: Option<(i64, usize)> = None;
    for i in 0..cfg.events {
        let t = (i + 1) as u64;
        match episode.take() {
            Some((account, 0)) => {
                out.push(b.event(
                    t,
                    cashout,
                    vec![
                        Value::Int(account),
                        Value::Int(rng.random_range(5_000..50_000)),
                    ],
                ));
            }
            Some((account, left)) => {
                out.push(b.event(
                    t,
                    probe,
                    vec![Value::Int(account), Value::Int(rng.random_range(1..50))],
                ));
                episode = Some((account, left - 1));
            }
            None => {
                if rng.random::<f64>() < cfg.fraud_rate {
                    episode = Some((rng.random_range(0..cfg.accounts) as i64, cfg.chain_len));
                }
                out.push(b.event(
                    t,
                    probe,
                    vec![
                        Value::Int(rng.random_range(0..cfg.accounts) as i64),
                        Value::Int(rng.random_range(1..50)),
                    ],
                ));
            }
        }
    }
    out
}

/// The detection query: a probe run on one account ending in its cashout.
pub fn detect_query(within: u64, slide: u64) -> String {
    format!(
        "RETURN account, COUNT(*) \
         PATTERN SEQ(Probe A+, Cashout B) \
         SEMANTICS skip-till-any-match \
         WHERE [account] \
         GROUP-BY account \
         WITHIN {within} SLIDE {slide}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogra_events::validate_ordered;

    #[test]
    fn stream_is_deterministic_and_ordered() {
        let cfg = FraudConfig {
            events: 500,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        assert!(validate_ordered(&a).is_ok());
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn matches_are_rare_and_chains_are_long() {
        let cfg = FraudConfig {
            events: 50_000,
            ..Default::default()
        };
        let reg = registry();
        let cashout = reg.id_of("Cashout").unwrap();
        let account = reg.schema(cashout).attr("account").unwrap();
        let events = generate(&cfg);
        let cashouts: Vec<&Event> = events.iter().filter(|e| e.type_id == cashout).collect();
        // Rare: well under 1% of the stream completes the pattern…
        assert!(!cashouts.is_empty(), "no fraud episode fired at all");
        assert!(
            cashouts.len() * 100 < events.len(),
            "{} cashouts in {} events — fraud is not rare",
            cashouts.len(),
            events.len()
        );
        // …and long: each cashout is preceded by its full probe chain on
        // the same account, back to back.
        let probe = reg.id_of("Probe").unwrap();
        for c in &cashouts {
            let pos = events.iter().position(|e| e.id == c.id).unwrap();
            let acct = c.attr(account).as_i64().unwrap();
            for back in 1..=cfg.chain_len {
                let p = &events[pos - back];
                assert_eq!(p.type_id, probe);
                assert_eq!(p.attr(account).as_i64().unwrap(), acct);
            }
        }
    }

    #[test]
    fn queries_parse_and_compile() {
        let reg = registry();
        let q = detect_query(100, 50);
        let parsed = cogra_query::parse(&q).unwrap();
        cogra_query::compile(&parsed, &reg).unwrap();
    }
}
