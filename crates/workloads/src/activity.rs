//! Physical-activity-monitoring workload (§9.1: "physical activity
//! monitoring real data set \[34\] contains physical activity reports for
//! 14 people ... 18 activities are considered. A report carries time
//! stamp in seconds, person identifier, activity identifier, and heart
//! rate").
//!
//! Synthetic stand-in for the PAMAP2 recording (DESIGN.md,
//! substitutions): each person cycles through activity episodes; during
//! *passive* episodes the heart rate performs a biased random walk whose
//! up-step probability controls how long the contiguously-increasing runs
//! are that query q1 detects under the contiguous semantics.

use cogra_events::{Event, EventBuilder, TypeRegistry, Value, ValueKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the activity stream.
#[derive(Debug, Clone)]
pub struct ActivityConfig {
    /// Number of monitored people (14 in the paper's data set).
    pub persons: usize,
    /// Number of distinct activities (18 in the paper's data set); the
    /// first `passive_activities` of them count as passive.
    pub activities: usize,
    /// How many of the activities are passive (reading, watching TV, ...).
    pub passive_activities: usize,
    /// Number of events to generate.
    pub events: usize,
    /// Probability that a passive-phase heart-rate step goes up — longer
    /// increasing runs make more/longer q1 trends.
    pub up_prob: f64,
    /// Mean activity episode length in reports.
    pub episode_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ActivityConfig {
    fn default() -> Self {
        ActivityConfig {
            persons: 14,
            activities: 18,
            passive_activities: 6,
            events: 10_000,
            up_prob: 0.6,
            episode_len: 40,
            seed: 11,
        }
    }
}

/// Register the `Measurement` event type.
pub fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    r.register_type(
        "Measurement",
        vec![
            ("patient", ValueKind::Int),
            ("activity", ValueKind::Str),
            ("rate", ValueKind::Int),
        ],
    );
    r
}

/// Activity label: `passive` for passive episodes, `active<i>` otherwise.
fn activity_label(cfg: &ActivityConfig, activity: usize) -> Value {
    if activity < cfg.passive_activities {
        Value::str("passive")
    } else {
        Value::str(format!("active{activity}"))
    }
}

/// Per-person monitoring state.
struct Person {
    activity: usize,
    remaining: usize,
    rate: i64,
}

/// Generate the stream: round-robin over persons (every person reports at
/// a steady cadence, like the body-worn sensors in PAMAP2).
pub fn generate(cfg: &ActivityConfig) -> Vec<Event> {
    assert!(cfg.persons > 0 && cfg.activities > 0);
    assert!(cfg.passive_activities <= cfg.activities);
    let reg = registry();
    let ty = reg.id_of("Measurement").expect("registered above");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut persons: Vec<Person> = (0..cfg.persons)
        .map(|_| Person {
            activity: rng.random_range(0..cfg.activities),
            remaining: rng.random_range(1..=cfg.episode_len.max(1)),
            rate: rng.random_range(55..85),
        })
        .collect();
    let mut b = EventBuilder::new();
    let mut out = Vec::with_capacity(cfg.events);
    for i in 0..cfg.events {
        let pid = i % cfg.persons;
        let p = &mut persons[pid];
        if p.remaining == 0 {
            p.activity = rng.random_range(0..cfg.activities);
            p.remaining = rng.random_range(1..=cfg.episode_len.max(1));
        }
        p.remaining -= 1;
        let passive = p.activity < cfg.passive_activities;
        let step = rng.random_range(1..4);
        // Passive phases follow the biased walk; active phases jump
        // around more (exercise), breaking monotone runs.
        let up = if passive {
            rng.random::<f64>() < cfg.up_prob
        } else {
            rng.random::<f64>() < 0.5
        };
        let magnitude = if passive { step } else { step * 4 };
        p.rate = (p.rate + if up { magnitude } else { -magnitude }).clamp(40, 200);
        out.push(b.event(
            (i + 1) as u64,
            ty,
            vec![
                Value::Int(pid as i64),
                activity_label(cfg, p.activity),
                Value::Int(p.rate),
            ],
        ));
    }
    out
}

/// Query q1 (§1): min/max heart rate of contiguously increasing runs
/// during passive activities, per patient.
pub fn q1_query(within: u64, slide: u64) -> String {
    format!(
        "RETURN patient, MIN(M.rate), MAX(M.rate) \
         PATTERN Measurement M+ \
         SEMANTICS contiguous \
         WHERE [patient] AND M.rate < NEXT(M).rate AND M.activity = passive \
         GROUP-BY patient \
         WITHIN {within} SLIDE {slide}"
    )
}

/// Figure 5 variant: trend count of contiguous increasing runs (COUNT is
/// the aggregate the paper's latency plots use throughout).
pub fn contiguous_count_query(within: u64, slide: u64) -> String {
    format!(
        "RETURN patient, COUNT(*) \
         PATTERN Measurement M+ \
         SEMANTICS contiguous \
         WHERE [patient] AND M.rate < NEXT(M).rate AND M.activity = passive \
         GROUP-BY patient \
         WITHIN {within} SLIDE {slide}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogra_events::validate_ordered;

    #[test]
    fn deterministic_and_ordered() {
        let cfg = ActivityConfig {
            events: 300,
            ..Default::default()
        };
        assert_eq!(generate(&cfg), generate(&cfg));
        assert!(validate_ordered(&generate(&cfg)).is_ok());
    }

    #[test]
    fn rates_stay_in_physiological_range() {
        let cfg = ActivityConfig {
            events: 2_000,
            ..Default::default()
        };
        let reg = registry();
        let rate = reg
            .schema(reg.id_of("Measurement").unwrap())
            .attr("rate")
            .unwrap();
        for e in generate(&cfg) {
            let r = e.attr(rate).as_i64().unwrap();
            assert!((40..=200).contains(&r));
        }
    }

    #[test]
    fn passive_share_reflects_config() {
        let cfg = ActivityConfig {
            events: 5_000,
            passive_activities: 9, // half of 18
            ..Default::default()
        };
        let reg = registry();
        let activity = reg
            .schema(reg.id_of("Measurement").unwrap())
            .attr("activity")
            .unwrap();
        let passive = generate(&cfg)
            .iter()
            .filter(|e| e.attr(activity).as_str() == Some("passive"))
            .count();
        let share = passive as f64 / 5_000.0;
        assert!((0.3..0.7).contains(&share), "share {share}");
    }

    #[test]
    fn q1_matches_exist() {
        use cogra_core::{run_to_completion, CograEngine};
        let cfg = ActivityConfig {
            events: 3_000,
            up_prob: 0.7,
            ..Default::default()
        };
        let reg = registry();
        let events = generate(&cfg);
        let mut engine = CograEngine::from_text(&q1_query(600, 300), &reg).unwrap();
        let (results, _) = run_to_completion(&mut engine, &events, usize::MAX);
        assert!(!results.is_empty(), "expected q1 trends in the stream");
    }

    #[test]
    fn queries_parse_and_compile() {
        let reg = registry();
        for q in [q1_query(600, 30), contiguous_count_query(600, 30)] {
            let parsed = cogra_query::parse(&q).unwrap();
            let compiled = cogra_query::compile(&parsed, &reg).unwrap();
            assert_eq!(compiled.granularity(), cogra_query::Granularity::Pattern);
        }
    }
}
