//! Property tests on the Pattern Analyzer: structural invariants of the
//! FSA translation (§3.1) over randomly generated core patterns.

use cogra_events::{TypeRegistry, ValueKind};
use cogra_query::{Automaton, PatternExpr};
use proptest::prelude::*;
use std::collections::HashSet;

fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    for t in ["T0", "T1", "T2"] {
        r.register_type(t, vec![("v", ValueKind::Int)]);
    }
    r
}

/// Random *core* pattern (leaf / SEQ / +) with unique variable names.
fn arb_core_pattern() -> impl Strategy<Value = PatternExpr> {
    // Generate a shape, then assign distinct variables in a post-pass.
    let leaf = (0u8..3).prop_map(|t| PatternExpr::leaf(&format!("T{t}")));
    leaf.prop_recursive(3, 10, 3, |inner| {
        prop_oneof![
            3 => proptest::collection::vec(inner.clone(), 2..4).prop_map(PatternExpr::Seq),
            2 => inner.prop_map(PatternExpr::plus),
        ]
    })
    .prop_map(|p| uniquify(p, &mut 0))
}

/// Rename leaves to `V<n>` (keeping their event types) so variables are
/// unique, as the automaton requires.
fn uniquify(p: PatternExpr, counter: &mut u32) -> PatternExpr {
    match p {
        PatternExpr::Leaf(l) => {
            let var = format!("V{counter}");
            *counter += 1;
            PatternExpr::Leaf(cogra_query::Leaf {
                event_type: l.event_type,
                var,
            })
        }
        PatternExpr::Seq(ps) => {
            PatternExpr::Seq(ps.into_iter().map(|q| uniquify(q, counter)).collect())
        }
        PatternExpr::Plus(p) => uniquify(*p, counter).plus(),
        other => other,
    }
}

fn positive_leaf_count(p: &PatternExpr) -> usize {
    match p {
        PatternExpr::Leaf(_) => 1,
        PatternExpr::Seq(ps) => ps.iter().map(positive_leaf_count).sum(),
        PatternExpr::Plus(p) => positive_leaf_count(p),
        _ => 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn automaton_structural_invariants(p in arb_core_pattern()) {
        let reg = registry();
        let a = Automaton::build(&p, &reg).expect("core patterns compile");

        // One state per positive leaf (Definition 1: pattern length).
        prop_assert_eq!(a.num_states(), positive_leaf_count(&p));
        prop_assert_eq!(a.num_states(), p.length());

        // Exactly one start and one end state, both valid.
        prop_assert!(a.start().index() < a.num_states());
        prop_assert!(a.end().index() < a.num_states());

        // Every predecessor edge references valid states, no duplicates
        // per target.
        for (sid, _) in a.states() {
            let mut seen = HashSet::new();
            for e in a.preds(sid) {
                prop_assert!(e.from.index() < a.num_states());
                prop_assert!(seen.insert(e.from), "duplicate edge into {sid:?}");
                prop_assert!(a.is_pred(e.from, sid));
                prop_assert!(a.edge(e.from, sid).is_some());
            }
        }

        // states_of_type partitions the states by event type.
        let mut counted = 0;
        for t in a.relevant_types() {
            let of_type = a.states_of_type(t);
            counted += of_type.len();
            for s in of_type {
                prop_assert_eq!(a.state(*s).type_id, t);
            }
        }
        prop_assert_eq!(counted, a.num_states());

        // Variable lookup round-trips.
        for (sid, v) in a.states() {
            prop_assert_eq!(a.state_of_var(&v.name), Some(sid));
        }

        // Reachability: every state is reachable from the start state
        // along forward edges (otherwise it could never contribute a
        // trend) — forward edges are the reverse of the pred relation.
        let mut reachable = vec![false; a.num_states()];
        reachable[a.start().index()] = true;
        let mut changed = true;
        while changed {
            changed = false;
            for (sid, _) in a.states() {
                if reachable[sid.index()] {
                    continue;
                }
                if a.preds(sid).iter().any(|e| reachable[e.from.index()]) {
                    reachable[sid.index()] = true;
                    changed = true;
                }
            }
        }
        prop_assert!(reachable.iter().all(|&r| r), "unreachable state in {p}");
    }

    #[test]
    fn display_of_core_patterns_reparses(p in arb_core_pattern()) {
        let text = format!("RETURN COUNT(*) PATTERN {p} WITHIN 10 SLIDE 5");
        let q = cogra_query::parse(&text).unwrap();
        prop_assert_eq!(&q.pattern.to_string(), &p.to_string());
        // And compiles end to end.
        cogra_query::compile(&q, &registry()).expect("compiles");
    }
}
