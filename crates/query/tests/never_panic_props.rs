//! Never-panic guarantee for the query front-end: any input string fed
//! through parse → compile either succeeds or returns a typed
//! [`QueryError`] — it must not panic, hang, or exhaust memory. Random
//! garbage exercises the lexer; mutated well-formed queries exercise the
//! parser and the Static Query Analyzer behind a valid token stream.

use cogra_events::{TypeRegistry, ValueKind};
use cogra_query::{compile, parse, QueryError};
use proptest::prelude::*;

fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    for t in ["A", "B", "Stock", "Measurement"] {
        r.register_type(
            t,
            vec![
                ("v", ValueKind::Int),
                ("rate", ValueKind::Int),
                ("price", ValueKind::Float),
                ("sector", ValueKind::Str),
                ("company", ValueKind::Str),
                ("patient", ValueKind::Int),
                ("activity", ValueKind::Str),
            ],
        );
    }
    r
}

/// The whole front-end: any panic here fails the proptest case.
fn front_end(src: &str) -> Result<(), QueryError> {
    let q = parse(src)?;
    compile(&q, &registry())?;
    Ok(())
}

const SEEDS: [&str; 4] = [
    "RETURN patient, MIN(M.rate), MAX(M.rate) PATTERN Measurement M+ \
     SEMANTICS contiguous WHERE [patient] AND M.rate < NEXT(M).rate \
     AND M.activity = passive GROUP-BY patient WITHIN 10 minutes SLIDE 30 seconds",
    "RETURN sector, COUNT(*), AVG(B.price) PATTERN SEQ(Stock A+, Stock B+) \
     SEMANTICS skip-till-any-match WHERE [company] AND A.price > NEXT(A).price \
     GROUP-BY sector, company WITHIN 10 minutes SLIDE 10 seconds",
    "RETURN COUNT(*), SUM(A.v) PATTERN SEQ(A?, A?) SEMANTICS ANY WITHIN 10 SLIDE 10",
    "RETURN COUNT(*) PATTERN SEQ(A, NOT B, A*) OR(A, B) WITHIN 2 hours SLIDE 5",
];

/// Token-ish fragments spliced into seeds to hit parser edge paths.
const FRAGS: [&str; 15] = [
    "?",
    "*",
    "+",
    "(",
    ")",
    ",",
    ".",
    "NEXT(",
    "SEQ(",
    "OR(",
    "NOT ",
    "WITHIN ",
    "9223372036854775807",
    "'",
    "--",
];

/// One random edit applied to a seed query string (char-safe). Positions
/// are raw draws reduced modulo the current length at application time.
#[derive(Debug, Clone)]
enum Edit {
    /// Delete `len` chars starting at position `a`.
    Delete(usize, usize),
    /// Copy `len` chars starting at `a` and insert them at `b`.
    Duplicate(usize, usize, usize),
    /// Overwrite the char at `a` with `FRAGS[frag]`.
    Splice(usize, usize),
}

fn apply(src: &str, edit: &Edit) -> String {
    let chars: Vec<char> = src.chars().collect();
    let at = |raw: usize| {
        if chars.is_empty() {
            0
        } else {
            raw % (chars.len() + 1)
        }
    };
    match edit {
        Edit::Delete(a, len) => {
            let start = at(*a);
            let end = (start + len).min(chars.len());
            chars[..start].iter().chain(&chars[end..]).collect()
        }
        Edit::Duplicate(a, b, len) => {
            let start = at(*a);
            let end = (start + len).min(chars.len());
            let span: Vec<char> = chars[start..end].to_vec();
            let pos = at(*b);
            let mut out = chars[..pos].to_vec();
            out.extend(span);
            out.extend(&chars[pos..]);
            out.into_iter().collect()
        }
        Edit::Splice(a, frag) => {
            let pos = at(*a);
            let mut out: String = chars[..pos].iter().collect();
            out.push_str(FRAGS[frag % FRAGS.len()]);
            out.extend(&chars[(pos + 1).min(chars.len())..]);
            out
        }
    }
}

fn arb_edit() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (0usize..1024, 0usize..20).prop_map(|(a, l)| Edit::Delete(a, l)),
        (0usize..1024, 0usize..1024, 0usize..20).prop_map(|(a, b, l)| Edit::Duplicate(a, b, l)),
        (0usize..1024, 0usize..FRAGS.len()).prop_map(|(a, f)| Edit::Splice(a, f)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn random_garbage_never_panics(
        bytes in proptest::collection::vec(32u8..127, 0..120),
    ) {
        let src = String::from_utf8(bytes.clone()).unwrap();
        let _ = front_end(&src);
    }

    #[test]
    fn random_unicode_never_panics(
        points in proptest::collection::vec(any::<u32>(), 0..60),
    ) {
        let src: String = points
            .iter()
            .map(|&c| char::from_u32(c % 0x110000).unwrap_or('\u{FFFD}'))
            .collect();
        let _ = front_end(&src);
    }

    #[test]
    fn mutated_queries_never_panic(
        seed in 0usize..SEEDS.len(),
        edits in proptest::collection::vec(arb_edit(), 1..6),
    ) {
        let mut src = SEEDS[seed].to_string();
        for e in &edits {
            src = apply(&src, e);
        }
        let _ = front_end(&src);
    }
}

#[test]
fn duration_overflow_is_an_error_not_a_panic() {
    let err = front_end("RETURN COUNT(*) PATTERN A+ WITHIN 9223372036854775807 hours SLIDE 1");
    assert!(matches!(err, Err(QueryError::Parse { .. })), "{err:?}");
}

#[test]
fn exponential_expansion_is_capped() {
    // 13 optionals would expand to 2^13 = 8192 disjuncts, past the cap.
    let parts: Vec<String> = (0..13).map(|i| format!("A V{i}?")).collect();
    let src = format!(
        "RETURN COUNT(*) PATTERN SEQ({}) WITHIN 10 SLIDE 10",
        parts.join(", ")
    );
    let err = front_end(&src);
    assert!(
        matches!(&err, Err(QueryError::Compile(m)) if m.contains("disjuncts")),
        "{err:?}"
    );
}
