//! Query-compilation errors.

use std::fmt;

/// Error produced while parsing or compiling an event trend aggregation
/// query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte offset in the query text.
        offset: usize,
        /// Description of the problem.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// Byte offset in the query text.
        offset: usize,
        /// Description of the problem.
        message: String,
    },
    /// Semantic error found during compilation (unknown type/attribute,
    /// invalid pattern shape, unsupported predicate form, ...).
    Compile(String),
}

impl QueryError {
    /// Shorthand for a compile error.
    pub fn compile(msg: impl Into<String>) -> Self {
        QueryError::Compile(msg.into())
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { offset, message } => {
                write!(f, "lexical error at byte {offset}: {message}")
            }
            QueryError::Parse { offset, message } => {
                write!(f, "syntax error at byte {offset}: {message}")
            }
            QueryError::Compile(message) => write!(f, "compile error: {message}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Result alias for query compilation.
pub type QueryResult<T> = Result<T, QueryError>;
