//! Pattern rewriting (§8).
//!
//! Kleene star and optional sub-patterns are syntactic sugar:
//! `SEQ(P*, Q) = SEQ(P+, Q) ∨ Q` and `SEQ(P?, Q) = SEQ(P, Q) ∨ Q`.
//! Disjunction distributes outward, so every surface pattern rewrites into
//! a *disjunction of core patterns* containing only leaves, `SEQ`, `+` and
//! in-sequence `NOT`. Each disjunct compiles to its own automaton and
//! aggregator; disjunct aggregates combine per §8 (sum for COUNT/SUM,
//! min/max for MIN/MAX).
//!
//! [`unroll_min_length`] implements the §8 minimal-trend-length encoding:
//! a constraint "trends of `A+` with length ≥ 3" unrolls the pattern to
//! `SEQ(A, A, A+)`.

use crate::ast::{Leaf, PatternExpr};
use crate::error::{QueryError, QueryResult};

/// Expand a surface pattern into its disjunctive normal form over core
/// patterns (no `Star`, `Opt`, `Or`). The result is non-empty; an
/// alternative that is entirely empty (e.g. `A*` alone contributing the
/// zero-length match) is dropped, because a trend has at least one event
/// (Definition 2).
///
/// ```
/// use cogra_query::{rewrite::to_disjuncts, PatternExpr};
/// // SEQ(A*, B) = SEQ(A+, B) ∨ B
/// let p = PatternExpr::seq(vec![PatternExpr::leaf("A").star(), PatternExpr::leaf("B")]);
/// let d = to_disjuncts(&p).unwrap();
/// assert_eq!(d.len(), 2);
/// assert_eq!(d[0].to_string(), "SEQ((A)+, B)");
/// assert_eq!(d[1].to_string(), "B");
/// ```
pub fn to_disjuncts(expr: &PatternExpr) -> QueryResult<Vec<PatternExpr>> {
    let alts = expand(expr)?;
    // Structural dedup, first occurrence wins. `SEQ(A?, A?)` expands to
    // {SEQ(A, A), A, A, ε}: the duplicated `A` would compile into two
    // identical automata whose SUM-combined COUNT/SUM aggregates count
    // every matching trend twice. Disjuncts form a set, not a multiset —
    // the same reason automaton adjacency dedupes repeated edges.
    let mut non_empty: Vec<PatternExpr> = Vec::new();
    for alt in alts.into_iter().flatten() {
        if !non_empty.contains(&alt) {
            non_empty.push(alt);
        }
    }
    if non_empty.is_empty() {
        return Err(QueryError::compile(
            "pattern matches only the empty trend (e.g. a bare `P*`); a trend needs at least one event",
        ));
    }
    let non_empty: Vec<PatternExpr> = non_empty.iter().map(alias_repeated_leaves).collect();
    for d in &non_empty {
        check_core(d, false)?;
    }
    Ok(non_empty)
}

/// Rename repeated `(event type, variable)` leaves within one disjunct so
/// the compiled automaton gets uniquely-named states. Expanding `SEQ(A?, A?)`
/// produces the disjunct `SEQ(A, A)` — the same type under the same implicit
/// variable twice — which [`crate::automaton::Automaton::build`] would
/// otherwise reject. Later occurrences reuse the `__unroll` prefix convention
/// from [`unroll_min_length`], so predicates and aggregates written against
/// `A` resolve to every copy. Leaves that share a variable across *different*
/// event types are left untouched: that is a user error the automaton
/// reports with an actionable message.
fn alias_repeated_leaves(expr: &PatternExpr) -> PatternExpr {
    let mut seen: Vec<((String, String), usize)> = Vec::new();
    rename_repeats(expr, &mut seen)
}

fn rename_repeats(expr: &PatternExpr, seen: &mut Vec<((String, String), usize)>) -> PatternExpr {
    match expr {
        PatternExpr::Leaf(l) => {
            let key = (l.event_type.clone(), l.var.clone());
            match seen.iter_mut().find(|(k, _)| *k == key) {
                None => {
                    seen.push((key, 1));
                    expr.clone()
                }
                Some((_, n)) => {
                    *n += 1;
                    PatternExpr::Leaf(Leaf::aliased(
                        &l.event_type,
                        &format!("{}__unroll_dup{n}", l.var),
                    ))
                }
            }
        }
        // Negated states live in a separate namespace; leave them alone.
        PatternExpr::Not(_) => expr.clone(),
        PatternExpr::Plus(p) => rename_repeats(p, seen).plus(),
        PatternExpr::Star(p) => rename_repeats(p, seen).star(),
        PatternExpr::Opt(p) => rename_repeats(p, seen).opt(),
        PatternExpr::Seq(ps) => {
            PatternExpr::Seq(ps.iter().map(|p| rename_repeats(p, seen)).collect())
        }
        PatternExpr::Or(ps) => {
            PatternExpr::Or(ps.iter().map(|p| rename_repeats(p, seen)).collect())
        }
    }
}

/// Hard cap on the number of disjuncts a surface pattern may expand to.
/// Each `?`/`*` doubles the alternatives of its SEQ, so a hostile pattern
/// like `SEQ(A?, A?, ..., A?)` is exponential; past this bound the query is
/// rejected with a typed error instead of exhausting memory.
pub const MAX_DISJUNCTS: usize = 4096;

fn cap_alternatives(n: usize) -> QueryResult<()> {
    if n > MAX_DISJUNCTS {
        return Err(QueryError::compile(format!(
            "pattern expands to more than {MAX_DISJUNCTS} disjuncts; \
             simplify nested `?`/`*`/`OR` alternatives"
        )));
    }
    Ok(())
}

/// Expansion alternatives; `None` encodes the empty match (ε).
fn expand(expr: &PatternExpr) -> QueryResult<Vec<Option<PatternExpr>>> {
    match expr {
        PatternExpr::Leaf(l) => Ok(vec![Some(PatternExpr::Leaf(l.clone()))]),
        PatternExpr::Not(inner) => match inner.as_ref() {
            PatternExpr::Leaf(l) => Ok(vec![Some(PatternExpr::Leaf(l.clone()).not())]),
            _ => Err(QueryError::compile(
                "NOT may only negate a single event type",
            )),
        },
        PatternExpr::Plus(p) => Ok(expand(p)?
            .into_iter()
            .map(|alt| alt.map(PatternExpr::plus))
            .collect()),
        PatternExpr::Star(p) => {
            let mut alts: Vec<Option<PatternExpr>> = expand(p)?
                .into_iter()
                .map(|alt| alt.map(PatternExpr::plus))
                .collect();
            alts.push(None);
            Ok(alts)
        }
        PatternExpr::Opt(p) => {
            let mut alts = expand(p)?;
            alts.push(None);
            Ok(alts)
        }
        PatternExpr::Or(parts) => {
            if parts.is_empty() {
                return Err(QueryError::compile("empty OR pattern"));
            }
            let mut alts = Vec::new();
            for part in parts {
                alts.extend(expand(part)?);
                cap_alternatives(alts.len())?;
            }
            Ok(alts)
        }
        PatternExpr::Seq(parts) => {
            if parts.is_empty() {
                return Err(QueryError::compile("empty SEQ pattern"));
            }
            // Cartesian product of the element alternatives, flattening ε.
            let mut acc: Vec<Vec<PatternExpr>> = vec![Vec::new()];
            for part in parts {
                let part_alts = expand(part)?;
                cap_alternatives(acc.len().saturating_mul(part_alts.len()))?;
                let mut next = Vec::with_capacity(acc.len() * part_alts.len());
                for prefix in &acc {
                    for alt in &part_alts {
                        let mut seq = prefix.clone();
                        if let Some(p) = alt {
                            seq.push(p.clone());
                        }
                        next.push(seq);
                    }
                }
                acc = next;
            }
            Ok(acc
                .into_iter()
                .map(|mut seq| match seq.len() {
                    0 => None,
                    1 => seq.pop(),
                    _ => Some(PatternExpr::Seq(seq)),
                })
                .collect())
        }
    }
}

/// Validate a core (post-expansion) pattern: only Leaf / Seq / Plus /
/// in-sequence Not; Not never at the borders of a sequence, never under
/// Plus, never standalone; variables unique among non-negated leaves.
fn check_core(expr: &PatternExpr, under_plus: bool) -> QueryResult<()> {
    match expr {
        PatternExpr::Leaf(_) => Ok(()),
        PatternExpr::Plus(p) => {
            if matches!(p.as_ref(), PatternExpr::Not(_)) {
                return Err(QueryError::compile(
                    "NOT may not appear under a Kleene plus",
                ));
            }
            check_core(p, true)
        }
        PatternExpr::Not(_) => {
            if under_plus {
                Err(QueryError::compile(
                    "NOT may not appear under a Kleene plus",
                ))
            } else {
                Err(QueryError::compile(
                    "NOT may only appear between elements of a SEQ",
                ))
            }
        }
        PatternExpr::Seq(parts) => {
            if matches!(parts.first(), Some(PatternExpr::Not(_)))
                || matches!(parts.last(), Some(PatternExpr::Not(_)))
            {
                return Err(QueryError::compile(
                    "NOT may not be the first or last element of a SEQ",
                ));
            }
            for p in parts {
                if let PatternExpr::Not(inner) = p {
                    if !matches!(inner.as_ref(), PatternExpr::Leaf(_)) {
                        return Err(QueryError::compile(
                            "NOT may only negate a single event type",
                        ));
                    }
                } else {
                    check_core(p, under_plus)?;
                }
            }
            Ok(())
        }
        PatternExpr::Star(_) | PatternExpr::Opt(_) | PatternExpr::Or(_) => Err(
            QueryError::compile("internal: sugar operator survived expansion"),
        ),
    }
}

/// Collect the non-negated leaves of a core pattern in left-to-right order.
pub fn positive_leaves(expr: &PatternExpr) -> Vec<&Leaf> {
    let mut out = Vec::new();
    collect_leaves(expr, false, &mut out);
    out
}

/// Collect the negated leaves of a core pattern.
pub fn negated_leaves(expr: &PatternExpr) -> Vec<&Leaf> {
    let mut out = Vec::new();
    collect_leaves(expr, true, &mut out);
    out
}

fn collect_leaves<'a>(expr: &'a PatternExpr, negated: bool, out: &mut Vec<&'a Leaf>) {
    match expr {
        PatternExpr::Leaf(l) => {
            if !negated {
                out.push(l);
            }
        }
        PatternExpr::Not(p) => {
            if negated {
                if let PatternExpr::Leaf(l) = p.as_ref() {
                    out.push(l);
                }
            }
        }
        PatternExpr::Plus(p) | PatternExpr::Star(p) | PatternExpr::Opt(p) => {
            collect_leaves(p, negated, out)
        }
        PatternExpr::Seq(ps) | PatternExpr::Or(ps) => {
            for p in ps {
                collect_leaves(p, negated, out);
            }
        }
    }
}

/// §8 minimal-trend-length rewrite: replace the sub-pattern `var+` by
/// `SEQ(var, ..., var+)` so every match has at least `min_len` occurrences
/// of `var`. Returns an error if `var+` does not occur in the pattern.
pub fn unroll_min_length(
    expr: &PatternExpr,
    var: &str,
    min_len: usize,
) -> QueryResult<PatternExpr> {
    if min_len <= 1 {
        return Ok(expr.clone());
    }
    let mut found = false;
    let out = unroll_rec(expr, var, min_len, &mut found);
    if !found {
        return Err(QueryError::compile(format!(
            "no Kleene plus over variable `{var}` to unroll"
        )));
    }
    Ok(out)
}

fn unroll_rec(expr: &PatternExpr, var: &str, min_len: usize, found: &mut bool) -> PatternExpr {
    match expr {
        PatternExpr::Plus(p) => {
            if let PatternExpr::Leaf(l) = p.as_ref() {
                if l.var == var {
                    *found = true;
                    // Unrolled copies need distinct variable names so the
                    // compiled automaton has uniquely-labelled states; they
                    // share the event type, so predicates written against
                    // the original variable apply to the `var+` tail.
                    let mut parts: Vec<PatternExpr> = (1..min_len)
                        .map(|i| {
                            PatternExpr::Leaf(Leaf::aliased(
                                &l.event_type,
                                &format!("{var}__unroll{i}"),
                            ))
                        })
                        .collect();
                    parts.push(PatternExpr::Leaf(l.clone()).plus());
                    return PatternExpr::Seq(parts);
                }
            }
            unroll_rec(p, var, min_len, found).plus()
        }
        PatternExpr::Star(p) => unroll_rec(p, var, min_len, found).star(),
        PatternExpr::Opt(p) => unroll_rec(p, var, min_len, found).opt(),
        PatternExpr::Not(p) => unroll_rec(p, var, min_len, found).not(),
        PatternExpr::Seq(ps) => PatternExpr::Seq(
            ps.iter()
                .map(|p| unroll_rec(p, var, min_len, found))
                .collect(),
        ),
        PatternExpr::Or(ps) => PatternExpr::Or(
            ps.iter()
                .map(|p| unroll_rec(p, var, min_len, found))
                .collect(),
        ),
        PatternExpr::Leaf(_) => expr.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(t: &str) -> PatternExpr {
        PatternExpr::leaf(t)
    }

    #[test]
    fn plain_kleene_is_single_disjunct() {
        let p = PatternExpr::seq(vec![leaf("A").plus(), leaf("B")]).plus();
        let d = to_disjuncts(&p).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0], p);
    }

    #[test]
    fn star_expands_to_plus_or_absent() {
        // SEQ(A*, B) = SEQ(A+, B) ∨ B
        let p = PatternExpr::seq(vec![leaf("A").star(), leaf("B")]);
        let d = to_disjuncts(&p).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], PatternExpr::seq(vec![leaf("A").plus(), leaf("B")]));
        assert_eq!(d[1], leaf("B"));
    }

    #[test]
    fn optional_expands_to_present_or_absent() {
        // SEQ(A?, B) = SEQ(A, B) ∨ B
        let p = PatternExpr::seq(vec![leaf("A").opt(), leaf("B")]);
        let d = to_disjuncts(&p).unwrap();
        assert_eq!(
            d,
            vec![PatternExpr::seq(vec![leaf("A"), leaf("B")]), leaf("B")]
        );
    }

    #[test]
    fn nested_sugar_multiplies() {
        // SEQ(A?, B?, C) → 4 disjuncts
        let p = PatternExpr::seq(vec![leaf("A").opt(), leaf("B").opt(), leaf("C")]);
        let d = to_disjuncts(&p).unwrap();
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn or_unions_alternatives() {
        let p = PatternExpr::or(vec![leaf("A").plus(), leaf("B")]);
        let d = to_disjuncts(&p).unwrap();
        assert_eq!(d, vec![leaf("A").plus(), leaf("B")]);
    }

    #[test]
    fn bare_star_rejected() {
        // A* alone admits the empty trend → rejected.
        let p = leaf("A").star();
        let d = to_disjuncts(&p).unwrap();
        // The ε alternative is dropped; A+ remains.
        assert_eq!(d, vec![leaf("A").plus()]);
        // An all-optional pattern is an error.
        let p2 = PatternExpr::seq(vec![leaf("A").opt()]);
        let d2 = to_disjuncts(&p2).unwrap();
        assert_eq!(d2, vec![leaf("A")]);
    }

    #[test]
    fn repeated_optionals_dedup_and_alias() {
        // SEQ(A?, A?) = SEQ(A, A) ∨ A ∨ A ∨ ε. The duplicate `A` disjunct
        // must appear once (it would double-count) and the SEQ(A, A)
        // disjunct gets a unique alias for its second state.
        let p = PatternExpr::seq(vec![leaf("A").opt(), leaf("A").opt()]);
        let d = to_disjuncts(&p).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(
            d[0],
            PatternExpr::seq(vec![
                leaf("A"),
                PatternExpr::Leaf(Leaf::aliased("A", "A__unroll_dup2")),
            ])
        );
        assert_eq!(d[1], leaf("A"));
    }

    #[test]
    fn repeated_stars_dedup_and_alias() {
        // SEQ(A*, A*) = SEQ(A+, A+) ∨ A+ ∨ A+ ∨ ε → two disjuncts.
        let p = PatternExpr::seq(vec![leaf("A").star(), leaf("A").star()]);
        let d = to_disjuncts(&p).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(
            d[0],
            PatternExpr::seq(vec![
                leaf("A").plus(),
                PatternExpr::Leaf(Leaf::aliased("A", "A__unroll_dup2")).plus(),
            ])
        );
        assert_eq!(d[1], leaf("A").plus());
    }

    #[test]
    fn or_with_repeated_arms_dedups() {
        let p = PatternExpr::or(vec![leaf("A"), leaf("B"), leaf("A")]);
        let d = to_disjuncts(&p).unwrap();
        assert_eq!(d, vec![leaf("A"), leaf("B")]);
    }

    #[test]
    fn distinct_variables_are_not_deduped() {
        // SEQ(A a?, A b?): the single-leaf disjuncts differ by variable, so
        // aggregates targeting `a` or `b` keep their distinct meanings.
        let a = PatternExpr::Leaf(Leaf::aliased("A", "a"));
        let b = PatternExpr::Leaf(Leaf::aliased("A", "b"));
        let p = PatternExpr::seq(vec![a.clone().opt(), b.clone().opt()]);
        let d = to_disjuncts(&p).unwrap();
        assert_eq!(d, vec![PatternExpr::seq(vec![a.clone(), b.clone()]), a, b]);
    }

    #[test]
    fn shared_var_across_types_is_left_for_the_automaton() {
        // Same variable name over two *different* event types is a user
        // error; the rewrite must not mask it with an alias.
        let p = PatternExpr::seq(vec![
            PatternExpr::Leaf(Leaf::aliased("X", "A")),
            PatternExpr::Leaf(Leaf::aliased("Y", "A")),
        ]);
        let d = to_disjuncts(&p).unwrap();
        assert_eq!(d, vec![p]);
    }

    #[test]
    fn negation_survives_expansion_in_place() {
        let p = PatternExpr::seq(vec![leaf("A"), leaf("C").not(), leaf("B")]);
        let d = to_disjuncts(&p).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(negated_leaves(&d[0]).len(), 1);
        assert_eq!(positive_leaves(&d[0]).len(), 2);
    }

    #[test]
    fn negation_at_seq_border_rejected() {
        let p = PatternExpr::seq(vec![leaf("C").not(), leaf("B")]);
        assert!(to_disjuncts(&p).is_err());
        let p2 = PatternExpr::seq(vec![leaf("B"), leaf("C").not()]);
        assert!(to_disjuncts(&p2).is_err());
    }

    #[test]
    fn negation_under_plus_rejected() {
        let p = PatternExpr::seq(vec![leaf("A"), leaf("C").not().plus(), leaf("B")]);
        assert!(to_disjuncts(&p).is_err());
    }

    #[test]
    fn negation_of_composite_rejected() {
        let p = PatternExpr::seq(vec![
            leaf("A"),
            PatternExpr::seq(vec![leaf("C"), leaf("D")]).not(),
            leaf("B"),
        ]);
        assert!(to_disjuncts(&p).is_err());
    }

    #[test]
    fn unroll_min_length_three() {
        // A+ with length >= 3 → SEQ(A__unroll1, A__unroll2, A+)
        let p = leaf("A").plus();
        let u = unroll_min_length(&p, "A", 3).unwrap();
        match &u {
            PatternExpr::Seq(parts) => {
                assert_eq!(parts.len(), 3);
                assert!(matches!(parts[2], PatternExpr::Plus(_)));
            }
            other => panic!("expected SEQ, got {other}"),
        }
        assert_eq!(u.length(), 3);
    }

    #[test]
    fn unroll_unknown_var_errors() {
        let p = leaf("A").plus();
        assert!(unroll_min_length(&p, "Z", 3).is_err());
    }

    #[test]
    fn unroll_len_one_is_identity() {
        let p = leaf("A").plus();
        assert_eq!(unroll_min_length(&p, "A", 1).unwrap(), p);
    }
}
