//! Human-readable explanation of a compiled query: what the Static Query
//! Analyzer decided and why — the automaton (§3.1), the predicate classes
//! (§3.2), the granularity and `Te`/`Tt` split (§3.3/Theorem 5.1) — plus a
//! Graphviz DOT rendering of the FSA for documentation and debugging.

use crate::compile::{CompiledDisjunct, CompiledQuery, Granularity};
use crate::QueryResult;
use cogra_events::TypeRegistry;
use std::fmt::Write as _;

/// Render a full plan report for a compiled query.
pub fn explain(query: &CompiledQuery, registry: &TypeRegistry) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "semantics:   {}", query.semantics.keyword());
    let _ = writeln!(
        out,
        "window:      WITHIN {} SLIDE {} (≤ {} windows per event)",
        query.window.within,
        query.window.slide,
        query.window.windows_per_event()
    );
    let _ = writeln!(
        out,
        "partitioning: [{}] (first {} form the output group)",
        query.partition_attrs.join(", "),
        query.group_prefix
    );
    let _ = writeln!(out, "granularity: {}", query.granularity());
    for (i, d) in query.disjuncts.iter().enumerate() {
        let _ = writeln!(out, "disjunct {i}:");
        explain_disjunct(&mut out, d, registry);
    }
    out
}

fn explain_disjunct(out: &mut String, d: &CompiledDisjunct, registry: &TypeRegistry) {
    let a = &d.automaton;
    let _ = writeln!(
        out,
        "  states: {} (start {}, end {})",
        a.num_states(),
        a.state(a.start()).name,
        a.state(a.end()).name
    );
    for (sid, v) in a.states() {
        let preds: Vec<String> = a
            .preds(sid)
            .iter()
            .map(|e| {
                let mut s = a.state(e.from).name.clone();
                if !e.negations.is_empty() {
                    let negs: Vec<&str> = e
                        .negations
                        .iter()
                        .map(|n| a.negated_var(*n).name.as_str())
                        .collect();
                    let _ = write!(s, " [unless {}]", negs.join(", "));
                }
                s
            })
            .collect();
        let storage = match (d.granularity, d.event_grained[sid.index()]) {
            (Granularity::Pattern, _) => "pattern",
            (_, true) => "per event (Te)",
            (Granularity::Mixed, false) => "per type (Tt)",
            (_, false) => "per type",
        };
        let schema = registry.schema(v.type_id);
        let _ = writeln!(
            out,
            "    {} : {} ← predTypes {{{}}}, aggregates {storage}, {} local filter(s)",
            v.name,
            schema.name(),
            preds.join(", "),
            d.locals[sid.index()].len()
        );
    }
    for (nid, v) in a.negated_vars() {
        let _ = writeln!(
            out,
            "    NOT {} : {} ({} local filter(s))",
            v.name,
            v.event_type,
            d.neg_locals[nid.index()].len()
        );
    }
    if !d.adjacents.is_empty() {
        let _ = writeln!(out, "  predicates on adjacent events:");
        for adj in &d.adjacents {
            let pred = a.state(adj.pred);
            let succ = a.state(adj.succ);
            let _ = writeln!(
                out,
                "    {}.{} {} NEXT({}).{}",
                pred.name,
                registry.schema(pred.type_id).attr_name(adj.pred_attr),
                adj.op,
                succ.name,
                registry.schema(succ.type_id).attr_name(adj.succ_attr),
            );
        }
    }
}

/// Render the FSA of every disjunct as a Graphviz DOT digraph.
pub fn to_dot(query: &CompiledQuery) -> String {
    let mut out = String::from("digraph pattern {\n  rankdir=LR;\n");
    for (i, d) in query.disjuncts.iter().enumerate() {
        let a = &d.automaton;
        for (sid, v) in a.states() {
            let shape = if sid == a.end() {
                "doublecircle"
            } else {
                "circle"
            };
            let style = if d.event_grained[sid.index()] {
                ", style=filled, fillcolor=lightyellow"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  d{i}_{} [label=\"{}\", shape={shape}{style}];",
                sid.index(),
                v.name
            );
        }
        let _ = writeln!(
            out,
            "  d{i}_start [shape=point]; d{i}_start -> d{i}_{};",
            a.start().index()
        );
        for (sid, _) in a.states() {
            for e in a.preds(sid) {
                let label = if e.negations.is_empty() {
                    String::new()
                } else {
                    let negs: Vec<&str> = e
                        .negations
                        .iter()
                        .map(|n| a.negated_var(*n).name.as_str())
                        .collect();
                    format!(" [label=\"¬{}\"]", negs.join(",¬"))
                };
                let _ = writeln!(
                    out,
                    "  d{i}_{} -> d{i}_{}{label};",
                    e.from.index(),
                    sid.index()
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Parse, compile and explain in one step.
pub fn explain_text(query_text: &str, registry: &TypeRegistry) -> QueryResult<String> {
    let q = crate::parse(query_text)?;
    let compiled = crate::compile(&q, registry)?;
    Ok(explain(&compiled, registry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogra_events::ValueKind;

    fn registry() -> TypeRegistry {
        let mut r = TypeRegistry::new();
        r.register_type(
            "Stock",
            vec![("company", ValueKind::Int), ("price", ValueKind::Float)],
        );
        for t in ["A", "B", "C"] {
            r.register_type(t, vec![("v", ValueKind::Int)]);
        }
        r
    }

    fn compiled(text: &str) -> CompiledQuery {
        crate::compile(&crate::parse(text).unwrap(), &registry()).unwrap()
    }

    #[test]
    fn explain_reports_granularity_and_te_split() {
        let cq = compiled(
            "RETURN company, COUNT(*) PATTERN SEQ(Stock A+, Stock B+) \
             SEMANTICS ANY WHERE [company] AND A.price > NEXT(A).price \
             GROUP-BY company WITHIN 600 SLIDE 10",
        );
        let report = explain(&cq, &registry());
        assert!(report.contains("granularity: mixed"), "{report}");
        assert!(report.contains("A : Stock"), "{report}");
        assert!(report.contains("per event (Te)"), "{report}");
        assert!(report.contains("per type (Tt)"), "{report}");
        assert!(report.contains("A.price > NEXT(A).price"), "{report}");
        assert!(report.contains("partitioning: [company]"), "{report}");
    }

    #[test]
    fn explain_pattern_granularity_under_next() {
        let cq = compiled(
            "RETURN COUNT(*) PATTERN SEQ(A, (SEQ(B, C))+ ) SEMANTICS NEXT WITHIN 10 SLIDE 5",
        );
        let report = explain(&cq, &registry());
        assert!(report.contains("granularity: pattern"), "{report}");
        assert!(report.contains("predTypes {C, A}"), "{report}");
    }

    #[test]
    fn dot_contains_states_edges_and_negations() {
        let cq =
            compiled("RETURN COUNT(*) PATTERN SEQ(A+, NOT C, B) SEMANTICS ANY WITHIN 10 SLIDE 5");
        let dot = to_dot(&cq);
        assert!(dot.starts_with("digraph pattern {"));
        assert!(dot.contains("label=\"A\""));
        assert!(dot.contains("doublecircle")); // end state B
        assert!(dot.contains("¬C"), "{dot}");
        assert!(dot.contains("d0_start"));
    }

    #[test]
    fn dot_marks_event_grained_states() {
        let cq = compiled(
            "RETURN COUNT(*) PATTERN A+ SEMANTICS ANY WHERE A.v < NEXT(A).v WITHIN 10 SLIDE 5",
        );
        let dot = to_dot(&cq);
        assert!(
            dot.contains("lightyellow"),
            "Te states are highlighted: {dot}"
        );
    }

    #[test]
    fn explain_text_end_to_end() {
        let report = explain_text(
            "RETURN COUNT(*) PATTERN OR(A+, SEQ(B, C)) SEMANTICS ANY WITHIN 10 SLIDE 5",
            &registry(),
        )
        .unwrap();
        assert!(report.contains("disjunct 0:"));
        assert!(report.contains("disjunct 1:"));
    }
}
