//! # cogra-query
//!
//! Query model and Static Query Analyzer for COGRA (§2–§3 of the paper):
//!
//! * [`ast`] — surface abstract syntax: patterns (Definition 1), event
//!   matching semantics (§2.2), predicates, aggregation calls, and the
//!   six-clause query (Definition 6);
//! * [`parser`] — text parser for the SASE-style language of queries
//!   q1–q3;
//! * [`rewrite`] — §8 desugaring: Kleene star, optional sub-patterns and
//!   disjunction expand into core-pattern disjuncts; minimal-trend-length
//!   unrolling;
//! * [`automaton`] — the Pattern Analyzer (§3.1): FSA representation with
//!   predecessor types and negation-tagged transitions;
//! * [`mod@compile`] — the Predicate Classifier (§3.2) and Granularity
//!   Selector (§3.3, Table 4) producing an executable [`CompiledQuery`].

#![warn(missing_docs)]

pub mod ast;
pub mod automaton;
pub mod compile;
pub mod error;
pub mod explain;
pub mod lexer;
pub mod parser;
pub mod rewrite;
pub mod signature;

pub use ast::{
    AggCall, AttrRef, CmpOp, Leaf, Literal, PatternExpr, PredicateExpr, Query, ReturnItem,
    Semantics,
};
pub use automaton::{Automaton, NegId, PredEdge, StateId, VarInfo};
pub use compile::{
    compile, select_granularity, AggFunc, CompiledAdjacent, CompiledAgg, CompiledDisjunct,
    CompiledQuery, Granularity, LocalFilter,
};
pub use error::{QueryError, QueryResult};
pub use explain::{explain, explain_text, to_dot};
pub use parser::parse;
pub use signature::canonical_signature;
