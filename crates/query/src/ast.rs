//! Surface abstract syntax of event trend aggregation queries
//! (Definition 6) in the paper's SASE-style language:
//!
//! ```text
//! RETURN    driver, COUNT(*)
//! PATTERN   SEQ(Accept, (SEQ(Call, Cancel))+, Finish)
//! SEMANTICS skip-till-next-match
//! WHERE     [driver] AND A.price > NEXT(A).price
//! GROUP-BY  driver
//! WITHIN    10 minutes SLIDE 30 seconds
//! ```
//!
//! The surface AST is what the parser produces and what programmatic users
//! build via the constructors here; `crate::compile` lowers it to the
//! executable form.

use std::fmt;

/// Event matching semantics (§2.2). Ordered from most flexible to most
/// restrictive; Figure 2 shows `trends_cont ⊆ trends_next ⊆ trends_any`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Semantics {
    /// Skip-till-any-match: every relevant event both extends each existing
    /// trend and is skipped to preserve alternatives (Definition 2).
    #[default]
    Any,
    /// Skip-till-next-match: relevant events must be matched; irrelevant
    /// events are skipped (Definition 3, operationally Theorem 6.1).
    Next,
    /// Contiguous: no event may be skipped between trend elements
    /// (Definition 4).
    Cont,
}

impl Semantics {
    /// Canonical keyword used in query text.
    pub fn keyword(self) -> &'static str {
        match self {
            Semantics::Any => "skip-till-any-match",
            Semantics::Next => "skip-till-next-match",
            Semantics::Cont => "contiguous",
        }
    }
}

impl fmt::Display for Semantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A pattern leaf: an event type with an optional variable alias
/// (`Stock A` binds events of type `Stock` to variable `A`; a bare
/// `Measurement` uses the type name as the variable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Leaf {
    /// Event type name (must be registered in the [`TypeRegistry`]).
    ///
    /// [`TypeRegistry`]: cogra_events::TypeRegistry
    pub event_type: String,
    /// Variable name predicates and aggregates refer to.
    pub var: String,
}

impl Leaf {
    /// Leaf whose variable is the type name itself.
    pub fn of(event_type: &str) -> Self {
        Leaf {
            event_type: event_type.to_string(),
            var: event_type.to_string(),
        }
    }

    /// Leaf with an explicit variable alias.
    pub fn aliased(event_type: &str, var: &str) -> Self {
        Leaf {
            event_type: event_type.to_string(),
            var: var.to_string(),
        }
    }
}

/// Surface pattern expression (Definition 1 plus the §8 extensions:
/// Kleene star, optional sub-patterns, disjunction, negation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternExpr {
    /// A single event type occurrence.
    Leaf(Leaf),
    /// `SEQ(P1, ..., Pn)` — temporal sequencing.
    Seq(Vec<PatternExpr>),
    /// `P+` — Kleene plus (one or more matches of `P`).
    Plus(Box<PatternExpr>),
    /// `P*` — Kleene star; desugars to `P+ | ε` (§8).
    Star(Box<PatternExpr>),
    /// `P?` — optional; desugars to `P | ε` (§8).
    Opt(Box<PatternExpr>),
    /// `OR(P1, ..., Pn)` — disjunction (§8).
    Or(Vec<PatternExpr>),
    /// `NOT E` — negated event type, only valid between elements of a
    /// `SEQ` (§8).
    Not(Box<PatternExpr>),
}

impl PatternExpr {
    /// Leaf pattern from a type name.
    pub fn leaf(event_type: &str) -> Self {
        PatternExpr::Leaf(Leaf::of(event_type))
    }

    /// Leaf pattern with a variable alias.
    pub fn aliased(event_type: &str, var: &str) -> Self {
        PatternExpr::Leaf(Leaf::aliased(event_type, var))
    }

    /// Kleene plus of this pattern.
    pub fn plus(self) -> Self {
        PatternExpr::Plus(Box::new(self))
    }

    /// Kleene star of this pattern.
    pub fn star(self) -> Self {
        PatternExpr::Star(Box::new(self))
    }

    /// Optional version of this pattern.
    pub fn opt(self) -> Self {
        PatternExpr::Opt(Box::new(self))
    }

    /// Sequence of patterns.
    pub fn seq(parts: Vec<PatternExpr>) -> Self {
        PatternExpr::Seq(parts)
    }

    /// Disjunction of patterns.
    pub fn or(parts: Vec<PatternExpr>) -> Self {
        PatternExpr::Or(parts)
    }

    /// Negation of this pattern.
    #[allow(clippy::should_implement_trait)] // domain term: `NOT C` in a SEQ
    pub fn not(self) -> Self {
        PatternExpr::Not(Box::new(self))
    }

    /// The *length* of a pattern: the number of event type occurrences in
    /// it (Definition 1). Negated occurrences are not counted.
    pub fn length(&self) -> usize {
        match self {
            PatternExpr::Leaf(_) => 1,
            PatternExpr::Seq(ps) | PatternExpr::Or(ps) => ps.iter().map(Self::length).sum(),
            PatternExpr::Plus(p) | PatternExpr::Star(p) | PatternExpr::Opt(p) => p.length(),
            PatternExpr::Not(_) => 0,
        }
    }

    /// Whether the pattern contains a Kleene operator (`+` or `*`); such
    /// patterns are *Kleene patterns*, all others are *event sequence
    /// patterns* (Definition 1). The distinction drives the trend-count
    /// complexity classes of Table 3.
    pub fn is_kleene(&self) -> bool {
        match self {
            PatternExpr::Leaf(_) => false,
            PatternExpr::Plus(_) | PatternExpr::Star(_) => true,
            PatternExpr::Opt(p) | PatternExpr::Not(p) => p.is_kleene(),
            PatternExpr::Seq(ps) | PatternExpr::Or(ps) => ps.iter().any(Self::is_kleene),
        }
    }
}

impl fmt::Display for PatternExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternExpr::Leaf(l) if l.var == l.event_type => write!(f, "{}", l.event_type),
            PatternExpr::Leaf(l) => write!(f, "{} {}", l.event_type, l.var),
            PatternExpr::Seq(ps) => {
                write!(f, "SEQ(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            PatternExpr::Plus(p) => write!(f, "({p})+"),
            PatternExpr::Star(p) => write!(f, "({p})*"),
            PatternExpr::Opt(p) => write!(f, "({p})?"),
            PatternExpr::Or(ps) => {
                write!(f, "OR(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            PatternExpr::Not(p) => write!(f, "NOT {p}"),
        }
    }
}

/// Comparison operator in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Evaluate against an optional ordering (`None` = incomparable, which
    /// fails every comparison).
    #[inline]
    pub fn eval(self, ord: Option<std::cmp::Ordering>) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Lt, Some(Less))
                | (CmpOp::Le, Some(Less | Equal))
                | (CmpOp::Gt, Some(Greater))
                | (CmpOp::Ge, Some(Greater | Equal))
                | (CmpOp::Eq, Some(Equal))
                | (CmpOp::Ne, Some(Less | Greater))
        )
    }

    /// The operator with its operands swapped (`a < b ⇔ b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// Reference to an attribute of a pattern variable, optionally wrapped in
/// `NEXT(...)` (the successor event of an adjacent pair, §1 q1/q3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrRef {
    /// Pattern variable name.
    pub var: String,
    /// Attribute name.
    pub attr: String,
    /// True for `NEXT(var).attr`.
    pub next: bool,
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.next {
            write!(f, "NEXT({}).{}", self.var, self.attr)
        } else {
            write!(f, "{}.{}", self.var, self.attr)
        }
    }
}

/// A literal constant in a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer constant.
    Int(i64),
    /// Float constant.
    Float(f64),
    /// String constant (quoted, or a bare identifier in value position —
    /// q1 writes `M.activity = passive`).
    Str(String),
    /// Boolean constant.
    Bool(bool),
}

impl Literal {
    /// Convert to a runtime [`Value`].
    ///
    /// [`Value`]: cogra_events::Value
    pub fn to_value(&self) -> cogra_events::Value {
        match self {
            Literal::Int(i) => cogra_events::Value::Int(*i),
            Literal::Float(f) => cogra_events::Value::Float(*f),
            Literal::Str(s) => cogra_events::Value::str(s.as_str()),
            Literal::Bool(b) => cogra_events::Value::Bool(*b),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => write!(f, "{x}"),
            Literal::Str(s) => write!(f, "'{s}'"),
            Literal::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// One conjunct of the `WHERE` clause (§3.2 classifies these).
#[derive(Debug, Clone, PartialEq)]
pub enum PredicateExpr {
    /// `[attr]` / `[Var.attr]` — equivalence predicate: all events in a
    /// trend carry the same value of `attr` (partitions the stream, §7).
    Equivalence {
        /// Attribute name (the variable qualifier, if present, is recorded
        /// for display but the partition key is the attribute).
        attr: String,
    },
    /// `Var.attr op literal` — local predicate on single events.
    Local {
        /// Attribute reference (never `NEXT`-wrapped).
        lhs: AttrRef,
        /// Comparison operator.
        op: CmpOp,
        /// Constant to compare against.
        rhs: Literal,
    },
    /// `Var1.attr1 op Var2.attr2` (one side possibly `NEXT(...)`) —
    /// predicate on adjacent events in a trend.
    Adjacent {
        /// Left-hand attribute reference.
        lhs: AttrRef,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand attribute reference.
        rhs: AttrRef,
    },
}

impl fmt::Display for PredicateExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredicateExpr::Equivalence { attr } => write!(f, "[{attr}]"),
            PredicateExpr::Local { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
            PredicateExpr::Adjacent { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
        }
    }
}

/// Aggregation function in the `RETURN` clause (§2.3). COUNT, MIN, MAX and
/// SUM are distributive, AVG is algebraic; all are computed incrementally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggCall {
    /// `COUNT(*)` — number of trends per group.
    CountStar,
    /// `COUNT(V)` — total number of `V` events across all trends per group.
    CountVar(String),
    /// `MIN(V.attr)`.
    Min(String, String),
    /// `MAX(V.attr)`.
    Max(String, String),
    /// `SUM(V.attr)`.
    Sum(String, String),
    /// `AVG(V.attr)` = `SUM(V.attr) / COUNT(V)`.
    Avg(String, String),
}

impl fmt::Display for AggCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggCall::CountStar => write!(f, "COUNT(*)"),
            AggCall::CountVar(v) => write!(f, "COUNT({v})"),
            AggCall::Min(v, a) => write!(f, "MIN({v}.{a})"),
            AggCall::Max(v, a) => write!(f, "MAX({v}.{a})"),
            AggCall::Sum(v, a) => write!(f, "SUM({v}.{a})"),
            AggCall::Avg(v, a) => write!(f, "AVG({v}.{a})"),
        }
    }
}

/// One item of the `RETURN` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReturnItem {
    /// A grouping attribute echoed into the result.
    Attr(String),
    /// An aggregate.
    Agg(AggCall),
}

impl fmt::Display for ReturnItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReturnItem::Attr(a) => write!(f, "{a}"),
            ReturnItem::Agg(a) => write!(f, "{a}"),
        }
    }
}

/// An event trend aggregation query (Definition 6): six clauses.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `RETURN` — aggregation result specification.
    pub ret: Vec<ReturnItem>,
    /// `PATTERN` — the (Kleene) pattern.
    pub pattern: PatternExpr,
    /// `SEMANTICS` — event matching semantics.
    pub semantics: Semantics,
    /// `WHERE` — conjunction of predicates (optional).
    pub predicates: Vec<PredicateExpr>,
    /// `GROUP-BY` — grouping attribute names (optional).
    pub group_by: Vec<String>,
    /// `WITHIN w SLIDE s` — sliding window in ticks.
    pub window: cogra_events::WindowSpec,
}

impl Query {
    /// The aggregate calls of the `RETURN` clause, in order.
    pub fn aggregates(&self) -> impl Iterator<Item = &AggCall> {
        self.ret.iter().filter_map(|r| match r {
            ReturnItem::Agg(a) => Some(a),
            ReturnItem::Attr(_) => None,
        })
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RETURN ")?;
        for (i, r) in self.ret.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, " PATTERN {}", self.pattern)?;
        write!(f, " SEMANTICS {}", self.semantics)?;
        if !self.predicates.is_empty() {
            write!(f, " WHERE ")?;
            for (i, p) in self.predicates.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{p}")?;
            }
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP-BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        write!(
            f,
            " WITHIN {} ticks SLIDE {} ticks",
            self.window.within, self.window.slide
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_length_counts_type_occurrences() {
        // (SEQ(A+, B))+ has length 2.
        let p =
            PatternExpr::seq(vec![PatternExpr::leaf("A").plus(), PatternExpr::leaf("B")]).plus();
        assert_eq!(p.length(), 2);
        assert!(p.is_kleene());
        // SEQ(A, B, C) has length 3 and is not Kleene.
        let s = PatternExpr::seq(vec![
            PatternExpr::leaf("A"),
            PatternExpr::leaf("B"),
            PatternExpr::leaf("C"),
        ]);
        assert_eq!(s.length(), 3);
        assert!(!s.is_kleene());
    }

    #[test]
    fn negated_leaves_do_not_count_toward_length() {
        let p = PatternExpr::seq(vec![
            PatternExpr::leaf("A"),
            PatternExpr::leaf("C").not(),
            PatternExpr::leaf("B"),
        ]);
        assert_eq!(p.length(), 2);
    }

    #[test]
    fn star_is_kleene() {
        assert!(PatternExpr::leaf("A").star().is_kleene());
        assert!(!PatternExpr::leaf("A").opt().is_kleene());
    }

    #[test]
    fn cmp_op_eval() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Lt.eval(Some(Less)));
        assert!(!CmpOp::Lt.eval(Some(Equal)));
        assert!(CmpOp::Le.eval(Some(Equal)));
        assert!(CmpOp::Ne.eval(Some(Greater)));
        assert!(!CmpOp::Eq.eval(None));
        assert!(!CmpOp::Ne.eval(None), "incomparable fails even !=");
    }

    #[test]
    fn cmp_op_flip_round_trip() {
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ] {
            assert_eq!(op.flipped().flipped(), op);
        }
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
    }

    #[test]
    fn display_round_trips_structure() {
        let p = PatternExpr::seq(vec![
            PatternExpr::aliased("Stock", "A").plus(),
            PatternExpr::aliased("Stock", "B").plus(),
        ]);
        assert_eq!(p.to_string(), "SEQ((Stock A)+, (Stock B)+)");
        assert_eq!(Semantics::Next.to_string(), "skip-till-next-match");
    }
}
