//! Pattern Analyzer (§3.1): translation of a core pattern into its Finite
//! State Automaton representation.
//!
//! States are labelled by the pattern's event-type occurrences (pattern
//! *variables*, so `SEQ(Stock A+, Stock B+)` has two states even though both
//! share the `Stock` type — §8 "multiple event type occurrences").
//! Transitions are labelled by the operators and connect the types of events
//! adjacent in a trend: if a transition connects state `E'` to `E`, then
//! `E'` is a *predecessor type* of `E` (`P.predTypes(E)`, Definition 7
//! condition 1).
//!
//! Negated event types (§8) never become states; instead they tag the
//! transitions that cross them: a match of the negated type invalidates the
//! predecessor aggregates flowing along those transitions.

use crate::ast::{Leaf, PatternExpr};
use crate::error::{QueryError, QueryResult};
use cogra_events::{TypeId, TypeRegistry};
use std::collections::HashMap;
use std::fmt;

/// Identifier of an automaton state (one per positive pattern variable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

impl StateId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of a negated pattern variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NegId(pub u32);

impl NegId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A pattern variable: a positive state or a negated occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// Variable name (unique within the pattern).
    pub name: String,
    /// Event type name.
    pub event_type: String,
    /// Resolved event type.
    pub type_id: TypeId,
}

/// An incoming transition of a state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredEdge {
    /// Predecessor state (`from ∈ P.predTypes(target)`).
    pub from: StateId,
    /// Negated variables this transition crosses: a match of any of them
    /// invalidates older predecessor aggregates on this edge.
    pub negations: Vec<NegId>,
}

/// FSA representation of one core pattern disjunct.
#[derive(Debug, Clone)]
pub struct Automaton {
    states: Vec<VarInfo>,
    negated: Vec<VarInfo>,
    /// `preds[s]` = incoming edges of state `s`.
    preds: Vec<Vec<PredEdge>>,
    start: StateId,
    end: StateId,
    by_type: HashMap<TypeId, Vec<StateId>>,
    neg_by_type: HashMap<TypeId, Vec<NegId>>,
}

impl Automaton {
    /// Build the automaton for a core pattern (a disjunct produced by
    /// [`crate::rewrite::to_disjuncts`]), resolving event type names
    /// against `registry`.
    pub fn build(pattern: &PatternExpr, registry: &TypeRegistry) -> QueryResult<Automaton> {
        let mut b = Builder {
            registry,
            states: Vec::new(),
            negated: Vec::new(),
            state_by_var: HashMap::new(),
            edges: Vec::new(),
        };
        let span = b.walk(pattern)?;
        let [start] = span.firsts[..] else {
            return Err(QueryError::compile(
                "pattern must have exactly one start type",
            ));
        };
        let [end] = span.lasts[..] else {
            return Err(QueryError::compile(
                "pattern must have exactly one end type",
            ));
        };
        // Deduplicate edges: degenerate nestings like `(P+)+` connect the
        // same state pair once per Kleene level. Adjacency is a *relation*
        // (Definition 7), not a multiset of derivations — a duplicate edge
        // would double-count predecessor contributions. When duplicates
        // carry different negation tags, the pair is adjacent if any
        // derivation permits it, so the tag sets intersect.
        let mut preds: Vec<Vec<PredEdge>> = vec![Vec::new(); b.states.len()];
        for (from, to, negations) in b.edges {
            let bucket = &mut preds[to.index()];
            match bucket.iter_mut().find(|e| e.from == from) {
                Some(existing) => {
                    existing.negations.retain(|n| negations.contains(n));
                }
                None => bucket.push(PredEdge { from, negations }),
            }
        }
        let mut by_type: HashMap<TypeId, Vec<StateId>> = HashMap::new();
        for (i, v) in b.states.iter().enumerate() {
            by_type
                .entry(v.type_id)
                .or_default()
                .push(StateId(i as u32));
        }
        let mut neg_by_type: HashMap<TypeId, Vec<NegId>> = HashMap::new();
        for (i, v) in b.negated.iter().enumerate() {
            neg_by_type
                .entry(v.type_id)
                .or_default()
                .push(NegId(i as u32));
        }
        Ok(Automaton {
            states: b.states,
            negated: b.negated,
            preds,
            start,
            end,
            by_type,
            neg_by_type,
        })
    }

    /// Number of states (= pattern length `l` in the complexity theorems).
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of negated variables.
    pub fn num_negated(&self) -> usize {
        self.negated.len()
    }

    /// The unique start state (`start(P)`); a trend always begins with an
    /// event bound here.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// The unique end state (`end(P)`); only events bound here finish
    /// trends (Definition 5).
    pub fn end(&self) -> StateId {
        self.end
    }

    /// State metadata.
    pub fn state(&self, s: StateId) -> &VarInfo {
        &self.states[s.index()]
    }

    /// Negated-variable metadata.
    pub fn negated_var(&self, n: NegId) -> &VarInfo {
        &self.negated[n.index()]
    }

    /// Incoming transitions of `s` (`P.predTypes`, with negation tags).
    pub fn preds(&self, s: StateId) -> &[PredEdge] {
        &self.preds[s.index()]
    }

    /// Whether state `from` is a predecessor type of state `to`.
    pub fn is_pred(&self, from: StateId, to: StateId) -> bool {
        self.preds[to.index()].iter().any(|e| e.from == from)
    }

    /// The edge `from → to` if it exists.
    pub fn edge(&self, from: StateId, to: StateId) -> Option<&PredEdge> {
        self.preds[to.index()].iter().find(|e| e.from == from)
    }

    /// States an event of `type_id` can bind to.
    pub fn states_of_type(&self, type_id: TypeId) -> &[StateId] {
        self.by_type.get(&type_id).map_or(&[], Vec::as_slice)
    }

    /// Negated variables an event of `type_id` can match.
    pub fn negations_of_type(&self, type_id: TypeId) -> &[NegId] {
        self.neg_by_type.get(&type_id).map_or(&[], Vec::as_slice)
    }

    /// Resolve a variable name to its state.
    pub fn state_of_var(&self, var: &str) -> Option<StateId> {
        self.states
            .iter()
            .position(|v| v.name == var)
            .map(|i| StateId(i as u32))
    }

    /// Resolve a variable name to its negated id.
    pub fn negated_of_var(&self, var: &str) -> Option<NegId> {
        self.negated
            .iter()
            .position(|v| v.name == var)
            .map(|i| NegId(i as u32))
    }

    /// Iterate all states.
    pub fn states(&self) -> impl Iterator<Item = (StateId, &VarInfo)> {
        self.states
            .iter()
            .enumerate()
            .map(|(i, v)| (StateId(i as u32), v))
    }

    /// Iterate all negated variables.
    pub fn negated_vars(&self) -> impl Iterator<Item = (NegId, &VarInfo)> {
        self.negated
            .iter()
            .enumerate()
            .map(|(i, v)| (NegId(i as u32), v))
    }

    /// All event types that occur (positively or negated) in the pattern.
    pub fn relevant_types(&self) -> Vec<TypeId> {
        let mut out: Vec<TypeId> = self.by_type.keys().copied().collect();
        out.extend(self.neg_by_type.keys().copied());
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// first/last state sets of a sub-pattern during construction.
struct Span {
    firsts: Vec<StateId>,
    lasts: Vec<StateId>,
}

struct Builder<'a> {
    registry: &'a TypeRegistry,
    states: Vec<VarInfo>,
    negated: Vec<VarInfo>,
    state_by_var: HashMap<String, ()>,
    edges: Vec<(StateId, StateId, Vec<NegId>)>,
}

impl Builder<'_> {
    fn resolve(&self, leaf: &Leaf) -> QueryResult<TypeId> {
        self.registry
            .id_of(&leaf.event_type)
            .ok_or_else(|| QueryError::compile(format!("unknown event type `{}`", leaf.event_type)))
    }

    fn add_state(&mut self, leaf: &Leaf) -> QueryResult<StateId> {
        if self.state_by_var.insert(leaf.var.clone(), ()).is_some() {
            return Err(QueryError::compile(format!(
                "variable `{}` occurs more than once in the pattern; alias repeated types (e.g. `Stock A+, Stock B+`)",
                leaf.var
            )));
        }
        let type_id = self.resolve(leaf)?;
        let id = StateId(self.states.len() as u32);
        self.states.push(VarInfo {
            name: leaf.var.clone(),
            event_type: leaf.event_type.clone(),
            type_id,
        });
        Ok(id)
    }

    fn add_negated(&mut self, leaf: &Leaf) -> QueryResult<NegId> {
        if self.state_by_var.insert(leaf.var.clone(), ()).is_some() {
            return Err(QueryError::compile(format!(
                "variable `{}` occurs more than once in the pattern",
                leaf.var
            )));
        }
        let type_id = self.resolve(leaf)?;
        let id = NegId(self.negated.len() as u32);
        self.negated.push(VarInfo {
            name: leaf.var.clone(),
            event_type: leaf.event_type.clone(),
            type_id,
        });
        Ok(id)
    }

    fn connect(&mut self, froms: &[StateId], tos: &[StateId], negs: &[NegId]) {
        for &f in froms {
            for &t in tos {
                self.edges.push((f, t, negs.to_vec()));
            }
        }
    }

    fn walk(&mut self, p: &PatternExpr) -> QueryResult<Span> {
        match p {
            PatternExpr::Leaf(l) => {
                let s = self.add_state(l)?;
                Ok(Span {
                    firsts: vec![s],
                    lasts: vec![s],
                })
            }
            PatternExpr::Plus(inner) => {
                let span = self.walk(inner)?;
                // Kleene loop: the end of one iteration precedes the start
                // of the next (Definition 2: sl.end.time < sl+1.start.time).
                let lasts = span.lasts.clone();
                let firsts = span.firsts.clone();
                self.connect(&lasts, &firsts, &[]);
                Ok(span)
            }
            PatternExpr::Seq(parts) => {
                let mut firsts: Option<Vec<StateId>> = None;
                let mut prev_lasts: Vec<StateId> = Vec::new();
                let mut pending_negs: Vec<NegId> = Vec::new();
                for part in parts {
                    if let PatternExpr::Not(inner) = part {
                        let PatternExpr::Leaf(l) = inner.as_ref() else {
                            return Err(QueryError::compile(
                                "NOT may only negate a single event type",
                            ));
                        };
                        pending_negs.push(self.add_negated(l)?);
                        continue;
                    }
                    let span = self.walk(part)?;
                    if firsts.is_none() {
                        firsts = Some(span.firsts.clone());
                    } else {
                        self.connect(&prev_lasts, &span.firsts, &pending_negs);
                    }
                    pending_negs.clear();
                    prev_lasts = span.lasts;
                }
                let firsts = firsts.ok_or_else(|| {
                    QueryError::compile("SEQ pattern needs at least one positive element")
                })?;
                if !pending_negs.is_empty() {
                    return Err(QueryError::compile(
                        "NOT may not be the last element of a SEQ",
                    ));
                }
                Ok(Span {
                    firsts,
                    lasts: prev_lasts,
                })
            }
            PatternExpr::Not(_) => Err(QueryError::compile(
                "NOT may only appear between elements of a SEQ",
            )),
            PatternExpr::Star(_) | PatternExpr::Opt(_) | PatternExpr::Or(_) => Err(
                QueryError::compile("internal: sugar operator reached the automaton builder"),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogra_events::ValueKind;

    fn registry() -> TypeRegistry {
        let mut r = TypeRegistry::new();
        for t in ["A", "B", "C", "D", "Stock"] {
            r.register_type(t, vec![("v", ValueKind::Int)]);
        }
        r
    }

    fn leaf(t: &str) -> PatternExpr {
        PatternExpr::leaf(t)
    }

    fn pred_names(a: &Automaton, s: &str) -> Vec<String> {
        let sid = a.state_of_var(s).unwrap();
        let mut v: Vec<String> = a
            .preds(sid)
            .iter()
            .map(|e| a.state(e.from).name.clone())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn figure4_running_example() {
        // P = (SEQ(A+, B))+  → predTypes(A) = {A, B}, predTypes(B) = {A},
        // start(P)=A, end(P)=B (Figure 4).
        let p = PatternExpr::seq(vec![leaf("A").plus(), leaf("B")]).plus();
        let a = Automaton::build(&p, &registry()).unwrap();
        assert_eq!(a.num_states(), 2);
        assert_eq!(a.state(a.start()).name, "A");
        assert_eq!(a.state(a.end()).name, "B");
        assert_eq!(pred_names(&a, "A"), vec!["A", "B"]);
        assert_eq!(pred_names(&a, "B"), vec!["A"]);
    }

    #[test]
    fn plain_sequence_has_chain_edges() {
        let p = PatternExpr::seq(vec![leaf("A"), leaf("B"), leaf("C")]);
        let a = Automaton::build(&p, &registry()).unwrap();
        assert_eq!(pred_names(&a, "A"), Vec::<String>::new());
        assert_eq!(pred_names(&a, "B"), vec!["A"]);
        assert_eq!(pred_names(&a, "C"), vec!["B"]);
    }

    #[test]
    fn kleene_leaf_self_loop() {
        let p = leaf("A").plus();
        let a = Automaton::build(&p, &registry()).unwrap();
        assert_eq!(pred_names(&a, "A"), vec!["A"]);
        assert_eq!(a.start(), a.end());
    }

    #[test]
    fn q2_shape_uber() {
        // SEQ(Accept, (SEQ(Call, Cancel))+, Finish) with A/B/C/D stand-ins:
        // SEQ(A, (SEQ(B, C))+, D)
        let p = PatternExpr::seq(vec![
            leaf("A"),
            PatternExpr::seq(vec![leaf("B"), leaf("C")]).plus(),
            leaf("D"),
        ]);
        let a = Automaton::build(&p, &registry()).unwrap();
        assert_eq!(pred_names(&a, "B"), vec!["A", "C"]);
        assert_eq!(pred_names(&a, "C"), vec!["B"]);
        assert_eq!(pred_names(&a, "D"), vec!["C"]);
        assert_eq!(a.state(a.start()).name, "A");
        assert_eq!(a.state(a.end()).name, "D");
    }

    #[test]
    fn q3_shape_shared_type() {
        // SEQ(Stock A+, Stock B+): two states over one event type.
        let p = PatternExpr::seq(vec![
            PatternExpr::aliased("Stock", "A").plus(),
            PatternExpr::aliased("Stock", "B").plus(),
        ]);
        let a = Automaton::build(&p, &registry()).unwrap();
        assert_eq!(a.num_states(), 2);
        let stock = registry().id_of("Stock").unwrap();
        assert_eq!(a.states_of_type(stock).len(), 2);
        assert_eq!(pred_names(&a, "A"), vec!["A"]);
        assert_eq!(pred_names(&a, "B"), vec!["A", "B"]);
    }

    #[test]
    fn duplicate_variable_rejected() {
        let p = PatternExpr::seq(vec![leaf("A"), leaf("A")]);
        assert!(Automaton::build(&p, &registry()).is_err());
    }

    #[test]
    fn unknown_type_rejected() {
        let p = leaf("Nope").plus();
        let err = Automaton::build(&p, &registry()).unwrap_err();
        assert!(err.to_string().contains("unknown event type"));
    }

    #[test]
    fn negation_tags_crossing_edge_only() {
        // SEQ(A, NOT C, B)+: the A→B edge carries the negation, the outer
        // loop edge B→A does not.
        let p = PatternExpr::seq(vec![leaf("A"), leaf("C").not(), leaf("B")]).plus();
        let a = Automaton::build(&p, &registry()).unwrap();
        assert_eq!(a.num_negated(), 1);
        let sa = a.state_of_var("A").unwrap();
        let sb = a.state_of_var("B").unwrap();
        let ab = a.edge(sa, sb).unwrap();
        assert_eq!(ab.negations.len(), 1);
        let ba = a.edge(sb, sa).unwrap();
        assert!(ba.negations.is_empty());
        let c = registry().id_of("C").unwrap();
        assert_eq!(a.negations_of_type(c).len(), 1);
    }

    #[test]
    fn nested_kleene_edges() {
        // ((A+ B)+ C)+ style nesting: SEQ(SEQ(A+, B)+, C)+
        let p = PatternExpr::seq(vec![
            PatternExpr::seq(vec![leaf("A").plus(), leaf("B")]).plus(),
            leaf("C"),
        ])
        .plus();
        let a = Automaton::build(&p, &registry()).unwrap();
        assert_eq!(pred_names(&a, "A"), vec!["A", "B", "C"]);
        assert_eq!(pred_names(&a, "B"), vec!["A"]);
        assert_eq!(pred_names(&a, "C"), vec!["B"]);
    }

    #[test]
    fn relevant_types_includes_negated() {
        let p = PatternExpr::seq(vec![leaf("A"), leaf("C").not(), leaf("B")]);
        let a = Automaton::build(&p, &registry()).unwrap();
        let reg = registry();
        let mut want = vec![
            reg.id_of("A").unwrap(),
            reg.id_of("B").unwrap(),
            reg.id_of("C").unwrap(),
        ];
        want.sort_unstable();
        assert_eq!(a.relevant_types(), want);
    }
}
