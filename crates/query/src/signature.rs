//! Canonical query signatures for multi-query sharing.
//!
//! Two queries that differ only in their pattern variable names compile to
//! runtimes that produce byte-identical results: variable names label
//! automaton states but never appear in window results (groups and
//! aggregate values are attribute-level). [`canonical_signature`] renames
//! the pattern variables to `V0, V1, ...` in left-to-right pattern order —
//! consistently across the pattern, predicates, aggregates and dotted
//! `GROUP-BY`/`RETURN` attributes — and prints the canonical query text.
//! Equal signatures ⇒ sharable: one physical run can serve all roster
//! entries with that signature (the session planner in `cogra-core` builds
//! the factoring; see `SharedPlan` there).

use crate::ast::{AggCall, Leaf, PatternExpr, PredicateExpr, Query, ReturnItem};

/// The canonical signature of a query: its text after canonical variable
/// renaming. Everything that affects execution — pattern shape and event
/// types, semantics, predicates, grouping, window — is part of the
/// signature; variable spelling is not.
///
/// ```
/// use cogra_query::{parse, signature::canonical_signature};
/// let a = parse("RETURN COUNT(X) PATTERN Stock X+ WHERE X.v > 1 WITHIN 10 SLIDE 10").unwrap();
/// let b = parse("RETURN COUNT(Y) PATTERN Stock Y+ WHERE Y.v > 1 WITHIN 10 SLIDE 10").unwrap();
/// let c = parse("RETURN COUNT(Y) PATTERN Stock Y+ WHERE Y.v > 2 WITHIN 10 SLIDE 10").unwrap();
/// assert_eq!(canonical_signature(&a), canonical_signature(&b));
/// assert_ne!(canonical_signature(&a), canonical_signature(&c));
/// ```
pub fn canonical_signature(query: &Query) -> String {
    let mut map: Vec<(String, String)> = Vec::new();
    let pattern = rename_pattern(&query.pattern, &mut map);
    let rename = |var: &str| -> String {
        map.iter()
            .find(|(from, _)| from == var)
            .map(|(_, to)| to.clone())
            .unwrap_or_else(|| var.to_string())
    };
    let rename_dotted = |name: &str| -> String {
        match name.split_once('.') {
            Some((var, attr)) => format!("{}.{attr}", rename(var)),
            None => name.to_string(),
        }
    };
    let ret = query
        .ret
        .iter()
        .map(|item| match item {
            ReturnItem::Attr(a) => ReturnItem::Attr(rename_dotted(a)),
            ReturnItem::Agg(call) => ReturnItem::Agg(match call {
                AggCall::CountStar => AggCall::CountStar,
                AggCall::CountVar(v) => AggCall::CountVar(rename(v)),
                AggCall::Min(v, a) => AggCall::Min(rename(v), a.clone()),
                AggCall::Max(v, a) => AggCall::Max(rename(v), a.clone()),
                AggCall::Sum(v, a) => AggCall::Sum(rename(v), a.clone()),
                AggCall::Avg(v, a) => AggCall::Avg(rename(v), a.clone()),
            }),
        })
        .collect();
    let predicates = query
        .predicates
        .iter()
        .map(|p| match p {
            PredicateExpr::Equivalence { attr } => {
                PredicateExpr::Equivalence { attr: attr.clone() }
            }
            PredicateExpr::Local { lhs, op, rhs } => PredicateExpr::Local {
                lhs: crate::ast::AttrRef {
                    var: rename(&lhs.var),
                    attr: lhs.attr.clone(),
                    next: lhs.next,
                },
                op: *op,
                rhs: rhs.clone(),
            },
            PredicateExpr::Adjacent { lhs, op, rhs } => PredicateExpr::Adjacent {
                lhs: crate::ast::AttrRef {
                    var: rename(&lhs.var),
                    attr: lhs.attr.clone(),
                    next: lhs.next,
                },
                op: *op,
                rhs: crate::ast::AttrRef {
                    var: rename(&rhs.var),
                    attr: rhs.attr.clone(),
                    next: rhs.next,
                },
            },
        })
        .collect();
    let group_by = query.group_by.iter().map(|g| rename_dotted(g)).collect();
    Query {
        ret,
        pattern,
        semantics: query.semantics,
        predicates,
        group_by,
        window: query.window,
    }
    .to_string()
}

/// Rename pattern variables to `V<n>` in left-to-right order. A variable
/// seen before reuses its canonical name (the same surface variable is the
/// same logical variable wherever it recurs).
fn rename_pattern(p: &PatternExpr, map: &mut Vec<(String, String)>) -> PatternExpr {
    match p {
        PatternExpr::Leaf(l) => PatternExpr::Leaf(rename_leaf(l, map)),
        PatternExpr::Not(inner) => match inner.as_ref() {
            // Negated leaves carry variables too (predicates may target
            // them); rename through the same map.
            PatternExpr::Leaf(l) => PatternExpr::Leaf(rename_leaf(l, map)).not(),
            other => rename_pattern(other, map).not(),
        },
        PatternExpr::Plus(q) => rename_pattern(q, map).plus(),
        PatternExpr::Star(q) => rename_pattern(q, map).star(),
        PatternExpr::Opt(q) => rename_pattern(q, map).opt(),
        PatternExpr::Seq(qs) => {
            PatternExpr::Seq(qs.iter().map(|q| rename_pattern(q, map)).collect())
        }
        PatternExpr::Or(qs) => PatternExpr::Or(qs.iter().map(|q| rename_pattern(q, map)).collect()),
    }
}

fn rename_leaf(l: &Leaf, map: &mut Vec<(String, String)>) -> Leaf {
    let canon = match map.iter().find(|(from, _)| *from == l.var) {
        Some((_, to)) => to.clone(),
        None => {
            let to = format!("V{}", map.len());
            map.push((l.var.clone(), to.clone()));
            to
        }
    };
    Leaf::aliased(&l.event_type, &canon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn sig(src: &str) -> String {
        canonical_signature(&parse(src).unwrap())
    }

    #[test]
    fn renaming_is_invisible() {
        let a = sig(
            "RETURN sector, COUNT(*), AVG(B.price) PATTERN SEQ(Stock A+, Stock B+) \
             SEMANTICS ANY WHERE [company] AND A.price > NEXT(A).price \
             GROUP-BY sector, A.company WITHIN 10 SLIDE 10",
        );
        let b = sig(
            "RETURN sector, COUNT(*), AVG(Y.price) PATTERN SEQ(Stock X+, Stock Y+) \
             SEMANTICS ANY WHERE [company] AND X.price > NEXT(X).price \
             GROUP-BY sector, X.company WITHIN 10 SLIDE 10",
        );
        assert_eq!(a, b);
    }

    #[test]
    fn identical_texts_share() {
        let q = "RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10";
        assert_eq!(sig(q), sig(q));
    }

    #[test]
    fn every_execution_knob_separates() {
        let base = "RETURN COUNT(*) PATTERN Stock A+ SEMANTICS ANY \
                    WHERE A.price > 1 GROUP-BY sector WITHIN 10 SLIDE 10";
        for other in [
            // different aggregate
            "RETURN COUNT(A) PATTERN Stock A+ SEMANTICS ANY \
             WHERE A.price > 1 GROUP-BY sector WITHIN 10 SLIDE 10",
            // different event type
            "RETURN COUNT(*) PATTERN Trade A+ SEMANTICS ANY \
             WHERE A.price > 1 GROUP-BY sector WITHIN 10 SLIDE 10",
            // different semantics
            "RETURN COUNT(*) PATTERN Stock A+ SEMANTICS NEXT \
             WHERE A.price > 1 GROUP-BY sector WITHIN 10 SLIDE 10",
            // different predicate constant
            "RETURN COUNT(*) PATTERN Stock A+ SEMANTICS ANY \
             WHERE A.price > 2 GROUP-BY sector WITHIN 10 SLIDE 10",
            // different grouping
            "RETURN COUNT(*) PATTERN Stock A+ SEMANTICS ANY \
             WHERE A.price > 1 GROUP-BY company WITHIN 10 SLIDE 10",
            // different window
            "RETURN COUNT(*) PATTERN Stock A+ SEMANTICS ANY \
             WHERE A.price > 1 GROUP-BY sector WITHIN 10 SLIDE 5",
            // different pattern shape
            "RETURN COUNT(*) PATTERN SEQ(Stock A+, Stock B) SEMANTICS ANY \
             WHERE A.price > 1 GROUP-BY sector WITHIN 10 SLIDE 10",
        ] {
            assert_ne!(sig(base), sig(other), "{other}");
        }
    }

    #[test]
    fn variable_attribute_names_still_matter() {
        // Renaming covers pattern variables, never attribute names.
        let a = sig("RETURN COUNT(*) PATTERN Stock A+ WHERE A.price > 1 WITHIN 10 SLIDE 10");
        let b = sig("RETURN COUNT(*) PATTERN Stock A+ WHERE A.volume > 1 WITHIN 10 SLIDE 10");
        assert_ne!(a, b);
    }

    #[test]
    fn signature_is_reparseable() {
        let s = sig(
            "RETURN patient, MIN(M.rate) PATTERN Measurement M+ SEMANTICS contiguous \
             WHERE [patient] AND M.rate < NEXT(M).rate GROUP-BY patient \
             WITHIN 10 minutes SLIDE 30 seconds",
        );
        let reparsed = parse(&s).unwrap();
        assert_eq!(canonical_signature(&reparsed), s);
    }
}
