//! Static Query Analyzer (§3): lowering a surface [`Query`] into the
//! executable [`CompiledQuery`].
//!
//! Compilation (1) rewrites the pattern into disjuncts of core patterns
//! (§8), (2) builds one [`Automaton`] per disjunct (§3.1), (3) classifies
//! the `WHERE` predicates into equivalence / local / adjacent classes
//! (§3.2), resolving variables to automaton states and attribute names to
//! positional ids, and (4) selects the aggregation granularity (§3.3,
//! Table 4) together with the per-state event-grained set `Te` of
//! Theorem 5.1.

use crate::ast::{AggCall, CmpOp, PatternExpr, PredicateExpr, Query, ReturnItem, Semantics};
use crate::automaton::{Automaton, NegId, StateId};
use crate::error::{QueryError, QueryResult};
use crate::rewrite;
use cogra_events::{AttrId, TypeRegistry, Value, ValueKind, WindowSpec};
use std::collections::HashMap;

/// The granularity at which trend aggregates are maintained (Figure 1,
/// Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// One aggregate per pattern — NEXT and CONT semantics (Algorithm 3).
    Pattern,
    /// One aggregate per event type (state) — ANY without predicates on
    /// adjacent events (Algorithm 1).
    Type,
    /// Aggregates per type for `Tt` and per matched event for `Te` — ANY
    /// with predicates on adjacent events (Algorithm 2).
    Mixed,
}

impl std::fmt::Display for Granularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Granularity::Pattern => write!(f, "pattern"),
            Granularity::Type => write!(f, "type"),
            Granularity::Mixed => write!(f, "mixed"),
        }
    }
}

/// Select the aggregation granularity per Table 4.
pub fn select_granularity(semantics: Semantics, has_adjacent_predicates: bool) -> Granularity {
    match (semantics, has_adjacent_predicates) {
        (Semantics::Next | Semantics::Cont, _) => Granularity::Pattern,
        (Semantics::Any, false) => Granularity::Type,
        (Semantics::Any, true) => Granularity::Mixed,
    }
}

/// A compiled local predicate: `event.attr op value` (§3.2 "predicates on
/// single events" that filter, as opposed to partition).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalFilter {
    /// Attribute to test.
    pub attr: AttrId,
    /// Comparison operator.
    pub op: CmpOp,
    /// Constant operand.
    pub value: Value,
}

impl LocalFilter {
    /// Whether `event` satisfies this filter.
    #[inline]
    pub fn eval(&self, event: &cogra_events::Event) -> bool {
        self.op.eval(event.attr(self.attr).compare(&self.value))
    }
}

/// A compiled predicate on adjacent events: for an adjacent pair
/// `(ep bound to pred, e bound to succ)`, require
/// `ep.pred_attr op e.succ_attr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledAdjacent {
    /// State the predecessor event is bound to.
    pub pred: StateId,
    /// Attribute of the predecessor event.
    pub pred_attr: AttrId,
    /// State the successor event is bound to.
    pub succ: StateId,
    /// Attribute of the successor event.
    pub succ_attr: AttrId,
    /// Comparison operator.
    pub op: CmpOp,
}

impl CompiledAdjacent {
    /// Whether the adjacent pair `(ep, e)` satisfies this predicate.
    #[inline]
    pub fn eval(&self, ep: &cogra_events::Event, e: &cogra_events::Event) -> bool {
        self.op
            .eval(ep.attr(self.pred_attr).compare(e.attr(self.succ_attr)))
    }
}

/// Aggregation function kind, with its variable/attribute resolved to
/// automaton states per disjunct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)`.
    CountStar,
    /// `COUNT(V)`.
    CountVar,
    /// `MIN(V.attr)`.
    Min,
    /// `MAX(V.attr)`.
    Max,
    /// `SUM(V.attr)`.
    Sum,
    /// `AVG(V.attr)`.
    Avg,
}

/// One aggregate of the `RETURN` clause, resolved against a disjunct's
/// automaton. `targets` lists the states whose events feed the aggregate
/// (several, when min-length unrolling duplicated a variable); empty when
/// the variable does not occur in this disjunct, in which case the
/// disjunct contributes the aggregation identity.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledAgg {
    /// Function kind.
    pub func: AggFunc,
    /// `(state, attr)` pairs feeding this aggregate; `attr` is `None` for
    /// the COUNT family.
    pub targets: Vec<(StateId, Option<AttrId>)>,
}

/// One compiled pattern disjunct: automaton + resolved predicates +
/// granularity configuration.
#[derive(Debug, Clone)]
pub struct CompiledDisjunct {
    /// The FSA (§3.1).
    pub automaton: Automaton,
    /// Local filters per state (indexed by `StateId`).
    pub locals: Vec<Vec<LocalFilter>>,
    /// Local filters per negated variable (indexed by `NegId`).
    pub neg_locals: Vec<Vec<LocalFilter>>,
    /// All predicates on adjacent events.
    pub adjacents: Vec<CompiledAdjacent>,
    /// Indexes into `adjacents`, keyed by `(pred, succ)` state pair.
    pub adj_by_pair: HashMap<(StateId, StateId), Vec<usize>>,
    /// Per state: does it belong to `Te` (event-grained, Theorem 5.1)?
    pub event_grained: Vec<bool>,
    /// Selected granularity (Table 4).
    pub granularity: Granularity,
    /// Aggregates aligned with [`CompiledQuery::agg_calls`].
    pub aggs: Vec<CompiledAgg>,
}

impl CompiledDisjunct {
    /// Whether `event` passes the local filters of `state`.
    #[inline]
    pub fn locals_pass(&self, state: StateId, event: &cogra_events::Event) -> bool {
        self.locals[state.index()].iter().all(|f| f.eval(event))
    }

    /// Whether `event` passes the local filters of negated variable `neg`.
    #[inline]
    pub fn neg_locals_pass(&self, neg: NegId, event: &cogra_events::Event) -> bool {
        self.neg_locals[neg.index()].iter().all(|f| f.eval(event))
    }

    /// Whether the adjacent pair `(ep@pred, e@succ)` satisfies every
    /// adjacent predicate attached to that state pair (Definition 7
    /// condition 3).
    #[inline]
    pub fn adjacency_predicates_pass(
        &self,
        pred: StateId,
        succ: StateId,
        ep: &cogra_events::Event,
        e: &cogra_events::Event,
    ) -> bool {
        match self.adj_by_pair.get(&(pred, succ)) {
            None => true,
            Some(ids) => ids.iter().all(|&i| self.adjacents[i].eval(ep, e)),
        }
    }
}

/// A fully compiled event trend aggregation query.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// Event matching semantics.
    pub semantics: Semantics,
    /// Sliding window.
    pub window: WindowSpec,
    /// Partition-key attribute names: `GROUP-BY` attributes plus
    /// equivalence-predicate attributes (§7) — both partition the stream
    /// into non-overlapping sub-streams. The first
    /// [`group_prefix`](Self::group_prefix) entries are the `GROUP-BY`
    /// attributes; results are emitted per distinct value of that prefix.
    pub partition_attrs: Vec<String>,
    /// Number of leading `partition_attrs` that form the output group key.
    pub group_prefix: usize,
    /// The surface aggregate calls, in `RETURN` order.
    pub agg_calls: Vec<AggCall>,
    /// Compiled disjuncts; results combine across them (§8).
    pub disjuncts: Vec<CompiledDisjunct>,
}

impl CompiledQuery {
    /// The coarsest granularity across disjuncts (for reporting).
    pub fn granularity(&self) -> Granularity {
        let mut g = Granularity::Pattern;
        for d in &self.disjuncts {
            g = match (g, d.granularity) {
                (_, Granularity::Mixed) | (Granularity::Mixed, _) => Granularity::Mixed,
                (_, Granularity::Type) | (Granularity::Type, _) => Granularity::Type,
                _ => Granularity::Pattern,
            };
        }
        g
    }

    /// Resolve the partition attributes for every registered type. Types
    /// missing any partition attribute map to `None`: their events cannot
    /// be assigned to a partition and are dropped by the engines
    /// (documented substitution; see DESIGN.md).
    pub fn partition_attr_ids(&self, registry: &TypeRegistry) -> Vec<Option<Vec<AttrId>>> {
        registry
            .iter()
            .map(|(_, schema)| {
                self.partition_attrs
                    .iter()
                    .map(|a| schema.attr(a))
                    .collect::<Option<Vec<AttrId>>>()
            })
            .collect()
    }
}

/// Compile a surface query against a type registry.
pub fn compile(query: &Query, registry: &TypeRegistry) -> QueryResult<CompiledQuery> {
    // -- Partition attributes: GROUP-BY ∪ equivalence predicates (§7).
    let mut partition_attrs: Vec<String> = Vec::new();
    fn push_attr(attrs: &mut Vec<String>, name: &str) {
        let name = strip_var_prefix(name);
        if !attrs.iter().any(|a| a == name) {
            attrs.push(name.to_string());
        }
    }
    for g in &query.group_by {
        push_attr(&mut partition_attrs, g);
    }
    let group_prefix = partition_attrs.len();
    for p in &query.predicates {
        if let PredicateExpr::Equivalence { attr } = p {
            push_attr(&mut partition_attrs, attr);
        }
    }

    // -- RETURN attributes must come from the grouping key.
    for item in &query.ret {
        if let ReturnItem::Attr(a) = item {
            let a = strip_var_prefix(a);
            if !partition_attrs.iter().any(|p| p == a) {
                return Err(QueryError::compile(format!(
                    "RETURN attribute `{a}` is not a GROUP-BY or equivalence attribute"
                )));
            }
        }
    }

    let agg_calls: Vec<AggCall> = query.aggregates().cloned().collect();
    if agg_calls.is_empty() {
        return Err(QueryError::compile(
            "RETURN clause must contain at least one aggregation function",
        ));
    }

    let disjunct_patterns = rewrite::to_disjuncts(&query.pattern)?;
    let mut disjuncts = Vec::with_capacity(disjunct_patterns.len());
    for pattern in &disjunct_patterns {
        disjuncts.push(compile_disjunct(pattern, query, &agg_calls, registry)?);
    }

    Ok(CompiledQuery {
        semantics: query.semantics,
        window: query.window,
        partition_attrs,
        group_prefix,
        agg_calls,
        disjuncts,
    })
}

/// `A.company` → `company`; `sector` → `sector`.
fn strip_var_prefix(name: &str) -> &str {
    match name.split_once('.') {
        Some((_, attr)) => attr,
        None => name,
    }
}

fn kinds_comparable(a: ValueKind, b: ValueKind) -> bool {
    use ValueKind::*;
    matches!(
        (a, b),
        (Int | Float, Int | Float) | (Str, Str) | (Bool, Bool)
    )
}

fn compile_disjunct(
    pattern: &PatternExpr,
    query: &Query,
    agg_calls: &[AggCall],
    registry: &TypeRegistry,
) -> QueryResult<CompiledDisjunct> {
    let automaton = Automaton::build(pattern, registry)?;

    // A variable reference `A` resolves to the state named `A` plus any
    // `A__unrollN` copies produced by the minimal-trend-length rewrite.
    let states_for_var = |var: &str| -> Vec<StateId> {
        let prefix = format!("{var}__unroll");
        automaton
            .states()
            .filter(|(_, v)| v.name == var || v.name.starts_with(&prefix))
            .map(|(s, _)| s)
            .collect()
    };

    let resolve_attr = |var: &str, attr: &str, state: StateId| -> QueryResult<AttrId> {
        let type_id = automaton.state(state).type_id;
        let schema = registry.schema(type_id);
        schema.attr(attr).ok_or_else(|| {
            QueryError::compile(format!(
                "type `{}` (variable `{var}`) has no attribute `{attr}`",
                schema.name()
            ))
        })
    };

    let mut locals: Vec<Vec<LocalFilter>> = vec![Vec::new(); automaton.num_states()];
    let mut neg_locals: Vec<Vec<LocalFilter>> = vec![Vec::new(); automaton.num_negated()];
    let mut adjacents: Vec<CompiledAdjacent> = Vec::new();

    for p in &query.predicates {
        match p {
            PredicateExpr::Equivalence { .. } => {} // handled at query level
            PredicateExpr::Local { lhs, op, rhs } => {
                if lhs.next {
                    return Err(QueryError::compile(format!(
                        "NEXT({}) cannot be compared against a constant",
                        lhs.var
                    )));
                }
                let value = rhs.to_value();
                let states = states_for_var(&lhs.var);
                if states.is_empty() {
                    // Maybe a negated variable; otherwise the variable is
                    // absent from this disjunct (dropped by sugar
                    // expansion) and the predicate is vacuous here.
                    if let Some(neg) = automaton.negated_of_var(&lhs.var) {
                        let type_id = automaton.negated_var(neg).type_id;
                        let schema = registry.schema(type_id);
                        let attr = schema.attr(&lhs.attr).ok_or_else(|| {
                            QueryError::compile(format!(
                                "type `{}` has no attribute `{}`",
                                schema.name(),
                                lhs.attr
                            ))
                        })?;
                        check_kinds(schema.attr_kind(attr), &value, &lhs.attr)?;
                        neg_locals[neg.index()].push(LocalFilter {
                            attr,
                            op: *op,
                            value,
                        });
                    }
                    continue;
                }
                for state in states {
                    let attr = resolve_attr(&lhs.var, &lhs.attr, state)?;
                    let kind = registry
                        .schema(automaton.state(state).type_id)
                        .attr_kind(attr);
                    check_kinds(kind, &value, &lhs.attr)?;
                    locals[state.index()].push(LocalFilter {
                        attr,
                        op: *op,
                        value: value.clone(),
                    });
                }
            }
            PredicateExpr::Adjacent { lhs, op, rhs } => {
                // Orient the predicate: the NEXT(...) side (or by
                // convention the right-hand side) is the successor.
                let (pred_ref, succ_ref, op) = match (lhs.next, rhs.next) {
                    (true, true) => {
                        return Err(QueryError::compile(
                            "at most one side of a predicate may be NEXT(...)",
                        ))
                    }
                    (false, true) => (lhs, rhs, *op),
                    (true, false) => (rhs, lhs, op.flipped()),
                    (false, false) => {
                        if lhs.var == rhs.var {
                            return Err(QueryError::compile(format!(
                                "predicate relates `{}` to itself; use NEXT({}) for adjacent occurrences",
                                lhs.var, lhs.var
                            )));
                        }
                        (lhs, rhs, *op)
                    }
                };
                let pred_states = states_for_var(&pred_ref.var);
                let succ_states = states_for_var(&succ_ref.var);
                if pred_states.is_empty() || succ_states.is_empty() {
                    continue; // variable absent from this disjunct
                }
                // Attach to every existing pred→succ edge; if none exists
                // in that orientation but the reverse does, flip.
                let mut attached = false;
                for &ps in &pred_states {
                    for &ss in &succ_states {
                        if automaton.is_pred(ps, ss) {
                            adjacents.push(CompiledAdjacent {
                                pred: ps,
                                pred_attr: resolve_attr(&pred_ref.var, &pred_ref.attr, ps)?,
                                succ: ss,
                                succ_attr: resolve_attr(&succ_ref.var, &succ_ref.attr, ss)?,
                                op,
                            });
                            attached = true;
                        }
                    }
                }
                if !attached {
                    let mut flipped = false;
                    for &ss in &succ_states {
                        for &ps in &pred_states {
                            if automaton.is_pred(ss, ps) {
                                adjacents.push(CompiledAdjacent {
                                    pred: ss,
                                    pred_attr: resolve_attr(&succ_ref.var, &succ_ref.attr, ss)?,
                                    succ: ps,
                                    succ_attr: resolve_attr(&pred_ref.var, &pred_ref.attr, ps)?,
                                    op: op.flipped(),
                                });
                                flipped = true;
                            }
                        }
                    }
                    if !flipped {
                        return Err(QueryError::compile(format!(
                            "predicate relates `{}` and `{}`, but those variables are never adjacent in the pattern",
                            pred_ref.var, succ_ref.var
                        )));
                    }
                }
            }
        }
    }

    let mut adj_by_pair: HashMap<(StateId, StateId), Vec<usize>> = HashMap::new();
    for (i, a) in adjacents.iter().enumerate() {
        adj_by_pair.entry((a.pred, a.succ)).or_default().push(i);
    }

    // -- Te (Theorem 5.1): state E is event-grained iff some adjacent
    // predicate tests E's events as predecessors of a later state.
    let mut event_grained = vec![false; automaton.num_states()];
    for a in &adjacents {
        event_grained[a.pred.index()] = true;
    }

    let granularity = select_granularity(query.semantics, !adjacents.is_empty());

    // -- Aggregates.
    let mut aggs = Vec::with_capacity(agg_calls.len());
    for call in agg_calls {
        let (func, var, attr) = match call {
            AggCall::CountStar => (AggFunc::CountStar, None, None),
            AggCall::CountVar(v) => (AggFunc::CountVar, Some(v), None),
            AggCall::Min(v, a) => (AggFunc::Min, Some(v), Some(a)),
            AggCall::Max(v, a) => (AggFunc::Max, Some(v), Some(a)),
            AggCall::Sum(v, a) => (AggFunc::Sum, Some(v), Some(a)),
            AggCall::Avg(v, a) => (AggFunc::Avg, Some(v), Some(a)),
        };
        let targets = match var {
            None => Vec::new(),
            Some(v) => {
                let states = states_for_var(v);
                if states.is_empty() && automaton.negated_of_var(v).is_some() {
                    return Err(QueryError::compile(format!(
                        "cannot aggregate over negated variable `{v}`"
                    )));
                }
                let mut targets = Vec::with_capacity(states.len());
                for s in states {
                    let attr_id = match attr {
                        Some(a) => {
                            let id = resolve_attr(v, a, s)?;
                            let kind = registry.schema(automaton.state(s).type_id).attr_kind(id);
                            if !matches!(kind, ValueKind::Int | ValueKind::Float) {
                                return Err(QueryError::compile(format!(
                                    "aggregate {call} requires a numeric attribute, `{a}` is {kind}"
                                )));
                            }
                            Some(id)
                        }
                        None => None,
                    };
                    targets.push((s, attr_id));
                }
                targets
            }
        };
        // A variable that exists in the surface pattern but not in this
        // disjunct (dropped by star/optional expansion) yields empty
        // targets: the disjunct contributes the aggregation identity.
        if func != AggFunc::CountStar && targets.is_empty() && !states_exist_somewhere(var, query) {
            return Err(QueryError::compile(format!(
                "aggregate references unknown variable `{}`",
                var.map(String::as_str).unwrap_or("?")
            )));
        }
        aggs.push(CompiledAgg { func, targets });
    }

    Ok(CompiledDisjunct {
        automaton,
        locals,
        neg_locals,
        adjacents,
        adj_by_pair,
        event_grained,
        granularity,
        aggs,
    })
}

fn check_kinds(attr_kind: ValueKind, value: &Value, attr: &str) -> QueryResult<()> {
    if !kinds_comparable(attr_kind, value.kind()) {
        return Err(QueryError::compile(format!(
            "attribute `{attr}` of kind {attr_kind} is not comparable to a {} literal",
            value.kind()
        )));
    }
    Ok(())
}

fn states_exist_somewhere(var: Option<&String>, query: &Query) -> bool {
    let Some(var) = var else { return false };
    fn contains(p: &PatternExpr, var: &str) -> bool {
        match p {
            PatternExpr::Leaf(l) => l.var == var,
            PatternExpr::Not(p)
            | PatternExpr::Plus(p)
            | PatternExpr::Star(p)
            | PatternExpr::Opt(p) => contains(p, var),
            PatternExpr::Seq(ps) | PatternExpr::Or(ps) => ps.iter().any(|q| contains(q, var)),
        }
    }
    contains(&query.pattern, var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AttrRef, Leaf, Literal};
    use cogra_events::ValueKind;

    fn registry() -> TypeRegistry {
        let mut r = TypeRegistry::new();
        r.register_type(
            "Stock",
            vec![
                ("company", ValueKind::Int),
                ("sector", ValueKind::Int),
                ("price", ValueKind::Float),
            ],
        );
        r.register_type(
            "Measurement",
            vec![
                ("patient", ValueKind::Int),
                ("activity", ValueKind::Str),
                ("rate", ValueKind::Int),
            ],
        );
        r
    }

    fn q3_query() -> Query {
        // Simplified q3: SEQ(Stock A+, Stock B+) under ANY with a
        // predicate on adjacent A events.
        Query {
            ret: vec![
                ReturnItem::Attr("company".into()),
                ReturnItem::Agg(AggCall::Avg("B".into(), "price".into())),
            ],
            pattern: PatternExpr::seq(vec![
                PatternExpr::aliased("Stock", "A").plus(),
                PatternExpr::aliased("Stock", "B").plus(),
            ]),
            semantics: Semantics::Any,
            predicates: vec![
                PredicateExpr::Equivalence {
                    attr: "company".into(),
                },
                PredicateExpr::Adjacent {
                    lhs: AttrRef {
                        var: "A".into(),
                        attr: "price".into(),
                        next: false,
                    },
                    op: CmpOp::Gt,
                    rhs: AttrRef {
                        var: "A".into(),
                        attr: "price".into(),
                        next: true,
                    },
                },
            ],
            group_by: vec!["sector".into()],
            window: WindowSpec::new(600, 10),
        }
    }

    #[test]
    fn granularity_table4() {
        assert_eq!(select_granularity(Semantics::Any, false), Granularity::Type);
        assert_eq!(select_granularity(Semantics::Any, true), Granularity::Mixed);
        assert_eq!(
            select_granularity(Semantics::Next, false),
            Granularity::Pattern
        );
        assert_eq!(
            select_granularity(Semantics::Next, true),
            Granularity::Pattern
        );
        assert_eq!(
            select_granularity(Semantics::Cont, false),
            Granularity::Pattern
        );
        assert_eq!(
            select_granularity(Semantics::Cont, true),
            Granularity::Pattern
        );
    }

    #[test]
    fn q3_compiles_to_mixed_granularity() {
        let cq = compile(&q3_query(), &registry()).unwrap();
        assert_eq!(cq.disjuncts.len(), 1);
        let d = &cq.disjuncts[0];
        assert_eq!(d.granularity, Granularity::Mixed);
        // The predicate constrains A as predecessor of A (self-loop) —
        // only A is event-grained.
        let a = d.automaton.state_of_var("A").unwrap();
        let b = d.automaton.state_of_var("B").unwrap();
        assert!(d.event_grained[a.index()]);
        assert!(!d.event_grained[b.index()]);
        // Partition key: group-by sector ∪ equivalence company.
        assert_eq!(cq.partition_attrs, vec!["sector", "company"]);
    }

    #[test]
    fn next_side_is_successor() {
        let cq = compile(&q3_query(), &registry()).unwrap();
        let d = &cq.disjuncts[0];
        assert_eq!(d.adjacents.len(), 1);
        let adj = d.adjacents[0];
        let a = d.automaton.state_of_var("A").unwrap();
        assert_eq!(adj.pred, a);
        assert_eq!(adj.succ, a);
        assert_eq!(adj.op, CmpOp::Gt);
    }

    #[test]
    fn q1_compiles_to_pattern_granularity_under_cont() {
        let q = Query {
            ret: vec![
                ReturnItem::Attr("patient".into()),
                ReturnItem::Agg(AggCall::Min("M".into(), "rate".into())),
                ReturnItem::Agg(AggCall::Max("M".into(), "rate".into())),
            ],
            pattern: PatternExpr::Leaf(Leaf::aliased("Measurement", "M")).plus(),
            semantics: Semantics::Cont,
            predicates: vec![
                PredicateExpr::Equivalence {
                    attr: "patient".into(),
                },
                PredicateExpr::Adjacent {
                    lhs: AttrRef {
                        var: "M".into(),
                        attr: "rate".into(),
                        next: false,
                    },
                    op: CmpOp::Lt,
                    rhs: AttrRef {
                        var: "M".into(),
                        attr: "rate".into(),
                        next: true,
                    },
                },
                PredicateExpr::Local {
                    lhs: AttrRef {
                        var: "M".into(),
                        attr: "activity".into(),
                        next: false,
                    },
                    op: CmpOp::Eq,
                    rhs: Literal::Str("passive".into()),
                },
            ],
            group_by: vec!["patient".into()],
            window: WindowSpec::new(600, 30),
        };
        let cq = compile(&q, &registry()).unwrap();
        assert_eq!(cq.granularity(), Granularity::Pattern);
        let d = &cq.disjuncts[0];
        let m = d.automaton.state_of_var("M").unwrap();
        assert_eq!(d.locals[m.index()].len(), 1);
        assert_eq!(cq.partition_attrs, vec!["patient"]);
    }

    #[test]
    fn any_without_adjacent_predicates_is_type_grained() {
        let mut q = q3_query();
        q.predicates
            .retain(|p| matches!(p, PredicateExpr::Equivalence { .. }));
        let cq = compile(&q, &registry()).unwrap();
        assert_eq!(cq.granularity(), Granularity::Type);
    }

    #[test]
    fn return_attr_must_be_grouping_attr() {
        let mut q = q3_query();
        q.ret.push(ReturnItem::Attr("price".into()));
        let err = compile(&q, &registry()).unwrap_err();
        assert!(err.to_string().contains("GROUP-BY"));
    }

    #[test]
    fn aggregate_requires_numeric_attr() {
        let q = Query {
            ret: vec![ReturnItem::Agg(AggCall::Sum("M".into(), "activity".into()))],
            pattern: PatternExpr::Leaf(Leaf::aliased("Measurement", "M")).plus(),
            semantics: Semantics::Any,
            predicates: vec![],
            group_by: vec![],
            window: WindowSpec::new(10, 10),
        };
        let err = compile(&q, &registry()).unwrap_err();
        assert!(err.to_string().contains("numeric"));
    }

    #[test]
    fn missing_aggregate_rejected() {
        let q = Query {
            ret: vec![],
            pattern: PatternExpr::leaf("Stock").plus(),
            semantics: Semantics::Any,
            predicates: vec![],
            group_by: vec![],
            window: WindowSpec::new(10, 10),
        };
        assert!(compile(&q, &registry()).is_err());
    }

    #[test]
    fn self_relating_predicate_without_next_rejected() {
        let mut q = q3_query();
        q.predicates.push(PredicateExpr::Adjacent {
            lhs: AttrRef {
                var: "B".into(),
                attr: "price".into(),
                next: false,
            },
            op: CmpOp::Lt,
            rhs: AttrRef {
                var: "B".into(),
                attr: "price".into(),
                next: false,
            },
        });
        let err = compile(&q, &registry()).unwrap_err();
        assert!(err.to_string().contains("NEXT"));
    }

    #[test]
    fn cross_variable_predicate_attaches_to_edge() {
        // A.price < B.price between adjacent A and B.
        let mut q = q3_query();
        q.predicates.push(PredicateExpr::Adjacent {
            lhs: AttrRef {
                var: "A".into(),
                attr: "price".into(),
                next: false,
            },
            op: CmpOp::Lt,
            rhs: AttrRef {
                var: "B".into(),
                attr: "price".into(),
                next: false,
            },
        });
        let cq = compile(&q, &registry()).unwrap();
        let d = &cq.disjuncts[0];
        let a = d.automaton.state_of_var("A").unwrap();
        let b = d.automaton.state_of_var("B").unwrap();
        assert!(d.adj_by_pair.contains_key(&(a, b)));
        // Now B is also... no: the pred side is A, so A stays in Te, B
        // still only appears as successor.
        assert!(d.event_grained[a.index()]);
    }

    #[test]
    fn reversed_cross_variable_predicate_is_flipped() {
        // B.price > A.price written "backwards": B never precedes A, so
        // the compiler flips it onto the A→B edge.
        let mut q = q3_query();
        q.predicates
            .retain(|p| matches!(p, PredicateExpr::Equivalence { .. }));
        q.predicates.push(PredicateExpr::Adjacent {
            lhs: AttrRef {
                var: "B".into(),
                attr: "price".into(),
                next: false,
            },
            op: CmpOp::Gt,
            rhs: AttrRef {
                var: "A".into(),
                attr: "price".into(),
                next: false,
            },
        });
        let cq = compile(&q, &registry()).unwrap();
        let d = &cq.disjuncts[0];
        let a = d.automaton.state_of_var("A").unwrap();
        let adj = d.adjacents.iter().find(|x| x.pred == a).unwrap();
        assert_eq!(adj.op, CmpOp::Lt); // flipped
    }

    #[test]
    fn star_disjuncts_share_agg_layout() {
        // SEQ(A*, B) under ANY: two disjuncts; COUNT(A) has targets only
        // in the first.
        let mut r = TypeRegistry::new();
        r.register_type("A", vec![("v", ValueKind::Int)]);
        r.register_type("B", vec![("v", ValueKind::Int)]);
        let q = Query {
            ret: vec![ReturnItem::Agg(AggCall::CountVar("A".into()))],
            pattern: PatternExpr::seq(vec![PatternExpr::leaf("A").star(), PatternExpr::leaf("B")]),
            semantics: Semantics::Any,
            predicates: vec![],
            group_by: vec![],
            window: WindowSpec::new(10, 10),
        };
        let cq = compile(&q, &r).unwrap();
        assert_eq!(cq.disjuncts.len(), 2);
        assert_eq!(cq.disjuncts[0].aggs[0].targets.len(), 1);
        assert_eq!(cq.disjuncts[1].aggs[0].targets.len(), 0);
    }

    #[test]
    fn partition_attr_ids_resolution() {
        let cq = compile(&q3_query(), &registry()).unwrap();
        let reg = registry();
        let ids = cq.partition_attr_ids(&reg);
        let stock = reg.id_of("Stock").unwrap();
        // Stock has sector + company.
        assert!(ids[stock.index()].is_some());
        // Measurement lacks them → None.
        let m = reg.id_of("Measurement").unwrap();
        assert!(ids[m.index()].is_none());
    }
}
