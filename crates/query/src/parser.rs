//! Recursive-descent parser for the paper's query language (Definition 6):
//!
//! ```text
//! RETURN    patient, MIN(M.rate), MAX(M.rate)
//! PATTERN   Measurement M+
//! SEMANTICS contiguous
//! WHERE     [patient] AND M.rate < NEXT(M).rate AND M.activity = passive
//! GROUP-BY  patient
//! WITHIN    10 minutes SLIDE 30 seconds
//! ```
//!
//! Keywords are case-insensitive. Bare identifiers in predicate value
//! position are string constants (`M.activity = passive`). Durations accept
//! `ticks`/`seconds`/`minutes`/`hours` units with one tick = one second.

use crate::ast::{
    AggCall, AttrRef, CmpOp, Leaf, Literal, PatternExpr, PredicateExpr, Query, ReturnItem,
    Semantics,
};
use crate::error::{QueryError, QueryResult};
use crate::lexer::{lex, Tok, Token};
use cogra_events::WindowSpec;

/// Parse a query text into its surface AST.
///
/// ```
/// use cogra_query::{parse, Semantics};
/// let q = parse(
///     "RETURN driver, COUNT(*) \
///      PATTERN SEQ(Accept, (SEQ(Call, Cancel))+, Finish) \
///      SEMANTICS skip-till-next-match \
///      WHERE [driver] GROUP-BY driver \
///      WITHIN 10 minutes SLIDE 30 seconds",
/// ).unwrap();
/// assert_eq!(q.semantics, Semantics::Next);
/// assert_eq!(q.window.within, 600);
/// ```
pub fn parse(src: &str) -> QueryResult<Query> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if let Some(t) = p.peek() {
        return Err(p.err_at(t.offset, format!("unexpected trailing {}", t.tok)));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn offset(&self) -> usize {
        self.peek().map_or_else(
            || self.tokens.last().map_or(0, |t| t.offset + 1),
            |t| t.offset,
        )
    }

    fn err_at(&self, offset: usize, message: String) -> QueryError {
        QueryError::Parse { offset, message }
    }

    fn err(&self, message: impl Into<String>) -> QueryError {
        self.err_at(self.offset(), message.into())
    }

    /// Consume a keyword (case-insensitive) or fail.
    fn expect_kw(&mut self, kw: &str) -> QueryResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Token {
            tok: Tok::Ident(s), ..
        }) = self.peek()
        {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token { tok: Tok::Ident(s), .. }) if s.eq_ignore_ascii_case(kw))
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek().map(|t| &t.tok) == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok) -> QueryResult<()> {
        if self.eat(&tok) {
            Ok(())
        } else {
            Err(self.err(format!("expected {tok}")))
        }
    }

    fn ident(&mut self, what: &str) -> QueryResult<String> {
        match self.next() {
            Some(Token {
                tok: Tok::Ident(s), ..
            }) => Ok(s),
            Some(t) => Err(self.err_at(t.offset, format!("expected {what}, found {}", t.tok))),
            None => Err(self.err(format!("expected {what}"))),
        }
    }

    // ---- query ----------------------------------------------------------

    fn query(&mut self) -> QueryResult<Query> {
        self.expect_kw("RETURN")?;
        let ret = self.return_items()?;
        self.expect_kw("PATTERN")?;
        let pattern = self.pattern()?;
        let semantics = if self.eat_kw("SEMANTICS") {
            self.semantics()?
        } else {
            Semantics::Any
        };
        let predicates = if self.eat_kw("WHERE") {
            self.predicates()?
        } else {
            Vec::new()
        };
        let group_by = if self.eat_kw("GROUP-BY") {
            self.attr_list()?
        } else {
            Vec::new()
        };
        self.expect_kw("WITHIN")?;
        let within = self.duration()?;
        self.expect_kw("SLIDE")?;
        let slide = self.duration()?;
        if within == 0 || slide == 0 {
            return Err(self.err("WITHIN and SLIDE must be positive"));
        }
        if slide > within {
            return Err(self.err("SLIDE must not exceed WITHIN (gaps would drop events)"));
        }
        Ok(Query {
            ret,
            pattern,
            semantics,
            predicates,
            group_by,
            window: WindowSpec::new(within, slide),
        })
    }

    fn return_items(&mut self) -> QueryResult<Vec<ReturnItem>> {
        let mut items = vec![self.return_item()?];
        while self.eat(&Tok::Comma) {
            items.push(self.return_item()?);
        }
        Ok(items)
    }

    fn return_item(&mut self) -> QueryResult<ReturnItem> {
        for (kw, ctor) in [
            ("COUNT", None),
            ("MIN", Some(AggCall::Min as fn(String, String) -> AggCall)),
            ("MAX", Some(AggCall::Max as fn(String, String) -> AggCall)),
            ("SUM", Some(AggCall::Sum as fn(String, String) -> AggCall)),
            ("AVG", Some(AggCall::Avg as fn(String, String) -> AggCall)),
        ] {
            if self.peek_kw(kw) && self.peek2().map(|t| &t.tok) == Some(&Tok::LParen) {
                self.pos += 2; // keyword + '('
                let call = match ctor {
                    None => {
                        if self.eat(&Tok::Star) {
                            AggCall::CountStar
                        } else {
                            AggCall::CountVar(self.ident("variable")?)
                        }
                    }
                    Some(make) => {
                        let var = self.ident("variable")?;
                        self.expect(Tok::Dot)?;
                        let attr = self.ident("attribute")?;
                        make(var, attr)
                    }
                };
                self.expect(Tok::RParen)?;
                return Ok(ReturnItem::Agg(call));
            }
        }
        // plain (possibly dotted) grouping attribute
        let first = self.ident("RETURN item")?;
        if self.eat(&Tok::Dot) {
            let attr = self.ident("attribute")?;
            Ok(ReturnItem::Attr(format!("{first}.{attr}")))
        } else {
            Ok(ReturnItem::Attr(first))
        }
    }

    fn semantics(&mut self) -> QueryResult<Semantics> {
        let s = self.ident("semantics")?;
        match s.to_ascii_lowercase().as_str() {
            "skip-till-any-match" | "any" => Ok(Semantics::Any),
            "skip-till-next-match" | "next" => Ok(Semantics::Next),
            "contiguous" | "cont" => Ok(Semantics::Cont),
            other => Err(self.err(format!(
                "unknown semantics `{other}` (expected contiguous, skip-till-next-match or skip-till-any-match)"
            ))),
        }
    }

    // ---- pattern --------------------------------------------------------

    fn pattern(&mut self) -> QueryResult<PatternExpr> {
        let mut p = self.pattern_primary()?;
        loop {
            if self.eat(&Tok::Plus) {
                p = p.plus();
            } else if self.eat(&Tok::Star) {
                p = p.star();
            } else if self.eat(&Tok::Question) {
                p = p.opt();
            } else {
                break;
            }
        }
        Ok(p)
    }

    fn pattern_primary(&mut self) -> QueryResult<PatternExpr> {
        if self.peek_kw("SEQ") {
            self.pos += 1;
            self.expect(Tok::LParen)?;
            let parts = self.pattern_list()?;
            self.expect(Tok::RParen)?;
            return Ok(PatternExpr::Seq(parts));
        }
        if self.peek_kw("OR") {
            self.pos += 1;
            self.expect(Tok::LParen)?;
            let parts = self.pattern_list()?;
            self.expect(Tok::RParen)?;
            return Ok(PatternExpr::Or(parts));
        }
        if self.peek_kw("NOT") {
            self.pos += 1;
            let inner = if self.eat(&Tok::LParen) {
                let p = self.pattern()?;
                self.expect(Tok::RParen)?;
                p
            } else {
                self.pattern_primary()?
            };
            return Ok(inner.not());
        }
        if self.eat(&Tok::LParen) {
            let p = self.pattern()?;
            self.expect(Tok::RParen)?;
            return Ok(p);
        }
        // Leaf: TypeName [Variable]
        let type_name = self.ident("event type")?;
        if let Some(Token {
            tok: Tok::Ident(v), ..
        }) = self.peek()
        {
            // A following identifier is a variable alias unless it is a
            // clause keyword.
            const CLAUSE_KWS: [&str; 6] = [
                "SEMANTICS",
                "WHERE",
                "GROUP-BY",
                "WITHIN",
                "SLIDE",
                "PATTERN",
            ];
            if !CLAUSE_KWS.iter().any(|k| v.eq_ignore_ascii_case(k)) {
                let var = v.clone();
                self.pos += 1;
                return Ok(PatternExpr::Leaf(Leaf::aliased(&type_name, &var)));
            }
        }
        Ok(PatternExpr::leaf(&type_name))
    }

    fn pattern_list(&mut self) -> QueryResult<Vec<PatternExpr>> {
        let mut parts = vec![self.pattern()?];
        while self.eat(&Tok::Comma) {
            parts.push(self.pattern()?);
        }
        Ok(parts)
    }

    // ---- predicates -----------------------------------------------------

    fn predicates(&mut self) -> QueryResult<Vec<PredicateExpr>> {
        let mut preds = vec![self.predicate()?];
        while self.eat_kw("AND") {
            preds.push(self.predicate()?);
        }
        Ok(preds)
    }

    fn predicate(&mut self) -> QueryResult<PredicateExpr> {
        if self.eat(&Tok::LBracket) {
            let first = self.ident("attribute")?;
            let attr = if self.eat(&Tok::Dot) {
                self.ident("attribute")?
            } else {
                first
            };
            self.expect(Tok::RBracket)?;
            return Ok(PredicateExpr::Equivalence { attr });
        }
        let lhs = self.operand()?;
        let op = self.cmp_op()?;
        let rhs = self.operand()?;
        match (lhs, rhs) {
            (Operand::Attr(l), Operand::Attr(r)) => {
                Ok(PredicateExpr::Adjacent { lhs: l, op, rhs: r })
            }
            (Operand::Attr(l), Operand::Lit(v)) => Ok(PredicateExpr::Local { lhs: l, op, rhs: v }),
            (Operand::Lit(v), Operand::Attr(r)) => Ok(PredicateExpr::Local {
                lhs: r,
                op: op.flipped(),
                rhs: v,
            }),
            (Operand::Lit(_), Operand::Lit(_)) => {
                Err(self.err("predicate must reference at least one attribute"))
            }
        }
    }

    fn cmp_op(&mut self) -> QueryResult<CmpOp> {
        let t = self.next().ok_or_else(|| self.err("expected comparison"))?;
        match t.tok {
            Tok::Lt => Ok(CmpOp::Lt),
            Tok::Le => Ok(CmpOp::Le),
            Tok::Gt => Ok(CmpOp::Gt),
            Tok::Ge => Ok(CmpOp::Ge),
            Tok::Eq => Ok(CmpOp::Eq),
            Tok::Ne => Ok(CmpOp::Ne),
            other => Err(self.err_at(t.offset, format!("expected comparison, found {other}"))),
        }
    }

    fn operand(&mut self) -> QueryResult<Operand> {
        match self.peek().map(|t| t.tok.clone()) {
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(Operand::Lit(Literal::Int(v)))
            }
            Some(Tok::Float(v)) => {
                self.pos += 1;
                Ok(Operand::Lit(Literal::Float(v)))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Operand::Lit(Literal::Str(s)))
            }
            Some(Tok::Ident(s)) => {
                if s.eq_ignore_ascii_case("NEXT")
                    && self.peek2().map(|t| &t.tok) == Some(&Tok::LParen)
                {
                    self.pos += 2;
                    let var = self.ident("variable")?;
                    self.expect(Tok::RParen)?;
                    self.expect(Tok::Dot)?;
                    let attr = self.ident("attribute")?;
                    return Ok(Operand::Attr(AttrRef {
                        var,
                        attr,
                        next: true,
                    }));
                }
                if s.eq_ignore_ascii_case("true") {
                    self.pos += 1;
                    return Ok(Operand::Lit(Literal::Bool(true)));
                }
                if s.eq_ignore_ascii_case("false") {
                    self.pos += 1;
                    return Ok(Operand::Lit(Literal::Bool(false)));
                }
                self.pos += 1;
                if self.eat(&Tok::Dot) {
                    let attr = self.ident("attribute")?;
                    Ok(Operand::Attr(AttrRef {
                        var: s,
                        attr,
                        next: false,
                    }))
                } else {
                    // Bare identifier in value position is a string
                    // constant: `M.activity = passive` (q1).
                    Ok(Operand::Lit(Literal::Str(s)))
                }
            }
            _ => Err(self.err("expected operand")),
        }
    }

    fn attr_list(&mut self) -> QueryResult<Vec<String>> {
        let mut out = Vec::new();
        loop {
            let first = self.ident("attribute")?;
            let name = if self.eat(&Tok::Dot) {
                format!("{first}.{}", self.ident("attribute")?)
            } else {
                first
            };
            out.push(name);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(out)
    }

    fn duration(&mut self) -> QueryResult<u64> {
        let t = self.next().ok_or_else(|| self.err("expected duration"))?;
        let Tok::Int(n) = t.tok else {
            return Err(self.err_at(t.offset, "expected integer duration".into()));
        };
        if n < 0 {
            return Err(self.err_at(t.offset, "duration must be non-negative".into()));
        }
        let n = n as u64;
        let factor = if let Some(Token {
            tok: Tok::Ident(unit),
            ..
        }) = self.peek()
        {
            let f = match unit.to_ascii_lowercase().as_str() {
                "tick" | "ticks" => Some(1),
                "s" | "sec" | "secs" | "second" | "seconds" => Some(1),
                "min" | "mins" | "minute" | "minutes" => Some(60),
                "h" | "hour" | "hours" => Some(3600),
                "ms" | "millisecond" | "milliseconds" => None, // sub-tick: invalid
                _ => Some(0), // not a unit; leave token for the caller
            };
            match f {
                Some(0) => 1,
                Some(f) => {
                    self.pos += 1;
                    f
                }
                None => {
                    return Err(self.err(
                        "sub-second units are not supported; the tick resolution is one second",
                    ))
                }
            }
        } else {
            1
        };
        n.checked_mul(factor)
            .ok_or_else(|| self.err_at(t.offset, "duration overflows the tick counter".into()))
    }
}

enum Operand {
    Attr(AttrRef),
    Lit(Literal),
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q1: &str = "RETURN patient, MIN(M.rate), MAX(M.rate) \
                      PATTERN Measurement M+ \
                      SEMANTICS contiguous \
                      WHERE [patient] AND M.rate < NEXT(M).rate AND M.activity = passive \
                      GROUP-BY patient \
                      WITHIN 10 minutes SLIDE 30 seconds";

    const Q2: &str = "RETURN driver, COUNT(*) \
                      PATTERN SEQ(Accept, (SEQ(Call, Cancel))+, Finish) \
                      SEMANTICS skip-till-next-match \
                      WHERE [driver] GROUP-BY driver \
                      WITHIN 10 minutes SLIDE 30 seconds";

    const Q3: &str = "RETURN sector, COUNT(*), AVG(B.price) \
                      PATTERN SEQ(Stock A+, Stock B+) \
                      SEMANTICS skip-till-any-match \
                      WHERE [company] AND A.price > NEXT(A).price \
                      GROUP-BY sector, company \
                      WITHIN 10 minutes SLIDE 10 seconds";

    #[test]
    fn parse_q1() {
        let q = parse(Q1).unwrap();
        assert_eq!(q.semantics, Semantics::Cont);
        assert_eq!(q.window, WindowSpec::new(600, 30));
        assert_eq!(q.ret.len(), 3);
        assert_eq!(q.predicates.len(), 3);
        assert!(
            matches!(&q.predicates[0], PredicateExpr::Equivalence { attr } if attr == "patient")
        );
        assert!(matches!(&q.predicates[1], PredicateExpr::Adjacent { rhs, .. } if rhs.next));
        assert!(
            matches!(&q.predicates[2], PredicateExpr::Local { rhs: Literal::Str(s), .. } if s == "passive")
        );
        assert_eq!(q.pattern.to_string(), "(Measurement M)+");
    }

    #[test]
    fn parse_q2() {
        let q = parse(Q2).unwrap();
        assert_eq!(q.semantics, Semantics::Next);
        assert_eq!(
            q.pattern.to_string(),
            "SEQ(Accept, (SEQ(Call, Cancel))+, Finish)"
        );
        assert_eq!(q.group_by, vec!["driver"]);
        assert_eq!(q.aggregates().count(), 1);
    }

    #[test]
    fn parse_q3() {
        let q = parse(Q3).unwrap();
        assert_eq!(q.semantics, Semantics::Any);
        assert_eq!(q.window, WindowSpec::new(600, 10));
        assert_eq!(q.pattern.to_string(), "SEQ((Stock A)+, (Stock B)+)");
        match &q.predicates[1] {
            PredicateExpr::Adjacent { lhs, op, rhs } => {
                assert_eq!(lhs.var, "A");
                assert!(!lhs.next);
                assert_eq!(*op, CmpOp::Gt);
                assert!(rhs.next);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn semantics_defaults_to_any() {
        let q = parse("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10").unwrap();
        assert_eq!(q.semantics, Semantics::Any);
        assert_eq!(q.window, WindowSpec::new(10, 10));
    }

    #[test]
    fn semantics_aliases() {
        for (text, want) in [
            ("ANY", Semantics::Any),
            ("next", Semantics::Next),
            ("CONT", Semantics::Cont),
        ] {
            let q = parse(&format!(
                "RETURN COUNT(*) PATTERN A+ SEMANTICS {text} WITHIN 10 SLIDE 5"
            ))
            .unwrap();
            assert_eq!(q.semantics, want, "{text}");
        }
    }

    #[test]
    fn pattern_postfix_operators() {
        let q = parse("RETURN COUNT(*) PATTERN SEQ(A*, B?, C+) WITHIN 10 SLIDE 10").unwrap();
        assert_eq!(q.pattern.to_string(), "SEQ((A)*, (B)?, (C)+)");
    }

    #[test]
    fn pattern_negation() {
        let q = parse("RETURN COUNT(*) PATTERN SEQ(A, NOT C, B) WITHIN 10 SLIDE 10").unwrap();
        assert_eq!(q.pattern.to_string(), "SEQ(A, NOT C, B)");
    }

    #[test]
    fn pattern_disjunction() {
        let q = parse("RETURN COUNT(*) PATTERN OR(A+, SEQ(B, C)) WITHIN 10 SLIDE 10").unwrap();
        assert_eq!(q.pattern.to_string(), "OR((A)+, SEQ(B, C))");
    }

    #[test]
    fn literal_on_left_flips_local() {
        let q = parse("RETURN COUNT(*) PATTERN A+ WHERE 5 < A.v WITHIN 10 SLIDE 10").unwrap();
        match &q.predicates[0] {
            PredicateExpr::Local { lhs, op, rhs } => {
                assert_eq!(lhs.var, "A");
                assert_eq!(*op, CmpOp::Gt);
                assert_eq!(*rhs, Literal::Int(5));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quoted_string_literal() {
        let q = parse("RETURN COUNT(*) PATTERN A+ WHERE A.label = 'hot tea' WITHIN 10 SLIDE 2")
            .unwrap();
        assert!(
            matches!(&q.predicates[0], PredicateExpr::Local { rhs: Literal::Str(s), .. } if s == "hot tea")
        );
    }

    #[test]
    fn durations() {
        let q = parse("RETURN COUNT(*) PATTERN A+ WITHIN 2 hours SLIDE 90 minutes").unwrap();
        assert_eq!(q.window, WindowSpec::new(7200, 5400));
    }

    #[test]
    fn slide_exceeding_within_rejected() {
        assert!(parse("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 20").is_err());
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10 garbage").is_err());
    }

    #[test]
    fn missing_pattern_rejected() {
        let err = parse("RETURN COUNT(*) WITHIN 10 SLIDE 10").unwrap_err();
        assert!(err.to_string().contains("PATTERN"));
    }

    #[test]
    fn dotted_group_by() {
        let q = parse(
            "RETURN sector, COUNT(*) PATTERN SEQ(Stock A+, Stock B+) \
             GROUP-BY sector, A.company, B.company WITHIN 10 SLIDE 10",
        )
        .unwrap();
        assert_eq!(q.group_by, vec!["sector", "A.company", "B.company"]);
    }

    #[test]
    fn display_reparse_round_trip() {
        for src in [Q1, Q2, Q3] {
            let q = parse(src).unwrap();
            let printed = q.to_string();
            let q2 = parse(&printed).unwrap_or_else(|e| panic!("reparse of `{printed}`: {e}"));
            assert_eq!(q, q2);
        }
    }
}
