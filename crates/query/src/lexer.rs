//! Lexer for the paper's SASE-style query language (§1, queries q1–q3).

use crate::error::{QueryError, QueryResult};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword. Dashes are allowed after the first character
    /// when followed by a letter, so `skip-till-any-match` and `GROUP-BY`
    /// lex as single identifiers.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `+`
    Plus,
    /// `*`
    Star,
    /// `?`
    Question,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=` (also accepts `==`)
    Eq,
    /// `!=` (also accepts `<>`)
    Ne,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::Plus => write!(f, "+"),
            Tok::Star => write!(f, "*"),
            Tok::Question => write!(f, "?"),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "!="),
        }
    }
}

/// A token with its byte offset in the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Byte offset of the token's first character.
    pub offset: usize,
}

/// Tokenize query text.
pub fn lex(src: &str) -> QueryResult<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token {
                    tok: Tok::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    tok: Tok::RParen,
                    offset: start,
                });
                i += 1;
            }
            '[' => {
                out.push(Token {
                    tok: Tok::LBracket,
                    offset: start,
                });
                i += 1;
            }
            ']' => {
                out.push(Token {
                    tok: Tok::RBracket,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    tok: Tok::Comma,
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                out.push(Token {
                    tok: Tok::Dot,
                    offset: start,
                });
                i += 1;
            }
            '+' => {
                out.push(Token {
                    tok: Tok::Plus,
                    offset: start,
                });
                i += 1;
            }
            '*' => {
                out.push(Token {
                    tok: Tok::Star,
                    offset: start,
                });
                i += 1;
            }
            '?' => {
                out.push(Token {
                    tok: Tok::Question,
                    offset: start,
                });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        tok: Tok::Le,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token {
                        tok: Tok::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        tok: Tok::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        tok: Tok::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        tok: Tok::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                } else {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Eq,
                    offset: start,
                });
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        tok: Tok::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(QueryError::Lex {
                        offset: start,
                        message: "expected `!=`".into(),
                    });
                }
            }
            '\'' => {
                i += 1;
                let str_start = i;
                while i < bytes.len() && bytes[i] != b'\'' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(QueryError::Lex {
                        offset: start,
                        message: "unterminated string literal".into(),
                    });
                }
                out.push(Token {
                    tok: Tok::Str(src[str_start..i].to_string()),
                    offset: start,
                });
                i += 1; // closing quote
            }
            '-' | '0'..='9' => {
                let negative = c == '-';
                if negative {
                    i += 1;
                    if !(i < bytes.len() && bytes[i].is_ascii_digit()) {
                        return Err(QueryError::Lex {
                            offset: start,
                            message: "expected digits after `-`".into(),
                        });
                    }
                }
                let num_start = i;
                let mut is_float = false;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[num_start..i];
                let tok = if is_float {
                    let v: f64 = text.parse().map_err(|_| QueryError::Lex {
                        offset: start,
                        message: format!("invalid float `{text}`"),
                    })?;
                    Tok::Float(if negative { -v } else { v })
                } else {
                    let v: i64 = text.parse().map_err(|_| QueryError::Lex {
                        offset: start,
                        message: format!("integer `{text}` out of range"),
                    })?;
                    Tok::Int(if negative { -v } else { v })
                };
                out.push(Token { tok, offset: start });
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                i += 1;
                loop {
                    if i >= bytes.len() {
                        break;
                    }
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric() || b == '_' {
                        i += 1;
                    } else if b == '-'
                        && i + 1 < bytes.len()
                        && (bytes[i + 1] as char).is_ascii_alphabetic()
                    {
                        // dashed identifiers: skip-till-any-match, GROUP-BY
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    tok: Tok::Ident(src[start..i].to_string()),
                    offset: start,
                });
            }
            _ => {
                return Err(QueryError::Lex {
                    offset: start,
                    message: format!("unexpected character `{c}`"),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lex_symbols_and_operators() {
        assert_eq!(
            toks("( ) [ ] , . + * ? < <= > >= = != <> =="),
            vec![
                Tok::LParen,
                Tok::RParen,
                Tok::LBracket,
                Tok::RBracket,
                Tok::Comma,
                Tok::Dot,
                Tok::Plus,
                Tok::Star,
                Tok::Question,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Eq,
                Tok::Ne,
                Tok::Ne,
                Tok::Eq,
            ]
        );
    }

    #[test]
    fn lex_dashed_identifiers() {
        assert_eq!(
            toks("SEMANTICS skip-till-any-match GROUP-BY patient"),
            vec![
                Tok::Ident("SEMANTICS".into()),
                Tok::Ident("skip-till-any-match".into()),
                Tok::Ident("GROUP-BY".into()),
                Tok::Ident("patient".into()),
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            toks("10 -3 2.5 -0.5"),
            vec![
                Tok::Int(10),
                Tok::Int(-3),
                Tok::Float(2.5),
                Tok::Float(-0.5)
            ]
        );
    }

    #[test]
    fn lex_strings() {
        assert_eq!(toks("'passive'"), vec![Tok::Str("passive".into())]);
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn lex_comments() {
        assert_eq!(
            toks("RETURN -- the result\n COUNT"),
            vec![Tok::Ident("RETURN".into()), Tok::Ident("COUNT".into())]
        );
    }

    #[test]
    fn member_access_is_dotted() {
        assert_eq!(
            toks("M.rate"),
            vec![Tok::Ident("M".into()), Tok::Dot, Tok::Ident("rate".into())]
        );
    }

    #[test]
    fn offsets_are_byte_positions() {
        let ts = lex("AB  CD").unwrap();
        assert_eq!(ts[0].offset, 0);
        assert_eq!(ts[1].offset, 4);
    }

    #[test]
    fn bad_character_reports_offset() {
        let err = lex("RETURN @").unwrap_err();
        match err {
            QueryError::Lex { offset, .. } => assert_eq!(offset, 7),
            other => panic!("unexpected {other:?}"),
        }
    }
}
