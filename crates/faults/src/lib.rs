//! # cogra-faults — deterministic fault injection
//!
//! A tiny failpoint library for chaos testing the runtime. Production
//! crates depend on it **optionally** behind a `faults` cargo feature, so
//! the instrumented call sites compile to nothing in normal builds.
//!
//! Three pieces:
//!
//! * a global **failpoint registry** keyed by site name (`"worker/batch/0"`,
//!   `"checkpoint/write"`, ...). Each site carries a [`Trigger`] deciding
//!   on which hit it fires. Call sites ask [`fired`] (or the conveniences
//!   [`maybe_panic`] / [`io_error`]) and act only when it returns true.
//! * **seed-driven schedules**: [`SeedSequence`] is a splitmix64 stream so
//!   a test can derive arbitrary-but-reproducible `Trigger::OnHit` counts
//!   from one `u64` seed and shrink over it.
//! * injectable IO: [`FaultyWriter`] / [`FaultyReader`] wrap any
//!   `Write`/`Read` and fail with a pinned error after N bytes — the
//!   "disk full mid-snapshot" and "connection reset mid-read" stand-ins.
//!
//! Configuration is programmatic ([`configure`]) or, for subprocess tests
//! (the CLI, the server binary), via the `COGRA_FAULTS` environment
//! variable: a comma-separated list of `site=always`, `site=hit:N`, or
//! `site=never`, parsed once on first registry access.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::{Mutex, Once, OnceLock};

/// When a failpoint fires, relative to the per-site hit counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Never fires (registered but disarmed).
    Never,
    /// Fires on every hit.
    Always,
    /// Fires exactly once, on the `n`-th hit (1-based).
    OnHit(u64),
}

#[derive(Debug)]
struct SiteState {
    trigger: Trigger,
    hits: u64,
}

fn registry() -> &'static Mutex<HashMap<String, SiteState>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();
    static ENV_INIT: Once = Once::new();
    let reg = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    ENV_INIT.call_once(|| {
        if let Ok(spec) = std::env::var("COGRA_FAULTS") {
            let mut map = reg.lock().unwrap_or_else(|e| e.into_inner());
            for (site, trigger) in parse_spec(&spec) {
                map.insert(site, SiteState { trigger, hits: 0 });
            }
        }
    });
    reg
}

/// Parse a `COGRA_FAULTS`-style spec: `site=always,other=hit:3`.
/// Malformed entries are ignored (fault config must never crash the
/// process it is trying to test).
fn parse_spec(spec: &str) -> Vec<(String, Trigger)> {
    let mut out = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let Some((site, rule)) = entry.split_once('=') else {
            continue;
        };
        let trigger = if rule == "always" {
            Trigger::Always
        } else if rule == "never" {
            Trigger::Never
        } else if let Some(n) = rule.strip_prefix("hit:") {
            match n.parse::<u64>() {
                Ok(n) if n > 0 => Trigger::OnHit(n),
                _ => continue,
            }
        } else {
            continue;
        };
        out.push((site.to_string(), trigger));
    }
    out
}

/// Arm `site` with `trigger`, resetting its hit counter.
pub fn configure(site: &str, trigger: Trigger) {
    let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
    map.insert(site.to_string(), SiteState { trigger, hits: 0 });
}

/// Disarm every site and zero every counter.
pub fn reset() {
    let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
    map.clear();
}

/// Record a hit at `site` and report whether the failpoint fires.
/// Unregistered sites count hits but never fire.
pub fn fired(site: &str) -> bool {
    let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
    let state = map.entry(site.to_string()).or_insert(SiteState {
        trigger: Trigger::Never,
        hits: 0,
    });
    state.hits += 1;
    match state.trigger {
        Trigger::Never => false,
        Trigger::Always => true,
        Trigger::OnHit(n) => state.hits == n,
    }
}

/// How many times `site` has been hit since it was configured (0 if never
/// hit). Lets tests assert a schedule actually reached its site.
pub fn hits(site: &str) -> u64 {
    let map = registry().lock().unwrap_or_else(|e| e.into_inner());
    map.get(site).map_or(0, |s| s.hits)
}

/// Panic with a pinned message if the failpoint at `site` fires.
pub fn maybe_panic(site: &str) {
    if fired(site) {
        panic!("injected fault at {site}");
    }
}

/// An `io::Error` carrying the pinned injected-fault message if the
/// failpoint at `site` fires, `None` otherwise.
pub fn io_error(site: &str) -> Option<io::Error> {
    if fired(site) {
        Some(io::Error::other(format!("injected fault at {site}")))
    } else {
        None
    }
}

/// A splitmix64 stream: arbitrary-but-reproducible values from one seed,
/// for deriving deterministic fault schedules in tests.
#[derive(Debug, Clone)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    pub fn new(seed: u64) -> SeedSequence {
        SeedSequence { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A value in `[1, bound]` — the shape `Trigger::OnHit` wants.
    pub fn next_hit(&mut self, bound: u64) -> u64 {
        1 + self.next_u64() % bound.max(1)
    }
}

/// A writer that accepts exactly `limit` bytes and then fails every
/// subsequent write with a pinned "injected write failure" error. The
/// boundary write is short (partial), modeling a disk filling up.
pub struct FaultyWriter<W> {
    inner: W,
    limit: u64,
    written: u64,
}

impl<W: Write> FaultyWriter<W> {
    pub fn new(inner: W, limit: u64) -> FaultyWriter<W> {
        FaultyWriter {
            inner,
            limit,
            written: 0,
        }
    }

    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let room = self.limit.saturating_sub(self.written);
        if room == 0 {
            return Err(io::Error::other("injected write failure"));
        }
        let take = (buf.len() as u64).min(room) as usize;
        let n = self.inner.write(&buf[..take])?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A reader that yields exactly `limit` bytes and then fails every
/// subsequent read with a pinned "injected read failure" error —
/// a connection reset mid-stream.
pub struct FaultyReader<R> {
    inner: R,
    limit: u64,
    read: u64,
}

impl<R: Read> FaultyReader<R> {
    pub fn new(inner: R, limit: u64) -> FaultyReader<R> {
        FaultyReader {
            inner,
            limit,
            read: 0,
        }
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let room = self.limit.saturating_sub(self.read);
        if room == 0 {
            return Err(io::Error::other("injected read failure"));
        }
        let take = (buf.len() as u64).min(room) as usize;
        let n = self.inner.read(&mut buf[..take])?;
        self.read += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The registry is process-global; serialize tests that touch it.
    fn guard() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn on_hit_fires_exactly_once() {
        let _g = guard();
        reset();
        configure("t/once", Trigger::OnHit(3));
        let fires: Vec<bool> = (0..5).map(|_| fired("t/once")).collect();
        assert_eq!(fires, vec![false, false, true, false, false]);
        assert_eq!(hits("t/once"), 5);
    }

    #[test]
    fn always_and_never_behave() {
        let _g = guard();
        reset();
        configure("t/always", Trigger::Always);
        configure("t/never", Trigger::Never);
        assert!(fired("t/always") && fired("t/always"));
        assert!(!fired("t/never"));
        assert!(!fired("t/unregistered"));
        assert_eq!(hits("t/unregistered"), 1);
    }

    #[test]
    fn spec_parsing_accepts_good_and_skips_bad() {
        let parsed = parse_spec("a=always, b=hit:2 ,c=never,junk,d=hit:0,e=maybe");
        assert_eq!(
            parsed,
            vec![
                ("a".to_string(), Trigger::Always),
                ("b".to_string(), Trigger::OnHit(2)),
                ("c".to_string(), Trigger::Never),
            ]
        );
    }

    #[test]
    fn seed_sequence_is_deterministic() {
        let mut a = SeedSequence::new(42);
        let mut b = SeedSequence::new(42);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SeedSequence::new(43);
        assert_ne!(SeedSequence::new(42).next_u64(), c.next_u64());
        let mut d = SeedSequence::new(7);
        for _ in 0..100 {
            let h = d.next_hit(10);
            assert!((1..=10).contains(&h));
        }
    }

    #[test]
    fn faulty_writer_fails_after_limit() {
        let mut w = FaultyWriter::new(Vec::new(), 10);
        assert_eq!(w.write(b"hello").unwrap(), 5);
        // Boundary write is short: only 5 of 8 bytes fit.
        assert_eq!(w.write(b"world!!!").unwrap(), 5);
        let err = w.write(b"x").unwrap_err();
        assert_eq!(err.to_string(), "injected write failure");
        assert_eq!(w.bytes_written(), 10);
        assert_eq!(w.into_inner(), b"helloworld");
    }

    #[test]
    fn faulty_reader_fails_after_limit() {
        let data = b"abcdefgh".to_vec();
        let mut r = FaultyReader::new(&data[..], 6);
        let mut buf = [0u8; 16];
        assert_eq!(r.read(&mut buf).unwrap(), 6);
        let err = r.read(&mut buf).unwrap_err();
        assert_eq!(err.to_string(), "injected read failure");
    }
}
