//! The wire protocol shared by [`Server`](crate::Server),
//! [`Client`](crate::Client), the CLI and the end-to-end tests.
//!
//! Line-delimited UTF-8 text. Clients send one command per line; the
//! server answers each command with exactly one `OK ...` or `ERR ...`
//! line on the same connection. A connection that issues `SUBSCRIBE`
//! becomes a pure result stream: the server pushes one `RESULT` line per
//! finalized window result, then one `EOS` line when the session
//! finishes.
//!
//! ```text
//! client → server
//!   INGEST <n>          the next n lines are one CSV document
//!                       (header first — the cogra_events::csv format)
//!   SUBSCRIBE <q>       q = "q<i>" (one query) or "*" (all queries)
//!   DRAIN               flush + emit everything final at the watermark
//!   STATS               report counters (see StatsReport)
//!   SNAPSHOT <path>     checkpoint the live session to a server-side file
//!                       (restore it via `cogra-run serve --restore`)
//!   FINISH              end of stream: close every window, end subscribers
//!   QUIT                close this connection
//!
//! server → client
//!   OK <key=value ...>  command succeeded
//!   ERR <message>       command failed (message = the IngestError /
//!                       protocol error display, identical to the CLI's)
//!   RESULT q<i> <row>   pushed to subscribers as windows close
//!   EOS                 subscription over (session finished)
//! ```
//!
//! Results are serialized with [`encode_result`] — the same
//! `WindowResult` `Display` the CLI prints — so a socket-served run is
//! byte-comparable against an in-process [`Session`] run
//! (`tests/server_e2e_props.rs` pins this).
//!
//! [`Session`]: cogra_core::session::Session

use cogra_engine::WindowResult;

/// Pushed-result line prefix.
pub const RESULT: &str = "RESULT";
/// End-of-subscription marker line.
pub const EOS: &str = "EOS";
/// Success reply prefix.
pub const OK: &str = "OK";
/// Failure reply prefix.
pub const ERR: &str = "ERR";

/// Serialize one finalized result of query `query` as a `RESULT` line
/// (without the trailing newline).
pub fn encode_result(query: usize, result: &WindowResult) -> String {
    format!("{RESULT} q{query} {result}")
}

/// Parse the payload of a `RESULT` line (everything after the `RESULT `
/// prefix) back into `(query, row)`. The row stays text — byte-identical
/// comparison is the point, not re-materializing `WindowResult`s.
pub fn decode_result(payload: &str) -> Result<(usize, &str), String> {
    let (q, row) = payload
        .split_once(' ')
        .ok_or_else(|| format!("malformed RESULT payload `{payload}`"))?;
    let query = q
        .strip_prefix('q')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("malformed query tag `{q}`"))?;
    Ok((query, row))
}

/// Parse a `SUBSCRIBE` argument: `*` (all queries) or `q<i>`.
pub fn parse_subscription(arg: &str) -> Result<Option<usize>, String> {
    if arg == "*" {
        return Ok(None);
    }
    arg.strip_prefix('q')
        .and_then(|n| n.parse().ok())
        .map(Some)
        .ok_or_else(|| format!("bad subscription `{arg}` (expected q<i> or *)"))
}

/// The counters surfaced by `STATS` (and, minus the mirrors, by
/// `FINISH`): session progress, watermark, late drops and the routing
/// hot-path statistics, as `key=value` pairs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsReport {
    /// Events accepted by the replied-to command (`INGEST` replies only;
    /// 0 in every other reply — the cumulative count is `events`).
    pub ingested: u64,
    /// Events ingested so far (including any later dropped as late).
    pub events: u64,
    /// Late events dropped by the `.slack(n)` repair.
    pub late: u64,
    /// Results emitted to sinks so far.
    pub results: u64,
    /// Current session watermark, in ticks.
    pub watermark: u64,
    /// Queries served by the session.
    pub queries: usize,
    /// Effective shard count (1 unless `.workers(n)` applies).
    pub workers: usize,
    /// Logical memory footprint, as of the last drain.
    pub memory: usize,
    /// Routing interner probes ([`cogra_engine::RunStats`]).
    pub key_probes: u64,
    /// First-seen key materializations.
    pub key_allocs: u64,
    /// Events ingested per shard worker slot, as of the last drain — the
    /// spread between entries is the hot-key imbalance a skewed group
    /// distribution produces. One entry in streaming mode; empty only in
    /// replies from servers predating the field.
    pub shard_events: Vec<u64>,
    /// Shards quarantined under `FailurePolicy::Degrade`, in index order
    /// — empty on a healthy session.
    pub degraded: Vec<usize>,
    /// Events lost to quarantines — 0 on a healthy session.
    pub dropped: u64,
    /// Physical runs actually executing under multi-query sharing
    /// (M ≤ `queries`). 0 when the session shares nothing — the key is
    /// emitted only when sharing collapsed the roster.
    pub physical: usize,
    /// Whether `FINISH` has been processed.
    pub finished: bool,
}

impl StatsReport {
    /// Encode as the `key=value ...` payload of the `STATS` reply.
    pub fn encode(&self) -> String {
        let mut out = format!(
            "ingested={} events={} late={} results={} watermark={} queries={} workers={} \
             memory={} key_probes={} key_allocs={}",
            self.ingested,
            self.events,
            self.late,
            self.results,
            self.watermark,
            self.queries,
            self.workers,
            self.memory,
            self.key_probes,
            self.key_allocs,
        );
        // Omitted when empty: `shards=` with no entries would not parse,
        // and old decoders ignore the key anyway.
        if !self.shard_events.is_empty() {
            out.push_str(" shards=");
            for (i, n) in self.shard_events.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&n.to_string());
            }
        }
        // Degraded-status keys appear only on an unhealthy session, so
        // healthy replies are byte-identical to pre-supervision servers.
        if !self.degraded.is_empty() {
            out.push_str(" degraded=");
            for (i, s) in self.degraded.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&s.to_string());
            }
        }
        if self.dropped > 0 {
            out.push_str(&format!(" dropped={}", self.dropped));
        }
        // Emitted only when sharing collapsed the roster (M < N): replies
        // from an unshared session are byte-identical to older servers.
        if self.physical > 0 && self.physical < self.queries {
            out.push_str(&format!(" physical={}", self.physical));
        }
        out.push_str(&format!(" finished={}", self.finished));
        out
    }

    /// Decode a `STATS` reply payload. Unknown keys are ignored so the
    /// protocol can grow fields without breaking old clients.
    pub fn decode(payload: &str) -> Result<StatsReport, String> {
        let mut out = StatsReport::default();
        for pair in payload.split_whitespace() {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("malformed stats pair `{pair}`"))?;
            let bad = || format!("bad value for `{key}`: `{value}`");
            match key {
                "ingested" => out.ingested = value.parse().map_err(|_| bad())?,
                "events" => out.events = value.parse().map_err(|_| bad())?,
                "late" => out.late = value.parse().map_err(|_| bad())?,
                "results" => out.results = value.parse().map_err(|_| bad())?,
                "watermark" => out.watermark = value.parse().map_err(|_| bad())?,
                "queries" => out.queries = value.parse().map_err(|_| bad())?,
                "workers" => out.workers = value.parse().map_err(|_| bad())?,
                "memory" => out.memory = value.parse().map_err(|_| bad())?,
                "key_probes" => out.key_probes = value.parse().map_err(|_| bad())?,
                "key_allocs" => out.key_allocs = value.parse().map_err(|_| bad())?,
                "shards" => {
                    out.shard_events = value
                        .split(',')
                        .map(|v| v.parse().map_err(|_| bad()))
                        .collect::<Result<_, _>>()?
                }
                "degraded" => {
                    out.degraded = value
                        .split(',')
                        .map(|v| v.parse().map_err(|_| bad()))
                        .collect::<Result<_, _>>()?
                }
                "dropped" => out.dropped = value.parse().map_err(|_| bad())?,
                "physical" => out.physical = value.parse().map_err(|_| bad())?,
                "finished" => out.finished = value.parse().map_err(|_| bad())?,
                _ => {}
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_round_trip() {
        let stats = StatsReport {
            ingested: 4,
            events: 10,
            late: 2,
            results: 7,
            watermark: 99,
            queries: 3,
            workers: 4,
            memory: 4096,
            key_probes: 10,
            key_allocs: 3,
            shard_events: vec![6, 0, 4, 0],
            degraded: vec![1, 3],
            dropped: 5,
            physical: 2,
            finished: true,
        };
        assert_eq!(StatsReport::decode(&stats.encode()).unwrap(), stats);
        // Empty shard/degraded lists and a zero drop count are omitted
        // and decode back to their defaults — healthy replies stay
        // byte-identical to pre-supervision servers.
        let bare = StatsReport::default();
        assert!(!bare.encode().contains("shards="));
        assert!(!bare.encode().contains("degraded="));
        assert!(!bare.encode().contains("dropped="));
        assert!(!bare.encode().contains("physical="));
        assert_eq!(StatsReport::decode(&bare.encode()).unwrap(), bare);
        // `physical=` appears only when sharing collapsed the roster.
        let unshared = StatsReport {
            queries: 3,
            physical: 3,
            ..StatsReport::default()
        };
        assert!(!unshared.encode().contains("physical="));
        assert_eq!(StatsReport::decode(&unshared.encode()).unwrap().physical, 0);
        // Unknown keys are ignored; malformed pairs are not.
        assert_eq!(
            StatsReport::decode("events=5 future_field=1")
                .unwrap()
                .events,
            5
        );
        assert!(StatsReport::decode("events").is_err());
        assert!(StatsReport::decode("events=x").is_err());
        assert!(StatsReport::decode("shards=1,x").is_err());
    }

    #[test]
    fn subscription_args() {
        assert_eq!(parse_subscription("*").unwrap(), None);
        assert_eq!(parse_subscription("q2").unwrap(), Some(2));
        assert!(parse_subscription("2").is_err());
        assert!(parse_subscription("qx").is_err());
    }

    #[test]
    fn result_round_trip() {
        let (q, row) = decode_result("q1 w0 [7] → 9").unwrap();
        assert_eq!((q, row), (1, "w0 [7] → 9"));
        assert!(decode_result("nope").is_err());
        assert!(decode_result("x1 w0").is_err());
    }
}
