//! The threaded TCP server.
//!
//! One [`Server`] wraps one [`Session`] — multi-query, `.workers(n)`,
//! `.slack(n)` and `.batch_size(n)` all supported, because the server
//! never touches engine internals: it is a serving loop in front of the
//! exact `Session` the CLI and the harness run in-process.
//!
//! Architecture: an **accept thread** takes connections and hands each to
//! its own **connection thread**; connection threads never touch the
//! session — they parse commands and forward them over one bounded
//! request queue to the **session actor thread**, which owns the
//! `Session`, the type registry, and every subscriber's write half.
//! The bounded queue is the ingest backpressure: when the actor falls
//! behind, connection threads block in `send` (each connection has at
//! most one request in flight — commands are answered before the next is
//! read), so a fast client cannot buffer unbounded event batches inside
//! the server. Result emission is push-based end to end: the actor's
//! drains hand each finalized [`WindowResult`] to a sink that writes
//! `RESULT` lines straight to subscriber sockets — results stream out
//! incrementally as shard windows close, never buffer-and-reply.
//!
//! Safety guard: the server refuses to bind a non-loopback address
//! unless [`ServerConfig::allow_nonlocal`] is set — there is no TLS and
//! no auth yet (see ROADMAP follow-ons), so remote exposure must be an
//! explicit decision.
//!
//! [`WindowResult`]: cogra_engine::WindowResult

use crate::wire::{self, StatsReport, EOS};
use cogra_core::session::{Session, SessionBuilder, SessionError};
use cogra_core::CheckpointError;
use cogra_events::TypeRegistry;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Hard cap on the line count of one `INGEST` block — a malformed count
/// must not make the connection thread buffer unbounded payload.
const MAX_INGEST_LINES: usize = 1_000_000;

/// Hard cap on the byte length of any single protocol line (command or
/// CSV row) — a newline-free flood must not buffer unbounded either.
const MAX_LINE_BYTES: u64 = 1 << 20;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Capacity of the bounded request queue feeding the session actor —
    /// the ingest backpressure bound (in requests, i.e. INGEST blocks).
    pub queue_depth: usize,
    /// Permit binding non-loopback addresses. Off by default: the
    /// protocol has no TLS/auth, so serving beyond localhost must be
    /// opted into explicitly.
    pub allow_nonlocal: bool,
    /// Drain (and push results to subscribers) after every `INGEST`
    /// block, so results flow without the client asking. `DRAIN` still
    /// works either way.
    pub drain_on_ingest: bool,
    /// Write timeout on subscriber sockets. A subscriber that stops
    /// *reading* would otherwise block the session actor forever once
    /// the kernel socket buffer fills; after this long mid-write it is
    /// treated as dead and dropped instead.
    pub subscriber_write_timeout: Duration,
    /// Read timeout on command connections (`None` = wait forever, the
    /// default). A client that connects and then goes silent holds a
    /// connection thread and a file descriptor; with a timeout set, such
    /// a connection gets one `ERR idle connection timed out` line and is
    /// closed. Subscriber streams are unaffected — they are write-only
    /// after `SUBSCRIBE`.
    pub read_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            queue_depth: 64,
            allow_nonlocal: false,
            drain_on_ingest: true,
            subscriber_write_timeout: Duration::from_secs(10),
            read_timeout: None,
        }
    }
}

/// Errors starting a [`Server`].
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listener failed.
    Bind(io::Error),
    /// The address is not loopback and [`ServerConfig::allow_nonlocal`]
    /// is off.
    NotLoopback(SocketAddr),
    /// The session failed to build (bad query, unsupported engine, ...).
    Session(SessionError),
    /// Restoring the session from a snapshot failed
    /// ([`Server::spawn_restored`]).
    Restore {
        /// Path of the snapshot file.
        path: String,
        /// What went wrong — the message is formatted `{path}: {error}`,
        /// the same text the CLI's `--restore` prints after `error: `.
        error: CheckpointError,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind(e) => write!(f, "bind: {e}"),
            ServeError::NotLoopback(addr) => write!(
                f,
                "refusing to serve on non-loopback address {addr} \
                 (no TLS/auth yet; set ServerConfig::allow_nonlocal to override)"
            ),
            ServeError::Session(e) => write!(f, "session: {e}"),
            ServeError::Restore { path, error } => write!(f, "{path}: {error}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Requests forwarded from connection threads to the session actor.
enum Req {
    /// One CSV document (header + rows) to decode and ingest.
    Ingest {
        csv: String,
        reply: Sender<Result<StatsReport, String>>,
    },
    /// Emit everything final at the current watermark.
    Drain { reply: Sender<StatsReport> },
    /// Report counters.
    Stats { reply: Sender<StatsReport> },
    /// End of stream: close every window, end subscriptions.
    Finish {
        reply: Sender<Result<StatsReport, String>>,
    },
    /// Checkpoint the live session to a server-side file (`SNAPSHOT`).
    Snapshot {
        path: String,
        reply: Sender<Result<String, String>>,
    },
    /// Register `stream` as a subscriber. The actor itself writes the
    /// `OK subscribed` line (and every later `RESULT`) so subscription
    /// output is totally ordered.
    Subscribe {
        query: Option<usize>,
        stream: TcpStream,
        reply: Sender<Result<(), String>>,
    },
    /// Stop the actor (server shutdown).
    Shutdown,
}

/// Deferred session construction: `spawn` builds from scratch,
/// `spawn_restored` replays a snapshot file — the actor thread runs
/// whichever it is handed.
type SessionFactory = Box<dyn FnOnce(&TypeRegistry) -> Result<Session, ServeError> + Send>;

/// A running server: accept loop + session actor, live until
/// [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    requests: SyncSender<Req>,
    accept: Option<JoinHandle<()>>,
    actor: Option<JoinHandle<()>>,
    finished: Arc<(Mutex<bool>, Condvar)>,
}

impl Server {
    /// Build the session from `builder` and serve it on `addr`
    /// (`"127.0.0.1:0"` picks an ephemeral port — read it back via
    /// [`Server::local_addr`]). Returns once the listener is bound and
    /// the session built; serving happens on background threads.
    pub fn spawn(
        builder: SessionBuilder,
        registry: TypeRegistry,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<Server, ServeError> {
        Self::spawn_with(
            Box::new(move |reg| builder.build(reg).map_err(ServeError::Session)),
            registry,
            addr,
            config,
        )
    }

    /// Like [`Server::spawn`], but the session is restored from the
    /// snapshot file at `snapshot` ([`Session::checkpoint`]) instead of
    /// built from scratch — the durability path: kill a serving process,
    /// restart from its last snapshot, and clients resume against the
    /// identical live state. `builder` may carry only the restore-legal
    /// overrides (`.workers(n)` for elastic rescale, `.batch_size(n)`).
    pub fn spawn_restored(
        builder: SessionBuilder,
        registry: TypeRegistry,
        snapshot: impl Into<String>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<Server, ServeError> {
        let path = snapshot.into();
        Self::spawn_with(
            Box::new(move |reg| {
                std::fs::File::open(&path)
                    .map_err(CheckpointError::Io)
                    .and_then(|file| builder.restore(reg, io::BufReader::new(file)))
                    .map_err(|error| ServeError::Restore { path, error })
            }),
            registry,
            addr,
            config,
        )
    }

    fn spawn_with(
        build: SessionFactory,
        registry: TypeRegistry,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr).map_err(ServeError::Bind)?;
        let local = listener.local_addr().map_err(ServeError::Bind)?;
        if !config.allow_nonlocal && !local.ip().is_loopback() {
            return Err(ServeError::NotLoopback(local));
        }

        let (requests, request_rx) = mpsc::sync_channel(config.queue_depth.max(1));
        let finished = Arc::new((Mutex::new(false), Condvar::new()));
        let shutdown = Arc::new(AtomicBool::new(false));

        // The session is built inside the actor thread (it owns it for
        // its whole life); a handshake channel surfaces build errors.
        let (built_tx, built_rx) = mpsc::channel();
        let actor = {
            let config = config.clone();
            std::thread::spawn(move || {
                let session = match build(&registry) {
                    Ok(session) => {
                        let _ = built_tx.send(Ok(()));
                        session
                    }
                    Err(e) => {
                        let _ = built_tx.send(Err(e));
                        return;
                    }
                };
                session_actor(session, registry, request_rx, config);
            })
        };
        if let Err(e) = built_rx.recv().expect("actor handshakes before serving") {
            let _ = actor.join();
            return Err(e);
        }

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let requests = requests.clone();
            let finished = Arc::clone(&finished);
            let read_timeout = config.read_timeout;
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else {
                        // A persistent accept error (e.g. fd exhaustion
                        // from too many connections) must not busy-spin
                        // the loop; back off and let fds free up.
                        std::thread::sleep(Duration::from_millis(50));
                        continue;
                    };
                    let requests = requests.clone();
                    let finished = Arc::clone(&finished);
                    std::thread::spawn(move || {
                        // Connection errors just end that connection.
                        let _ = serve_connection(stream, requests, finished, read_timeout);
                    });
                }
            })
        };

        Ok(Server {
            addr: local,
            shutdown,
            requests,
            accept: Some(accept),
            actor: Some(actor),
            finished,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until a `FINISH` command has been processed, or `timeout`
    /// elapses. Returns whether the session finished.
    pub fn wait_finished(&self, timeout: Duration) -> bool {
        wait_finished_flag(&self.finished, timeout)
    }

    /// Drain the session in-process — flush and push everything final at
    /// the current watermark to subscribers, exactly as a client `DRAIN`
    /// would. The graceful-shutdown path (`cogra-run serve` on SIGTERM)
    /// drains before snapshotting so subscribers receive every result
    /// the snapshot already accounts for.
    pub fn drain(&self) -> Result<StatsReport, String> {
        let (tx, rx) = mpsc::channel();
        self.requests
            .send(Req::Drain { reply: tx })
            .map_err(|_| "server shutting down".to_string())?;
        rx.recv().map_err(|_| "server shutting down".to_string())
    }

    /// Checkpoint the live session to a server-side file in-process,
    /// exactly as a client `SNAPSHOT` would: the write is atomic
    /// (`{path}.tmp` + fsync + rename) and the error string is the same
    /// `{path}: {error}` text the wire protocol reports.
    pub fn snapshot(&self, path: impl Into<String>) -> Result<(), String> {
        let (tx, rx) = mpsc::channel();
        self.requests
            .send(Req::Snapshot {
                path: path.into(),
                reply: tx,
            })
            .map_err(|_| "server shutting down".to_string())?;
        rx.recv()
            .map_err(|_| "server shutting down".to_string())?
            .map(|_| ())
    }

    /// Stop serving: close the accept loop and the session actor, then
    /// join both. Open connections are abandoned (their next request gets
    /// an error); subscribers were already closed if the session
    /// finished.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let _ = self.requests.send(Req::Shutdown);
        if let Some(h) = self.actor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() || self.actor.is_some() {
            self.stop();
        }
    }
}

/// One registered subscriber: the write half of a connection plus its
/// query filter (`None` = all queries).
struct Subscriber {
    query: Option<usize>,
    stream: TcpStream,
    dead: bool,
}

impl Subscriber {
    fn push(&mut self, line: &str) {
        if self.dead {
            return;
        }
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        if self.stream.write_all(&buf).is_err() {
            self.dead = true;
        }
    }
}

/// Push one finalized result to every matching subscriber — the one
/// sink body behind both `drain_into` and `finish_into`.
fn push_result(
    subscribers: &mut [Subscriber],
    results: &mut u64,
    query: usize,
    result: &cogra_engine::WindowResult,
) {
    *results += 1;
    let line = wire::encode_result(query, result);
    for sub in subscribers.iter_mut() {
        if sub.query.is_none_or(|q| q == query) {
            sub.push(&line);
        }
    }
}

/// The session actor: single-threaded owner of the [`Session`] and every
/// subscriber. Requests are processed strictly in arrival order, so a
/// single-connection client observes the exact semantics of driving a
/// `Session` in-process.
fn session_actor(
    mut session: Session,
    registry: TypeRegistry,
    requests: Receiver<Req>,
    config: ServerConfig,
) {
    let mut subscribers: Vec<Subscriber> = Vec::new();
    let mut events: u64 = 0;
    let mut results: u64 = 0;
    let mut finished = false;

    // Emit every result final at the current watermark to the matching
    // subscribers — the ResultSink wired to sockets.
    let drain = |session: &mut Session, subscribers: &mut Vec<Subscriber>, results: &mut u64| {
        let mut sink = |query: usize, result: cogra_engine::WindowResult| {
            push_result(subscribers, results, query, &result);
        };
        session.drain_into(&mut sink);
        subscribers.retain(|s| !s.dead);
    };
    let stats = |session: &Session, events: u64, results: u64, finished: bool| {
        let run_stats = session.run_stats();
        StatsReport {
            ingested: 0,
            events,
            late: session.late_events(),
            results,
            watermark: session.watermark().ticks(),
            queries: session.queries(),
            workers: session.workers(),
            memory: session.memory_bytes(),
            key_probes: run_stats.key_probes,
            key_allocs: run_stats.key_allocs,
            shard_events: session.shard_events(),
            degraded: session.degraded_shards(),
            dropped: session.dropped_events(),
            physical: session.physical_runs(),
            finished,
        }
    };

    for req in requests {
        match req {
            Req::Ingest { csv, reply } => {
                let outcome = if finished {
                    Err("session finished".to_string())
                } else {
                    // THE shared decode path: the same
                    // `Session::ingest_csv` the CLI's `run_csv` rides, so
                    // both surfaces report the same `IngestError`. Not
                    // transactional: rows before a bad row are already
                    // part of the stream.
                    match session.ingest_csv(&csv, &registry) {
                        Ok(count) => {
                            events += count;
                            if config.drain_on_ingest {
                                drain(&mut session, &mut subscribers, &mut results);
                            }
                            let mut report = stats(&session, events, results, finished);
                            report.ingested = count;
                            Ok(report)
                        }
                        Err(e) => Err(e.to_string()),
                    }
                };
                let _ = reply.send(outcome);
            }
            Req::Drain { reply } => {
                if !finished {
                    drain(&mut session, &mut subscribers, &mut results);
                }
                let _ = reply.send(stats(&session, events, results, finished));
            }
            Req::Stats { reply } => {
                let _ = reply.send(stats(&session, events, results, finished));
            }
            Req::Finish { reply } => {
                let outcome = if finished {
                    Err("session finished".to_string())
                } else {
                    let mut sink = |query: usize, result: cogra_engine::WindowResult| {
                        push_result(&mut subscribers, &mut results, query, &result);
                    };
                    session.finish_into(&mut sink);
                    finished = true;
                    for sub in &mut subscribers {
                        sub.push(EOS);
                    }
                    subscribers.clear();
                    // The finished condvar is NOT signalled here: the
                    // connection thread signals it only after the OK
                    // reply reached the socket, so a `wait_finished` →
                    // shutdown caller (the CLI's serve mode, which
                    // exits) cannot kill the reply mid-write.
                    Ok(stats(&session, events, results, finished))
                };
                let _ = reply.send(outcome);
            }
            Req::Snapshot { path, reply } => {
                // Atomic write ({path}.tmp + fsync + rename): a crash
                // mid-snapshot leaves the previous file intact, never a
                // readable-but-truncated one. Error text stays
                // `{path}: {CheckpointError}` — identical to what the
                // CLI's `--restore`/`--checkpoint` prints after
                // `error: `, so both surfaces pin the same messages.
                let outcome = cogra_checkpoint::write_atomic(&path, |buf| session.checkpoint(buf))
                    .map(|()| path.clone())
                    .map_err(|e| format!("{path}: {e}"));
                let _ = reply.send(outcome);
            }
            Req::Subscribe {
                query,
                stream,
                reply,
            } => {
                let outcome = match query {
                    Some(q) if q >= session.queries() => Err(format!(
                        "unknown query q{q} (session has {} queries)",
                        session.queries()
                    )),
                    _ => Ok(()),
                };
                if outcome.is_ok() {
                    // A subscriber that stops reading must not wedge this
                    // actor once the socket buffer fills: bound every
                    // write, treat a timeout as a dead peer.
                    let _ = stream.set_write_timeout(Some(config.subscriber_write_timeout));
                    let mut sub = Subscriber {
                        query,
                        stream,
                        dead: false,
                    };
                    let tag = match query {
                        Some(q) => format!("q{q}"),
                        None => "*".to_string(),
                    };
                    sub.push(&format!("{} subscribed {tag}", wire::OK));
                    if finished {
                        // Late subscription: nothing will ever be pushed
                        // (results are push-only, not replayed) — say so
                        // immediately.
                        sub.push(EOS);
                    } else {
                        subscribers.push(sub);
                    }
                }
                let _ = reply.send(outcome);
            }
            Req::Shutdown => break,
        }
    }
}

/// Read one `\n`-terminated line, appending at most [`MAX_LINE_BYTES`]
/// bytes to `buf`. Returns the bytes read (0 = EOF); `InvalidData` if
/// the cap is hit before a newline — a newline-free flood must not
/// buffer unbounded.
fn read_line_bounded(reader: &mut BufReader<TcpStream>, buf: &mut Vec<u8>) -> io::Result<usize> {
    let n = io::Read::take(&mut *reader, MAX_LINE_BYTES).read_until(b'\n', buf)?;
    if n as u64 == MAX_LINE_BYTES && buf.last() != Some(&b'\n') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "protocol line exceeds the line-length limit",
        ));
    }
    Ok(n)
}

/// Read commands off one connection and forward them to the actor. Every
/// command is answered before the next is read, so the connection has at
/// most one request in flight (see the module docs on backpressure).
/// `finished` is the server-wide condvar behind [`Server::wait_finished`]
/// — signalled here, after a successful `FINISH` reply hit the socket,
/// never by the actor (a waiter that shuts the process down on it must
/// not be able to kill the reply mid-write).
fn serve_connection(
    stream: TcpStream,
    requests: SyncSender<Req>,
    finished: Arc<(Mutex<bool>, Condvar)>,
    read_timeout: Option<Duration>,
) -> io::Result<()> {
    // A silent client must not hold this thread (and its fd) forever:
    // with a timeout configured, a read that sits idle past it gets one
    // ERR line and the connection closes. Subscriber streams are exempt —
    // the actor owns their write half and this thread exits on SUBSCRIBE.
    stream.set_read_timeout(read_timeout)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line_buf: Vec<u8> = Vec::new();
    loop {
        line_buf.clear();
        match read_line_bounded(&mut reader, &mut line_buf) {
            Ok(0) => return Ok(()), // client hung up
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                reply_err(&mut writer, "protocol line exceeds the line-length limit")?;
                return Ok(());
            }
            Err(e) if idle_timeout(&e) => {
                reply_err(&mut writer, "idle connection timed out")?;
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        let line = match std::str::from_utf8(&line_buf) {
            Ok(s) => s.trim(),
            Err(_) => {
                reply_err(&mut writer, "command line is not valid UTF-8")?;
                continue;
            }
        };
        if line.is_empty() {
            continue;
        }
        let (verb, arg) = match line.split_once(' ') {
            Some((v, a)) => (v, a.trim()),
            None => (line, ""),
        };
        match verb {
            "INGEST" => {
                let Ok(n) = arg.parse::<usize>() else {
                    reply_err(&mut writer, "INGEST needs a line count")?;
                    continue;
                };
                if n > MAX_INGEST_LINES {
                    reply_err(
                        &mut writer,
                        &format!("INGEST block too large (max {MAX_INGEST_LINES} lines)"),
                    )?;
                    continue;
                }
                let mut payload: Vec<u8> = Vec::new();
                let mut failed: Option<&str> = None;
                for _ in 0..n {
                    match read_line_bounded(&mut reader, &mut payload) {
                        Ok(0) => {
                            failed = Some("unexpected EOF inside INGEST payload");
                            break;
                        }
                        Ok(_) => {}
                        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                            failed = Some("protocol line exceeds the line-length limit");
                            break;
                        }
                        Err(e) if idle_timeout(&e) => {
                            failed = Some("idle connection timed out");
                            break;
                        }
                        Err(e) => return Err(e),
                    }
                }
                if let Some(message) = failed {
                    reply_err(&mut writer, message)?;
                    return Ok(());
                }
                match String::from_utf8(payload) {
                    Err(_) => reply_err(&mut writer, "ingest payload is not valid UTF-8")?,
                    Ok(csv) => {
                        let (tx, rx) = mpsc::channel();
                        if requests.send(Req::Ingest { csv, reply: tx }).is_err() {
                            reply_err(&mut writer, "server shutting down")?;
                            return Ok(());
                        }
                        match rx.recv() {
                            Ok(Ok(report)) => reply_ok(&mut writer, &report.encode())?,
                            Ok(Err(msg)) => reply_err(&mut writer, &msg)?,
                            Err(_) => {
                                reply_err(&mut writer, "server shutting down")?;
                                return Ok(());
                            }
                        }
                    }
                }
            }
            "DRAIN" | "STATS" => {
                let (tx, rx) = mpsc::channel();
                let req = if verb == "DRAIN" {
                    Req::Drain { reply: tx }
                } else {
                    Req::Stats { reply: tx }
                };
                if requests.send(req).is_err() {
                    reply_err(&mut writer, "server shutting down")?;
                    return Ok(());
                }
                match rx.recv() {
                    Ok(report) => reply_ok(&mut writer, &report.encode())?,
                    Err(_) => {
                        reply_err(&mut writer, "server shutting down")?;
                        return Ok(());
                    }
                }
            }
            "FINISH" => {
                let (tx, rx) = mpsc::channel();
                if requests.send(Req::Finish { reply: tx }).is_err() {
                    reply_err(&mut writer, "server shutting down")?;
                    return Ok(());
                }
                match rx.recv() {
                    Ok(Ok(report)) => {
                        reply_ok(&mut writer, &report.encode())?;
                        // Reply delivered — only now may wait_finished
                        // waiters proceed (and possibly exit the process).
                        set_finished_flag(&finished);
                    }
                    Ok(Err(msg)) => reply_err(&mut writer, &msg)?,
                    Err(_) => {
                        reply_err(&mut writer, "server shutting down")?;
                        return Ok(());
                    }
                }
            }
            "SUBSCRIBE" => {
                let query = match wire::parse_subscription(arg) {
                    Ok(q) => q,
                    Err(msg) => {
                        reply_err(&mut writer, &msg)?;
                        continue;
                    }
                };
                let (tx, rx) = mpsc::channel();
                let clone = writer.try_clone()?;
                if requests
                    .send(Req::Subscribe {
                        query,
                        stream: clone,
                        reply: tx,
                    })
                    .is_err()
                {
                    reply_err(&mut writer, "server shutting down")?;
                    return Ok(());
                }
                match rx.recv() {
                    // The actor wrote `OK subscribed` itself and now owns
                    // the write half; this thread's job is done (its fds
                    // close, the actor's clone keeps the socket open).
                    Ok(Ok(())) => return Ok(()),
                    Ok(Err(msg)) => reply_err(&mut writer, &msg)?,
                    Err(_) => {
                        reply_err(&mut writer, "server shutting down")?;
                        return Ok(());
                    }
                }
            }
            "SNAPSHOT" => {
                if arg.is_empty() {
                    reply_err(&mut writer, "SNAPSHOT needs a file path")?;
                    continue;
                }
                let (tx, rx) = mpsc::channel();
                if requests
                    .send(Req::Snapshot {
                        path: arg.to_string(),
                        reply: tx,
                    })
                    .is_err()
                {
                    reply_err(&mut writer, "server shutting down")?;
                    return Ok(());
                }
                match rx.recv() {
                    Ok(Ok(path)) => reply_ok(&mut writer, &format!("snapshot {path}"))?,
                    Ok(Err(msg)) => reply_err(&mut writer, &msg)?,
                    Err(_) => {
                        reply_err(&mut writer, "server shutting down")?;
                        return Ok(());
                    }
                }
            }
            "QUIT" => {
                reply_ok(&mut writer, "bye")?;
                return Ok(());
            }
            _ => reply_err(&mut writer, &format!("unknown command `{verb}`"))?,
        }
    }
}

/// Whether a read error is the configured idle timeout firing — the
/// kernel reports `SO_RCVTIMEO` expiry as `WouldBlock` on Unix and
/// `TimedOut` on Windows.
fn idle_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn reply_ok(writer: &mut TcpStream, payload: &str) -> io::Result<()> {
    writer.write_all(format!("{} {payload}\n", wire::OK).as_bytes())
}

fn reply_err(writer: &mut TcpStream, message: &str) -> io::Result<()> {
    writer.write_all(format!("{} {message}\n", wire::ERR).as_bytes())
}

/// Set the finished flag and wake every waiter. The flag is a plain
/// bool, so a connection thread that panicked while holding the lock
/// cannot have left it half-written — recover a poisoned guard instead
/// of propagating the panic into [`Server::wait_finished`] callers and
/// taking the whole server down with one misbehaving connection.
fn set_finished_flag(finished: &(Mutex<bool>, Condvar)) {
    let (lock, cvar) = finished;
    *lock.lock().unwrap_or_else(|p| p.into_inner()) = true;
    cvar.notify_all();
}

/// Block until the finished flag is set or `timeout` elapses; returns
/// the flag. Poison-tolerant for the same reason as
/// [`set_finished_flag`].
fn wait_finished_flag(finished: &(Mutex<bool>, Condvar), timeout: Duration) -> bool {
    let (lock, cvar) = finished;
    let guard = lock.lock().unwrap_or_else(|p| p.into_inner());
    let (guard, _) = cvar
        .wait_timeout_while(guard, timeout, |done| !*done)
        .unwrap_or_else(|p| p.into_inner());
    *guard
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finished_flag_survives_a_poisoned_lock() {
        // A thread that panics while holding the lock poisons it; the
        // flag helpers must recover (the bool carries no invariant a
        // panicked holder could break) instead of panicking every later
        // wait_finished() call.
        let finished = Arc::new((Mutex::new(false), Condvar::new()));
        let poisoner = Arc::clone(&finished);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.0.lock().unwrap();
            panic!("poison the finished flag lock");
        })
        .join();
        assert!(finished.0.lock().is_err(), "the lock is actually poisoned");

        assert!(
            !wait_finished_flag(&finished, Duration::from_millis(10)),
            "an unfinished poisoned flag still reports unfinished"
        );
        set_finished_flag(&finished);
        assert!(
            wait_finished_flag(&finished, Duration::from_millis(10)),
            "the flag set through a poisoned lock is observable"
        );
    }
}
