//! # cogra-server — network front-end for COGRA sessions
//!
//! The ROADMAP's "heavy traffic" direction: accept events over a socket
//! and serve result sinks as subscriptions. One [`Server`] wraps one
//! [`Session`] (multi-query, `.workers(n)`, `.slack(n)`, `.batch_size(n)`
//! all supported) behind a simple line-delimited TCP protocol:
//!
//! * clients `INGEST` CSV-framed events — decoded by the *same*
//!   `cogra_events::csv::EventReader` path the CLI and harness ride, so
//!   every surface reports the same `IngestError`;
//! * `SUBSCRIBE` turns a connection into a push stream: one `RESULT`
//!   line per finalized window result, emitted as shard windows close
//!   (COGRA's incremental maintenance pays off online, not
//!   buffer-and-reply);
//! * `DRAIN` / `STATS` / `FINISH` surface watermarks, late-drop counts
//!   and the routing [`RunStats`](cogra_engine::RunStats).
//!
//! The networked path is pinned **byte-identical** to in-process
//! [`Session`] runs by the end-to-end differential battery
//! (`tests/server_e2e_props.rs`): same results, same late-drop counts,
//! same stats, across workloads × workers × slack, including mid-stream
//! drains.
//!
//! ```no_run
//! use cogra_core::session::Session;
//! use cogra_events::{TypeRegistry, ValueKind};
//! use cogra_server::{Client, Server, ServerConfig};
//!
//! let mut registry = TypeRegistry::new();
//! registry.register_type("Tick", vec![("v", ValueKind::Int)]);
//! let builder = Session::builder()
//!     .query("RETURN COUNT(*) PATTERN Tick T+ SEMANTICS ANY WITHIN 10 SLIDE 10");
//! let server = Server::spawn(builder, registry, "127.0.0.1:0", ServerConfig::default())?;
//!
//! let results = Client::connect(server.local_addr())?.subscribe(None)?.unwrap();
//! let mut feed = Client::connect(server.local_addr())?;
//! feed.ingest("type,time,v\nTick,1,42\nTick,2,7\n")?.unwrap();
//! feed.finish()?.unwrap();
//! for item in results {
//!     let (query, row) = item?;
//!     println!("q{query}: {row}");
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`Session`]: cogra_core::session::Session

#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod wire;

pub use client::{Client, Reply, Subscription};
pub use server::{ServeError, Server, ServerConfig};
pub use wire::StatsReport;
