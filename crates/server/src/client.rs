//! Blocking protocol client: the replay half of the CLI's `connect`
//! mode, the driver of the end-to-end differential battery, and the
//! `--remote` throughput mode of the bench harness.
//!
//! A [`Client`] issues one command at a time and waits for its reply
//! (`OK <stats>` / `ERR <message>`). Command-level failures (the server's
//! `ERR` line) are the *inner* `Result` — they leave the connection
//! usable; transport failures are the outer `io::Result`.
//!
//! For results, [`Client::subscribe`] consumes the client: the
//! connection becomes a pure result stream ([`Subscription`]), yielding
//! decoded `RESULT` lines until the server's `EOS`.

use crate::wire::{self, StatsReport};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected protocol client.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// Command outcome: transport error (outer) or server `ERR` (inner).
pub type Reply<T> = io::Result<Result<T, String>>;

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Read one reply line and split it into OK payload / ERR message.
    fn read_reply(&mut self) -> Reply<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let line = line.trim_end();
        if let Some(payload) = line.strip_prefix(wire::OK) {
            Ok(Ok(payload.trim_start().to_string()))
        } else if let Some(message) = line.strip_prefix(wire::ERR) {
            Ok(Err(message.trim_start().to_string()))
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed reply `{line}`"),
            ))
        }
    }

    /// Issue a control verb and decode its `StatsReport` payload.
    fn control(&mut self, verb: &str) -> Reply<StatsReport> {
        self.writer.write_all(format!("{verb}\n").as_bytes())?;
        self.decode_stats_reply()
    }

    fn decode_stats_reply(&mut self) -> Reply<StatsReport> {
        match self.read_reply()? {
            Err(msg) => Ok(Err(msg)),
            Ok(payload) => StatsReport::decode(&payload)
                .map(|s| Ok(Ok(s)))
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
        }
    }

    /// Send one `INGEST` block: a self-contained CSV document (header
    /// first — the `cogra_events::csv` format).
    pub fn ingest(&mut self, csv: &str) -> Reply<StatsReport> {
        let lines: Vec<&str> = csv.lines().collect();
        let mut block = format!("INGEST {}\n", lines.len());
        for line in &lines {
            block.push_str(line);
            block.push('\n');
        }
        self.writer.write_all(block.as_bytes())?;
        self.decode_stats_reply()
    }

    /// Replay a whole CSV document in blocks of `rows_per_block` data
    /// rows (the header is re-sent with each block, keeping every block a
    /// self-contained document for the shared decode path). Returns the
    /// last block's reply.
    pub fn replay_csv(&mut self, csv: &str, rows_per_block: usize) -> Reply<StatsReport> {
        let mut lines = csv.lines();
        let Some(header) = lines.next() else {
            return self.stats(); // empty document: nothing to send
        };
        let rows: Vec<&str> = lines.collect();
        if rows.is_empty() {
            return self.stats(); // header-only document: ditto
        }
        let mut last = None;
        for block in rows.chunks(rows_per_block.max(1)) {
            let mut doc = String::with_capacity(header.len() + block.len() * 16);
            doc.push_str(header);
            doc.push('\n');
            for row in block {
                doc.push_str(row);
                doc.push('\n');
            }
            match self.ingest(&doc)? {
                Ok(report) => last = Some(report),
                Err(e) => return Ok(Err(e)),
            }
        }
        Ok(Ok(
            last.expect("rows is non-empty, so at least one block ran")
        ))
    }

    /// Force a drain: everything final at the watermark is pushed to
    /// subscribers now.
    pub fn drain(&mut self) -> Reply<StatsReport> {
        self.control("DRAIN")
    }

    /// Fetch the server's counters.
    pub fn stats(&mut self) -> Reply<StatsReport> {
        self.control("STATS")
    }

    /// End the stream: close every window, push the remaining results,
    /// end subscriptions.
    pub fn finish(&mut self) -> Reply<StatsReport> {
        self.control("FINISH")
    }

    /// Checkpoint the serving session to a file *on the server's
    /// filesystem* ([`Session::checkpoint`] behind the `SNAPSHOT` verb).
    /// Returns the server's confirmation payload (`snapshot <path>`);
    /// the server's `ERR` carries the `{path}: {CheckpointError}` text.
    ///
    /// [`Session::checkpoint`]: cogra_core::session::Session::checkpoint
    pub fn snapshot(&mut self, path: &str) -> Reply<String> {
        self.writer
            .write_all(format!("SNAPSHOT {path}\n").as_bytes())?;
        self.read_reply()
    }

    /// Close the connection politely.
    pub fn quit(mut self) -> io::Result<()> {
        self.writer.write_all(b"QUIT\n")?;
        let _ = self.read_reply()?;
        Ok(())
    }

    /// Turn this connection into a result stream for `query` (`None` =
    /// all queries). On success the client is consumed: the server pushes
    /// `RESULT` lines until `EOS`.
    pub fn subscribe(mut self, query: Option<usize>) -> Reply<Subscription> {
        let tag = match query {
            Some(q) => format!("q{q}"),
            None => "*".to_string(),
        };
        self.writer
            .write_all(format!("SUBSCRIBE {tag}\n").as_bytes())?;
        match self.read_reply()? {
            Err(msg) => Ok(Err(msg)),
            Ok(_) => Ok(Ok(Subscription {
                reader: self.reader,
            })),
        }
    }
}

/// The read half of a subscribed connection: iterate decoded
/// `(query, result row)` pairs until the server's `EOS` (or the
/// connection drops).
#[derive(Debug)]
pub struct Subscription {
    reader: BufReader<TcpStream>,
}

impl Iterator for Subscription {
    type Item = io::Result<(usize, String)>;

    fn next(&mut self) -> Option<io::Result<(usize, String)>> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Err(e) => Some(Err(e)),
            Ok(0) => None, // connection dropped without EOS
            Ok(_) => {
                let line = line.trim_end();
                if line == wire::EOS {
                    return None;
                }
                match line.strip_prefix(wire::RESULT) {
                    Some(payload) => Some(match wire::decode_result(payload.trim_start()) {
                        Ok((query, row)) => Ok((query, row.to_string())),
                        Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e)),
                    }),
                    None => Some(Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected line on subscription `{line}`"),
                    ))),
                }
            }
        }
    }
}
