//! Sliding windows (`WITHIN w SLIDE s`, §2.3 and §7).
//!
//! Sliding windows partition the unbounded stream into overlapping finite
//! intervals. Window `k` (its [`WindowId`]) covers the half-open interval
//! `[k·s, k·s + w)`. An event with time stamp `t` belongs to every window
//! whose interval contains `t` — at most `ceil(w / s)` of them. Following
//! the paper (§7), each aggregate is maintained *per window id*, and a
//! window's result is final once the stream time passes the window's end.

use crate::event::Timestamp;
use std::fmt;

/// Identifier of one sliding-window instance: window `k` spans
/// `[k·slide, k·slide + within)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WindowId(pub u64);

impl fmt::Display for WindowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A `WITHIN w SLIDE s` window specification.
///
/// ```
/// use cogra_events::{Timestamp, WindowSpec};
/// let spec = WindowSpec::new(10, 3); // WITHIN 10 SLIDE 3
/// let windows: Vec<u64> = spec.windows_of(Timestamp(9)).map(|w| w.0).collect();
/// assert_eq!(windows, vec![0, 1, 2, 3]); // [0,10) [3,13) [6,16) [9,19)
/// assert_eq!(spec.windows_per_event(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Window length `w` in ticks (`WITHIN`).
    pub within: u64,
    /// Slide `s` in ticks (`SLIDE`). Must satisfy `0 < s <= w` for the
    /// stream to be fully covered; `s == w` gives tumbling windows.
    pub slide: u64,
}

impl WindowSpec {
    /// Create a window spec. Panics if `slide == 0` or `within == 0`
    /// (invalid static configuration).
    pub fn new(within: u64, slide: u64) -> Self {
        assert!(within > 0, "WITHIN must be positive");
        assert!(slide > 0, "SLIDE must be positive");
        WindowSpec { within, slide }
    }

    /// A tumbling window of length `w` (slide == within).
    pub fn tumbling(within: u64) -> Self {
        WindowSpec::new(within, within)
    }

    /// Maximum number of windows any single event can belong to.
    pub fn windows_per_event(&self) -> usize {
        (self.within.div_ceil(self.slide)) as usize
    }

    /// The window ids containing time `t`, in increasing order.
    ///
    /// `k·s <= t < k·s + w  ⇔  (t − w)/s < k <= t/s` intersected with
    /// `k >= 0`.
    pub fn windows_of(&self, t: Timestamp) -> impl Iterator<Item = WindowId> {
        let t = t.ticks();
        let last = t / self.slide;
        let first = if t < self.within {
            0
        } else {
            // first k with k*s > t - w, i.e. floor((t - w)/s) + 1
            (t - self.within) / self.slide + 1
        };
        (first..=last).map(WindowId)
    }

    /// Start time of window `wid`.
    pub fn window_start(&self, wid: WindowId) -> Timestamp {
        Timestamp(wid.0 * self.slide)
    }

    /// Exclusive end time of window `wid`.
    pub fn window_end(&self, wid: WindowId) -> Timestamp {
        Timestamp(wid.0 * self.slide + self.within)
    }

    /// All windows whose interval ends at or before `watermark` are final:
    /// no event with time >= watermark can fall into them. Returns the
    /// largest window id that is *closed* at the given watermark, if any.
    pub fn last_closed(&self, watermark: Timestamp) -> Option<WindowId> {
        let t = watermark.ticks();
        if t < self.within {
            return None;
        }
        // window k closed ⇔ k*s + w <= t ⇔ k <= (t - w)/s
        Some(WindowId((t - self.within) / self.slide))
    }
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WITHIN {} SLIDE {}", self.within, self.slide)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(spec: &WindowSpec, t: u64) -> Vec<u64> {
        spec.windows_of(Timestamp(t)).map(|w| w.0).collect()
    }

    #[test]
    fn event_before_first_full_window() {
        let spec = WindowSpec::new(10, 3);
        assert_eq!(ids(&spec, 0), vec![0]);
        assert_eq!(ids(&spec, 2), vec![0]);
        assert_eq!(ids(&spec, 3), vec![0, 1]);
        assert_eq!(ids(&spec, 9), vec![0, 1, 2, 3]);
    }

    #[test]
    fn steady_state_overlap() {
        let spec = WindowSpec::new(10, 3);
        // t=10: windows k with 3k <= 10 < 3k+10 → k in {1,2,3}
        assert_eq!(ids(&spec, 10), vec![1, 2, 3]);
        assert_eq!(ids(&spec, 12), vec![1, 2, 3, 4]);
        assert!(ids(&spec, 100).len() <= spec.windows_per_event());
    }

    #[test]
    fn tumbling_window_single_membership() {
        let spec = WindowSpec::tumbling(5);
        for t in 0..50 {
            assert_eq!(ids(&spec, t).len(), 1, "t={t}");
            assert_eq!(ids(&spec, t)[0], t / 5);
        }
    }

    #[test]
    fn membership_is_consistent_with_interval() {
        let spec = WindowSpec::new(7, 2);
        for t in 0..100u64 {
            for k in 0..60u64 {
                let inside = k * 2 <= t && t < k * 2 + 7;
                let listed = ids(&spec, t).contains(&k);
                assert_eq!(inside, listed, "t={t} k={k}");
            }
        }
    }

    #[test]
    fn windows_per_event_bound() {
        assert_eq!(WindowSpec::new(10, 3).windows_per_event(), 4);
        assert_eq!(WindowSpec::new(10, 5).windows_per_event(), 2);
        assert_eq!(WindowSpec::new(10, 10).windows_per_event(), 1);
        assert_eq!(WindowSpec::new(600, 30).windows_per_event(), 20);
    }

    #[test]
    fn window_bounds() {
        let spec = WindowSpec::new(10, 3);
        assert_eq!(spec.window_start(WindowId(2)), Timestamp(6));
        assert_eq!(spec.window_end(WindowId(2)), Timestamp(16));
    }

    #[test]
    fn last_closed_watermark() {
        let spec = WindowSpec::new(10, 3);
        assert_eq!(spec.last_closed(Timestamp(9)), None);
        assert_eq!(spec.last_closed(Timestamp(10)), Some(WindowId(0)));
        assert_eq!(spec.last_closed(Timestamp(12)), Some(WindowId(0)));
        assert_eq!(spec.last_closed(Timestamp(13)), Some(WindowId(1)));
        // closed windows never reopen: every event at time >= watermark
        // falls only into windows with id > last_closed.
        let wm = Timestamp(22);
        let closed = spec.last_closed(wm).unwrap();
        for t in 22..60 {
            for w in ids(&spec, t) {
                assert!(w > closed.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "SLIDE must be positive")]
    fn zero_slide_rejected() {
        WindowSpec::new(10, 0);
    }
}
