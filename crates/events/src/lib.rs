//! # cogra-events
//!
//! Event model for the COGRA event-trend-aggregation system: attribute
//! [`Value`]s, per-type [`Schema`]s interned in a [`TypeRegistry`],
//! time-stamped [`Event`]s, sliding-[`WindowSpec`] arithmetic, and ordered
//! stream helpers.
//!
//! This crate is the substrate shared by the query compiler
//! (`cogra-query`), the COGRA executor (`cogra-core`), the baseline engines
//! (`cogra-baselines`) and the workload generators (`cogra-workloads`). It
//! corresponds to §2.1 (data model) and the window portion of §7 of the
//! paper.

#![warn(missing_docs)]

pub mod csv;
pub mod event;
pub mod reorder;
pub mod schema;
pub mod snap;
pub mod stream;
pub mod value;
pub mod window;

pub use csv::{read_events, write_events, CsvError, EventReader};
pub use event::{Event, EventId, Timestamp};
pub use reorder::{LateGate, ReorderBuffer, Reorderer};
pub use schema::{AttrId, Schema, TypeId, TypeRegistry};
pub use stream::{transactions, validate_ordered, EventBuilder, OutOfOrderError};
pub use value::{Value, ValueKind};
pub use window::{WindowId, WindowSpec};
