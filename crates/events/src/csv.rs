//! CSV event interchange.
//!
//! The paper's evaluation replays recorded data sets (stock transactions,
//! PAMAP2 activity reports). This module lets a downstream user do the
//! same with their own recordings: a self-describing CSV format with a
//! `type` and `time` column plus the union of all attribute columns, so a
//! heterogeneous stream round-trips through one file. Hand-rolled parser
//! (RFC-4180-style quoting) — no external dependency.
//!
//! ```text
//! type,time,patient,activity,rate
//! Measurement,1,7,passive,62
//! Measurement,2,7,passive,64
//! ```

use crate::event::Event;
use crate::schema::TypeRegistry;
use crate::stream::EventBuilder;
use crate::value::{Value, ValueKind};
use std::fmt;

/// Error produced while reading CSV events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "csv line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

fn err(line: usize, message: impl Into<String>) -> CsvError {
    CsvError {
        line,
        message: message.into(),
    }
}

/// Split one CSV record honouring double-quote escaping.
fn split_record(line: &str, line_no: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if field.is_empty() => in_quotes = true,
            '"' => return Err(err(line_no, "unexpected quote inside unquoted field")),
            ',' if !in_quotes => fields.push(std::mem::take(&mut field)),
            c => field.push(c),
        }
    }
    if in_quotes {
        return Err(err(line_no, "unterminated quoted field"));
    }
    fields.push(field);
    Ok(fields)
}

fn quote(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Streaming CSV event decoder: an iterator of `Result<Event, CsvError>`
/// over the text, decoding one row at a time — no intermediate
/// `Vec<Event>`. This is THE decode path: [`read_events`] collects it,
/// the `cogra-run` CLI and `Session::run_csv` feed engines straight from
/// it, and the throughput harness measures it.
///
/// The header must contain `type` and `time`; every other column is an
/// attribute name. Each row is parsed against its type's schema;
/// attribute columns not in that schema must be empty, and every schema
/// attribute must have a non-empty cell.
pub struct EventReader<'a> {
    registry: &'a TypeRegistry,
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    columns: Vec<String>,
    type_col: usize,
    time_col: usize,
    /// Per type id: field index of each schema attribute, resolved once
    /// on first sight of the type instead of per row × attribute.
    attr_cols: Vec<Option<Vec<usize>>>,
    builder: EventBuilder,
    /// Set after the first error: a failed decode poisons the stream
    /// (column state may be unreliable past a malformed row).
    done: bool,
}

impl<'a> EventReader<'a> {
    /// Parse the header and position the reader on the first data row.
    /// Empty input yields a reader that produces no events.
    pub fn new(text: &'a str, registry: &'a TypeRegistry) -> Result<EventReader<'a>, CsvError> {
        let mut lines = text.lines().enumerate();
        let (columns, type_col, time_col) = match lines.next() {
            None => (Vec::new(), 0, 0),
            Some((_, header)) => {
                let columns = split_record(header, 1)?;
                let type_col = columns
                    .iter()
                    .position(|c| c == "type")
                    .ok_or_else(|| err(1, "missing `type` column"))?;
                let time_col = columns
                    .iter()
                    .position(|c| c == "time")
                    .ok_or_else(|| err(1, "missing `time` column"))?;
                (columns, type_col, time_col)
            }
        };
        Ok(EventReader {
            registry,
            lines,
            columns,
            type_col,
            time_col,
            attr_cols: vec![None; registry.len()],
            builder: EventBuilder::new(),
            done: false,
        })
    }

    /// Field indices of `type_id`'s schema attributes (cached).
    fn attr_cols_of(
        &mut self,
        type_id: crate::schema::TypeId,
        line_no: usize,
    ) -> Result<&[usize], CsvError> {
        let slot = &mut self.attr_cols[type_id.index()];
        if slot.is_none() {
            let schema = self.registry.schema(type_id);
            let mut cols = Vec::with_capacity(schema.arity());
            for (attr_name, _) in schema.iter() {
                let col = self
                    .columns
                    .iter()
                    .position(|c| c == attr_name)
                    .ok_or_else(|| {
                        err(
                            line_no,
                            format!("missing column for attribute `{attr_name}`"),
                        )
                    })?;
                cols.push(col);
            }
            *slot = Some(cols);
        }
        Ok(slot.as_deref().expect("filled above"))
    }

    fn decode(&mut self, line_no: usize, line: &str) -> Result<Event, CsvError> {
        let fields = split_record(line, line_no)?;
        if fields.len() != self.columns.len() {
            return Err(err(
                line_no,
                format!(
                    "expected {} fields, found {}",
                    self.columns.len(),
                    fields.len()
                ),
            ));
        }
        let type_name = &fields[self.type_col];
        let type_id = self
            .registry
            .id_of(type_name)
            .ok_or_else(|| err(line_no, format!("unknown event type `{type_name}`")))?;
        let time: u64 = fields[self.time_col]
            .parse()
            .map_err(|_| err(line_no, format!("invalid time `{}`", fields[self.time_col])))?;
        let registry = self.registry;
        let schema = registry.schema(type_id);
        let cols = self.attr_cols_of(type_id, line_no)?;
        let mut attrs = Vec::with_capacity(schema.arity());
        for ((attr_name, kind), &col) in schema.iter().zip(cols) {
            let raw = &fields[col];
            if raw.is_empty() {
                return Err(err(
                    line_no,
                    format!("empty cell for attribute `{attr_name}` of `{type_name}`"),
                ));
            }
            attrs.push(parse_value(raw, kind, line_no, attr_name)?);
        }
        Ok(self.builder.event(time, type_id, attrs))
    }
}

impl Iterator for EventReader<'_> {
    type Item = Result<Event, CsvError>;

    fn next(&mut self) -> Option<Result<Event, CsvError>> {
        if self.done {
            return None;
        }
        loop {
            let (i, line) = self.lines.next()?;
            if line.trim().is_empty() {
                continue;
            }
            let result = self.decode(i + 1, line);
            if result.is_err() {
                self.done = true;
            }
            return Some(result);
        }
    }
}

/// Read events from CSV text — [`EventReader`] collected into a `Vec`.
pub fn read_events(text: &str, registry: &TypeRegistry) -> Result<Vec<Event>, CsvError> {
    EventReader::new(text, registry)?.collect()
}

fn parse_value(raw: &str, kind: ValueKind, line_no: usize, attr: &str) -> Result<Value, CsvError> {
    match kind {
        ValueKind::Int => raw
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| err(line_no, format!("`{attr}`: invalid int `{raw}`"))),
        ValueKind::Float => raw
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| err(line_no, format!("`{attr}`: invalid float `{raw}`"))),
        ValueKind::Bool => match raw {
            "true" | "1" => Ok(Value::Bool(true)),
            "false" | "0" => Ok(Value::Bool(false)),
            _ => Err(err(line_no, format!("`{attr}`: invalid bool `{raw}`"))),
        },
        ValueKind::Str => Ok(Value::str(raw)),
    }
}

/// Write events as CSV with the union-of-attributes header described in
/// [`read_events`]. The output round-trips: `read_events(&write_events(..))`
/// reproduces the stream (with fresh ids).
pub fn write_events(events: &[Event], registry: &TypeRegistry) -> String {
    // Union of attribute names over all registered types, in first-seen
    // order.
    let mut attr_names: Vec<&str> = Vec::new();
    for (_, schema) in registry.iter() {
        for (name, _) in schema.iter() {
            if !attr_names.contains(&name) {
                attr_names.push(name);
            }
        }
    }
    let mut out = String::from("type,time");
    for a in &attr_names {
        out.push(',');
        out.push_str(&quote(a));
    }
    out.push('\n');
    for e in events {
        let schema = registry.schema(e.type_id);
        out.push_str(&quote(schema.name()));
        out.push(',');
        out.push_str(&e.time.ticks().to_string());
        for a in &attr_names {
            out.push(',');
            if let Some(id) = schema.attr(a) {
                out.push_str(&quote(&e.attr(id).to_string()));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn registry() -> TypeRegistry {
        let mut r = TypeRegistry::new();
        r.register(Schema::new(
            "Measurement",
            vec![
                ("patient", ValueKind::Int),
                ("activity", ValueKind::Str),
                ("rate", ValueKind::Int),
            ],
        ));
        r.register(Schema::new(
            "Stock",
            vec![("company", ValueKind::Int), ("price", ValueKind::Float)],
        ));
        r
    }

    #[test]
    fn read_simple_stream() {
        let csv = "type,time,patient,activity,rate,company,price\n\
                   Measurement,1,7,passive,62,,\n\
                   Stock,2,,,,3,10.5\n";
        let events = read_events(csv, &registry()).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].time.ticks(), 1);
        assert_eq!(events[0].attrs[1], Value::str("passive"));
        assert_eq!(events[1].attrs[1], Value::Float(10.5));
    }

    #[test]
    fn round_trip() {
        let reg = registry();
        let m = reg.id_of("Measurement").unwrap();
        let s = reg.id_of("Stock").unwrap();
        let mut b = EventBuilder::new();
        let events = vec![
            b.event(
                1,
                m,
                vec![Value::Int(7), Value::str("pas,sive"), Value::Int(62)],
            ),
            b.event(2, s, vec![Value::Int(3), Value::Float(10.25)]),
            b.event(
                2,
                m,
                vec![Value::Int(8), Value::str("a\"b"), Value::Int(70)],
            ),
        ];
        let text = write_events(&events, &reg);
        let back = read_events(&text, &reg).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn quoting_rules() {
        assert_eq!(
            split_record("a,\"b,c\",\"d\"\"e\"", 1).unwrap(),
            vec!["a", "b,c", "d\"e"]
        );
        assert!(split_record("\"open", 1).is_err());
    }

    #[test]
    fn missing_required_columns() {
        assert!(read_events("time,patient\n", &registry())
            .unwrap_err()
            .message
            .contains("`type`"));
        assert!(read_events("type,patient\n", &registry())
            .unwrap_err()
            .message
            .contains("`time`"));
    }

    #[test]
    fn error_reporting_with_line_numbers() {
        let csv = "type,time,patient,activity,rate,company,price\n\
                   Measurement,1,7,passive,62,,\n\
                   Measurement,nope,7,passive,62,,\n";
        let e = read_events(csv, &registry()).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("invalid time"));
    }

    #[test]
    fn unknown_type_and_empty_attr_rejected() {
        let reg = registry();
        let e = read_events(
            "type,time,patient,activity,rate,company,price\nGhost,1,,,,,\n",
            &reg,
        )
        .unwrap_err();
        assert!(e.message.contains("unknown event type"));
        let e = read_events(
            "type,time,patient,activity,rate,company,price\nMeasurement,1,7,passive,,,\n",
            &reg,
        )
        .unwrap_err();
        assert!(e.message.contains("empty cell"));
    }

    #[test]
    fn field_count_mismatch_rejected() {
        let e = read_events(
            "type,time,patient,activity,rate,company,price\nMeasurement,1,7\n",
            &registry(),
        )
        .unwrap_err();
        assert!(e.message.contains("expected 7 fields"));
    }

    #[test]
    fn blank_lines_and_empty_input() {
        assert!(read_events("", &registry()).unwrap().is_empty());
        let csv = "type,time,patient,activity,rate,company,price\n\n  \n";
        assert!(read_events(csv, &registry()).unwrap().is_empty());
    }

    #[test]
    fn bool_parsing() {
        let mut r = TypeRegistry::new();
        r.register(Schema::new("F", vec![("x", ValueKind::Bool)]));
        let events = read_events("type,time,x\nF,1,true\nF,2,0\n", &r).unwrap();
        assert_eq!(events[0].attrs[0], Value::Bool(true));
        assert_eq!(events[1].attrs[0], Value::Bool(false));
        assert!(read_events("type,time,x\nF,1,maybe\n", &r).is_err());
    }
}
