//! Event types and schemas (§2.1).
//!
//! Every event belongs to exactly one event type `E`, "described by a schema
//! that specifies the set of event attributes and the domains of their
//! values". A [`TypeRegistry`] interns type names to dense [`TypeId`]s so the
//! hot aggregation paths index arrays instead of hashing strings.

use crate::value::ValueKind;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Dense identifier of an event type within a [`TypeRegistry`].
///
/// `TypeId`s are handed out contiguously from zero, so per-type state (e.g.
/// the type-grained aggregates of Algorithm 1) can live in a flat `Vec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

impl TypeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Index of an attribute within its type's schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Schema of one event type: ordered, named, kinded attributes.
#[derive(Debug, Clone)]
pub struct Schema {
    name: Arc<str>,
    attrs: Vec<(Arc<str>, ValueKind)>,
    by_name: HashMap<Arc<str>, AttrId>,
}

impl Schema {
    /// Create a schema. Panics on duplicate attribute names — schemas are
    /// static configuration, so a duplicate is a programming error, not a
    /// runtime condition.
    pub fn new(name: impl Into<Arc<str>>, attrs: Vec<(&str, ValueKind)>) -> Self {
        let name = name.into();
        let attrs: Vec<(Arc<str>, ValueKind)> = attrs
            .into_iter()
            .map(|(n, k)| (Arc::<str>::from(n), k))
            .collect();
        let mut by_name = HashMap::with_capacity(attrs.len());
        for (i, (n, _)) in attrs.iter().enumerate() {
            let prev = by_name.insert(Arc::clone(n), AttrId(i as u32));
            assert!(
                prev.is_none(),
                "duplicate attribute `{n}` in schema `{name}`"
            );
        }
        Schema {
            name,
            attrs,
            by_name,
        }
    }

    /// Type name this schema describes.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Look up an attribute index by name.
    pub fn attr(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// Name of an attribute.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attrs[id.index()].0
    }

    /// Declared kind of an attribute.
    pub fn attr_kind(&self, id: AttrId) -> ValueKind {
        self.attrs[id.index()].1
    }

    /// Iterate `(name, kind)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, ValueKind)> {
        self.attrs.iter().map(|(n, k)| (n.as_ref(), *k))
    }
}

/// Registry interning event type names to dense [`TypeId`]s.
///
/// The registry is immutable once handed to an engine; registration happens
/// during query/workload setup.
#[derive(Debug, Default, Clone)]
pub struct TypeRegistry {
    schemas: Vec<Schema>,
    by_name: HashMap<Arc<str>, TypeId>,
}

impl TypeRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a type schema, returning its id. Re-registering the same
    /// name returns the existing id if the schema arity matches and panics
    /// otherwise (static misconfiguration).
    pub fn register(&mut self, schema: Schema) -> TypeId {
        if let Some(&id) = self.by_name.get(schema.name()) {
            assert_eq!(
                self.schemas[id.index()].arity(),
                schema.arity(),
                "conflicting re-registration of type `{}`",
                schema.name()
            );
            return id;
        }
        let id = TypeId(self.schemas.len() as u32);
        self.by_name.insert(Arc::from(schema.name()), id);
        self.schemas.push(schema);
        id
    }

    /// Convenience: register `name` with the given attributes.
    pub fn register_type(&mut self, name: &str, attrs: Vec<(&str, ValueKind)>) -> TypeId {
        self.register(Schema::new(name, attrs))
    }

    /// Resolve a type name.
    pub fn id_of(&self, name: &str) -> Option<TypeId> {
        self.by_name.get(name).copied()
    }

    /// Schema of a type.
    pub fn schema(&self, id: TypeId) -> &Schema {
        &self.schemas[id.index()]
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// Whether no types are registered.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// Iterate all `(TypeId, &Schema)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TypeId, &Schema)> {
        self.schemas
            .iter()
            .enumerate()
            .map(|(i, s)| (TypeId(i as u32), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stock_schema() -> Schema {
        Schema::new(
            "Stock",
            vec![
                ("company", ValueKind::Int),
                ("sector", ValueKind::Int),
                ("price", ValueKind::Float),
            ],
        )
    }

    #[test]
    fn schema_lookup_by_name() {
        let s = stock_schema();
        assert_eq!(s.attr("price"), Some(AttrId(2)));
        assert_eq!(s.attr("sector"), Some(AttrId(1)));
        assert_eq!(s.attr("missing"), None);
        assert_eq!(s.attr_name(AttrId(0)), "company");
        assert_eq!(s.attr_kind(AttrId(2)), ValueKind::Float);
        assert_eq!(s.arity(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attribute_panics() {
        Schema::new("T", vec![("a", ValueKind::Int), ("a", ValueKind::Int)]);
    }

    #[test]
    fn registry_interns_dense_ids() {
        let mut reg = TypeRegistry::new();
        let a = reg.register_type("A", vec![("v", ValueKind::Int)]);
        let b = reg.register_type("B", vec![("v", ValueKind::Int)]);
        assert_eq!(a, TypeId(0));
        assert_eq!(b, TypeId(1));
        assert_eq!(reg.id_of("A"), Some(a));
        assert_eq!(reg.id_of("C"), None);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn reregistration_is_idempotent() {
        let mut reg = TypeRegistry::new();
        let a1 = reg.register_type("A", vec![("v", ValueKind::Int)]);
        let a2 = reg.register_type("A", vec![("v", ValueKind::Int)]);
        assert_eq!(a1, a2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn iterate_registry() {
        let mut reg = TypeRegistry::new();
        reg.register_type("A", vec![]);
        reg.register_type("B", vec![]);
        let names: Vec<&str> = reg.iter().map(|(_, s)| s.name()).collect();
        assert_eq!(names, vec!["A", "B"]);
    }
}
