//! Attribute values carried by events.
//!
//! The paper's data model (§2.1) describes events as tuples conforming to a
//! per-type schema. Values are deliberately kept to a small closed set of
//! variants: integers, floats, strings and booleans cover every attribute
//! used by the paper's workloads (time stamps, identifiers, heart rates,
//! prices, volumes, waiting times, activity labels).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single attribute value.
///
/// `Value` implements [`Eq`] and [`Hash`] so it can serve as (part of) a
/// grouping or partitioning key (§7: equivalence predicates and `GROUP-BY`
/// partition the stream by attribute values). Floats are compared and hashed
/// by their bit pattern via [`f64::total_cmp`], which gives a coherent total
/// order; this matters only for grouping on floating-point attributes, which
/// the paper's queries never do, but the library must not panic if a user
/// does.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer (identifiers, counts, waiting times).
    Int(i64),
    /// 64-bit float (prices, heart rates).
    Float(f64),
    /// Interned immutable string (activity labels, company symbols).
    /// `Arc<str>` makes cloning an event O(#attrs) pointer bumps.
    Str(Arc<str>),
    /// Boolean flag.
    Bool(bool),
}

impl Value {
    /// Build a string value (interning is the caller's concern).
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// The value as `f64` if it is numeric, for arithmetic aggregation
    /// (SUM/AVG/MIN/MAX are defined over numeric attributes, §2.3).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Str(_) | Value::Bool(_) => None,
        }
    }

    /// The value as `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The runtime kind of this value.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Str(_) => ValueKind::Str,
            Value::Bool(_) => ValueKind::Bool,
        }
    }

    /// Compare two values the way a predicate does (§3.2).
    ///
    /// Numeric values compare numerically across `Int`/`Float`; strings and
    /// booleans only compare against their own kind. Returns `None` for
    /// incomparable kinds — a predicate over incomparable values is simply
    /// unsatisfied, mirroring three-valued SQL comparison semantics.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// Approximate heap + inline footprint in bytes, used by the logical
    /// memory accounting that replaces the paper's JVM peak-memory metric.
    pub fn memory_bytes(&self) -> usize {
        let inline = std::mem::size_of::<Value>();
        match self {
            Value::Str(s) => inline + s.len(),
            _ => inline,
        }
    }
}

/// The kind (runtime type tag) of a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// Signed integer.
    Int,
    /// Floating point.
    Float,
    /// String.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueKind::Int => write!(f, "int"),
            ValueKind::Float => write!(f, "float"),
            ValueKind::Str => write!(f, "str"),
            ValueKind::Bool => write!(f, "bool"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b) == Ordering::Equal,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Total order used for deterministic result ordering (group keys in
/// emitted window results). Values order by kind tag first, then by value;
/// floats use [`f64::total_cmp`]. This is *not* the predicate comparison —
/// see [`Value::compare`] for that.
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        fn tag(v: &Value) -> u8 {
            match v {
                Value::Int(_) => 0,
                Value::Float(_) => 1,
                Value::Str(_) => 2,
                Value::Bool(_) => 3,
            }
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (a, b) => tag(a).cmp(&tag(b)),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(i) => {
                0u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn numeric_cross_kind_comparison() {
        assert_eq!(
            Value::Int(3).compare(&Value::Float(3.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(4.0).compare(&Value::Int(4)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(10).compare(&Value::Int(2)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn incomparable_kinds_yield_none() {
        assert_eq!(Value::str("a").compare(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).compare(&Value::Float(1.0)), None);
        assert_eq!(Value::str("a").compare(&Value::Bool(true)), None);
    }

    #[test]
    fn string_ordering() {
        assert_eq!(
            Value::str("apple").compare(&Value::str("banana")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn float_nan_comparison_is_none() {
        assert_eq!(Value::Float(f64::NAN).compare(&Value::Float(1.0)), None);
    }

    #[test]
    fn equality_is_kind_strict() {
        // Grouping keys must distinguish Int(1) from Float(1.0): a stream
        // partitioned on a typed attribute never mixes kinds, and key
        // identity must be cheap and total.
        assert_ne!(Value::Int(1), Value::Float(1.0));
        assert_eq!(Value::str("x"), Value::str("x"));
    }

    #[test]
    fn nan_equals_itself_for_grouping() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_eq!(
            hash_of(&Value::Float(f64::NAN)),
            hash_of(&Value::Float(f64::NAN))
        );
    }

    #[test]
    fn hash_consistent_with_eq() {
        let a = Value::str("driver-7");
        let b = Value::str("driver-7");
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn as_f64_conversions() {
        assert_eq!(Value::Int(5).as_f64(), Some(5.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("x").as_f64(), None);
    }

    #[test]
    fn memory_accounting_counts_string_payload() {
        let short = Value::Int(1).memory_bytes();
        let long = Value::str("abcdefghij").memory_bytes();
        assert!(long >= short + 10);
    }

    #[test]
    fn display_round_trip_kinds() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::str("IBM").to_string(), "IBM");
        assert_eq!(ValueKind::Float.to_string(), "float");
    }
}
