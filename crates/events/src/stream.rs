//! Event stream utilities.
//!
//! The paper assumes events arrive on the input stream `I` in time-stamp
//! order (§2.1, §8). [`validate_ordered`] checks that assumption;
//! [`EventBuilder`] is a convenience for tests and workload generators;
//! [`transactions`] groups simultaneous events into stream transactions as
//! required by the time-driven scheduler (§8).

use crate::event::{Event, EventId, Timestamp};
use crate::schema::TypeId;
use crate::value::Value;

/// Error raised when a stream violates the in-order assumption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfOrderError {
    /// Id of the offending event.
    pub event: EventId,
    /// Its time stamp.
    pub time: Timestamp,
    /// The watermark it regressed behind.
    pub watermark: Timestamp,
}

impl std::fmt::Display for OutOfOrderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "event {} at {} arrived after watermark {}",
            self.event, self.time, self.watermark
        )
    }
}

impl std::error::Error for OutOfOrderError {}

/// Verify a slice of events is non-decreasing in time.
pub fn validate_ordered(events: &[Event]) -> Result<(), OutOfOrderError> {
    let mut watermark = Timestamp::ZERO;
    for e in events {
        if e.time < watermark {
            return Err(OutOfOrderError {
                event: e.id,
                time: e.time,
                watermark,
            });
        }
        watermark = e.time;
    }
    Ok(())
}

/// Group an ordered stream into *stream transactions*: maximal runs of
/// events sharing a time stamp (§8). Returns index ranges into `events`.
pub fn transactions(events: &[Event]) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut start = 0;
    while start < events.len() {
        let t = events[start].time;
        let mut end = start + 1;
        while end < events.len() && events[end].time == t {
            end += 1;
        }
        out.push(start..end);
        start = end;
    }
    out
}

/// Incremental builder assigning monotone event ids; handy for tests and
/// generators.
#[derive(Debug, Default)]
pub struct EventBuilder {
    next_id: u64,
}

impl EventBuilder {
    /// Fresh builder starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit an event with the next id.
    pub fn event(&mut self, time: u64, type_id: TypeId, attrs: Vec<Value>) -> Event {
        let e = Event::new(self.next_id, time, type_id, attrs);
        self.next_id += 1;
        e
    }

    /// Number of events emitted so far.
    pub fn emitted(&self) -> u64 {
        self.next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64, t: u64) -> Event {
        Event::new(id, t, TypeId(0), vec![])
    }

    #[test]
    fn ordered_stream_passes() {
        let s = vec![ev(0, 1), ev(1, 1), ev(2, 3)];
        assert!(validate_ordered(&s).is_ok());
    }

    #[test]
    fn out_of_order_detected() {
        let s = vec![ev(0, 5), ev(1, 4)];
        let err = validate_ordered(&s).unwrap_err();
        assert_eq!(err.event, EventId(1));
        assert_eq!(err.watermark, Timestamp(5));
        assert!(err.to_string().contains("watermark"));
    }

    #[test]
    fn transactions_group_equal_timestamps() {
        let s = vec![ev(0, 1), ev(1, 1), ev(2, 2), ev(3, 5), ev(4, 5), ev(5, 5)];
        let tx = transactions(&s);
        assert_eq!(tx, vec![0..2, 2..3, 3..6]);
    }

    #[test]
    fn transactions_empty_stream() {
        assert!(transactions(&[]).is_empty());
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = EventBuilder::new();
        let e0 = b.event(1, TypeId(0), vec![]);
        let e1 = b.event(2, TypeId(1), vec![]);
        assert_eq!(e0.id, EventId(0));
        assert_eq!(e1.id, EventId(1));
        assert_eq!(b.emitted(), 2);
    }
}
