//! Snapshot codecs for the event model ([`Value`], [`Event`]) — the
//! leaf encoders everything above (keys, window stores, reorder buffers)
//! builds on when a session is checkpointed.

use crate::event::{Event, EventId, Timestamp};
use crate::schema::TypeId;
use crate::value::Value;
use cogra_checkpoint::{CheckpointError, Dec, Enc};

impl Value {
    /// Serialize as a tag byte + payload. Floats are stored by bit
    /// pattern, so NaN keys survive a round trip with their grouping
    /// identity intact.
    pub fn save(&self, enc: &mut Enc) {
        match self {
            Value::Int(i) => {
                enc.u8(0);
                enc.i64(*i);
            }
            Value::Float(f) => {
                enc.u8(1);
                enc.f64(*f);
            }
            Value::Str(s) => {
                enc.u8(2);
                enc.str(s);
            }
            Value::Bool(b) => {
                enc.u8(3);
                enc.bool(*b);
            }
        }
    }

    /// Inverse of [`Value::save`].
    pub fn load(dec: &mut Dec) -> Result<Value, CheckpointError> {
        Ok(match dec.u8()? {
            0 => Value::Int(dec.i64()?),
            1 => Value::Float(dec.f64()?),
            2 => Value::str(dec.str()?),
            3 => Value::Bool(dec.bool()?),
            t => return Err(CheckpointError::Corrupt(format!("bad value tag {t}"))),
        })
    }

    /// Serialize a value list with a leading count.
    pub fn save_slice(values: &[Value], enc: &mut Enc) {
        enc.usize(values.len());
        for v in values {
            v.save(enc);
        }
    }

    /// Inverse of [`Value::save_slice`].
    pub fn load_vec(dec: &mut Dec) -> Result<Vec<Value>, CheckpointError> {
        let n = dec.usize()?;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            out.push(Value::load(dec)?);
        }
        Ok(out)
    }
}

impl Event {
    /// Serialize id, time, type and attributes.
    pub fn save(&self, enc: &mut Enc) {
        enc.u64(self.id.0);
        enc.u64(self.time.ticks());
        enc.u32(self.type_id.0);
        Value::save_slice(&self.attrs, enc);
    }

    /// Inverse of [`Event::save`].
    pub fn load(dec: &mut Dec) -> Result<Event, CheckpointError> {
        Ok(Event {
            id: EventId(dec.u64()?),
            time: Timestamp(dec.u64()?),
            type_id: TypeId(dec.u32()?),
            attrs: Value::load_vec(dec)?,
        })
    }

    /// Serialize an event list with a leading count.
    pub fn save_slice(events: &[Event], enc: &mut Enc) {
        enc.usize(events.len());
        for e in events {
            e.save(enc);
        }
    }

    /// Inverse of [`Event::save_slice`].
    pub fn load_vec(dec: &mut Dec) -> Result<Vec<Event>, CheckpointError> {
        let n = dec.usize()?;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            out.push(Event::load(dec)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_and_event_round_trip() {
        let values = vec![
            Value::Int(-7),
            Value::Float(f64::NAN),
            Value::str("IBM"),
            Value::Bool(true),
        ];
        let event = Event::new(42, 99, TypeId(3), values.clone());
        let mut enc = Enc::new();
        Value::save_slice(&values, &mut enc);
        event.save(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(Value::load_vec(&mut dec).unwrap(), values);
        let back = Event::load(&mut dec).unwrap();
        assert_eq!(back, event);
        dec.finish("event").unwrap();
    }

    #[test]
    fn bad_tag_is_corrupt() {
        let mut dec = Dec::new(&[9]);
        assert!(matches!(
            Value::load(&mut dec),
            Err(CheckpointError::Corrupt(_))
        ));
    }
}
