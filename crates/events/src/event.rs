//! Events and time (§2.1).
//!
//! Time is a linearly ordered set of time points; the paper uses
//! second-resolution application time stamps assigned by the event source.
//! We represent time as unsigned integer *ticks* ([`Timestamp`]); the unit is
//! workload-defined (the bundled generators use seconds).

use crate::schema::{AttrId, TypeId};
use crate::value::Value;
use std::fmt;

/// Application time stamp in ticks (non-negative, totally ordered).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero time point.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Raw tick count.
    #[inline]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating addition of a duration in ticks.
    #[inline]
    pub fn saturating_add(self, d: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(d))
    }

    /// Saturating subtraction of a duration in ticks.
    #[inline]
    pub fn saturating_sub(self, d: u64) -> Timestamp {
        Timestamp(self.0.saturating_sub(d))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(t: u64) -> Self {
        Timestamp(t)
    }
}

/// Stable per-stream sequence number.
///
/// The paper assumes events arrive in time-stamp order and processes all
/// events with equal time stamps as one *stream transaction* (§8). The
/// sequence number gives every event a stable identity for trend
/// enumeration, pointers in the SASE baseline, and deterministic test
/// output; it does **not** refine the temporal order (two events with equal
/// time stamps are still temporally incomparable, so neither can precede the
/// other in a trend, per Definition 7 condition 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct EventId(pub u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A primitive event: typed, time-stamped tuple of attribute values.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Stable identity within its stream.
    pub id: EventId,
    /// Application time assigned by the source.
    pub time: Timestamp,
    /// The event's type.
    pub type_id: TypeId,
    /// Attribute values, positionally matching the type's [`Schema`].
    ///
    /// [`Schema`]: crate::schema::Schema
    pub attrs: Vec<Value>,
}

impl Event {
    /// Construct an event.
    pub fn new(
        id: impl Into<EventId>,
        time: impl Into<Timestamp>,
        type_id: TypeId,
        attrs: Vec<Value>,
    ) -> Self {
        Event {
            id: id.into(),
            time: time.into(),
            type_id,
            attrs,
        }
    }

    /// Attribute value by positional id. Panics on out-of-range ids, which
    /// indicate a query/schema mismatch that validation should have caught.
    #[inline]
    pub fn attr(&self, id: AttrId) -> &Value {
        &self.attrs[id.index()]
    }

    /// Attribute value by positional id, `None` if out of range.
    #[inline]
    pub fn attr_checked(&self, id: AttrId) -> Option<&Value> {
        self.attrs.get(id.index())
    }

    /// Approximate logical footprint in bytes (for peak-memory accounting).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Event>() + self.attrs.iter().map(Value::memory_bytes).sum::<usize>()
    }
}

impl From<u64> for EventId {
    fn from(v: u64) -> Self {
        EventId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic_saturates() {
        assert_eq!(Timestamp(5).saturating_sub(10), Timestamp(0));
        assert_eq!(Timestamp(u64::MAX).saturating_add(1), Timestamp(u64::MAX));
        assert_eq!(Timestamp(3).saturating_add(4), Timestamp(7));
    }

    #[test]
    fn timestamp_ordering() {
        assert!(Timestamp(1) < Timestamp(2));
        assert_eq!(Timestamp::ZERO, Timestamp(0));
    }

    #[test]
    fn event_attr_access() {
        let e = Event::new(0, 7, TypeId(0), vec![Value::Int(42), Value::str("x")]);
        assert_eq!(e.attr(AttrId(0)), &Value::Int(42));
        assert_eq!(e.attr_checked(AttrId(1)), Some(&Value::str("x")));
        assert_eq!(e.attr_checked(AttrId(2)), None);
        assert_eq!(e.time, Timestamp(7));
    }

    #[test]
    fn event_memory_includes_attrs() {
        let small = Event::new(0, 0, TypeId(0), vec![]);
        let big = Event::new(0, 0, TypeId(0), vec![Value::Int(1); 8]);
        assert!(big.memory_bytes() > small.memory_bytes());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Timestamp(9).to_string(), "t9");
        assert_eq!(EventId(3).to_string(), "#3");
    }
}
