//! Bounded out-of-order buffering.
//!
//! The engines require time-ordered input (§2.1; the §8 time-driven
//! scheduler "waits till the processing of all transactions with smaller
//! time stamps is completed"). Real sources deliver events slightly
//! disordered; [`Reorderer`] implements the waiting: it buffers events and
//! releases them in time-stamp order once the watermark (maximum time
//! seen) has advanced `slack` ticks past them, guaranteeing in-order
//! delivery for any input whose disorder is bounded by `slack`. An event
//! arriving behind output that was already released is *late*: it is
//! dropped and counted (the watermark-slack contract of streaming
//! systems; this implementation drops only when emission would actually
//! violate order, which is the laziest correct policy).

use crate::event::{Event, Timestamp};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Heap entry ordered by (time, arrival sequence) so equal-time events
/// keep their arrival order.
#[derive(Debug)]
struct Pending {
    time: Timestamp,
    seq: u64,
    event: Event,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Buffering reorderer with a fixed disorder bound.
///
/// ```
/// use cogra_events::{Event, Reorderer, TypeId};
/// let mut r = Reorderer::new(2);
/// let mut out = Vec::new();
/// for (id, t) in [(0, 3u64), (1, 1), (2, 2), (3, 5)] {
///     r.push(Event::new(id, t, TypeId(0), vec![]), &mut out);
/// }
/// r.flush(&mut out);
/// let times: Vec<u64> = out.iter().map(|e| e.time.ticks()).collect();
/// assert_eq!(times, vec![1, 2, 3, 5]);
/// ```
#[derive(Debug)]
pub struct Reorderer {
    slack: u64,
    watermark: Timestamp,
    released_to: Timestamp,
    seq: u64,
    heap: BinaryHeap<Reverse<Pending>>,
    late: u64,
}

impl Reorderer {
    /// A reorderer tolerating up to `slack` ticks of disorder.
    pub fn new(slack: u64) -> Reorderer {
        Reorderer {
            slack,
            watermark: Timestamp::ZERO,
            released_to: Timestamp::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            late: 0,
        }
    }

    /// Offer one event; append any events now safe to deliver to `out`
    /// (in non-decreasing time order).
    pub fn push(&mut self, event: Event, out: &mut Vec<Event>) {
        if event.time < self.released_to {
            self.late += 1;
            return;
        }
        self.watermark = self.watermark.max(event.time);
        self.heap.push(Reverse(Pending {
            time: event.time,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
        let safe = self.watermark.saturating_sub(self.slack);
        while let Some(Reverse(top)) = self.heap.peek() {
            if top.time > safe {
                break;
            }
            let Reverse(p) = self.heap.pop().expect("peeked");
            self.released_to = self.released_to.max(p.time);
            out.push(p.event);
        }
    }

    /// End of stream: release everything still buffered, in order.
    pub fn flush(&mut self, out: &mut Vec<Event>) {
        while let Some(Reverse(p)) = self.heap.pop() {
            self.released_to = self.released_to.max(p.time);
            out.push(p.event);
        }
    }

    /// Number of events dropped as too late.
    pub fn late_events(&self) -> u64 {
        self.late
    }

    /// Number of events currently buffered.
    pub fn buffered(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TypeId;

    fn ev(id: u64, t: u64) -> Event {
        Event::new(id, t, TypeId(0), vec![])
    }

    fn run(slack: u64, times: &[u64]) -> (Vec<u64>, u64) {
        let mut r = Reorderer::new(slack);
        let mut out = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            r.push(ev(i as u64, t), &mut out);
        }
        r.flush(&mut out);
        (
            out.iter().map(|e| e.time.ticks()).collect(),
            r.late_events(),
        )
    }

    #[test]
    fn ordered_input_passes_through() {
        let (out, late) = run(2, &[1, 2, 3, 4, 5]);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert_eq!(late, 0);
    }

    #[test]
    fn bounded_disorder_is_repaired() {
        let (out, late) = run(3, &[3, 1, 2, 6, 4, 5, 9, 7, 8]);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(late, 0);
    }

    #[test]
    fn events_behind_released_output_are_dropped() {
        // 12 advances the watermark to 12 → 10 is released; the straggler
        // at 3 would have to be emitted after 10 and is late.
        let (out, late) = run(2, &[10, 12, 3]);
        assert_eq!(out, vec![10, 12]);
        assert_eq!(late, 1);
    }

    #[test]
    fn straggler_within_unreleased_range_is_kept() {
        // Nothing at or below time 3 was released yet, so a straggler at
        // 3 can still be emitted in order even though the watermark has
        // passed 3 + slack.
        let (out, late) = run(2, &[10, 3]);
        assert_eq!(out, vec![3, 10]);
        assert_eq!(late, 0);
    }

    #[test]
    fn equal_times_keep_arrival_order() {
        let mut r = Reorderer::new(0);
        let mut out = Vec::new();
        r.push(ev(0, 5), &mut out);
        r.push(ev(1, 5), &mut out);
        r.push(ev(2, 5), &mut out);
        r.flush(&mut out);
        let ids: Vec<u64> = out.iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn zero_slack_releases_eagerly() {
        let mut r = Reorderer::new(0);
        let mut out = Vec::new();
        r.push(ev(0, 1), &mut out);
        assert_eq!(out.len(), 1, "watermark == event time → immediately safe");
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn buffered_count_tracks_heap() {
        let mut r = Reorderer::new(10);
        let mut out = Vec::new();
        for t in [5, 3, 8] {
            r.push(ev(t, t), &mut out);
        }
        assert!(out.is_empty(), "nothing is 10 ticks behind yet");
        assert_eq!(r.buffered(), 3);
        r.push(ev(20, 20), &mut out);
        assert_eq!(
            out.iter().map(|e| e.time.ticks()).collect::<Vec<_>>(),
            vec![3, 5, 8]
        );
    }

    #[test]
    fn output_feeds_engine_validly() {
        // The released stream must satisfy the engines' ordering contract.
        let (out, _) = run(4, &[4, 1, 7, 2, 9, 5, 12, 8]);
        let events: Vec<Event> = out
            .iter()
            .enumerate()
            .map(|(i, &t)| ev(i as u64, t))
            .collect();
        assert!(crate::stream::validate_ordered(&events).is_ok());
    }
}
