//! Bounded out-of-order buffering.
//!
//! The engines require time-ordered input (§2.1; the §8 time-driven
//! scheduler "waits till the processing of all transactions with smaller
//! time stamps is completed"). Real sources deliver events slightly
//! disordered; [`Reorderer`] implements the waiting: it buffers events and
//! releases them in time-stamp order once the watermark (maximum time
//! seen) has advanced `slack` ticks past them, guaranteeing in-order
//! delivery for any input whose disorder is bounded by `slack`. An event
//! arriving behind output that was already released is *late*: it is
//! dropped and counted (the watermark-slack contract of streaming
//! systems; this implementation drops only when emission would actually
//! violate order, which is the laziest correct policy).
//!
//! Sharded execution splits the reorderer in two so repair is not
//! serialized in front of the router:
//! * [`LateGate`] — the coordinator-side admission decision. It tracks
//!   only *time stamps* (a heap of `Timestamp`s, no event payloads) and
//!   reproduces the exact drop rule a front [`Reorderer`] would apply, so
//!   late-drop counts stay identical no matter how many shards repair
//!   concurrently behind it.
//! * [`ReorderBuffer`] — the payload-generic buffering half, one per
//!   shard worker. It sorts whatever the gate admitted; it never drops
//!   (the gate already decided admission).

use crate::event::{Event, Timestamp};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Heap entry ordered by (time, arrival sequence) so equal-time items
/// keep their arrival order.
#[derive(Debug)]
struct Pending<T> {
    time: Timestamp,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Pending<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Pending<T> {}
impl<T> PartialOrd for Pending<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Pending<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Payload-generic time-ordering buffer: items go in tagged with a time
/// stamp, and come out in (time, arrival) order whenever the caller
/// declares a release point. Admission (late-drop) policy is *not* here —
/// it belongs to whoever owns the stream-wide watermark ([`Reorderer`]
/// for a single front buffer, [`LateGate`] for sharded execution).
#[derive(Debug)]
pub struct ReorderBuffer<T> {
    heap: BinaryHeap<Reverse<Pending<T>>>,
    seq: u64,
}

impl<T> Default for ReorderBuffer<T> {
    fn default() -> ReorderBuffer<T> {
        ReorderBuffer::new()
    }
}

impl<T> ReorderBuffer<T> {
    /// An empty buffer.
    pub fn new() -> ReorderBuffer<T> {
        ReorderBuffer {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Buffer one item stamped with `time`.
    pub fn push(&mut self, time: Timestamp, item: T) {
        self.heap.push(Reverse(Pending {
            time,
            seq: self.seq,
            item,
        }));
        self.seq += 1;
    }

    /// Append every buffered item with time `<= safe` to `out`, in
    /// (time, arrival) order.
    pub fn release_up_to(&mut self, safe: Timestamp, out: &mut Vec<T>) {
        while let Some(Reverse(top)) = self.heap.peek() {
            if top.time > safe {
                break;
            }
            let Reverse(p) = self.heap.pop().expect("peeked");
            out.push(p.item);
        }
    }

    /// End of stream: append everything still buffered to `out`, in order.
    pub fn flush(&mut self, out: &mut Vec<T>) {
        while let Some(Reverse(p)) = self.heap.pop() {
            out.push(p.item);
        }
    }

    /// Smallest time still buffered.
    pub fn min_time(&self) -> Option<Timestamp> {
        self.heap.peek().map(|Reverse(p)| p.time)
    }

    /// Number of items currently buffered.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Non-consuming ordered view of the buffered items, in the exact
    /// (time, arrival) order [`ReorderBuffer::flush`] would emit them —
    /// the checkpoint path serializes buffers without draining them.
    pub fn ordered(&self) -> Vec<(Timestamp, &T)> {
        let mut pending: Vec<&Pending<T>> = self.heap.iter().map(|Reverse(p)| p).collect();
        pending.sort_by_key(|p| (p.time, p.seq));
        pending.into_iter().map(|p| (p.time, &p.item)).collect()
    }
}

/// The admission half of a sharded reorder pipeline.
///
/// A coordinator that fans events out to per-shard [`ReorderBuffer`]s
/// still needs ONE stream-wide answer to "is this event hopelessly
/// late?" — otherwise drop decisions would depend on how the stream
/// shards (a shard whose sub-stream runs behind the global watermark
/// would admit events a front [`Reorderer`] provably drops). The gate
/// replays the front reorderer's bookkeeping on time stamps alone:
/// `released_to` is the largest time already releasable anywhere
/// (`max{t pushed : t <= watermark − slack}`), and an arriving event is
/// late exactly when its time is behind that — byte-for-byte the rule
/// [`Reorderer::push`] applies, at a heap-of-`u64`s price.
#[derive(Debug)]
pub struct LateGate {
    slack: u64,
    watermark: Timestamp,
    released_to: Timestamp,
    pending: BinaryHeap<Reverse<Timestamp>>,
    late: u64,
}

impl LateGate {
    /// A gate tolerating up to `slack` ticks of disorder.
    pub fn new(slack: u64) -> LateGate {
        LateGate {
            slack,
            watermark: Timestamp::ZERO,
            released_to: Timestamp::ZERO,
            pending: BinaryHeap::new(),
            late: 0,
        }
    }

    /// Decide admission of an event at `time`: `false` means the event is
    /// late (dropped and counted) — a front [`Reorderer`] fed the same
    /// stream would drop it too. Admitted events may be forwarded to
    /// their shard immediately; the shard's [`ReorderBuffer`] repairs
    /// local order.
    pub fn admit(&mut self, time: Timestamp) -> bool {
        if time < self.released_to {
            self.late += 1;
            return false;
        }
        self.watermark = self.watermark.max(time);
        self.pending.push(Reverse(time));
        let safe = self.watermark.saturating_sub(self.slack);
        while let Some(&Reverse(top)) = self.pending.peek() {
            if top > safe {
                break;
            }
            self.pending.pop();
            self.released_to = self.released_to.max(top);
        }
        true
    }

    /// The largest time stamp that is releasable stream-wide: every
    /// admitted event at or before it is deliverable in order, so results
    /// up to here are final after the shards catch up. This is exactly
    /// the `released_to` of an equivalent front [`Reorderer`].
    pub fn safe_watermark(&self) -> Timestamp {
        self.released_to
    }

    /// The raw stream watermark (largest admitted time).
    pub fn watermark(&self) -> Timestamp {
        self.watermark
    }

    /// Number of events refused as too late.
    pub fn late_events(&self) -> u64 {
        self.late
    }

    /// The configured disorder tolerance in ticks.
    pub fn slack(&self) -> u64 {
        self.slack
    }

    /// The admitted-but-unreleased time stamps, sorted ascending — the
    /// gate's exact pending state, serialized verbatim at checkpoint so a
    /// restored gate reproduces every future drop decision bit-for-bit.
    pub fn pending_times(&self) -> Vec<Timestamp> {
        let mut times: Vec<Timestamp> = self.pending.iter().map(|Reverse(t)| *t).collect();
        times.sort();
        times
    }

    /// Rebuild a gate from checkpointed state ([`LateGate::slack`],
    /// [`LateGate::watermark`], [`LateGate::safe_watermark`],
    /// [`LateGate::late_events`], [`LateGate::pending_times`]).
    pub fn from_parts(
        slack: u64,
        watermark: Timestamp,
        released_to: Timestamp,
        late: u64,
        pending: Vec<Timestamp>,
    ) -> LateGate {
        LateGate {
            slack,
            watermark,
            released_to,
            pending: pending.into_iter().map(Reverse).collect(),
            late,
        }
    }
}

/// Buffering reorderer with a fixed disorder bound.
///
/// ```
/// use cogra_events::{Event, Reorderer, TypeId};
/// let mut r = Reorderer::new(2);
/// let mut out = Vec::new();
/// for (id, t) in [(0, 3u64), (1, 1), (2, 2), (3, 5)] {
///     r.push(Event::new(id, t, TypeId(0), vec![]), &mut out);
/// }
/// r.flush(&mut out);
/// let times: Vec<u64> = out.iter().map(|e| e.time.ticks()).collect();
/// assert_eq!(times, vec![1, 2, 3, 5]);
/// ```
#[derive(Debug)]
pub struct Reorderer {
    slack: u64,
    watermark: Timestamp,
    released_to: Timestamp,
    buffer: ReorderBuffer<Event>,
    late: u64,
}

impl Reorderer {
    /// A reorderer tolerating up to `slack` ticks of disorder.
    pub fn new(slack: u64) -> Reorderer {
        Reorderer {
            slack,
            watermark: Timestamp::ZERO,
            released_to: Timestamp::ZERO,
            buffer: ReorderBuffer::new(),
            late: 0,
        }
    }

    /// Offer one event; append any events now safe to deliver to `out`
    /// (in non-decreasing time order).
    pub fn push(&mut self, event: Event, out: &mut Vec<Event>) {
        if event.time < self.released_to {
            self.late += 1;
            return;
        }
        self.watermark = self.watermark.max(event.time);
        self.buffer.push(event.time, event);
        let safe = self.watermark.saturating_sub(self.slack);
        let from = out.len();
        self.buffer.release_up_to(safe, out);
        if let Some(last) = out[from..].last() {
            self.released_to = self.released_to.max(last.time);
        }
    }

    /// End of stream: release everything still buffered, in order.
    pub fn flush(&mut self, out: &mut Vec<Event>) {
        let from = out.len();
        self.buffer.flush(out);
        if let Some(last) = out[from..].last() {
            self.released_to = self.released_to.max(last.time);
        }
    }

    /// Number of events dropped as too late.
    pub fn late_events(&self) -> u64 {
        self.late
    }

    /// Number of events currently buffered.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// The configured disorder tolerance in ticks.
    pub fn slack(&self) -> u64 {
        self.slack
    }

    /// The raw stream watermark (largest admitted time).
    pub fn watermark(&self) -> Timestamp {
        self.watermark
    }

    /// The largest time already released — events behind it are late.
    pub fn released_to(&self) -> Timestamp {
        self.released_to
    }

    /// Non-consuming ordered view of the buffered events, in release
    /// order — what a checkpoint serializes.
    pub fn buffered_events(&self) -> Vec<&Event> {
        self.buffer.ordered().into_iter().map(|(_, e)| e).collect()
    }

    /// Rebuild a reorderer from checkpointed counters; buffered events
    /// are re-staged separately via [`Reorderer::restore_buffered`].
    pub fn from_parts(
        slack: u64,
        watermark: Timestamp,
        released_to: Timestamp,
        late: u64,
    ) -> Reorderer {
        Reorderer {
            slack,
            watermark,
            released_to,
            buffer: ReorderBuffer::new(),
            late,
        }
    }

    /// Re-stage checkpointed buffered events, bypassing admission and
    /// release (a checkpoint only holds events above `released_to`, so
    /// nothing could release anyway; going around [`Reorderer::push`]
    /// keeps the watermark exactly as restored). Events must arrive in
    /// the order [`Reorderer::buffered_events`] produced them so arrival
    /// sequence numbers keep equal-time events in their original order.
    pub fn restore_buffered(&mut self, events: impl IntoIterator<Item = Event>) {
        for event in events {
            debug_assert!(event.time >= self.released_to, "buffered event is late");
            self.buffer.push(event.time, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TypeId;

    fn ev(id: u64, t: u64) -> Event {
        Event::new(id, t, TypeId(0), vec![])
    }

    fn run(slack: u64, times: &[u64]) -> (Vec<u64>, u64) {
        let mut r = Reorderer::new(slack);
        let mut out = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            r.push(ev(i as u64, t), &mut out);
        }
        r.flush(&mut out);
        (
            out.iter().map(|e| e.time.ticks()).collect(),
            r.late_events(),
        )
    }

    #[test]
    fn ordered_input_passes_through() {
        let (out, late) = run(2, &[1, 2, 3, 4, 5]);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert_eq!(late, 0);
    }

    #[test]
    fn bounded_disorder_is_repaired() {
        let (out, late) = run(3, &[3, 1, 2, 6, 4, 5, 9, 7, 8]);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(late, 0);
    }

    #[test]
    fn events_behind_released_output_are_dropped() {
        // 12 advances the watermark to 12 → 10 is released; the straggler
        // at 3 would have to be emitted after 10 and is late.
        let (out, late) = run(2, &[10, 12, 3]);
        assert_eq!(out, vec![10, 12]);
        assert_eq!(late, 1);
    }

    #[test]
    fn straggler_within_unreleased_range_is_kept() {
        // Nothing at or below time 3 was released yet, so a straggler at
        // 3 can still be emitted in order even though the watermark has
        // passed 3 + slack.
        let (out, late) = run(2, &[10, 3]);
        assert_eq!(out, vec![3, 10]);
        assert_eq!(late, 0);
    }

    #[test]
    fn equal_times_keep_arrival_order() {
        let mut r = Reorderer::new(0);
        let mut out = Vec::new();
        r.push(ev(0, 5), &mut out);
        r.push(ev(1, 5), &mut out);
        r.push(ev(2, 5), &mut out);
        r.flush(&mut out);
        let ids: Vec<u64> = out.iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn zero_slack_releases_eagerly() {
        let mut r = Reorderer::new(0);
        let mut out = Vec::new();
        r.push(ev(0, 1), &mut out);
        assert_eq!(out.len(), 1, "watermark == event time → immediately safe");
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn buffered_count_tracks_heap() {
        let mut r = Reorderer::new(10);
        let mut out = Vec::new();
        for t in [5, 3, 8] {
            r.push(ev(t, t), &mut out);
        }
        assert!(out.is_empty(), "nothing is 10 ticks behind yet");
        assert_eq!(r.buffered(), 3);
        r.push(ev(20, 20), &mut out);
        assert_eq!(
            out.iter().map(|e| e.time.ticks()).collect::<Vec<_>>(),
            vec![3, 5, 8]
        );
    }

    #[test]
    fn output_feeds_engine_validly() {
        // The released stream must satisfy the engines' ordering contract.
        let (out, _) = run(4, &[4, 1, 7, 2, 9, 5, 12, 8]);
        let events: Vec<Event> = out
            .iter()
            .enumerate()
            .map(|(i, &t)| ev(i as u64, t))
            .collect();
        assert!(crate::stream::validate_ordered(&events).is_ok());
    }

    #[test]
    fn gate_drop_decisions_match_a_front_reorderer() {
        // The LateGate must reproduce the Reorderer's admissions exactly —
        // per event, not just in total — on adversarial time sequences.
        let sequences: &[&[u64]] = &[
            &[1, 2, 3, 4, 5],
            &[10, 12, 3],
            &[10, 3],
            &[3, 1, 2, 6, 4, 5, 9, 7, 8],
            &[100, 50, 100, 1, 99, 98, 101, 97, 2, 102],
            &[5, 5, 5, 1, 5, 9, 4, 9, 3],
            &[0, 0, 7, 0, 14, 7, 21, 0],
        ];
        for slack in [0u64, 1, 2, 3, 7, 100] {
            for &times in sequences {
                let mut reorderer = Reorderer::new(slack);
                let mut gate = LateGate::new(slack);
                let mut out = Vec::new();
                for (i, &t) in times.iter().enumerate() {
                    let before = reorderer.late_events();
                    reorderer.push(ev(i as u64, t), &mut out);
                    let dropped = reorderer.late_events() > before;
                    let admitted = gate.admit(Timestamp(t));
                    assert_eq!(
                        admitted, !dropped,
                        "slack={slack} times={times:?} event {i} (t={t})"
                    );
                    assert_eq!(
                        gate.safe_watermark(),
                        reorderer.released_to,
                        "slack={slack} times={times:?} after event {i}"
                    );
                }
                assert_eq!(gate.late_events(), reorderer.late_events());
            }
        }
    }

    #[test]
    fn buffer_releases_in_time_then_arrival_order() {
        let mut b: ReorderBuffer<&str> = ReorderBuffer::new();
        b.push(Timestamp(5), "a");
        b.push(Timestamp(3), "b");
        b.push(Timestamp(5), "c");
        b.push(Timestamp(8), "d");
        assert_eq!(b.min_time(), Some(Timestamp(3)));
        let mut out = Vec::new();
        b.release_up_to(Timestamp(5), &mut out);
        assert_eq!(out, vec!["b", "a", "c"]);
        assert_eq!(b.len(), 1);
        b.flush(&mut out);
        assert_eq!(out, vec!["b", "a", "c", "d"]);
        assert!(b.is_empty());
    }
}
