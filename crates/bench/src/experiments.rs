//! The §9 experiments: one runner per figure and table of the paper's
//! evaluation. Each runner prints the same series the paper plots
//! (latency / peak memory / throughput per approach, over the swept
//! parameter) as report tables. EXPERIMENTS.md records paper-vs-measured.
//!
//! Scaling note (DESIGN.md, substitutions): the paper ran a 16-core /
//! 128 GB server for hours; these sweeps use laptop-scale sizes with the
//! same *shapes*. Two mechanisms stand in for the paper's "does not
//! terminate": a per-point time budget (once an engine exceeds it, larger
//! points are DNF), and a hard skip for two-step engines under
//! skip-till-any-match once the densest partition-window content exceeds
//! [`FLINK_ANY_LIMIT`] / [`SASE_ANY_LIMIT`] events (the trend count is
//! exponential in that number, so Flink's materialized sequences and
//! SASE's DFS time blow up past any budget).

use crate::harness::{human_bytes, BudgetedSweep, Measurement, Outcome};
use crate::table::Table;
use cogra_core::runtime::EngineConfig;
use cogra_core::session::EngineKind;
use cogra_events::{Event, TypeRegistry};
use cogra_query::{Query, Semantics};
use cogra_workloads::{activity, rideshare, stock, transport};
use std::collections::HashMap;
use std::time::Duration;

/// Flink is hard-skipped under skip-till-any-match when some partition's
/// window holds more events than this: it *materializes* all trends, whose
/// number is exponential in the window content (Table 3), so memory blows
/// up first (Figure 7(b)).
pub const FLINK_ANY_LIMIT: usize = 20;

/// SASE is hard-skipped under skip-till-any-match past this per-partition
/// window occupancy: it enumerates the exponential trend set by DFS
/// without storing it, so it survives slightly further than Flink before
/// its latency blows up (Figure 7(a)).
pub const SASE_ANY_LIMIT: usize = 24;

/// Experiment options.
#[derive(Debug, Clone, Default)]
pub struct ExpOptions {
    /// Reduced sizes for smoke runs (used by `--quick` and the Criterion
    /// benches).
    pub quick: bool,
}

/// One sweep point: a label, its stream, and its query.
struct Point {
    label: String,
    registry: TypeRegistry,
    events: Vec<Event>,
    query: Query,
    /// Engines hard-skipped at this point (expected non-termination).
    skip: Vec<EngineKind>,
}

impl Point {
    fn new(
        label: impl Into<String>,
        registry: TypeRegistry,
        events: Vec<Event>,
        query_text: &str,
    ) -> Point {
        Point {
            label: label.into(),
            registry,
            events,
            query: cogra_query::parse(query_text).expect("experiment query parses"),
            skip: Vec::new(),
        }
    }

    /// Hard-skip the two-step engines when the densest partition-window
    /// of this point exceeds their exponential-blow-up limits. Uses the
    /// exact occupancy (partition assignment is random, so the densest
    /// partition can be well above the mean).
    fn skip_two_step_any(mut self) -> Point {
        if self.query.semantics != Semantics::Any {
            return self;
        }
        let occupancy = max_partition_window_occupancy(&self.query, &self.registry, &self.events);
        if occupancy > FLINK_ANY_LIMIT {
            self.skip.push(EngineKind::Flink);
        }
        if occupancy > SASE_ANY_LIMIT {
            self.skip.push(EngineKind::Sase);
        }
        self
    }
}

/// The number of events in the densest (partition, window) pair.
fn max_partition_window_occupancy(
    query: &Query,
    registry: &TypeRegistry,
    events: &[Event],
) -> usize {
    let compiled = cogra_query::compile(query, registry).expect("experiment query compiles");
    let window = compiled.window;
    let attr_ids = compiled.partition_attr_ids(registry);
    let mut counts: HashMap<(Vec<cogra_events::Value>, cogra_events::WindowId), usize> =
        HashMap::new();
    let mut max = 0;
    for e in events {
        let Some(ids) = &attr_ids[e.type_id.index()] else {
            continue;
        };
        let key: Vec<cogra_events::Value> = ids.iter().map(|a| e.attr(*a).clone()).collect();
        for wid in window.windows_of(e.time) {
            let c = counts.entry((key.clone(), wid)).or_insert(0);
            *c += 1;
            max = max.max(*c);
        }
    }
    max
}

/// Run a sweep over `points` for `engines`, producing latency, memory and
/// (optionally) throughput tables shaped like the paper's figures.
fn run_sweep(
    figure: &str,
    param: &str,
    engines: &[EngineKind],
    points: Vec<Point>,
    budget: Duration,
    with_throughput: bool,
) -> Vec<Table> {
    let cfg = EngineConfig::default();
    let mut sweeps: HashMap<EngineKind, BudgetedSweep> = engines
        .iter()
        .map(|&e| (e, BudgetedSweep::new(budget)))
        .collect();
    // outcomes[point][engine]
    let mut outcomes: Vec<Vec<Option<Outcome>>> = Vec::new();
    for point in &points {
        let mut row = Vec::new();
        let mut digests: Vec<(EngineKind, u64, usize)> = Vec::new();
        for &engine in engines {
            if point.skip.contains(&engine) {
                row.push(Some(Outcome::Dnf));
                continue;
            }
            let built = match engine.build(&point.query, &point.registry, &cfg) {
                Ok(built) => built,
                // COGRA and SASE support every query feature (Table 9) —
                // a build failure there is a regression, not a skip.
                Err(e) if matches!(engine, EngineKind::Cogra | EngineKind::Sase) => {
                    panic!("{engine} must support every experiment query: {e}")
                }
                Err(_) => {
                    row.push(None); // unsupported (Table 9): not shown
                    continue;
                }
            };
            let mut built = Some(built);
            let outcome = sweeps.get_mut(&engine).expect("registered").run(
                || built.take().expect("engine built"),
                &point.events,
                (point.events.len() / 64).max(1),
            );
            if let Outcome::Done(m) = &outcome {
                digests.push((engine, m.digest, m.results));
            }
            row.push(Some(outcome));
        }
        if let Some(&(first_name, d0, r0)) = digests.first() {
            for &(name, d, r) in &digests[1..] {
                if d != d0 || r != r0 {
                    eprintln!(
                        "WARNING [{figure} @ {}]: {name} disagrees with {first_name}",
                        point.label
                    );
                }
            }
        }
        outcomes.push(row);
    }

    let mut columns = vec![param];
    columns.extend(engines.iter().map(|e| e.name()));
    let render = |title: String, f: &dyn Fn(&Measurement) -> String| -> Table {
        let mut t = Table::new(title, columns.clone());
        for (point, row) in points.iter().zip(&outcomes) {
            let mut cells = vec![point.label.clone()];
            for outcome in row {
                cells.push(match outcome {
                    None => "n/a".to_string(),
                    Some(Outcome::Dnf) => "DNF".to_string(),
                    Some(Outcome::Done(m)) => f(m),
                });
            }
            t.row(cells);
        }
        t
    };

    let mut tables = vec![
        render(format!("{figure}: latency [ms]"), &|m| {
            format!("{:.2}", m.latency_ms())
        }),
        render(format!("{figure}: peak memory"), &|m| {
            human_bytes(m.peak_bytes)
        }),
    ];
    if with_throughput {
        tables.push(render(format!("{figure}: throughput [events/s]"), &|m| {
            format!("{:.0}", m.throughput)
        }));
    }
    tables
}

/// Events-per-window sweep sizes.
fn sizes(opts: &ExpOptions, full: &[usize], quick: &[usize]) -> Vec<usize> {
    if opts.quick {
        quick.to_vec()
    } else {
        full.to_vec()
    }
}

/// Figure 5 — contiguous semantics, physical activity workload, all
/// approaches that support CONT (Flink, SASE, COGRA per Table 9).
pub fn fig5(opts: &ExpOptions) -> Vec<Table> {
    let points = sizes(opts, &[1_000, 5_000, 20_000, 50_000], &[400, 1_600])
        .into_iter()
        .map(|w| {
            let cfg = activity::ActivityConfig {
                events: 2 * w,
                ..Default::default()
            };
            Point::new(
                w.to_string(),
                activity::registry(),
                activity::generate(&cfg),
                &activity::contiguous_count_query(w as u64, (w / 2) as u64),
            )
        })
        .collect();
    run_sweep(
        "Figure 5 (CONT, physical activity)",
        "events/window",
        &[EngineKind::Flink, EngineKind::Sase, EngineKind::Cogra],
        points,
        Duration::from_secs(if opts.quick { 2 } else { 15 }),
        false,
    )
}

/// Figure 6 — skip-till-next-match, public transportation workload;
/// COGRA vs SASE (the only baselines with NEXT, Table 9).
pub fn fig6(opts: &ExpOptions) -> Vec<Table> {
    let points = sizes(
        opts,
        &[1_000, 5_000, 20_000, 50_000, 100_000],
        &[400, 1_600],
    )
    .into_iter()
    .map(|w| {
        let cfg = transport::TransportConfig {
            events: 2 * w,
            ..Default::default()
        };
        Point::new(
            w.to_string(),
            transport::registry(),
            transport::generate(&cfg),
            &transport::next_query(w as u64, (w / 2) as u64),
        )
    })
    .collect();
    run_sweep(
        "Figure 6 (NEXT, public transportation)",
        "events/window",
        &[EngineKind::Sase, EngineKind::Cogra],
        points,
        Duration::from_secs(if opts.quick { 2 } else { 15 }),
        false,
    )
}

/// Figure 7(a–c) — skip-till-any-match, stock workload, all approaches.
/// Two-step engines are hard-skipped once the densest per-company window
/// content exceeds [`FLINK_ANY_LIMIT`] / [`SASE_ANY_LIMIT`] (their trend
/// construction is exponential — the paper's Flink/SASE "do not
/// terminate" past 40k).
pub fn fig7(opts: &ExpOptions) -> Vec<Table> {
    let companies = 19;
    let points = sizes(opts, &[60, 120, 240, 480, 960], &[60, 120])
        .into_iter()
        .map(|w| {
            let cfg = stock::StockConfig {
                events: 2 * w,
                ..Default::default()
            };
            Point::new(
                w.to_string(),
                stock::registry(),
                stock::generate(&cfg),
                &stock::q3_query_no_adjacent(w as u64, (w / 2) as u64),
            )
            .skip_two_step_any()
        })
        .collect();
    let _ = companies;
    run_sweep(
        "Figure 7 (ANY, stock, all approaches)",
        "events/window",
        &EngineKind::PAPER_ROSTER,
        points,
        Duration::from_secs(if opts.quick { 2 } else { 20 }),
        true,
    )
}

/// Figure 8(a–c) — skip-till-any-match at high rates, online approaches
/// only (GRETA, A-Seq, COGRA).
pub fn fig8(opts: &ExpOptions) -> Vec<Table> {
    let points = sizes(opts, &[1_000, 4_000, 16_000, 64_000], &[500, 2_000])
        .into_iter()
        .map(|w| {
            let cfg = stock::StockConfig {
                events: 2 * w,
                ..Default::default()
            };
            Point::new(
                w.to_string(),
                stock::registry(),
                stock::generate(&cfg),
                &stock::q3_query_no_adjacent(w as u64, (w / 2) as u64),
            )
        })
        .collect();
    run_sweep(
        "Figure 8 (ANY, stock, online approaches)",
        "events/window",
        &[EngineKind::Greta, EngineKind::Aseq, EngineKind::Cogra],
        points,
        Duration::from_secs(if opts.quick { 2 } else { 20 }),
        true,
    )
}

/// Figure 9(a,b) — predicate selectivity 10%–90% under
/// skip-till-any-match with a predicate on adjacent events. A-Seq is
/// excluded (no such predicates, §9.3).
pub fn fig9(opts: &ExpOptions) -> Vec<Table> {
    let w = if opts.quick { 120 } else { 240 };
    let points = [0.1, 0.3, 0.5, 0.7, 0.9]
        .into_iter()
        .map(|sel| {
            let cfg = stock::StockConfig {
                events: 2 * w,
                selectivity: sel,
                ..Default::default()
            };
            Point::new(
                format!("{:.0}%", sel * 100.0),
                stock::registry(),
                stock::generate(&cfg),
                &stock::selectivity_query(w as u64, (w / 2) as u64),
            )
        })
        .collect();
    run_sweep(
        "Figure 9 (predicate selectivity, stock)",
        "selectivity",
        &[
            EngineKind::Flink,
            EngineKind::Sase,
            EngineKind::Greta,
            EngineKind::Cogra,
        ],
        points,
        Duration::from_secs(if opts.quick { 3 } else { 20 }),
        false,
    )
}

/// Figure 10(a,b) — number of trend groups, public transportation
/// workload, skip-till-any-match. Fewer groups ⇒ more events per
/// partition ⇒ the two-step engines stop terminating (the paper: Flink
/// fails below 15 groups, SASE below 25).
pub fn fig10(opts: &ExpOptions) -> Vec<Table> {
    let w: usize = if opts.quick { 120 } else { 240 };
    // Descending difficulty: more groups = fewer events per partition, so
    // sweep from many groups down to few (the budget mechanism assumes
    // points get harder along the sweep).
    let groups = if opts.quick {
        vec![30usize, 10]
    } else {
        vec![30, 25, 20, 15, 10, 5]
    };
    let points = groups
        .into_iter()
        .map(|g| {
            let cfg = transport::TransportConfig {
                passengers: g,
                events: 2 * w,
                ..Default::default()
            };
            Point::new(
                g.to_string(),
                transport::registry(),
                transport::generate(&cfg),
                &transport::grouping_query(w as u64, (w / 2) as u64),
            )
            .skip_two_step_any()
        })
        .collect();
    run_sweep(
        "Figure 10 (trend groups, public transportation)",
        "groups",
        &EngineKind::PAPER_ROSTER,
        points,
        Duration::from_secs(if opts.quick { 3 } else { 20 }),
        false,
    )
}

/// Table 3 — number of trends by pattern class × matching semantics,
/// counted exactly by the oracle enumerator on an A/B stream.
pub fn table3(opts: &ExpOptions) -> Vec<Table> {
    use cogra_baselines::oracle::count_trends;
    use cogra_core::QueryRuntime;
    use cogra_events::{EventBuilder, Value, ValueKind};

    let mut reg = TypeRegistry::new();
    for t in ["A", "B", "C"] {
        reg.register_type(t, vec![("v", ValueKind::Int)]);
    }
    let ns: Vec<usize> = if opts.quick {
        vec![4, 8]
    } else {
        vec![4, 6, 8, 10, 12, 14]
    };
    let mut t = Table::new(
        "Table 3: number of trends in the number of events (exact oracle counts)",
        vec![
            "events n",
            "seq ANY",
            "seq NEXT",
            "seq CONT",
            "kleene ANY",
            "kleene NEXT",
            "kleene CONT",
        ],
    );
    for &n in &ns {
        // Alternating a b a b ... stream with one trailing c to exercise
        // the contiguity reset.
        let mut b = EventBuilder::new();
        let a_id = reg.id_of("A").unwrap();
        let b_id = reg.id_of("B").unwrap();
        let events: Vec<Event> = (0..n)
            .map(|i| {
                let ty = if i % 2 == 0 { a_id } else { b_id };
                b.event((i + 1) as u64, ty, vec![Value::Int(i as i64)])
            })
            .collect();
        let mut cells = vec![n.to_string()];
        for pattern in ["SEQ(A, B)", "(SEQ(A+, B))+"] {
            for sem in [Semantics::Any, Semantics::Next, Semantics::Cont] {
                let q = cogra_query::parse(&format!(
                    "RETURN COUNT(*) PATTERN {pattern} SEMANTICS {} WITHIN 1000000 SLIDE 1000000",
                    sem.keyword()
                ))
                .unwrap();
                let compiled = cogra_query::compile(&q, &reg).unwrap();
                let rt = QueryRuntime::new(compiled, &reg);
                let count = count_trends(&rt.disjuncts[0], &events, sem);
                cells.push(count.to_string());
            }
        }
        t.row(cells);
    }
    vec![t]
}

/// Table 8 — aggregation functions at the three granularities: run every
/// function over the same workload per semantics and report COGRA's
/// latency (they must all stay in the same ballpark — incremental
/// maintenance is O(1) per slot).
pub fn table8(opts: &ExpOptions) -> Vec<Table> {
    let w: usize = if opts.quick { 2_000 } else { 20_000 };
    let cfg = stock::StockConfig {
        events: 2 * w,
        ..Default::default()
    };
    let events = stock::generate(&cfg);
    let reg = stock::registry();
    let aggs = [
        ("COUNT(*)", "COUNT(*)"),
        ("COUNT(E)", "COUNT(B)"),
        ("MIN", "MIN(B.price)"),
        ("MAX", "MAX(B.price)"),
        ("SUM", "SUM(B.price)"),
        ("AVG", "AVG(B.price)"),
    ];
    let mut t = Table::new(
        "Table 8: aggregation functions — COGRA latency [ms] per semantics/granularity",
        vec!["function", "ANY (type)", "ANY+θ (mixed)", "NEXT (pattern)"],
    );
    for (label, agg) in aggs {
        let mut cells = vec![label.to_string()];
        for (sem, theta) in [
            ("skip-till-any-match", ""),
            ("skip-till-any-match", "AND A.sel <= NEXT(A).gate "),
            ("skip-till-next-match", ""),
        ] {
            let text = format!(
                "RETURN company, {agg} PATTERN SEQ(Stock A+, Stock B+) SEMANTICS {sem} \
                 WHERE [company] {theta}GROUP-BY company WITHIN {w} SLIDE {}",
                w / 2
            );
            let query = cogra_query::parse(&text).unwrap();
            let mut engine = EngineKind::Cogra
                .build(&query, &reg, &EngineConfig::default())
                .expect("cogra supports everything");
            let m = crate::harness::measure(engine.as_mut(), &events, events.len());
            cells.push(format!("{:.2}", m.latency_ms()));
        }
        t.row(cells);
    }
    vec![t]
}

/// Ridesharing demo experiment (query q2 end to end) — not a paper
/// figure, but exercises the Uber use case of §1 at scale.
pub fn rideshare_demo(opts: &ExpOptions) -> Vec<Table> {
    let w: usize = if opts.quick { 2_000 } else { 50_000 };
    let cfg = rideshare::RideshareConfig {
        events: 2 * w,
        ..Default::default()
    };
    let points = vec![Point::new(
        w.to_string(),
        rideshare::registry(),
        rideshare::generate(&cfg),
        &rideshare::q2_query(w as u64, (w / 2) as u64),
    )];
    run_sweep(
        "Query q2 (ridesharing, NEXT)",
        "events/window",
        &[EngineKind::Sase, EngineKind::Cogra],
        points,
        Duration::from_secs(30),
        true,
    )
}

/// All experiment names, in presentation order.
pub const ALL: [&str; 9] = [
    "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table3", "table8", "q2",
];

/// Run one experiment by name.
pub fn run(name: &str, opts: &ExpOptions) -> Vec<Table> {
    match name {
        "fig5" => fig5(opts),
        "fig6" => fig6(opts),
        "fig7" => fig7(opts),
        "fig8" => fig8(opts),
        "fig9" => fig9(opts),
        "fig10" => fig10(opts),
        "table3" => table3(opts),
        "table8" => table8(opts),
        "q2" => rideshare_demo(opts),
        other => panic!("unknown experiment `{other}` (expected one of {ALL:?})"),
    }
}
