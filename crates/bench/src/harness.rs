//! Measurement harness for the §9 experiments.
//!
//! Metrics (§9.1):
//! * **latency** — wall-clock milliseconds to process the stream and emit
//!   every window result (the paper reports the average delay between a
//!   result and its latest contributing event; in a saturated replay the
//!   two are proportional, see EXPERIMENTS.md);
//! * **throughput** — events per second over the same run;
//! * **peak memory** — the maximum of the engine's exact logical
//!   accounting ([`TrendEngine::memory_bytes`]) over the run, including
//!   finalization spikes.
//!
//! The paper's servers ran two-step baselines for hours before declaring
//! "does not terminate"; this harness instead runs each sweep in
//! ascending size and marks an engine DNF for all remaining points once a
//! point exceeds its time budget — same semantics, bounded wall-clock.

use cogra_core::{run_to_completion, TrendEngine, WindowResult};
use cogra_events::Event;
use std::time::{Duration, Instant};

/// One measured run.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Engine name.
    pub engine: &'static str,
    /// Events processed.
    pub events: usize,
    /// Wall-clock processing time.
    pub elapsed: Duration,
    /// Events per second.
    pub throughput: f64,
    /// Peak logical memory in bytes.
    pub peak_bytes: usize,
    /// Number of emitted window results (sanity check across engines).
    pub results: usize,
    /// Digest of the result values (engines must agree).
    pub digest: u64,
}

impl Measurement {
    /// Latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1e3
    }
}

/// Outcome of one sweep point.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Completed within budget.
    Done(Measurement),
    /// Skipped: a smaller point already exceeded the budget ("does not
    /// terminate" in the paper's terms).
    Dnf,
}

impl Outcome {
    /// The measurement, if the run completed.
    pub fn measurement(&self) -> Option<&Measurement> {
        match self {
            Outcome::Done(m) => Some(m),
            Outcome::Dnf => None,
        }
    }
}

/// Order-insensitive digest of the emitted results, for cross-engine
/// agreement checks inside experiments (floats are rounded to 6 decimals
/// so accumulation order does not flip bits).
pub fn digest(results: &[WindowResult]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut acc = 0u64;
    for r in results {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        r.window.0.hash(&mut h);
        r.group.hash(&mut h);
        for v in &r.values {
            match v {
                cogra_core::AggValue::Count(c) => (0u8, *c).hash(&mut h),
                cogra_core::AggValue::Float(f) => (1u8, (f * 1e6).round() as i64).hash(&mut h),
                cogra_core::AggValue::Null => 2u8.hash(&mut h),
            }
        }
        acc = acc.wrapping_add(h.finish());
    }
    acc
}

/// Run one engine over a stream, sampling memory every `sample_every`
/// events.
pub fn measure(engine: &mut dyn TrendEngine, events: &[Event], sample_every: usize) -> Measurement {
    let name = engine.name();
    let start = Instant::now();
    let (results, peak) = run_to_completion(engine, events, sample_every);
    let elapsed = start.elapsed();
    Measurement {
        engine: name,
        events: events.len(),
        elapsed,
        throughput: events.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        peak_bytes: peak,
        results: results.len(),
        digest: digest(&results),
    }
}

/// Sweep driver with a per-point time budget: once an engine exceeds the
/// budget, every larger point is a [`Outcome::Dnf`].
pub struct BudgetedSweep {
    budget: Duration,
    exhausted: bool,
}

impl BudgetedSweep {
    /// New sweep with the given per-point budget.
    pub fn new(budget: Duration) -> BudgetedSweep {
        BudgetedSweep {
            budget,
            exhausted: false,
        }
    }

    /// Run one point, unless a previous point already blew the budget.
    pub fn run(
        &mut self,
        make_engine: impl FnOnce() -> Box<dyn TrendEngine>,
        events: &[Event],
        sample_every: usize,
    ) -> Outcome {
        if self.exhausted {
            return Outcome::Dnf;
        }
        let mut engine = make_engine();
        let m = measure(engine.as_mut(), events, sample_every);
        if m.elapsed > self.budget {
            self.exhausted = true;
        }
        Outcome::Done(m)
    }
}

/// Pretty-print bytes.
pub fn human_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0 MiB");
    }

    #[test]
    fn budgeted_sweep_marks_dnf_after_blowout() {
        use cogra_core::CograEngine;
        let reg = cogra_workloads::transport::registry();
        let events = cogra_workloads::transport::generate(&cogra_workloads::TransportConfig {
            events: 200,
            ..Default::default()
        });
        let q = cogra_workloads::transport::grouping_query(50, 25);
        let mk = || -> Box<dyn TrendEngine> {
            Box::new(CograEngine::from_text(&q, &cogra_workloads::transport::registry()).unwrap())
        };
        let _ = reg;
        // Zero budget: first point completes, second is DNF.
        let mut sweep = BudgetedSweep::new(Duration::ZERO);
        assert!(matches!(sweep.run(mk, &events, 10), Outcome::Done(_)));
        let mk2 = || -> Box<dyn TrendEngine> {
            Box::new(CograEngine::from_text(&q, &cogra_workloads::transport::registry()).unwrap())
        };
        assert!(matches!(sweep.run(mk2, &events, 10), Outcome::Dnf));
    }

    #[test]
    fn digest_is_order_insensitive() {
        use cogra_core::{AggValue, WindowResult};
        use cogra_events::{Value, WindowId};
        let a = WindowResult {
            window: WindowId(0),
            group: vec![Value::Int(1)],
            values: vec![AggValue::Count(3)],
        };
        let b = WindowResult {
            window: WindowId(1),
            group: vec![Value::Int(2)],
            values: vec![AggValue::Float(1.5)],
        };
        assert_eq!(digest(&[a.clone(), b.clone()]), digest(&[b, a]));
    }
}
