//! # cogra-bench
//!
//! Experiment harness regenerating every table and figure of the COGRA
//! evaluation (§9):
//!
//! * [`harness`] — metrics (latency / throughput / exact peak memory),
//!   budgeted sweeps with the paper's "does not terminate" semantics;
//! * [`experiments`] — one runner per figure (5–10) and table (3, 8),
//!   plus the q2 ridesharing demo; engines are constructed through the
//!   typed [`cogra_core::session::EngineKind`] roster;
//! * [`table`] — markdown/CSV report tables.
//!
//! Run everything: `cargo run -p cogra-bench --release --bin experiments`.
//! Criterion micro-benches live in `benches/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod table;
