//! Engine roster for the experiments: build any of the five engines by
//! name, skipping those that do not support the query (Table 9) — exactly
//! how §9.2 charts omit unsupported approaches.

use cogra_baselines::{aseq_engine, flink_engine, greta_engine, oracle_engine, sase_engine};
use cogra_core::runtime::EngineConfig;
use cogra_core::{CograEngine, TrendEngine};
use cogra_events::TypeRegistry;
use cogra_query::Query;

/// The engines of Table 1/Table 9, in the paper's presentation order.
pub const ALL_ENGINES: [&str; 5] = ["flink", "sase", "greta", "aseq", "cogra"];

/// Build `name` for `query`; `None` when the engine does not support the
/// query's features.
pub fn build(
    name: &str,
    query: &Query,
    registry: &TypeRegistry,
    config: &EngineConfig,
) -> Option<Box<dyn TrendEngine>> {
    match name {
        "cogra" => Some(Box::new(
            CograEngine::build(query, registry).expect("cogra supports all queries"),
        )),
        "sase" => Some(Box::new(
            sase_engine(query, registry).expect("sase supports all semantics"),
        )),
        "greta" => greta_engine(query, registry)
            .ok()
            .map(|e| Box::new(e) as Box<dyn TrendEngine>),
        "aseq" => aseq_engine(query, registry, config.clone())
            .ok()
            .map(|e| Box::new(e) as Box<dyn TrendEngine>),
        "flink" => flink_engine(query, registry, config.clone())
            .ok()
            .map(|e| Box::new(e) as Box<dyn TrendEngine>),
        "oracle" => Some(Box::new(
            oracle_engine(query, registry).expect("oracle supports all queries"),
        )),
        other => panic!("unknown engine `{other}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_respects_table9() {
        let reg = cogra_workloads::transport::registry();
        let next_q =
            cogra_query::parse(&cogra_workloads::transport::next_query(60, 30)).unwrap();
        let cfg = EngineConfig::default();
        assert!(build("cogra", &next_q, &reg, &cfg).is_some());
        assert!(build("sase", &next_q, &reg, &cfg).is_some());
        assert!(build("greta", &next_q, &reg, &cfg).is_none());
        assert!(build("aseq", &next_q, &reg, &cfg).is_none());
        assert!(build("flink", &next_q, &reg, &cfg).is_none());

        let any_q =
            cogra_query::parse(&cogra_workloads::transport::grouping_query(60, 30)).unwrap();
        for name in ALL_ENGINES {
            assert!(build(name, &any_q, &reg, &cfg).is_some(), "{name}");
        }
    }
}
