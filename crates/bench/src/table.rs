//! Plain-text report tables: every experiment prints the same rows/series
//! the paper's figure or table reports, as markdown, and can dump CSV.

use std::fmt::Write as _;

/// A report table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title, e.g. `Figure 7(a): latency, skip-till-any-match, stock`.
    pub title: String,
    /// Column headers; the first column is the swept parameter.
    pub columns: Vec<String>,
    /// Rows of rendered cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table.
    pub fn new(title: impl Into<String>, columns: Vec<&str>) -> Table {
        Table {
            title: title.into(),
            columns: columns.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the column count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let widths: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([c.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(&widths) {
                let _ = write!(line, " {cell:<w$} |");
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.columns));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<width$}|", "", width = w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for r in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(r));
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_alignment() {
        let mut t = Table::new("Demo", vec!["n", "cogra", "sase"]);
        t.row(vec!["100".into(), "1.2".into(), "340.0".into()]);
        t.row(vec!["1000".into(), "9.9".into(), "DNF".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| n    | cogra | sase  |"));
        assert!(md.contains("| 1000 | 9.9   | DNF   |"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("x", vec!["a", "b"]);
        t.row(vec!["1,5".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\",\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", vec!["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
