//! Experiment CLI: regenerates the paper's figures and tables.
//!
//! ```text
//! cargo run -p cogra-bench --release --bin experiments -- all
//! cargo run -p cogra-bench --release --bin experiments -- fig7 fig8 --quick
//! cargo run -p cogra-bench --release --bin experiments -- all --csv results/
//! ```

use cogra_bench::experiments::{run, ExpOptions, ALL};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let mut names: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .filter(|a| Some(*a) != csv_dir.as_ref().and_then(|p| p.to_str()))
        .collect();
    if names.is_empty() || names.contains(&"all") {
        names = ALL.to_vec();
    }
    let opts = ExpOptions { quick };
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }
    for name in names {
        eprintln!(
            "== running {name}{} ==",
            if quick { " (quick)" } else { "" }
        );
        for (i, table) in run(name, &opts).iter().enumerate() {
            println!("{}", table.to_markdown());
            if let Some(dir) = &csv_dir {
                let path = dir.join(format!("{name}_{i}.csv"));
                std::fs::write(&path, table.to_csv()).expect("write csv");
                eprintln!("wrote {}", path.display());
            }
        }
    }
}
