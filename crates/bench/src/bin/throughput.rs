//! `throughput` — the perf-trajectory harness.
//!
//! Replays the stock and rideshare workloads — plus the four adversarial
//! generators (skew, churn, burst, fraud) — through the unified
//! [`Session`] pipeline and records ingest-path throughput (events per
//! second), peak logical memory, and routing statistics per
//! workload × worker count, as JSON. The checked-in `BENCH_PR3.json` /
//! `BENCH_PR4.json` / `BENCH_PR7.json` files at the repository root are
//! the points of the perf trajectory this repo tracks; re-run the
//! harness after a hot-path change and diff.
//!
//! ```text
//! cargo run -p cogra-bench --release --bin throughput -- \
//!     [--events N] [--iters K] [--out BENCH.json] [--speedup-floor F] \
//!     [--remote] [--checkpoint] [--shared]
//! ```
//!
//! Each configuration runs `K` times; the *best* run is reported (the
//! metric is the machine's capability, not scheduler noise). A smoke
//! configuration (`--events 5000 --iters 1`) runs in well under a second
//! and is exercised by CI, which fails if the JSON is missing or
//! malformed.
//!
//! `--speedup-floor F` turns the harness into a scaling gate: after
//! writing the JSON it fails (exit 1) unless the 4-worker in-memory path
//! sustains at least `F ×` the 1-worker throughput on both the stock and
//! rideshare workloads — the `.workers(n)` recovery this repo's PR 4
//! (batched shard transport + shared pool) has to hold on to. On a host
//! without hardware parallelism (1 CPU) the gate reports the measured
//! ratio and skips the verdict: time-sharing one core can never exceed
//! 1×, so a floor there would only ever measure the scheduler. The JSON
//! records the host's CPU count so a checked-in baseline is
//! interpretable.
//!
//! `--remote` additionally replays the stock CSV through the
//! `cogra-server` TCP front-end on a loopback socket (`path: "remote"`
//! rows, with a live subscriber consuming every pushed result) — the
//! delta against the in-process `csv` row is the protocol's overhead.
//!
//! `--shared` additionally measures the multi-query sharing pass: a
//! 4-identical-query stock roster run shared (`path: "shared"` — one
//! physical automaton, per-query fan-out; the session default) and with
//! `.sharing(false)` (`path: "unshared"` — four independent runs). The
//! ratio against the 1-worker stock `memory` row is the cost of serving
//! four subscribers instead of one; sharing must keep it near 1×.
//!
//! `--checkpoint` additionally measures the durability subsystem: after
//! ingesting each in-memory workload the session is checkpointed to a
//! buffer (`path: "checkpoint"` — `peak_bytes` is the snapshot size,
//! `elapsed_ms` the serialization time) and restored from it
//! (`path: "restore"` — `peak_bytes` is the restored session's logical
//! footprint, i.e. post-compaction). The stderr report normalizes both
//! to MB and ms per 1M events so trajectory points at different
//! `--events` stay comparable.

use cogra_core::session::Session;
use cogra_events::{write_events, Event, TypeRegistry};
use cogra_server::{Client, Server, ServerConfig};
use cogra_workloads::{burst, churn, fraud, rideshare, skew, stock};
use cogra_workloads::{
    BurstConfig, ChurnConfig, FraudConfig, RideshareConfig, SkewConfig, StockConfig,
};
use std::time::Instant;

struct Args {
    events: usize,
    iters: usize,
    out: String,
    speedup_floor: Option<f64>,
    remote: bool,
    checkpoint: bool,
    shared: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        events: 200_000,
        iters: 3,
        out: "BENCH_PR4.json".to_string(),
        speedup_floor: None,
        remote: false,
        checkpoint: false,
        shared: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--events" => {
                args.events = value("--events")?
                    .parse()
                    .map_err(|_| "--events needs an integer".to_string())?
            }
            "--iters" => {
                args.iters = value("--iters")?
                    .parse::<usize>()
                    .map_err(|_| "--iters needs an integer".to_string())?
                    .max(1)
            }
            "--out" => args.out = value("--out")?,
            "--speedup-floor" => {
                args.speedup_floor = Some(
                    value("--speedup-floor")?
                        .parse()
                        .map_err(|_| "--speedup-floor needs a number".to_string())?,
                )
            }
            "--remote" => args.remote = true,
            "--checkpoint" => args.checkpoint = true,
            "--shared" => args.shared = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// One measured configuration.
struct Row {
    workload: &'static str,
    /// `memory` replays a pre-built stream; `csv` decodes the CSV form
    /// through the same `Session` ingestion (the shared decode path).
    path: &'static str,
    workers: usize,
    events: usize,
    elapsed_ms: f64,
    events_per_sec: f64,
    peak_bytes: usize,
    results: usize,
    key_probes: u64,
    key_allocs: u64,
}

fn session(query: &str, registry: &TypeRegistry, workers: usize) -> Session {
    session_with_slack(query, registry, workers, 0)
}

/// `slack` > 0 adds the reorder stage — the burst workload arrives
/// disordered by design, so its rows pay for reordering like a
/// production deployment would.
fn session_with_slack(query: &str, registry: &TypeRegistry, workers: usize, slack: u64) -> Session {
    let mut builder = Session::builder().query(query).workers(workers);
    if slack > 0 {
        builder = builder.slack(slack);
    }
    builder.build(registry).expect("harness query builds")
}

/// Best-of-`iters` measurement of one configuration. `once` builds a
/// fresh session and runs the whole workload, timing only the run (not
/// the query compilation) — see [`measure_memory`] / [`measure_csv`].
fn measure(
    workload: &'static str,
    path: &'static str,
    workers: usize,
    n_events: usize,
    iters: usize,
    mut once: impl FnMut() -> (cogra_core::SessionRun, std::time::Duration),
) -> Row {
    let mut best: Option<Row> = None;
    for _ in 0..iters {
        let (run, elapsed) = once();
        let row = Row {
            workload,
            path,
            workers,
            events: n_events,
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            events_per_sec: n_events as f64 / elapsed.as_secs_f64().max(1e-9),
            peak_bytes: run.peak_bytes,
            results: run.per_query.iter().map(Vec::len).sum(),
            key_probes: run.stats.key_probes,
            key_allocs: run.stats.key_allocs,
        };
        if best.as_ref().is_none_or(|b| row.elapsed_ms < b.elapsed_ms) {
            best = Some(row);
        }
    }
    best.expect("iters >= 1")
}

/// Replay of a pre-built stream through `Session::run`.
fn measure_memory(
    workload: &'static str,
    query: &str,
    registry: &TypeRegistry,
    events: &[Event],
    workers: usize,
    iters: usize,
) -> Row {
    measure_memory_slack(workload, query, registry, events, workers, 0, iters)
}

/// [`measure_memory`] with a reorder stage in the session.
fn measure_memory_slack(
    workload: &'static str,
    query: &str,
    registry: &TypeRegistry,
    events: &[Event],
    workers: usize,
    slack: u64,
    iters: usize,
) -> Row {
    measure(workload, "memory", workers, events.len(), iters, || {
        let s = session_with_slack(query, registry, workers, slack);
        let start = Instant::now();
        let run = s.run(events);
        (run, start.elapsed())
    })
}

/// Replay of the CSV form through `Session::run_csv` — decode and
/// aggregation share one pass, the same path the CLI uses.
fn measure_csv(
    workload: &'static str,
    query: &str,
    registry: &TypeRegistry,
    csv: &str,
    n_events: usize,
    iters: usize,
) -> Row {
    measure(workload, "csv", 1, n_events, iters, || {
        let s = session(query, registry, 1);
        let start = Instant::now();
        let run = s.run_csv(csv, registry).expect("harness CSV round-trips");
        (run, start.elapsed())
    })
}

/// Replay of the CSV form over a loopback socket through the
/// `cogra-server` front-end, with a live subscriber consuming every
/// pushed result. Timed from the first `INGEST` to the `FINISH` reply —
/// server spawn and teardown are deployment costs, not per-event ones.
/// `peak_bytes` here is the session's logical memory as of the final
/// drain (the server surfaces the mirror, not the sampled peak).
fn measure_remote(
    workload: &'static str,
    query: &str,
    registry: &TypeRegistry,
    csv: &str,
    n_events: usize,
    workers: usize,
    iters: usize,
) -> Row {
    let mut best: Option<Row> = None;
    for _ in 0..iters {
        let builder = Session::builder().query(query).workers(workers);
        let server = Server::spawn(
            builder,
            registry.clone(),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("bench server starts");
        let subscription = Client::connect(server.local_addr())
            .expect("bench subscriber connects")
            .subscribe(None)
            .expect("subscribe io")
            .expect("subscribe accepted");
        let consumer = std::thread::spawn(move || subscription.count());
        let mut feed = Client::connect(server.local_addr()).expect("bench client connects");

        let start = Instant::now();
        feed.replay_csv(csv, 2_048)
            .expect("replay io")
            .expect("replay accepted");
        let report = feed.finish().expect("finish io").expect("finish accepted");
        let elapsed = start.elapsed();
        let consumed = consumer.join().expect("subscriber joins");
        assert_eq!(consumed as u64, report.results, "every result is pushed");
        server.shutdown();

        let row = Row {
            workload,
            path: "remote",
            workers,
            events: n_events,
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            events_per_sec: n_events as f64 / elapsed.as_secs_f64().max(1e-9),
            peak_bytes: report.memory,
            results: report.results as usize,
            key_probes: report.key_probes,
            key_allocs: report.key_allocs,
        };
        if best.as_ref().is_none_or(|b| row.elapsed_ms < b.elapsed_ms) {
            best = Some(row);
        }
    }
    best.expect("iters >= 1")
}

/// Durability cost of one loaded workload: checkpoint the session after
/// ingesting the whole stream (one drain first, so the snapshot is live
/// state, not undrained results), then restore from the buffer. Returns
/// a `"checkpoint"` row (`peak_bytes` = snapshot size, `elapsed_ms` =
/// serialization time) and a `"restore"` row (`peak_bytes` = the
/// restored session's logical footprint — post-compaction, so it can
/// undercut the live session's). Both are best-of-`iters`.
fn measure_checkpoint(
    workload: &'static str,
    query: &str,
    registry: &TypeRegistry,
    events: &[Event],
    workers: usize,
    iters: usize,
) -> (Row, Row) {
    let mut best: Option<(Row, Row)> = None;
    for _ in 0..iters {
        let mut s = session(query, registry, workers);
        for e in events {
            s.process(e);
        }
        let drained = s.drain().len();
        let stats = s.run_stats();

        let start = Instant::now();
        let mut snapshot = Vec::new();
        s.checkpoint(&mut snapshot).expect("harness checkpoints");
        let ckpt_elapsed = start.elapsed();

        let start = Instant::now();
        let restored = Session::builder()
            .workers(workers)
            .restore(registry, snapshot.as_slice())
            .expect("harness restores");
        let restore_elapsed = start.elapsed();

        let row = |path: &'static str, elapsed: std::time::Duration, bytes: usize| Row {
            workload,
            path,
            workers,
            events: events.len(),
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            events_per_sec: events.len() as f64 / elapsed.as_secs_f64().max(1e-9),
            peak_bytes: bytes,
            results: drained,
            key_probes: stats.key_probes,
            key_allocs: stats.key_allocs,
        };
        let pair = (
            row("checkpoint", ckpt_elapsed, snapshot.len()),
            row("restore", restore_elapsed, restored.memory_bytes()),
        );
        if best
            .as_ref()
            .is_none_or(|(b, _)| pair.0.elapsed_ms < b.elapsed_ms)
        {
            best = Some(pair);
        }
    }
    best.expect("iters >= 1")
}

fn json(rows: &[Row], events: usize, iters: usize, cpus: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"throughput\",\n");
    out.push_str("  \"engine\": \"cogra\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"events\": {events}, \"iters\": {iters}, \"cpus\": {cpus}}},\n"
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"path\": \"{}\", \"workers\": {}, \"events\": {}, \
             \"elapsed_ms\": {:.3}, \"events_per_sec\": {:.0}, \"peak_bytes\": {}, \
             \"results\": {}, \"key_probes\": {}, \"key_allocs\": {}}}{}\n",
            r.workload,
            r.path,
            r.workers,
            r.events,
            r.elapsed_ms,
            r.events_per_sec,
            r.peak_bytes,
            r.results,
            r.key_probes,
            r.key_allocs,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: throughput [--events N] [--iters K] [--out BENCH.json] \
                 [--speedup-floor F] [--remote] [--checkpoint] [--shared]"
            );
            std::process::exit(1);
        }
    };

    // The grouped stock workload: q3 without adjacent predicates (the
    // paper's default Figure 7/8 configuration) — type-grained
    // aggregation, so per-event cost is dominated by the routing path
    // this harness tracks.
    let stock_reg = stock::registry();
    let stock_events = stock::generate(&StockConfig {
        events: args.events,
        ..Default::default()
    });
    let stock_q = stock::q3_query_no_adjacent(1_000, 500);

    // The rideshare workload: q2 under skip-till-next-match —
    // pattern-grained aggregation over six event types.
    let ride_reg = rideshare::registry();
    let ride_events = rideshare::generate(&RideshareConfig {
        events: args.events,
        ..Default::default()
    });
    let ride_q = rideshare::q2_query(1_000, 500);

    let mut rows = Vec::new();
    for workers in [1usize, 4] {
        rows.push(measure_memory(
            "stock",
            &stock_q,
            &stock_reg,
            &stock_events,
            workers,
            args.iters,
        ));
    }
    for workers in [1usize, 4] {
        rows.push(measure_memory(
            "rideshare",
            &ride_q,
            &ride_reg,
            &ride_events,
            workers,
            args.iters,
        ));
    }
    // Adversarial rows (always on): the hostile generators ride the
    // same harness, so the perf trajectory tracks the workloads that
    // stress shard balance (skew), the interner (churn), the reorder
    // stage (burst — run with slack equal to the generator's disorder
    // bound, since its stream arrives disordered by design) and
    // near-zero selectivity with long Kleene closures (fraud).
    let adversarial: [(&'static str, TypeRegistry, String, Vec<Event>, u64); 4] = [
        (
            "skew",
            skew::registry(),
            skew::count_query(1_000, 500),
            skew::generate(&SkewConfig {
                events: args.events,
                ..Default::default()
            }),
            0,
        ),
        (
            "churn",
            churn::registry(),
            churn::count_query(1_000, 500),
            churn::generate(&ChurnConfig {
                events: args.events,
                ..Default::default()
            }),
            0,
        ),
        {
            let cfg = BurstConfig {
                events: args.events,
                ..Default::default()
            };
            (
                "burst",
                burst::registry(),
                burst::count_query(1_000, 500),
                burst::generate(&cfg),
                cfg.disorder,
            )
        },
        (
            "fraud",
            fraud::registry(),
            fraud::detect_query(1_000, 500),
            fraud::generate(&FraudConfig {
                events: args.events,
                ..Default::default()
            }),
            0,
        ),
    ];
    for (workload, registry, query, events, slack) in &adversarial {
        for workers in [1usize, 4] {
            rows.push(measure_memory_slack(
                workload, query, registry, events, workers, *slack, args.iters,
            ));
        }
    }

    // The shared CSV decode path, at a reduced size (decode dominates).
    let csv_n = (args.events / 4).max(1);
    let csv = write_events(&stock_events[..csv_n.min(stock_events.len())], &stock_reg);
    rows.push(measure_csv(
        "stock",
        &stock_q,
        &stock_reg,
        &csv,
        csv_n.min(stock_events.len()),
        args.iters,
    ));
    if args.remote {
        // Same CSV, same size, over the wire — the csv-vs-remote delta
        // is the protocol overhead.
        for workers in [1usize, 4] {
            rows.push(measure_remote(
                "stock",
                &stock_q,
                &stock_reg,
                &csv,
                csv_n.min(stock_events.len()),
                workers,
                args.iters,
            ));
        }
    }

    if args.shared {
        // Multi-query sharing rows: an N-identical-query roster, shared
        // (the default — one physical automaton run, per-query fan-out)
        // vs `.sharing(false)` (N independent runs). Comparing either
        // against the 1-worker stock `memory` row above gives the cost
        // of serving N subscribers instead of one.
        const ROSTER: usize = 4;
        for (path, sharing) in [("shared", true), ("unshared", false)] {
            rows.push(measure(
                "stock-roster4",
                path,
                1,
                stock_events.len(),
                args.iters,
                || {
                    let mut b = Session::builder();
                    for _ in 0..ROSTER {
                        b = b.query(stock_q.as_str());
                    }
                    let s = b
                        .sharing(sharing)
                        .build(&stock_reg)
                        .expect("harness roster builds");
                    assert_eq!(
                        s.physical_runs(),
                        if sharing { 1 } else { ROSTER },
                        "sharing must factor the duplicate roster"
                    );
                    let start = Instant::now();
                    let run = s.run(&stock_events);
                    (run, start.elapsed())
                },
            ));
        }
    }

    if args.checkpoint {
        // Durability rows: checkpoint + restore cost of each loaded
        // in-memory workload, streaming (1) and sharded (4).
        for workers in [1usize, 4] {
            for (workload, query, registry, events) in [
                ("stock", &stock_q, &stock_reg, &stock_events),
                ("rideshare", &ride_q, &ride_reg, &ride_events),
            ] {
                let (ckpt, restore) =
                    measure_checkpoint(workload, query, registry, events, workers, args.iters);
                rows.push(ckpt);
                rows.push(restore);
            }
        }
    }

    for r in &rows {
        if r.path == "checkpoint" {
            // Normalized durability cost: comparable across --events.
            let per_m = 1e6 / r.events as f64;
            eprintln!(
                "{:>9} {:>10} workers={} snapshot {:>10} B ({:>7.2} MB/1M ev)  {:>8.2} ms ({:>7.2} ms/1M ev)",
                r.workload,
                r.path,
                r.workers,
                r.peak_bytes,
                r.peak_bytes as f64 * per_m / (1024.0 * 1024.0),
                r.elapsed_ms,
                r.elapsed_ms * per_m,
            );
            continue;
        }
        eprintln!(
            "{:>9} {:>6} workers={} {:>10.0} ev/s  peak {:>10} B  {} results",
            r.workload, r.path, r.workers, r.events_per_sec, r.peak_bytes, r.results
        );
    }
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let text = json(&rows, args.events, args.iters, cpus);
    std::fs::write(&args.out, &text).expect("write bench JSON");
    eprintln!("wrote {}", args.out);

    if args.shared {
        // Roster-vs-single cost, in multiples of the single-query run:
        // sharing should keep an N-identical roster near 1× (fan-out is
        // a result clone, not a re-execution); unshared pays ~N×.
        let rate = |workload: &str, path: &str| {
            rows.iter()
                .find(|r| r.workload == workload && r.path == path && r.workers == 1)
                .map(|r| r.events_per_sec)
                .expect("sharing rows are measured alongside the stock memory row")
        };
        let single = rate("stock", "memory");
        for path in ["shared", "unshared"] {
            eprintln!(
                "stock-roster4 {path:>9} cost {:.2}x the single-query run",
                single / rate("stock-roster4", path)
            );
        }
    }

    // The scaling gate: the sharded path must actually pay for its
    // threads on the in-memory workloads — wherever threads can run in
    // parallel at all. On a single-CPU host the workers time-share one
    // core, so the honest ceiling is < 1× and the verdict is skipped
    // (the ratio is still reported: it tracks transport overhead).
    if let Some(floor) = args.speedup_floor {
        let gate_active = cpus >= 2;
        let mut failed = false;
        for workload in ["stock", "rideshare"] {
            let rate = |workers: usize| {
                rows.iter()
                    .find(|r| r.workload == workload && r.path == "memory" && r.workers == workers)
                    .map(|r| r.events_per_sec)
                    .expect("memory rows for workers 1 and 4 are always measured")
            };
            let speedup = rate(4) / rate(1);
            let verdict = match (gate_active, speedup >= floor) {
                (false, _) => "skipped (single-CPU host)",
                (true, true) => "ok",
                (true, false) => "FAIL",
            };
            eprintln!("{workload:>9} 4-worker speedup {speedup:.2}x (floor {floor:.2}x) {verdict}");
            failed |= gate_active && speedup < floor;
        }
        if failed {
            eprintln!("error: 4-worker throughput is below the --speedup-floor");
            std::process::exit(1);
        }
    }
}
