//! Criterion micro-benches: one group per paper figure/table, exercising
//! the same workload × query × engine combinations as the `experiments`
//! binary at bench-friendly sizes. Absolute numbers are laptop-scale; the
//! *relative* ordering of the engines is what reproduces the paper (see
//! EXPERIMENTS.md).

use cogra_core::run_to_completion;
use cogra_core::runtime::EngineConfig;
use cogra_core::session::{EngineKind, Session};
use cogra_events::{Event, TypeRegistry};
use cogra_workloads::{activity, stock, transport};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

struct Scenario {
    registry: TypeRegistry,
    events: Vec<Event>,
    query: cogra_query::Query,
}

fn scenario(registry: TypeRegistry, events: Vec<Event>, query: &str) -> Scenario {
    Scenario {
        registry,
        events,
        query: cogra_query::parse(query).expect("bench query parses"),
    }
}

fn bench_engines(c: &mut Criterion, group: &str, s: &Scenario, engines: &[EngineKind]) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    for &engine in engines {
        let cfg = EngineConfig::default();
        if !engine.supports(&s.query, &s.registry, &cfg) {
            assert!(
                !matches!(engine, EngineKind::Cogra | EngineKind::Sase),
                "{engine} must support every bench query (Table 9)"
            );
            continue; // unsupported (Table 9)
        }
        g.bench_with_input(BenchmarkId::from_parameter(engine), &engine, |b, &kind| {
            b.iter(|| {
                let mut e = kind
                    .build(&s.query, &s.registry, &cfg)
                    .expect("checked above");
                let (results, peak) =
                    run_to_completion(e.as_mut(), black_box(&s.events), usize::MAX);
                black_box((results.len(), peak))
            });
        });
    }
    g.finish();
}

/// Figure 5: contiguous semantics, physical activity.
fn fig5(c: &mut Criterion) {
    let w = 800usize;
    let cfg = activity::ActivityConfig {
        events: 2 * w,
        ..Default::default()
    };
    let s = scenario(
        activity::registry(),
        activity::generate(&cfg),
        &activity::contiguous_count_query(w as u64, (w / 2) as u64),
    );
    bench_engines(
        c,
        "fig5_contiguous",
        &s,
        &[EngineKind::Flink, EngineKind::Sase, EngineKind::Cogra],
    );
}

/// Figure 6: skip-till-next-match, public transportation.
fn fig6(c: &mut Criterion) {
    let w = 800usize;
    let cfg = transport::TransportConfig {
        events: 2 * w,
        ..Default::default()
    };
    let s = scenario(
        transport::registry(),
        transport::generate(&cfg),
        &transport::next_query(w as u64, (w / 2) as u64),
    );
    bench_engines(c, "fig6_next", &s, &[EngineKind::Sase, EngineKind::Cogra]);
}

/// Figure 7: skip-till-any-match, stock, all approaches (small window so
/// the two-step engines terminate).
fn fig7(c: &mut Criterion) {
    let w = 120usize;
    let cfg = stock::StockConfig {
        events: 2 * w,
        ..Default::default()
    };
    let s = scenario(
        stock::registry(),
        stock::generate(&cfg),
        &stock::q3_query_no_adjacent(w as u64, (w / 2) as u64),
    );
    bench_engines(c, "fig7_any_all", &s, &EngineKind::PAPER_ROSTER);
}

/// Figure 8: skip-till-any-match at a higher rate, online approaches.
fn fig8(c: &mut Criterion) {
    let w = 4_000usize;
    let cfg = stock::StockConfig {
        events: 2 * w,
        ..Default::default()
    };
    let s = scenario(
        stock::registry(),
        stock::generate(&cfg),
        &stock::q3_query_no_adjacent(w as u64, (w / 2) as u64),
    );
    bench_engines(
        c,
        "fig8_any_online",
        &s,
        &[EngineKind::Greta, EngineKind::Aseq, EngineKind::Cogra],
    );
}

/// Figure 9: predicate selectivity (90% — the most demanding point).
fn fig9(c: &mut Criterion) {
    let w = 150usize;
    let cfg = stock::StockConfig {
        events: 2 * w,
        selectivity: 0.9,
        ..Default::default()
    };
    let s = scenario(
        stock::registry(),
        stock::generate(&cfg),
        &stock::selectivity_query(w as u64, (w / 2) as u64),
    );
    bench_engines(
        c,
        "fig9_selectivity",
        &s,
        &[
            EngineKind::Flink,
            EngineKind::Sase,
            EngineKind::Greta,
            EngineKind::Cogra,
        ],
    );
}

/// Figure 10: trend grouping (30 groups — every engine terminates).
fn fig10(c: &mut Criterion) {
    let w = 240usize;
    let cfg = transport::TransportConfig {
        passengers: 30,
        events: 2 * w,
        ..Default::default()
    };
    let s = scenario(
        transport::registry(),
        transport::generate(&cfg),
        &transport::grouping_query(w as u64, (w / 2) as u64),
    );
    bench_engines(c, "fig10_grouping", &s, &EngineKind::PAPER_ROSTER);
}

/// §8 scalability: the Figure 10 trend-grouping scenario executed through
/// the streaming shard router at increasing worker counts — the `workers`
/// axis that makes the sharding speedup measurable.
fn fig10_workers(c: &mut Criterion) {
    let w = 240usize;
    let cfg = transport::TransportConfig {
        passengers: 30,
        events: 8 * w,
        ..Default::default()
    };
    let registry = transport::registry();
    let events = transport::generate(&cfg);
    let query = transport::grouping_query(w as u64, (w / 2) as u64);
    let mut g = c.benchmark_group("fig10_workers");
    g.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &n| {
            b.iter(|| {
                let run = Session::builder()
                    .query(query.as_str())
                    .workers(n)
                    .build(&registry)
                    .expect("bench session builds")
                    .run(black_box(&events));
                black_box((run.per_query[0].len(), run.peak_bytes))
            });
        });
    }
    g.finish();
}

/// Table 8: each aggregation function on COGRA (type granularity).
fn table8(c: &mut Criterion) {
    let w = 4_000usize;
    let cfg = stock::StockConfig {
        events: 2 * w,
        ..Default::default()
    };
    let events = stock::generate(&cfg);
    let registry = stock::registry();
    let mut g = c.benchmark_group("table8_functions");
    g.sample_size(10);
    for agg in [
        "COUNT(*)",
        "COUNT(B)",
        "MIN(B.price)",
        "SUM(B.price)",
        "AVG(B.price)",
    ] {
        let text = format!(
            "RETURN company, {agg} PATTERN SEQ(Stock A+, Stock B+) \
             SEMANTICS skip-till-any-match WHERE [company] GROUP-BY company \
             WITHIN {w} SLIDE {}",
            w / 2
        );
        let query = cogra_query::parse(&text).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(agg), &query, |b, q| {
            b.iter(|| {
                let mut e = EngineKind::Cogra
                    .build(q, &registry, &EngineConfig::default())
                    .unwrap();
                let out = run_to_completion(e.as_mut(), black_box(&events), usize::MAX);
                black_box(out.0.len())
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig10_workers,
    table8
);
criterion_main!(benches);
