//! Differential battery for the streaming shard router: over random
//! workloads, worker counts {1,2,4,8}, ingest chunkings and transport
//! batch sizes, the live [`StreamingPool`] path behind `.workers(n)` must
//! be **byte-identical** to the batch reference (`run_parallel`) and to a
//! single sequential engine — results, plus workers/peak-memory metadata
//! sanity. A slack × workers battery additionally pins that the pool's
//! per-shard reorderers drop exactly the events a single front
//! `Reorderer` would, no matter how the stream shards.
//!
//! [`StreamingPool`]: cogra::core::StreamingPool

use cogra::core::QueryRuntime;
use cogra::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

/// Queries the battery cycles through: grouped (shardable) under ANY and
/// NEXT, and a group-free query that must pin to one shard.
const QUERIES: [&str; 3] = [
    "RETURN g, COUNT(*), SUM(A.v) PATTERN SEQ(A+, B) SEMANTICS ANY \
     GROUP-BY g WITHIN 10 SLIDE 5",
    "RETURN g, COUNT(*) PATTERN SEQ(A+, B) SEMANTICS NEXT \
     GROUP-BY g WITHIN 12 SLIDE 4",
    "RETURN COUNT(*) PATTERN SEQ(A+, B) SEMANTICS ANY WITHIN 10 SLIDE 5",
];

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Transport batch sizes the sweeps cycle through: degenerate per-event
/// sends, an odd mid-size, the default, and "bigger than the stream"
/// (events only ever flush on drain/finish).
const BATCH_SIZES: [usize; 4] = [1, 7, 256, 100_000];

fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    for t in ["A", "B"] {
        r.register_type(t, vec![("g", ValueKind::Int), ("v", ValueKind::Int)]);
    }
    r
}

/// Turn sampled `(dt, type, g, v)` rows into a time-ordered stream.
/// `dt == 0` keeps the previous timestamp, so multi-event stream
/// transactions (several events at one time) are exercised.
fn build_events(reg: &TypeRegistry, rows: &[(u64, usize, i64, i64)]) -> Vec<Event> {
    let ids = [reg.id_of("A").unwrap(), reg.id_of("B").unwrap()];
    let mut builder = EventBuilder::new();
    let mut t = 1u64;
    rows.iter()
        .map(|&(dt, ty, g, v)| {
            t += dt;
            builder.event(t, ids[ty], vec![Value::Int(g), Value::Int(v)])
        })
        .collect()
}

/// Turn sampled `(time, type, g, v)` rows into a stream in *arrival*
/// order with unconstrained disorder — input for the slack battery.
fn build_disordered(reg: &TypeRegistry, rows: &[(u64, usize, i64, i64)]) -> Vec<Event> {
    let ids = [reg.id_of("A").unwrap(), reg.id_of("B").unwrap()];
    let mut builder = EventBuilder::new();
    rows.iter()
        .map(|&(t, ty, g, v)| builder.event(t + 1, ids[ty], vec![Value::Int(g), Value::Int(v)]))
        .collect()
}

/// The streaming path: a `.workers(n)` session fed chunk by chunk, with a
/// live drain between chunks, finished at the end. Returns the sorted
/// union of everything emitted.
fn streaming(
    query: &str,
    reg: &TypeRegistry,
    events: &[Event],
    workers: usize,
    chunk: usize,
    batch: usize,
) -> Vec<WindowResult> {
    let mut session = Session::builder()
        .query(query)
        .workers(workers)
        .batch_size(batch)
        .build(reg)
        .expect("session builds");
    let mut out: Vec<WindowResult> = Vec::new();
    for chunk in events.chunks(chunk.max(1)) {
        for e in chunk {
            session.process(e);
        }
        session.drain_into(&mut out);
    }
    session.finish_into(&mut out);
    WindowResult::sort(&mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn streaming_equals_batch_equals_sequential(
        rows in vec((0u64..3, 0usize..2, 0i64..5, -4i64..5), 1..160),
        worker_idx in 0usize..4,
        chunk in 1usize..40,
        batch_idx in 0usize..4,
        query_idx in 0usize..3,
    ) {
        let reg = registry();
        let events = build_events(&reg, &rows);
        let query = QUERIES[query_idx];
        let workers = WORKER_COUNTS[worker_idx];
        let batch = BATCH_SIZES[batch_idx];

        // Reference 1: one sequential engine over the whole stream.
        let mut engine = CograEngine::from_text(query, &reg).expect("query compiles");
        let (sequential, _) = run_to_completion(&mut engine, &events, 64);

        // Reference 2: the batch shard-then-join implementation.
        let parsed = parse(query).expect("query parses");
        let rt = Arc::new(QueryRuntime::new(
            compile(&parsed, &reg).expect("query compiles"),
            &reg,
        ));
        let batch_run = run_parallel(&rt, &events, workers);
        prop_assert_eq!(&batch_run.results, &sequential, "batch vs sequential");

        // Live path: chunked ingestion with mid-stream drains, over the
        // sampled transport batch size.
        let live = streaming(query, &reg, &events, workers, chunk, batch);
        prop_assert_eq!(&live, &sequential, "streaming vs sequential");

        // Metadata sanity via the collecting runner.
        let run = Session::builder()
            .query(query)
            .workers(workers)
            .batch_size(batch)
            .build(&reg)
            .expect("session builds")
            .run(&events);
        prop_assert_eq!(&run.per_query, &vec![sequential]);
        let effective = if rt.query.group_prefix == 0 { 1 } else { workers };
        prop_assert_eq!(run.workers, effective, "effective shard count");
        prop_assert!(run.peak_bytes > 0, "workers report their peaks");
        prop_assert_eq!(run.late_events, 0);
    }

    #[test]
    fn drain_points_and_batch_sizes_never_change_the_result_set(
        rows in vec((0u64..4, 0usize..2, 0i64..4, -4i64..5), 1..120),
        chunk_a in 1usize..30,
        chunk_b in 1usize..30,
        batch_a in 0usize..4,
        batch_b in 0usize..4,
    ) {
        // Two different drain cadences × transport batch sizes over the
        // same stream and shard count must collect the same results —
        // emission timing is observable, the aggregate contents are not.
        // In particular a flush forced by a drain mid-batch must be
        // invisible in the collected set (flush-boundary invariance).
        let reg = registry();
        let events = build_events(&reg, &rows);
        let a = streaming(QUERIES[0], &reg, &events, 4, chunk_a, BATCH_SIZES[batch_a]);
        let b = streaming(QUERIES[0], &reg, &events, 4, chunk_b, BATCH_SIZES[batch_b]);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn per_shard_reorderers_match_the_front_reorderer(
        rows in vec((0u64..40, 0usize..2, 0i64..5, -4i64..5), 1..160),
        slack in 0u64..9,
        worker_idx in 0usize..4,
        batch_idx in 0usize..4,
        chunk in 1usize..40,
    ) {
        // Slack × workers: the `.workers(n)` path repairs disorder with
        // one ReorderBuffer per shard behind a coordinator-side LateGate.
        // Against arbitrarily disordered streams it must produce (a) the
        // same results and (b) the same late-drop count as the replaced
        // architecture — a single front Reorderer in front of the router
        // (which is exactly what a 1-worker `.slack(n)` session still is).
        let reg = registry();
        let events = build_disordered(&reg, &rows);
        let workers = WORKER_COUNTS[worker_idx];

        let reference = Session::builder()
            .query(QUERIES[0])
            .slack(slack)
            .build(&reg)
            .expect("session builds")
            .run(&events);

        let mut session = Session::builder()
            .query(QUERIES[0])
            .slack(slack)
            .workers(workers)
            .batch_size(BATCH_SIZES[batch_idx])
            .build(&reg)
            .expect("session builds");
        let mut out: Vec<WindowResult> = Vec::new();
        for chunk in events.chunks(chunk) {
            for e in chunk {
                session.process(e);
            }
            session.drain_into(&mut out);
        }
        let late = {
            let mut sink: Vec<WindowResult> = Vec::new();
            session.finish_into(&mut sink);
            out.extend(sink);
            session.late_events()
        };
        WindowResult::sort(&mut out);

        prop_assert_eq!(
            late,
            reference.late_events,
            "per-shard late drops must sum to the front reorderer's count \
             (slack={}, workers={})", slack, workers
        );
        prop_assert_eq!(&vec![out], &reference.per_query);
    }

    #[test]
    fn burst_disorder_keeps_late_drops_invariant_across_workers(
        seed in 0u64..10_000,
        disorder in 0u64..40,
        slack_idx in 0usize..3,
        worker_idx in 0usize..4,
        batch_idx in 0usize..4,
        chunk in 1usize..40,
    ) {
        // The same slack × workers invariant, but over the adversarial
        // flash-crowd generator instead of uniformly random rows: bursts
        // pack ~4 events per tick with time stamps scattered up to
        // `disorder` ticks backwards, so slack < disorder *must* drop
        // events — identically on every worker count and transport batch
        // size. Shrinking stays enabled: a failure minimizes to the
        // smallest hostile (seed, disorder, slack) triple.
        use cogra::workloads::{burst, BurstConfig};
        let slack = [0u64, 8, 24][slack_idx];
        let workers = WORKER_COUNTS[worker_idx];
        let reg = burst::registry();
        let query = burst::count_query(16, 8);
        let events = burst::generate(&BurstConfig {
            disorder,
            events: 320,
            seed,
            ..BurstConfig::default()
        });

        let reference = Session::builder()
            .query(query.as_str())
            .slack(slack)
            .build(&reg)
            .expect("session builds")
            .run(&events);

        let mut session = Session::builder()
            .query(query.as_str())
            .slack(slack)
            .workers(workers)
            .batch_size(BATCH_SIZES[batch_idx])
            .build(&reg)
            .expect("session builds");
        let mut out: Vec<WindowResult> = Vec::new();
        for chunk in events.chunks(chunk) {
            for e in chunk {
                session.process(e);
            }
            session.drain_into(&mut out);
        }
        session.finish_into(&mut out);
        let late = session.late_events();
        WindowResult::sort(&mut out);

        prop_assert_eq!(
            late,
            reference.late_events,
            "burst late drops (disorder={}, slack={}, workers={})",
            disorder, slack, workers
        );
        prop_assert_eq!(&vec![out], &reference.per_query);
        // With slack at least as deep as the disorder, nothing may drop.
        if slack >= disorder.max(1) {
            prop_assert_eq!(late, 0, "slack {} covers disorder {}", slack, disorder);
        }
    }
}
