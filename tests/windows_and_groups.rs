//! Sliding-window and grouping behaviour of the full engine (§7):
//! per-window aggregates, window finalization at the watermark, group
//! emission, and cross-partition merging of equivalence sub-streams.

use cogra::core::run_to_completion;
use cogra::prelude::*;

fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    r.register_type(
        "T",
        vec![
            ("g", ValueKind::Int),
            ("k", ValueKind::Int),
            ("v", ValueKind::Int),
        ],
    );
    r
}

fn event(b: &mut EventBuilder, t: u64, g: i64, k: i64, v: i64) -> Event {
    let reg = registry();
    b.event(
        t,
        reg.id_of("T").unwrap(),
        vec![Value::Int(g), Value::Int(k), Value::Int(v)],
    )
}

#[test]
fn overlapping_windows_count_independently() {
    // T+ under ANY with WITHIN 4 SLIDE 2: an event at t participates in
    // up to two windows, and each window's count covers exactly its
    // events: n events → 2^n − 1 trends.
    let reg = registry();
    let mut engine = CograEngine::from_text(
        "RETURN COUNT(*) PATTERN T+ SEMANTICS ANY WITHIN 4 SLIDE 2",
        &reg,
    )
    .unwrap();
    let mut b = EventBuilder::new();
    let events: Vec<Event> = (1..=8).map(|t| event(&mut b, t, 0, 0, 0)).collect();
    let (results, _) = run_to_completion(&mut engine, &events, 1);
    // Window k covers [2k, 2k+4): w0 = {1,2,3} (t=0 unused), w1 = {2..5},
    // w2 = {4..7}, w3 = {6,7,8} ... every full window holds 4 events.
    for r in &results {
        let start = r.window.0 * 2;
        let n = (start..start + 4).filter(|t| (1..=8).contains(t)).count() as u32;
        assert_eq!(
            r.values[0],
            AggValue::Count(2u64.pow(n) - 1),
            "window {} holds {} events",
            r.window.0,
            n
        );
    }
    // Windows keep opening while events keep arriving: w0..w4 non-empty.
    assert_eq!(results.len(), 5);
}

#[test]
fn results_arrive_when_window_closes() {
    let reg = registry();
    let mut engine = CograEngine::from_text(
        "RETURN COUNT(*) PATTERN T+ SEMANTICS ANY WITHIN 4 SLIDE 4",
        &reg,
    )
    .unwrap();
    let mut b = EventBuilder::new();
    engine.process(&event(&mut b, 1, 0, 0, 0));
    engine.process(&event(&mut b, 2, 0, 0, 0));
    assert!(engine.drain().is_empty(), "window 0 still open");
    engine.process(&event(&mut b, 4, 0, 0, 0)); // watermark hits w0's end
    let r = engine.drain();
    assert_eq!(r.len(), 1);
    assert_eq!(r[0].values[0], AggValue::Count(3)); // {e1}, {e2}, {e1,e2}
    assert!(engine.drain().is_empty(), "no double emission");
    let rest = engine.finish();
    assert_eq!(rest.len(), 1); // window 1 with the t=4 event
}

#[test]
fn groups_are_reported_separately() {
    let reg = registry();
    let mut engine = CograEngine::from_text(
        "RETURN g, COUNT(*) PATTERN T+ SEMANTICS ANY GROUP-BY g WITHIN 10 SLIDE 10",
        &reg,
    )
    .unwrap();
    let mut b = EventBuilder::new();
    let events = vec![
        event(&mut b, 1, 7, 0, 0),
        event(&mut b, 2, 9, 0, 0),
        event(&mut b, 3, 7, 0, 0),
    ];
    let (results, _) = run_to_completion(&mut engine, &events, 1);
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].group, vec![Value::Int(7)]);
    assert_eq!(results[0].values[0], AggValue::Count(3));
    assert_eq!(results[1].group, vec![Value::Int(9)]);
    assert_eq!(results[1].values[0], AggValue::Count(1));
}

#[test]
fn equivalence_partitions_merge_into_one_group() {
    // [k] partitions the stream; GROUP-BY g groups the output. Two k
    // partitions with the same g must merge — including a correctly
    // combined AVG (sums and counts combine before the division).
    let reg = registry();
    let mut engine = CograEngine::from_text(
        "RETURN g, COUNT(*), AVG(T.v) PATTERN T+ SEMANTICS ANY \
         WHERE [k] GROUP-BY g WITHIN 10 SLIDE 10",
        &reg,
    )
    .unwrap();
    let mut b = EventBuilder::new();
    let events = vec![
        event(&mut b, 1, 1, 100, 10), // partition k=100: one event, v=10
        event(&mut b, 2, 1, 200, 40), // partition k=200: two events
        event(&mut b, 3, 1, 200, 40),
    ];
    let (results, _) = run_to_completion(&mut engine, &events, 1);
    assert_eq!(results.len(), 1, "one output group g=1");
    // Trends: k=100 → {e1}; k=200 → {e2}, {e3}, {e2,e3}: 4 total.
    assert_eq!(results[0].values[0], AggValue::Count(4));
    // AVG(T.v): occurrences 10 | 40, 40, 40+40 → sum 170 over 5
    // occurrences = 34; the wrong way (averaging partition averages of 10
    // and 40) would give 25.
    assert_eq!(results[0].values[1], AggValue::Float(170.0 / 5.0));
}

#[test]
fn empty_groups_are_not_emitted() {
    let reg = registry();
    let mut engine = CograEngine::from_text(
        "RETURN g, COUNT(*) PATTERN SEQ(T X+, T Y+) SEMANTICS ANY \
         WHERE X.v < 0 GROUP-BY g WITHIN 10 SLIDE 10",
        &reg,
    )
    .unwrap();
    let mut b = EventBuilder::new();
    // v >= 0 everywhere: the X+ part never matches → no trends → no rows.
    let events = vec![event(&mut b, 1, 1, 0, 5), event(&mut b, 2, 1, 0, 6)];
    let (results, _) = run_to_completion(&mut engine, &events, 1);
    assert!(results.is_empty());
}

#[test]
fn tumbling_windows_partition_the_stream() {
    let reg = registry();
    let mut engine = CograEngine::from_text(
        "RETURN COUNT(*) PATTERN T+ SEMANTICS ANY WITHIN 3 SLIDE 3",
        &reg,
    )
    .unwrap();
    let mut b = EventBuilder::new();
    let events: Vec<Event> = (0..9).map(|t| event(&mut b, t + 1, 0, 0, 0)).collect();
    let (results, _) = run_to_completion(&mut engine, &events, 1);
    // Windows [0,3), [3,6), [6,9), [9,12) hold 2/3/3/1 events.
    let counts: Vec<AggValue> = results.iter().map(|r| r.values[0]).collect();
    assert_eq!(
        counts,
        vec![
            AggValue::Count(3),
            AggValue::Count(7),
            AggValue::Count(7),
            AggValue::Count(1)
        ]
    );
}

#[test]
fn watermark_tracks_event_time() {
    let reg = registry();
    let mut engine = CograEngine::from_text(
        "RETURN COUNT(*) PATTERN T+ SEMANTICS ANY WITHIN 5 SLIDE 5",
        &reg,
    )
    .unwrap();
    let mut b = EventBuilder::new();
    assert_eq!(engine.watermark(), Timestamp(0));
    engine.process(&event(&mut b, 42, 0, 0, 0));
    assert_eq!(engine.watermark(), Timestamp(42));
}
