//! End-to-end differential battery for the network front-end: a
//! workload replayed over a loopback socket through `cogra-server` must
//! be **byte-identical** to the same `Session` run in-process — results,
//! late-drop counts, and run stats — across workloads
//! {stock, rideshare, transport} × workers {1, 4} × slack {0, 8},
//! including mid-stream `DRAIN`s. Plus the protocol's error cases:
//! reconnect-after-`FINISH`, double `FINISH`, and the loopback-only
//! bind guard.
//!
//! Both sides consume the *same CSV text* (the server through `INGEST`
//! blocks, the reference through `Session::run_csv`), so any divergence
//! is the server's fault — framing, chunking, actor ordering, or sink
//! plumbing — never a decode asymmetry.
//!
//! Every test body runs under a watchdog so a hung accept loop or a
//! deadlocked actor fails fast instead of stalling CI.

use cogra::prelude::*;
use cogra::workloads::{rideshare, stock, transport};
use cogra::workloads::{RideshareConfig, StockConfig, TransportConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::mpsc;
use std::time::Duration;

/// Per-test timeout: generous for debug builds, far below CI's patience.
const WATCHDOG_SECS: u64 = 120;

/// Run `f` on its own thread; panic if it does not finish in time. A
/// hung server (accept loop, actor, subscriber) then fails the test
/// instead of hanging the whole `cargo test` job.
fn watchdog<T: Send + 'static>(name: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(WATCHDOG_SECS)) {
        Ok(value) => {
            let _ = worker.join();
            value
        }
        Err(_) => panic!("{name}: hung for {WATCHDOG_SECS}s (accept loop / actor deadlock?)"),
    }
}

/// One battery workload: registry, query, and a generated stream.
fn workload(idx: usize, seed: u64, n: usize) -> (TypeRegistry, String, Vec<Event>) {
    match idx {
        0 => (
            stock::registry(),
            stock::q3_query(50, 25),
            stock::generate(&StockConfig {
                events: n,
                seed,
                ..StockConfig::default()
            }),
        ),
        1 => (
            rideshare::registry(),
            rideshare::q2_query(80, 40),
            rideshare::generate(&RideshareConfig {
                events: n,
                seed,
                ..RideshareConfig::default()
            }),
        ),
        _ => (
            transport::registry(),
            transport::next_query(40, 20),
            transport::generate(&TransportConfig {
                events: n,
                seed,
                ..TransportConfig::default()
            }),
        ),
    }
}

/// Disorder the *arrival* order with bounded displacement: each event's
/// sort key is its time plus a random offset in `[0, extent]`, ties
/// broken by original position. With `extent` above the session's slack
/// some events arrive hopelessly late — exercising identical late-drop
/// accounting on both paths.
fn jitter(events: Vec<Event>, extent: u64, seed: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keyed: Vec<(u64, usize, Event)> = events
        .into_iter()
        .enumerate()
        .map(|(i, e)| (e.time.ticks() + rng.random_range(0..=extent), i, e))
        .collect();
    keyed.sort_by_key(|&(key, position, _)| (key, position));
    keyed.into_iter().map(|(_, _, e)| e).collect()
}

fn builder_for(query: &str, workers: usize, slack: u64) -> SessionBuilder {
    let mut builder = Session::builder().query(query).workers(workers);
    if slack > 0 {
        builder = builder.slack(slack);
    }
    builder
}

/// Serve `csv` over a loopback socket in `chunk`-row `INGEST` blocks
/// with a `DRAIN` after every block; return the pushed result lines (as
/// `q<i> <row>` strings, unsorted), the per-drain reports, and the
/// `FINISH` report.
fn serve_csv(
    query: &str,
    registry: &TypeRegistry,
    csv: &str,
    workers: usize,
    slack: u64,
    chunk: usize,
) -> (Vec<String>, Vec<StatsReport>, StatsReport) {
    let server = Server::spawn(
        builder_for(query, workers, slack),
        registry.clone(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("server starts");
    let addr = server.local_addr();

    let subscription = Client::connect(addr)
        .expect("subscriber connects")
        .subscribe(None)
        .expect("subscribe io")
        .expect("subscribe accepted");
    let collector = std::thread::spawn(move || {
        subscription
            .map(|item| {
                let (q, row) = item.expect("well-formed result line");
                format!("q{q} {row}")
            })
            .collect::<Vec<String>>()
    });

    let mut feed = Client::connect(addr).expect("feed connects");
    let mut lines = csv.lines();
    let header = lines.next().expect("csv has a header");
    let rows: Vec<&str> = lines.collect();
    let mut drains = Vec::new();
    for block in rows.chunks(chunk.max(1)) {
        let mut doc = String::with_capacity(header.len() + block.len() * 24);
        doc.push_str(header);
        doc.push('\n');
        for row in block {
            doc.push_str(row);
            doc.push('\n');
        }
        feed.ingest(&doc).expect("ingest io").expect("ingest ok");
        drains.push(feed.drain().expect("drain io").expect("drain ok"));
    }
    let finish = feed.finish().expect("finish io").expect("finish ok");
    let pushed = collector.join().expect("subscriber joins");
    server.shutdown();
    (pushed, drains, finish)
}

/// The differential core: socket-served vs in-process, byte for byte.
/// Returns `(mid_stream_results, late_drops)` — the number of results
/// already emitted by the last mid-stream drain and the late-drop count
/// — for the battery-wide liveness checks ("results flow before FINISH";
/// "the slack axis actually drops events, 0 == 0 proves nothing").
fn diff_case(
    wl: usize,
    seed: u64,
    n: usize,
    workers: usize,
    slack: u64,
    chunk: usize,
) -> (u64, u64) {
    let (registry, query, events) = workload(wl, seed, n);
    let events = if slack > 0 {
        // Displacement beyond the slack: some drops on both paths.
        jitter(events, slack + 4, seed ^ 0x9e37)
    } else {
        events
    };
    let csv = write_events(&events, &registry);

    // In-process reference: the same CSV text through Session::run_csv.
    let reference = builder_for(&query, workers, slack)
        .build(&registry)
        .expect("reference session builds")
        .run_csv(&csv, &registry)
        .expect("reference ingests");
    let mut expected: Vec<String> = reference
        .per_query
        .iter()
        .enumerate()
        .flat_map(|(q, results)| results.iter().map(move |r| format!("q{q} {r}")))
        .collect();
    expected.sort();

    let (mut pushed, drains, finish) = serve_csv(&query, &registry, &csv, workers, slack, chunk);
    pushed.sort();

    let label = format!("workload {wl} workers {workers} slack {slack} chunk {chunk}");
    assert_eq!(pushed, expected, "results differ ({label})");
    assert_eq!(finish.events, reference.events, "event counts ({label})");
    assert_eq!(finish.late, reference.late_events, "late drops ({label})");
    assert_eq!(finish.workers, reference.workers, "workers ({label})");
    assert_eq!(
        (finish.key_probes, finish.key_allocs),
        (reference.stats.key_probes, reference.stats.key_allocs),
        "run stats ({label})"
    );
    assert_eq!(
        finish.results,
        expected.len() as u64,
        "result count ({label})"
    );
    assert!(finish.finished, "finish reply says finished ({label})");

    // Mid-stream DRAIN prefix-consistency: the emitted count only grows,
    // never exceeds the final total, and everything pushed before FINISH
    // is part of the final (reference-identical) set — the subscriber
    // stream is append-only, so the multiset equality above seals it.
    let mut last = 0u64;
    for report in &drains {
        assert!(
            report.results >= last,
            "drain counter regressed ({label}): {} < {last}",
            report.results
        );
        last = report.results;
    }
    assert!(last <= finish.results, "drains exceed finish ({label})");
    (last, finish.late)
}

#[test]
fn grid_socket_equals_in_process() {
    // The full acceptance grid: ≥3 workloads × workers {1,4} × slack
    // {0,8}, chunked ingest with a DRAIN between chunks.
    let mut mid_stream_results = 0u64;
    let mut late_drops = 0u64;
    for wl in 0..3 {
        for workers in [1usize, 4] {
            for slack in [0u64, 8] {
                let label = format!("grid wl={wl} workers={workers} slack={slack}");
                let (mid, late) = watchdog(&label.clone(), move || {
                    diff_case(wl, 7, 400, workers, slack, 90)
                });
                mid_stream_results += mid;
                late_drops += late;
            }
        }
    }
    // Liveness: across the grid, windows closed (and were pushed) while
    // streams were still flowing — the server is not buffer-and-reply.
    assert!(
        mid_stream_results > 0,
        "no grid case emitted results before FINISH"
    );
    // The slack axis must have exercised real drops: both paths counting
    // zero late events would make the late-drop parity assertion vacuous.
    assert!(late_drops > 0, "the jittered grid cases dropped no events");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn random_workloads_socket_equals_in_process(
        wl in 0usize..3,
        workers_idx in 0usize..2,
        slack_idx in 0usize..2,
        seed in 0u64..10_000,
        n in 120usize..420,
        chunk in 17usize..160,
    ) {
        let workers = [1usize, 4][workers_idx];
        let slack = [0u64, 8][slack_idx];
        let label = format!("prop wl={wl} workers={workers} slack={slack} seed={seed}");
        watchdog(&label.clone(), move || {
            diff_case(wl, seed, n, workers, slack, chunk);
        });
    }
}

#[test]
fn duplicate_query_roster_shares_one_run_and_fans_out_identically() {
    watchdog("duplicate-roster", || {
        let (registry, query, events) = workload(0, 5, 300);
        let csv = write_events(&events, &registry);
        let server = Server::spawn(
            Session::builder()
                .query(query.as_str())
                .query(query.as_str()),
            registry,
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("server starts");
        let addr = server.local_addr();

        // One subscriber per roster entry: both SUBSCRIBE streams must be
        // byte-identical — the shared physical run fans out to each.
        let collectors: Vec<_> = (0..2)
            .map(|q| {
                let subscription = Client::connect(addr)
                    .expect("subscriber connects")
                    .subscribe(Some(q))
                    .expect("subscribe io")
                    .expect("subscribe accepted");
                std::thread::spawn(move || {
                    subscription
                        .map(|item| item.expect("well-formed result line").1)
                        .collect::<Vec<String>>()
                })
            })
            .collect();

        let mut feed = Client::connect(addr).expect("feed connects");
        feed.ingest(&csv).expect("ingest io").expect("ingest ok");
        let stats = feed.stats().expect("stats io").expect("stats ok");
        let finish = feed.finish().expect("finish io").expect("finish ok");

        // STATS says the shared run executed once: 2 queries, 1 physical.
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.physical, 1, "STATS must report the collapsed roster");
        assert_eq!(finish.physical, 1);

        let mut streams = collectors
            .into_iter()
            .map(|c| c.join().expect("subscriber joins"));
        let q0 = streams.next().unwrap();
        let q1 = streams.next().unwrap();
        assert!(!q0.is_empty(), "the workload must produce results");
        assert_eq!(q0, q1, "duplicate SUBSCRIBE streams must be byte-identical");
        assert_eq!(finish.results, (q0.len() + q1.len()) as u64);
        server.shutdown();
    });
}

#[test]
fn reconnect_after_finish_is_an_error() {
    watchdog("reconnect-after-finish", || {
        let (registry, query, events) = workload(0, 3, 60);
        let csv = write_events(&events, &registry);
        let server = Server::spawn(
            builder_for(&query, 1, 0),
            registry,
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("server starts");
        let addr = server.local_addr();

        let mut feed = Client::connect(addr).expect("connects");
        feed.ingest(&csv).expect("io").expect("ingest ok");
        feed.finish().expect("io").expect("finish ok");

        // Same connection: the session is gone for every mutating verb.
        let err = feed.finish().expect("io").unwrap_err();
        assert!(err.contains("session finished"), "{err}");
        let err = feed.ingest(&csv).expect("io").unwrap_err();
        assert!(err.contains("session finished"), "{err}");

        // Reconnect: same answer — the server outlives the session and
        // keeps refusing, it does not hang or accept new events.
        let mut late_client = Client::connect(addr).expect("reconnects");
        let err = late_client.ingest(&csv).expect("io").unwrap_err();
        assert!(err.contains("session finished"), "{err}");
        let stats = late_client.stats().expect("io").expect("stats still ok");
        assert!(stats.finished);
        assert_eq!(stats.events, 60);
        // Per-shard ingest counters ride STATS: one streaming engine,
        // so the whole stream sits in one slot.
        assert_eq!(stats.shard_events, vec![60]);

        // A late subscription is answered with an immediate EOS — the
        // results were push-only, nothing is replayed.
        let drained: Vec<_> = Client::connect(addr)
            .expect("reconnects")
            .subscribe(None)
            .expect("io")
            .expect("subscribe accepted")
            .collect();
        assert!(drained.is_empty(), "{drained:?}");

        server.shutdown();
    });
}

#[test]
fn protocol_error_replies() {
    watchdog("protocol-errors", || {
        let (registry, query, _) = workload(2, 1, 10);
        let server = Server::spawn(
            builder_for(&query, 1, 0),
            registry,
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("server starts");
        let addr = server.local_addr();

        // Subscribing to a query the session does not have.
        let err = Client::connect(addr)
            .expect("connects")
            .subscribe(Some(5))
            .expect("io")
            .unwrap_err();
        assert!(err.contains("unknown query q5"), "{err}");

        // Raw socket: unknown verbs and malformed INGEST counts answer
        // ERR without killing the connection.
        use std::io::{BufRead, BufReader, Write};
        let mut raw = std::net::TcpStream::connect(addr).expect("connects");
        let mut replies = BufReader::new(raw.try_clone().expect("clone"));
        let mut line = String::new();
        raw.write_all(b"NONSENSE\n").expect("write");
        replies.read_line(&mut line).expect("read");
        assert!(line.starts_with("ERR unknown command"), "{line}");
        line.clear();
        raw.write_all(b"INGEST many\n").expect("write");
        replies.read_line(&mut line).expect("read");
        assert!(line.starts_with("ERR INGEST needs a line count"), "{line}");
        line.clear();
        raw.write_all(b"QUIT\n").expect("write");
        replies.read_line(&mut line).expect("read");
        assert!(line.starts_with("OK bye"), "{line}");

        // A newline-free flood is answered with ERR at the line-length
        // cap and the connection is closed — not buffered unbounded.
        let mut flood = std::net::TcpStream::connect(addr).expect("connects");
        let mut flood_replies = BufReader::new(flood.try_clone().expect("clone"));
        // Exactly the cap, no newline: the server consumes every byte
        // (so this write cannot be cut short by its close), hits the
        // limit, and answers ERR.
        flood.write_all(&vec![b'x'; 1024 * 1024]).expect("write");
        line.clear();
        flood_replies.read_line(&mut line).expect("read");
        assert!(
            line.starts_with("ERR") && line.contains("line-length limit"),
            "{line}"
        );
        line.clear();
        // The server closes with part of the flood unread, so the tail
        // is either a clean EOF or a reset — both mean "closed".
        match flood_replies.read_line(&mut line) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("connection still open after the cap: read {n} bytes `{line}`"),
        }

        server.shutdown();
    });
}

#[test]
fn misbehaving_connections_do_not_take_the_server_down() {
    watchdog("misbehaving-connections", || {
        use std::io::{BufRead, BufReader, Write};

        let (registry, query, events) = workload(0, 11, 80);
        let csv = write_events(&events, &registry);
        let server = Server::spawn(
            builder_for(&query, 1, 0),
            registry,
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("server starts");
        let addr = server.local_addr();

        // Hostile connection 1: binary garbage, then an abrupt drop.
        let mut garbage = std::net::TcpStream::connect(addr).expect("connects");
        garbage
            .write_all(b"\x00\xffINGEST\x07 not-a-count\n\x13\x37\n")
            .expect("write");
        drop(garbage);

        // Hostile connection 2: announce an INGEST block, send half of
        // it, and vanish mid-payload.
        let mut truncated = std::net::TcpStream::connect(addr).expect("connects");
        truncated
            .write_all(b"INGEST 500\ntype,time\n")
            .expect("write");
        drop(truncated);

        // Hostile connection 3: a well-formed verb answered with ERR,
        // then the connection keeps being served.
        let mut raw = std::net::TcpStream::connect(addr).expect("connects");
        let mut replies = BufReader::new(raw.try_clone().expect("clone"));
        let mut line = String::new();
        raw.write_all(b"FEED ME\n").expect("write");
        replies.read_line(&mut line).expect("read");
        assert!(line.starts_with("ERR unknown command"), "{line}");
        drop(raw);

        // A healthy connection still gets full service: ingest, finish,
        // and the wait_finished() handshake all work.
        let mut feed = Client::connect(addr).expect("healthy client connects");
        feed.ingest(&csv).expect("ingest io").expect("ingest ok");
        let report = feed.finish().expect("finish io").expect("finish ok");
        assert!(report.finished);
        assert_eq!(report.events, 80);
        assert!(
            server.wait_finished(Duration::from_secs(30)),
            "wait_finished sees the FINISH despite earlier hostile connections"
        );
        server.shutdown();
    });
}

#[test]
fn server_refuses_nonlocal_bind() {
    watchdog("loopback-guard", || {
        let (registry, query, _) = workload(0, 1, 10);
        let err = match Server::spawn(
            builder_for(&query, 1, 0),
            registry.clone(),
            "0.0.0.0:0",
            ServerConfig::default(),
        ) {
            Err(e) => e,
            Ok(_) => panic!("non-loopback bind must be refused by default"),
        };
        assert!(
            matches!(err, ServeError::NotLoopback(_)),
            "unexpected error {err}"
        );

        // The guard is an explicit opt-out, not a hard limit.
        let server = Server::spawn(
            builder_for(&query, 1, 0),
            registry,
            "0.0.0.0:0",
            ServerConfig {
                allow_nonlocal: true,
                ..ServerConfig::default()
            },
        )
        .expect("explicit opt-in binds");
        server.shutdown();
    });
}
