//! Table 3: "Number of trends in the number of events" — the complexity
//! classes that motivate the whole paper. Verified empirically with exact
//! oracle counts on worst-case streams:
//!
//! |           | event sequence pattern | Kleene pattern |
//! |-----------|------------------------|----------------|
//! | ANY       | polynomial             | exponential    |
//! | NEXT/CONT | linear                 | polynomial     |

use cogra::baselines::oracle::count_trends;
use cogra::core::QueryRuntime;
use cogra::prelude::*;

fn runtime(pattern: &str, semantics: Semantics, reg: &TypeRegistry) -> QueryRuntime {
    let q = parse(&format!(
        "RETURN COUNT(*) PATTERN {pattern} SEMANTICS {} WITHIN 1000000 SLIDE 1000000",
        semantics.keyword()
    ))
    .unwrap();
    QueryRuntime::new(compile(&q, reg).unwrap(), reg)
}

fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    for t in ["A", "B", "C"] {
        r.register_type(t, vec![("v", ValueKind::Int)]);
    }
    r
}

/// Alternating `a b a b ...` stream of length `n`.
fn ab_stream(n: usize, reg: &TypeRegistry) -> Vec<Event> {
    let a = reg.id_of("A").unwrap();
    let b = reg.id_of("B").unwrap();
    let mut builder = EventBuilder::new();
    (0..n)
        .map(|i| {
            builder.event(
                (i + 1) as u64,
                if i % 2 == 0 { a } else { b },
                vec![Value::Int(i as i64)],
            )
        })
        .collect()
}

fn counts(pattern: &str, semantics: Semantics, ns: &[usize]) -> Vec<u64> {
    let reg = registry();
    let rt = runtime(pattern, semantics, &reg);
    ns.iter()
        .map(|&n| count_trends(&rt.disjuncts[0], &ab_stream(n, &reg), semantics))
        .collect()
}

#[test]
fn kleene_any_grows_exponentially() {
    // (SEQ(A+,B))+ under ANY: count at n must more than double the count
    // at n-2 (it roughly triples on the alternating stream).
    let ns = [4, 6, 8, 10, 12];
    let c = counts("(SEQ(A+, B))+", Semantics::Any, &ns);
    for w in c.windows(2) {
        assert!(w[1] >= 2 * w[0], "not exponential: {c:?}");
    }
    // Exact cross-check on the alternating stream: abababab (8 events)
    // yields 67 trends. (The Figure 2 stream — a different shape — yields
    // 43; that one is verified digit-for-digit in the core test suite.)
    assert_eq!(c[2], 67);
}

#[test]
fn kleene_next_grows_polynomially() {
    // NEXT on the Kleene pattern: quadratic-ish — bounded by c·n², and
    // clearly super-linear.
    let ns = [4, 8, 16, 32];
    let c = counts("(SEQ(A+, B))+", Semantics::Next, &ns);
    for (&n, &cnt) in ns.iter().zip(&c) {
        let n = n as u64;
        assert!(cnt <= n * n, "super-quadratic: {c:?}");
    }
    assert!(
        c[3] > 2 * (c[1]), // doubling n more than doubles the count
        "not super-linear: {c:?}"
    );
}

#[test]
fn sequence_any_is_polynomial() {
    // SEQ(A, B) under ANY: #pairs = quadratic, far from exponential.
    let ns = [4, 8, 16, 32];
    let c = counts("SEQ(A, B)", Semantics::Any, &ns);
    for (&n, &cnt) in ns.iter().zip(&c) {
        let n = n as u64;
        assert!(cnt <= n * n, "{c:?}");
        assert!(cnt >= n / 2, "{c:?}");
    }
}

#[test]
fn sequence_next_cont_are_linear() {
    let ns = [4, 8, 16, 32, 64];
    for sem in [Semantics::Next, Semantics::Cont] {
        let c = counts("SEQ(A, B)", sem, &ns);
        for (&n, &cnt) in ns.iter().zip(&c) {
            assert!(cnt <= n as u64, "{sem:?}: {c:?}");
        }
        // Exactly one trend per (a,b) adjacent pair on the alternating
        // stream: n/2 under the chain semantics.
        assert_eq!(c[4], 32, "{sem:?}: {c:?}");
    }
}

#[test]
fn kleene_cont_polynomial_on_alternating_stream() {
    let ns = [4, 8, 16, 32];
    let c = counts("(SEQ(A+, B))+", Semantics::Cont, &ns);
    for (&n, &cnt) in ns.iter().zip(&c) {
        let n = n as u64;
        assert!(cnt <= n * n, "{c:?}");
    }
    // CONT ⊆ NEXT ⊆ ANY (Figure 2 containment) — ANY enumeration is
    // exponential, so the three-way check stays at small n.
    let small = [4, 8, 12];
    let cont = counts("(SEQ(A+, B))+", Semantics::Cont, &small);
    let next = counts("(SEQ(A+, B))+", Semantics::Next, &small);
    let any = counts("(SEQ(A+, B))+", Semantics::Any, &small);
    for i in 0..small.len() {
        assert!(cont[i] <= next[i] && next[i] <= any[i]);
    }
}

#[test]
fn containment_holds_on_random_streams() {
    // trends_cont ⊆ trends_next ⊆ trends_any (Figure 2) — counts must be
    // ordered on arbitrary streams, not just the alternating one.
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let reg = registry();
    let ids = [
        reg.id_of("A").unwrap(),
        reg.id_of("B").unwrap(),
        reg.id_of("C").unwrap(),
    ];
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..30 {
        let n = rng.random_range(0..12);
        let mut builder = EventBuilder::new();
        let events: Vec<Event> = (0..n)
            .map(|i| {
                builder.event(
                    (i + 1) as u64,
                    ids[rng.random_range(0..3)],
                    vec![Value::Int(rng.random_range(0..5))],
                )
            })
            .collect();
        let rt_any = runtime("(SEQ(A+, B))+", Semantics::Any, &reg);
        let rt_next = runtime("(SEQ(A+, B))+", Semantics::Next, &reg);
        let rt_cont = runtime("(SEQ(A+, B))+", Semantics::Cont, &reg);
        let any = count_trends(&rt_any.disjuncts[0], &events, Semantics::Any);
        let next = count_trends(&rt_next.disjuncts[0], &events, Semantics::Next);
        let cont = count_trends(&rt_cont.disjuncts[0], &events, Semantics::Cont);
        assert!(cont <= next, "cont {cont} > next {next}");
        assert!(next <= any, "next {next} > any {any}");
    }
}
