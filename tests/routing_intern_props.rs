//! Differential battery for the interned/dense routing hot path.
//!
//! PR 3 replaced the router's `HashMap<GroupKey, BTreeMap<WindowId, _>>`
//! bookkeeping with interned keys, a dense partition `Vec` and
//! ring-buffer window stores — with **byte-identical output** as the hard
//! constraint. This battery keeps the seed-style `Vec<Value>`-keyed
//! router alive as an executable reference ([`RefEngine`], a
//! line-for-line reimplementation of the pre-interning routing) and diffs
//! the real engines against it over random workloads × semantics ×
//! worker counts {1,2,4,8} × drain cadences, plus the interner-specific
//! invariants: id stability across drains and a zero-allocation hot path
//! (`RunStats::key_allocs` stays at the number of *distinct* keys).

use cogra::core::{CograWindow, QueryRuntime};
use cogra::engine::agg::Cell;
use cogra::engine::router::WindowAlgo;
use cogra::engine::{EventBinds, GroupKey};
use cogra::events::WindowId;
use cogra::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The semantics × grouping matrix the battery cycles through. CONT is
/// included deliberately: it is the one case where *irrelevant* events
/// still create partition/window state, exercising the interner on the
/// no-binds path.
const QUERIES: [&str; 4] = [
    "RETURN g, COUNT(*), SUM(A.v) PATTERN SEQ(A+, B) SEMANTICS ANY \
     GROUP-BY g WITHIN 10 SLIDE 5",
    "RETURN g, COUNT(*) PATTERN SEQ(A+, B) SEMANTICS NEXT \
     GROUP-BY g WITHIN 12 SLIDE 4",
    "RETURN g, COUNT(*) PATTERN SEQ(A+, B) SEMANTICS CONT \
     GROUP-BY g WITHIN 8 SLIDE 4",
    "RETURN COUNT(*) PATTERN SEQ(A+, B) SEMANTICS ANY WITHIN 10 SLIDE 5",
];

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn registry() -> TypeRegistry {
    let mut r = TypeRegistry::new();
    for t in ["A", "B"] {
        r.register_type(t, vec![("g", ValueKind::Int), ("v", ValueKind::Int)]);
    }
    r
}

fn build_events(reg: &TypeRegistry, rows: &[(u64, usize, i64, i64)]) -> Vec<Event> {
    let ids = [reg.id_of("A").unwrap(), reg.id_of("B").unwrap()];
    let mut builder = EventBuilder::new();
    let mut t = 1u64;
    rows.iter()
        .map(|&(dt, ty, g, v)| {
            t += dt;
            builder.event(t, ids[ty], vec![Value::Int(g), Value::Int(v)])
        })
        .collect()
}

/// The seed router, verbatim: partitions in a `HashMap` keyed by a
/// freshly materialized `Vec<Value>` per event, windows in a `BTreeMap`
/// per partition, group keys sliced out of the partition key per closed
/// window. Slow by design — it exists so the interned/dense router has a
/// byte-level specification to be diffed against.
struct RefEngine {
    rt: Arc<QueryRuntime>,
    partitions: HashMap<GroupKey, BTreeMap<WindowId, CograWindow>>,
    watermark: Timestamp,
    drained_to: Option<WindowId>,
    binds: EventBinds,
}

impl RefEngine {
    fn new(query: &str, reg: &TypeRegistry) -> RefEngine {
        let parsed = parse(query).expect("query parses");
        let rt = Arc::new(QueryRuntime::new(
            compile(&parsed, reg).expect("query compiles"),
            reg,
        ));
        let binds = EventBinds {
            per_disjunct: rt.disjuncts.iter().map(|_| Default::default()).collect(),
        };
        RefEngine {
            rt,
            partitions: HashMap::new(),
            watermark: Timestamp::ZERO,
            drained_to: None,
            binds,
        }
    }

    fn emit_up_to(&mut self, up_to: WindowId, out: &mut dyn FnMut(WindowResult)) {
        let rt = Arc::clone(&self.rt);
        let group_prefix = rt.query.group_prefix;
        let mut combined: BTreeMap<(WindowId, GroupKey), Cell> = BTreeMap::new();
        for (key, windows) in &mut self.partitions {
            let closed = match up_to.0.checked_add(1) {
                None => std::mem::take(windows),
                Some(next) => {
                    let mut open = windows.split_off(&WindowId(next));
                    std::mem::swap(&mut open, windows);
                    open
                }
            };
            for (wid, mut state) in closed {
                if self.drained_to.is_some_and(|d| wid <= d) {
                    continue;
                }
                let cell = state.final_cell(&rt);
                if cell.is_zero() {
                    continue;
                }
                let group: GroupKey = key[..group_prefix].to_vec();
                combined
                    .entry((wid, group))
                    .and_modify(|acc| acc.merge(&cell))
                    .or_insert(cell);
            }
        }
        self.partitions.retain(|_, w| !w.is_empty());
        self.drained_to = Some(match self.drained_to {
            Some(d) => WindowId(d.0.max(up_to.0)),
            None => up_to,
        });
        for ((window, group), cell) in combined {
            out(WindowResult {
                window,
                group,
                values: cell.outputs(&rt.layout),
            });
        }
    }
}

impl TrendEngine for RefEngine {
    fn process(&mut self, event: &Event) {
        self.watermark = self.watermark.max(event.time);
        let rt = Arc::clone(&self.rt);
        let Some(key) = rt.partition_key(event) else {
            return;
        };
        for ((binds, negs), drt) in self.binds.per_disjunct.iter_mut().zip(&rt.disjuncts) {
            drt.binds(event, binds);
            drt.negation_matches(event, negs);
        }
        if self.binds.is_irrelevant() && rt.query.semantics != Semantics::Cont {
            return;
        }
        let partition = self.partitions.entry(key).or_default();
        for wid in rt.query.window.windows_of(event.time) {
            if self.drained_to.is_some_and(|d| wid <= d) {
                continue;
            }
            partition
                .entry(wid)
                .or_insert_with(|| CograWindow::new(&rt))
                .on_event(&rt, event, &self.binds);
        }
    }

    fn drain_into(&mut self, out: &mut dyn FnMut(WindowResult)) {
        if let Some(wid) = self.rt.query.window.last_closed(self.watermark) {
            self.emit_up_to(wid, out);
        }
    }

    fn finish_into(&mut self, out: &mut dyn FnMut(WindowResult)) {
        self.emit_up_to(WindowId(u64::MAX), out);
    }

    fn memory_bytes(&self) -> usize {
        0 // not under test; the reference specifies results only
    }

    fn name(&self) -> &'static str {
        "reference"
    }

    fn watermark(&self) -> Timestamp {
        self.watermark
    }
}

/// Run the reference router over the stream with a drain after every
/// `chunk` events (1 = the per-event cadence `run_to_completion` uses).
fn reference(query: &str, reg: &TypeRegistry, events: &[Event], chunk: usize) -> Vec<WindowResult> {
    let mut engine = RefEngine::new(query, reg);
    let mut out: Vec<WindowResult> = Vec::new();
    let mut push = |r: WindowResult| out.push(r);
    for c in events.chunks(chunk.max(1)) {
        for e in c {
            engine.process(e);
        }
        engine.drain_into(&mut push);
    }
    engine.finish_into(&mut push);
    WindowResult::sort(&mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interned_routing_is_byte_identical_to_the_reference(
        rows in vec((0u64..3, 0usize..2, 0i64..5, -4i64..5), 1..160),
        worker_idx in 0usize..4,
        chunk in 1usize..40,
        query_idx in 0usize..4,
    ) {
        let reg = registry();
        let events = build_events(&reg, &rows);
        let query = QUERIES[query_idx];
        let workers = WORKER_COUNTS[worker_idx];
        let expected = reference(query, &reg, &events, 1);

        // Sequential interned router, per-event drains.
        let mut engine = CograEngine::from_text(query, &reg).expect("query compiles");
        let (sequential, _) = run_to_completion(&mut engine, &events, 64);
        prop_assert_eq!(&sequential, &expected, "interned vs reference");

        // A different drain cadence on the reference itself changes
        // nothing (sanity: the spec is cadence-free too).
        prop_assert_eq!(&reference(query, &reg, &events, chunk), &expected);

        // Sharded interned routing, all worker counts.
        let run = Session::builder()
            .query(query)
            .workers(workers)
            .build(&reg)
            .expect("session builds")
            .run(&events);
        prop_assert_eq!(&run.per_query, &vec![expected], "workers={}", workers);
    }

    #[test]
    fn every_engine_rides_the_interned_router_identically(
        rows in vec((0u64..3, 0usize..2, 0i64..4, -4i64..5), 1..60),
    ) {
        // The router rewrite is shared substrate: every baseline engine
        // must still agree with the reference on the common ANY query.
        let reg = registry();
        let events = build_events(&reg, &rows);
        let query = QUERIES[0];
        let expected = reference(query, &reg, &events, 1);
        for kind in EngineKind::ALL {
            let run = Session::builder()
                .query(query)
                .engine(kind)
                .build(&reg)
                .expect("ANY is universally supported")
                .run(&events);
            prop_assert_eq!(&run.per_query, &vec![expected.clone()], "{}", kind);
        }
    }

    #[test]
    fn zero_allocations_for_seen_keys_and_stable_ids_across_drains(
        rows in vec((0u64..3, 0usize..2, 0i64..4, -4i64..5), 1..120),
        chunk in 1usize..30,
    ) {
        let reg = registry();
        let events = build_events(&reg, &rows);
        let distinct: std::collections::HashSet<i64> =
            rows.iter().map(|&(_, _, g, _)| g).collect();

        // Drains must not disturb the interner: feed the stream with
        // mid-stream drains, then the distinct-key count still bounds the
        // materializations — re-seen keys (including keys re-appearing
        // *after* their partition drained empty) allocate nothing.
        let mut session = Session::builder()
            .query(QUERIES[0])
            .build(&reg)
            .expect("session builds");
        let mut sink: Vec<TaggedResult> = Vec::new();
        for c in events.chunks(chunk) {
            for e in c {
                session.process(e);
            }
            session.drain_into(&mut sink);
        }
        session.finish_into(&mut sink);
        let stats = session.run_stats();
        prop_assert_eq!(stats.key_probes, events.len() as u64, "every event probes once");
        prop_assert_eq!(
            stats.key_allocs,
            distinct.len() as u64,
            "one materialization per distinct key, none for re-seen keys"
        );

        // And the collecting runner surfaces the same counters.
        let run = Session::builder()
            .query(QUERIES[0])
            .build(&reg)
            .expect("session builds")
            .run(&events);
        prop_assert_eq!(run.stats, stats, "cadence-independent counters");
        prop_assert_eq!(run.events, events.len() as u64);
    }
}

/// Adversarial key churn: every session id is fresh, so the interner
/// grows linearly with the stream — and the interned/dense router still
/// matches the `Vec<Value>`-keyed reference byte for byte, across all
/// worker counts. This is the workload the intern rewrite is most
/// exposed to: no key is ever re-seen, so the "zero allocations for
/// seen keys" fast path never fires.
#[test]
fn churn_streams_match_the_reference_with_linear_interner_growth() {
    use cogra::workloads::{churn, ChurnConfig};
    let reg = churn::registry();
    let query = churn::count_query(40, 20);
    let events = churn::generate(&ChurnConfig {
        events: 600,
        seed: 23,
        ..ChurnConfig::default()
    });
    let distinct: std::collections::HashSet<&Value> = events.iter().map(|e| &e.attrs[0]).collect();
    assert!(
        distinct.len() >= events.len() / 20,
        "churn generator lost its bite: {} keys over {} events",
        distinct.len(),
        events.len()
    );

    let expected = reference(&query, &reg, &events, 1);
    assert!(!expected.is_empty(), "churn stream closes windows");
    for workers in WORKER_COUNTS {
        let run = Session::builder()
            .query(query.as_str())
            .workers(workers)
            .build(&reg)
            .expect("session builds")
            .run(&events);
        assert_eq!(run.per_query, vec![expected.clone()], "workers={workers}");
        assert_eq!(
            run.stats.key_allocs,
            distinct.len() as u64,
            "workers={workers}: one materialization per fresh session id"
        );
    }
}

/// Deterministic spot check of the RunStats plumbing end to end,
/// including the sharded path (where counters come back from the worker
/// threads' replies).
#[test]
fn run_stats_surface_through_workers() {
    let reg = registry();
    let rows: Vec<(u64, usize, i64, i64)> = (0..200)
        .map(|i| (1u64, i % 2, (i % 3) as i64, i as i64))
        .collect();
    let events = build_events(&reg, &rows);
    for workers in WORKER_COUNTS {
        let run = Session::builder()
            .query(QUERIES[0])
            .workers(workers)
            .build(&reg)
            .expect("session builds")
            .run(&events);
        assert_eq!(
            run.stats.key_probes,
            events.len() as u64,
            "workers={workers}: every routed event probes exactly once"
        );
        assert_eq!(
            run.stats.key_allocs, 3,
            "workers={workers}: three groups ⇒ three materializations"
        );
    }
}
